// Genetic-algorithm scheduling (after Su & Chakrabarty's GA synthesis, the
// paper's reference [22]) — an alternative to the deterministic MMS/SRS/OMS
// engines, used by the scheduler-ablation bench.
//
// Chromosomes are random-key priority vectors; decoding is list scheduling
// with the keys as priorities, so every individual is a feasible schedule by
// construction. Fitness minimizes completion time first and storage units
// second.
//
// Fitness evaluation is the hot loop (population × generations full forest
// decodes) and fans out over a runtime::ThreadPool: chromosomes are bred
// serially from the seeded master RNG, then scored in parallel with
// per-worker decode scratch and a chromosome-hash memo cache, and reduced in
// index order — so the returned schedule is byte-identical for every job
// count.
#pragma once

#include <cstdint>

#include "forest/task_forest.h"
#include "sched/schedule.h"

namespace dmf::runtime {
class ThreadPool;
}  // namespace dmf::runtime

namespace dmf::sched {

/// GA tuning knobs. Defaults converge on forest sizes up to a few hundred
/// tasks in well under a second.
struct GaOptions {
  std::uint64_t seed = 1;
  unsigned population = 32;
  unsigned generations = 60;
  /// Tournament size for parent selection.
  unsigned tournament = 3;
  /// Individuals copied unchanged into the next generation.
  unsigned elites = 2;
  /// Per-gene probability of mutation (key resampled).
  double mutationRate = 0.05;
  /// Worker threads for fitness evaluation; 1 = serial (the default),
  /// 0 = one per hardware core. The result is identical for every value.
  unsigned jobs = 1;
};

/// Runs the GA and returns the best schedule found (never worse than the
/// plain critical-path seed individual). Deterministic for a fixed seed,
/// for any options.jobs. Throws std::invalid_argument if mixers == 0 or
/// options are degenerate (empty population, elites >= population).
[[nodiscard]] Schedule scheduleGA(const forest::TaskForest& forest,
                                  unsigned mixers,
                                  const GaOptions& options = {});

/// As above with a caller-owned worker pool (overrides options.jobs); share
/// one pool across schedulers and the streaming planner to keep a single
/// set of worker threads per process.
[[nodiscard]] Schedule scheduleGA(const forest::TaskForest& forest,
                                  unsigned mixers, const GaOptions& options,
                                  runtime::ThreadPool& pool);

}  // namespace dmf::sched
