#include "engine/pass_cache.h"

#include <chrono>
#include <mutex>

#include "obs/scope.h"
#include "runtime/thread_pool.h"

namespace dmf::engine {

namespace {

std::uint64_t nanosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// splitmix64 finalizer: full-avalanche mix, every input bit flips ~half the
// output bits.
std::uint64_t avalanche(std::uint64_t v) noexcept {
  v ^= v >> 30;
  v *= 0xBF58476D1CE4E5B9ull;
  v ^= v >> 27;
  v *= 0x94D049BB133111EBull;
  v ^= v >> 31;
  return v;
}

}  // namespace

std::size_t PassKeyHash::operator()(const PassKey& key) const noexcept {
  // Each field passes through a full-avalanche finalizer before folding into
  // the FNV-1a accumulator. Plain FNV-1a left the enum fields in the low
  // bits, so a demand sweep (consecutive integers, the dominant access
  // pattern) produced near-consecutive hashes that collided modulo small
  // bucket counts; the avalanche decorrelates neighbouring demands.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= avalanche(v);
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(key.algorithm));
  mix(static_cast<std::uint64_t>(key.scheme));
  mix(key.mixers);
  mix(key.demand);
  return static_cast<std::size_t>(avalanche(h));
}

StreamingPass evaluatePass(const MdstEngine& engine,
                           mixgraph::Algorithm algorithm, Scheme scheme,
                           unsigned mixers, std::uint64_t demand,
                           PassCacheStats* stageNanos) {
  return evaluatePassOnGraph(engine.baseGraph(algorithm), scheme, mixers,
                             demand, stageNanos);
}

StreamingPass evaluatePassOnGraph(const mixgraph::MixingGraph& graph,
                                  Scheme scheme, unsigned mixers,
                                  std::uint64_t demand,
                                  PassCacheStats* stageNanos) {
  auto start = std::chrono::steady_clock::now();
  const forest::TaskForest f = [&] {
    const obs::Span span("engine.forest_build");
    return forest::TaskForest(graph, demand);
  }();
  const std::uint64_t buildNanos = nanosSince(start);

  start = std::chrono::steady_clock::now();
  const sched::Schedule s = [&] {
    const obs::Span span("engine.schedule");
    return schedule(f, scheme, mixers);
  }();
  const std::uint64_t scheduleNanos = nanosSince(start);

  start = std::chrono::steady_clock::now();
  StreamingPass pass;
  {
    const obs::Span span("engine.storage_count");
    pass.demand = demand;
    pass.cycles = s.completionTime;
    pass.storageUnits = sched::countStorage(f, s);
    pass.waste = f.stats().waste;
    pass.inputDroplets = f.stats().inputTotal;
    pass.mixSplits = f.stats().mixSplits;
  }
  const std::uint64_t storageNanos = nanosSince(start);

  if (stageNanos != nullptr) {
    stageNanos->buildNanos = buildNanos;
    stageNanos->scheduleNanos = scheduleNanos;
    stageNanos->storageNanos = storageNanos;
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("engine.pass_eval.count").add(1);
    m->counter("engine.pass_eval.build_nanos").add(buildNanos);
    m->counter("engine.pass_eval.schedule_nanos").add(scheduleNanos);
    m->counter("engine.pass_eval.storage_nanos").add(storageNanos);
    m->histogram("engine.pass_eval.micros",
                 {10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000})
        .observe((buildNanos + scheduleNanos + storageNanos) / 1000);
  }
  return pass;
}

StreamingPass PassCache::evaluate(const MdstEngine& engine,
                                  mixgraph::Algorithm algorithm, Scheme scheme,
                                  unsigned mixers, std::uint64_t demand) {
  const PassKey key{algorithm, scheme, mixers, demand};
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.add(1);
      obs::count("engine.pass_cache.hits");
      return it->second;
    }
  }

  // Compute outside any lock: two threads racing on the same key both pay
  // the evaluation (rare, harmless — the value is a pure function of the
  // key) rather than serializing every miss.
  PassCacheStats stage;
  const StreamingPass pass =
      evaluatePass(engine, algorithm, scheme, mixers, demand, &stage);
  misses_.add(1);
  obs::count("engine.pass_cache.misses");
  buildNanos_.add(stage.buildNanos);
  scheduleNanos_.add(stage.scheduleNanos);
  storageNanos_.add(stage.storageNanos);

  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    entries_.emplace(key, pass);
  }
  return pass;
}

std::vector<StreamingPass> PassCache::evaluateLadder(
    const MdstEngine& engine, mixgraph::Algorithm algorithm, Scheme scheme,
    unsigned mixers, const std::vector<std::uint64_t>& demands,
    PassPool* pool) {
  std::vector<StreamingPass> results(demands.size());
  std::vector<std::size_t> missIdx;

  // Lookup prepass: one shared-lock round-trip resolves every hit.
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const PassKey key{algorithm, scheme, mixers, demands[i]};
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        results[i] = it->second;
      } else {
        missIdx.push_back(i);
      }
    }
  }
  if (const std::uint64_t hitCount = demands.size() - missIdx.size()) {
    hits_.add(hitCount);
    obs::count("engine.pass_cache.hits", hitCount);
  }
  if (missIdx.empty()) return results;

  // One base-graph resolution for the whole sweep: the scalar path re-enters
  // the engine's lazy-cache mutex on every miss.
  const mixgraph::MixingGraph& graph = engine.baseGraph(algorithm);

  // Misses compute outside any lock (values are pure functions of the key);
  // stage counters are atomic, so workers accumulate them directly.
  auto evalMiss = [&](std::size_t m) {
    PassCacheStats stage;
    results[missIdx[m]] = evaluatePassOnGraph(graph, scheme, mixers,
                                              demands[missIdx[m]], &stage);
    buildNanos_.add(stage.buildNanos);
    scheduleNanos_.add(stage.scheduleNanos);
    storageNanos_.add(stage.storageNanos);
  };
  if (pool != nullptr && pool->jobs() > 1 && missIdx.size() > 1) {
    pool->forEach(missIdx.size(), [&evalMiss](std::uint64_t m) {
      evalMiss(static_cast<std::size_t>(m));
    });
  } else {
    for (std::size_t m = 0; m < missIdx.size(); ++m) evalMiss(m);
  }
  misses_.add(missIdx.size());
  obs::count("engine.pass_cache.misses", missIdx.size());

  // Publish every fresh entry in one exclusive section, in ascending ladder
  // order (emplace ignores duplicates, matching the racing-miss semantics of
  // evaluate()).
  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    for (const std::size_t i : missIdx) {
      entries_.emplace(PassKey{algorithm, scheme, mixers, demands[i]},
                       results[i]);
    }
  }
  return results;
}

std::vector<StreamingPass> evaluatePassLadder(
    const MdstEngine& engine, mixgraph::Algorithm algorithm, Scheme scheme,
    unsigned mixers, const std::vector<std::uint64_t>& demands,
    PassCache& cache, PassPool* pool) {
  return cache.evaluateLadder(engine, algorithm, scheme, mixers, demands,
                              pool);
}

std::optional<StreamingPass> PassCache::lookup(const PassKey& key) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::size_t PassCache::size() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

PassCacheStats PassCache::stats() const {
  PassCacheStats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.buildNanos = buildNanos_.value();
  s.scheduleNanos = scheduleNanos_.value();
  s.storageNanos = storageNanos_.value();
  return s;
}

void PassCache::clear() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  hits_.reset();
  misses_.reset();
  buildNanos_.reset();
  scheduleNanos_.reset();
  storageNanos_.reset();
}

}  // namespace dmf::engine
