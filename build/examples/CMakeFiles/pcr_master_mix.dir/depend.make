# Empty dependencies file for pcr_master_mix.
# This may be replaced when dependencies are built.
