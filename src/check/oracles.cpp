#include "check/oracles.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "dmf/mixture_value.h"
#include "engine/mdst.h"
#include "mixgraph/graph.h"

namespace dmf::check {

using forest::DropletFate;
using forest::kNoTask;
using forest::Task;
using forest::TaskForest;
using forest::TaskId;

std::string CheckResult::summary() const {
  std::string out;
  for (const std::string& f : failures) {
    out += f;
    out += '\n';
  }
  return out;
}

namespace {

// Bounded counting assertion helper: bumps checksRun and reports on
// mismatch.
void expectEq(CheckResult& out, const char* oracle, const std::string& what,
              std::uint64_t got, std::uint64_t want) {
  ++out.checksRun;
  if (got != want) {
    out.fail(oracle, what + " — got " + std::to_string(got) + ", expected " +
                         std::to_string(want));
  }
}

}  // namespace

void checkForestConservation(const TaskForest& forest, CheckResult& out) {
  const char* kOracle = "conservation";
  std::uint64_t inputs = 0;
  std::uint64_t targets = 0;
  std::uint64_t waste = 0;
  std::uint64_t consumed = 0;
  std::vector<std::uint64_t> perFluid(
      forest.graph().ratio().fluidCount(), 0);
  std::set<std::uint32_t> trees;
  std::map<mixgraph::NodeId, std::uint64_t> execsPerNode;
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const Task& t = forest.task(id);
    trees.insert(t.tree);
    ++execsPerNode[t.node];
    const mixgraph::Node& node = forest.graph().node(t.node);
    for (const auto& [dep, child] :
         {std::pair{t.depLeft, node.left}, std::pair{t.depRight, node.right}}) {
      if (dep != kNoTask) continue;
      ++inputs;
      // A reservoir-dispensed operand means the base-graph child is a leaf
      // of one pure fluid.
      ++out.checksRun;
      if (child == mixgraph::kNoNode ||
          !forest.graph().node(child).isLeaf()) {
        out.fail(kOracle, "task " + std::to_string(id) +
                              " dispenses from a non-leaf operand");
        continue;
      }
      const std::size_t fluid = forest.graph().node(child).value.pureFluid();
      if (fluid < perFluid.size()) ++perFluid[fluid];
    }
    for (const auto& drop : t.out) {
      switch (drop.fate) {
        case DropletFate::kTarget: ++targets; break;
        case DropletFate::kWaste: ++waste; break;
        case DropletFate::kConsumed: ++consumed; break;
      }
    }
  }
  // Each mix-split takes 2 droplets and emits 2, so over the whole forest:
  // inputs + consumed == 2 * tasks == targets + waste + consumed, i.e.
  // inputs == targets + waste.
  expectEq(out, kOracle, "2 droplets out per mix-split",
           targets + waste + consumed, 2 * forest.taskCount());
  expectEq(out, kOracle, "2 droplets in per mix-split", inputs + consumed,
           2 * forest.taskCount());
  expectEq(out, kOracle, "inputs == targets + waste (conservation)", inputs,
           targets + waste);
  expectEq(out, kOracle, "target droplets == total demand", targets,
           forest.demand());
  expectEq(out, kOracle, "stats.inputTotal", forest.stats().inputTotal,
           inputs);
  expectEq(out, kOracle, "stats.waste", forest.stats().waste, waste);
  expectEq(out, kOracle, "stats.targets", forest.stats().targets, targets);
  expectEq(out, kOracle, "stats.mixSplits", forest.stats().mixSplits,
           forest.taskCount());
  expectEq(out, kOracle, "stats.componentTrees == distinct tree tags",
           forest.stats().componentTrees, trees.size());
  for (std::size_t f = 0; f < perFluid.size(); ++f) {
    expectEq(out, kOracle, "stats.inputPerFluid[" + std::to_string(f) + "]",
             f < forest.stats().inputPerFluid.size()
                 ? forest.stats().inputPerFluid[f]
                 : 0,
             perFluid[f]);
  }
  for (const auto& [node, execs] : execsPerNode) {
    expectEq(out, kOracle,
             "executions(node " + std::to_string(node) + ")",
             forest.executions(node), execs);
  }
  // The paper's zero-waste theorem: a classic single-target forest with
  // D = p * 2^d (d the accuracy level) reuses every second droplet, so no
  // droplet is wasted at all.
  const bool classicSingleTarget =
      forest.demandNodes().size() == 1 &&
      forest.graph().roots().size() == 1 &&
      forest.demandNodes()[0] == forest.graph().root();
  if (classicSingleTarget && forest.depth() < 63 &&
      forest.demand() % (std::uint64_t{1} << forest.depth()) == 0) {
    expectEq(out, "zero-waste",
             "waste at aligned demand D = p * 2^d (d = " +
                 std::to_string(forest.depth()) + ")",
             waste, 0);
  }
}

void checkForestWiring(const TaskForest& forest, CheckResult& out) {
  const char* kOracle = "wiring";
  const std::size_t n = forest.taskCount();
  // Incoming droplets claimed by consumers vs droplets granted by producers.
  std::vector<std::uint64_t> claimed(n, 0);
  std::vector<std::uint64_t> granted(n, 0);
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = forest.task(id);
    for (TaskId dep : {t.depLeft, t.depRight}) {
      if (dep == kNoTask) continue;
      ++out.checksRun;
      if (dep >= n) {
        out.fail(kOracle, "task " + std::to_string(id) +
                              " depends on out-of-range task " +
                              std::to_string(dep));
        continue;
      }
      ++claimed[id];
    }
    for (const auto& drop : t.out) {
      if (drop.fate != DropletFate::kConsumed) {
        ++out.checksRun;
        if (drop.consumer != kNoTask) {
          out.fail(kOracle, "task " + std::to_string(id) +
                                " non-consumed droplet names a consumer");
        }
        continue;
      }
      ++out.checksRun;
      if (drop.consumer >= n) {
        out.fail(kOracle, "task " + std::to_string(id) +
                              " droplet consumed by out-of-range task");
        continue;
      }
      ++granted[drop.consumer];
      // The consumer must actually list this producer as an operand.
      const Task& c = forest.task(drop.consumer);
      if (c.depLeft != id && c.depRight != id) {
        out.fail(kOracle, "task " + std::to_string(drop.consumer) +
                              " consumes a droplet of task " +
                              std::to_string(id) +
                              " it does not list as an operand");
      }
    }
  }
  for (TaskId id = 0; id < n; ++id) {
    expectEq(out, kOracle,
             "operand droplets granted to task " + std::to_string(id),
             granted[id], claimed[id]);
  }
  // Acyclicity by explicit three-colour DFS over the dependency edges.
  std::vector<std::uint8_t> colour(n, 0);  // 0 white, 1 grey, 2 black
  std::vector<std::pair<TaskId, int>> stack;
  bool cyclic = false;
  for (TaskId start = 0; start < n && !cyclic; ++start) {
    if (colour[start] != 0) continue;
    stack.push_back({start, 0});
    colour[start] = 1;
    while (!stack.empty() && !cyclic) {
      auto& [id, edge] = stack.back();
      const Task& t = forest.task(id);
      const TaskId deps[2] = {t.depLeft, t.depRight};
      if (edge >= 2) {
        colour[id] = 2;
        stack.pop_back();
        continue;
      }
      const TaskId dep = deps[edge++];
      if (dep == kNoTask || dep >= n || colour[dep] == 2) continue;
      if (colour[dep] == 1) {
        cyclic = true;
        break;
      }
      colour[dep] = 1;
      stack.push_back({dep, 0});
    }
  }
  ++out.checksRun;
  if (cyclic) out.fail(kOracle, "dependency relation has a cycle");
}

void checkMixtureCorrectness(const TaskForest& forest, CheckResult& out) {
  const char* kOracle = "mixture";
  const mixgraph::MixingGraph& graph = forest.graph();
  const std::size_t n = forest.taskCount();
  std::vector<std::optional<MixtureValue>> value(n);

  // Bottom-up evaluation with an explicit stack (no reliance on any id
  // ordering the builder happens to produce).
  for (TaskId start = 0; start < n; ++start) {
    if (value[start].has_value()) continue;
    std::vector<TaskId> stack{start};
    while (!stack.empty()) {
      const TaskId id = stack.back();
      if (value[id].has_value()) {
        stack.pop_back();
        continue;
      }
      const Task& t = forest.task(id);
      bool readyToEval = true;
      for (TaskId dep : {t.depLeft, t.depRight}) {
        if (dep != kNoTask && dep < n && !value[dep].has_value()) {
          stack.push_back(dep);
          readyToEval = false;
        }
      }
      if (!readyToEval) continue;
      stack.pop_back();
      const mixgraph::Node& node = graph.node(t.node);
      auto operandValue =
          [&](TaskId dep, mixgraph::NodeId child) -> MixtureValue {
        if (dep != kNoTask && dep < n) return *value[dep];
        return graph.node(child).value;  // reservoir dispense: leaf value
      };
      try {
        const MixtureValue mixed =
            MixtureValue::mix(operandValue(t.depLeft, node.left),
                              operandValue(t.depRight, node.right));
        ++out.checksRun;
        if (mixed != node.value) {
          out.fail(kOracle, forest.taskLabel(id) + " evaluates to " +
                                mixed.toString() + ", base graph claims " +
                                node.value.toString());
        }
        value[id] = mixed;
      } catch (const std::exception& e) {
        ++out.checksRun;
        out.fail(kOracle,
                 forest.taskLabel(id) + " evaluation threw: " + e.what());
        value[id] = node.value;  // keep going with the claimed value
      }
    }
  }

  // Every emitted target droplet must carry the composition of its demand
  // node — for classic forests that is the target ratio itself.
  std::map<mixgraph::NodeId, std::uint64_t> targetsPerNode;
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = forest.task(id);
    for (const auto& drop : t.out) {
      if (drop.fate != DropletFate::kTarget) continue;
      ++targetsPerNode[t.node];
      ++out.checksRun;
      if (value[id].has_value() &&
          *value[id] != graph.node(t.node).value) {
        out.fail(kOracle, "target droplet of " + forest.taskLabel(id) +
                              " has off-target composition " +
                              value[id]->toString());
      }
    }
  }
  for (std::size_t i = 0; i < forest.demandNodes().size(); ++i) {
    const mixgraph::NodeId node = forest.demandNodes()[i];
    const auto it = targetsPerNode.find(node);
    expectEq(out, kOracle,
             "targets emitted at demand node " + std::to_string(node),
             it == targetsPerNode.end() ? 0 : it->second,
             forest.demands()[i]);
    if (it != targetsPerNode.end()) targetsPerNode.erase(it);
  }
  ++out.checksRun;
  if (!targetsPerNode.empty()) {
    out.fail(kOracle, "targets emitted at a non-demand node " +
                          std::to_string(targetsPerNode.begin()->first));
  }
  // Classic single-target forests: the demand node's value is the ratio's
  // target composition, checked exactly.
  if (forest.demandNodes().size() == 1 &&
      forest.demandNodes()[0] == graph.root()) {
    ++out.checksRun;
    if (graph.node(graph.root()).value != MixtureValue::target(graph.ratio())) {
      out.fail(kOracle, "root composition differs from the target ratio");
    }
  }
}

void checkScheduleValidity(const TaskForest& forest, const sched::Schedule& s,
                           CheckResult& out) {
  const char* kOracle = "schedule";
  const std::size_t n = forest.taskCount();
  ++out.checksRun;
  if (s.size() != n) {
    out.fail(kOracle, "assignment count " + std::to_string(s.size()) +
                          " != task count " + std::to_string(n));
    return;
  }
  std::set<std::pair<unsigned, unsigned>> slots;
  unsigned last = 0;
  for (TaskId id = 0; id < n; ++id) {
    const unsigned cycle = s.cycles[id];
    const unsigned mixer = s.mixers[id];
    ++out.checksRun;
    if (cycle == 0) {
      out.fail(kOracle, "task " + std::to_string(id) + " unscheduled");
      continue;
    }
    if (mixer >= s.mixerCount) {
      out.fail(kOracle, "task " + std::to_string(id) + " on mixer " +
                            std::to_string(mixer) + " of a " +
                            std::to_string(s.mixerCount) + "-mixer bank");
    }
    if (!slots.insert({cycle, mixer}).second) {
      out.fail(kOracle, "two mix-splits share cycle " +
                            std::to_string(cycle) + " mixer " +
                            std::to_string(mixer));
    }
    const Task& t = forest.task(id);
    for (TaskId dep : {t.depLeft, t.depRight}) {
      if (dep == kNoTask || dep >= n) continue;
      if (s.cycles[dep] >= cycle) {
        out.fail(kOracle, "operand of task " + std::to_string(id) +
                              " not produced strictly earlier");
      }
    }
    last = std::max(last, cycle);
  }
  expectEq(out, kOracle, "completionTime == last busy cycle",
           s.completionTime, last);
}

unsigned storageOracle(const TaskForest& forest, const sched::Schedule& s) {
  // One +1 event the cycle after production, one -1 event at the consumption
  // cycle, per consumed droplet; peak of the prefix sum is the answer.
  unsigned horizon = 0;
  for (const unsigned cycle : s.cycles) {
    horizon = std::max(horizon, cycle);
  }
  std::vector<std::int64_t> delta(horizon + 2, 0);
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const unsigned produced = s.cycles[id];
    for (const auto& drop : forest.task(id).out) {
      if (drop.fate != DropletFate::kConsumed) continue;
      const unsigned consumed = s.cycles[drop.consumer];
      if (consumed > produced + 1) {
        delta[produced + 1] += 1;
        delta[consumed] -= 1;
      }
    }
  }
  std::int64_t occupancy = 0;
  std::int64_t peak = 0;
  for (std::size_t t = 0; t < delta.size(); ++t) {
    occupancy += delta[t];
    peak = std::max(peak, occupancy);
  }
  return static_cast<unsigned>(peak);
}

void checkStorageCount(const TaskForest& forest, const sched::Schedule& s,
                       CheckResult& out) {
  expectEq(out, "storage-count",
           "Algorithm 3 (countStorage) vs droplet-event oracle",
           sched::countStorage(forest, s), storageOracle(forest, s));
}

namespace {

unsigned criticalPathOracle(const TaskForest& forest) {
  const std::size_t n = forest.taskCount();
  std::vector<unsigned> chain(n, 0);  // 0 = not yet computed
  unsigned best = 0;
  for (TaskId start = 0; start < n; ++start) {
    std::vector<TaskId> stack{start};
    while (!stack.empty()) {
      const TaskId id = stack.back();
      if (chain[id] != 0) {
        stack.pop_back();
        continue;
      }
      const Task& t = forest.task(id);
      unsigned longest = 0;
      bool readyToEval = true;
      for (TaskId dep : {t.depLeft, t.depRight}) {
        if (dep == kNoTask || dep >= n) continue;
        if (chain[dep] == 0) {
          stack.push_back(dep);
          readyToEval = false;
        } else {
          longest = std::max(longest, chain[dep]);
        }
      }
      if (!readyToEval) continue;
      stack.pop_back();
      chain[id] = longest + 1;
      best = std::max(best, chain[id]);
    }
  }
  return best;
}

}  // namespace

void checkCompletionLowerBounds(const TaskForest& forest,
                                const sched::Schedule& s, CheckResult& out) {
  const char* kOracle = "lower-bound";
  if (forest.taskCount() == 0) return;
  const unsigned cp = criticalPathOracle(forest);
  const auto width = static_cast<unsigned>(
      (forest.taskCount() + s.mixerCount - 1) / std::max(1u, s.mixerCount));
  ++out.checksRun;
  if (s.completionTime < cp) {
    out.fail(kOracle, s.scheme + " completion " +
                          std::to_string(s.completionTime) +
                          " beats the critical path " + std::to_string(cp));
  }
  ++out.checksRun;
  if (s.completionTime < width) {
    out.fail(kOracle, s.scheme + " completion " +
                          std::to_string(s.completionTime) +
                          " beats the width bound " + std::to_string(width));
  }
}

void checkSrsContract(const TaskForest& forest, const sched::Schedule& srs,
                      const sched::Schedule& mms, CheckResult& out) {
  const unsigned srsStorage = storageOracle(forest, srs);
  const unsigned mmsStorage = storageOracle(forest, mms);
  ++out.checksRun;
  if (srsStorage > mmsStorage) {
    out.fail("srs-contract", "SRS stores " + std::to_string(srsStorage) +
                                 " units, more than MMS's " +
                                 std::to_string(mmsStorage));
  }
}

void checkScheduledForest(const TaskForest& forest, const sched::Schedule& s,
                          unsigned storageCap, CheckResult& out) {
  checkScheduleValidity(forest, s, out);
  checkStorageCount(forest, s, out);
  checkCompletionLowerBounds(forest, s, out);
  if (storageCap > 0) {
    const unsigned storage = storageOracle(forest, s);
    ++out.checksRun;
    if (storage > storageCap) {
      out.fail("storage-cap", s.scheme + " parks " + std::to_string(storage) +
                                  " droplets over the cap of " +
                                  std::to_string(storageCap));
    }
  }
}

void checkStreamingPlan(const engine::MdstEngine& engine,
                        const engine::StreamingRequest& request,
                        const engine::StreamingPlan& plan, CheckResult& out) {
  const char* kOracle = "stream-plan";
  std::uint64_t demandSum = 0;
  std::uint64_t cycleSum = 0;
  std::uint64_t wasteSum = 0;
  std::uint64_t inputSum = 0;
  unsigned peak = 0;
  // Re-evaluate each distinct pass demand once, from scratch.
  std::map<std::uint64_t, engine::StreamingPass> reference;
  for (const engine::StreamingPass& pass : plan.passes) {
    demandSum += pass.demand;
    cycleSum += pass.cycles;
    wasteSum += pass.waste;
    inputSum += pass.inputDroplets;
    peak = std::max(peak, pass.storageUnits);
    if (reference.find(pass.demand) == reference.end()) {
      const forest::TaskForest forest =
          engine.buildForest(request.algorithm, pass.demand);
      const sched::Schedule schedule =
          engine::schedule(forest, request.scheme, plan.mixers);
      engine::StreamingPass ref;
      ref.demand = pass.demand;
      ref.cycles = schedule.completionTime;
      ref.storageUnits = storageOracle(forest, schedule);
      ref.waste = forest.stats().waste;
      ref.inputDroplets = forest.stats().inputTotal;
      ref.mixSplits = forest.stats().mixSplits;
      reference.emplace(pass.demand, ref);
      checkScheduledForest(forest, schedule, request.storageCap, out);
    }
    const engine::StreamingPass& ref = reference.at(pass.demand);
    expectEq(out, kOracle, "pass cycles at demand " +
                               std::to_string(pass.demand),
             pass.cycles, ref.cycles);
    expectEq(out, kOracle, "pass storage at demand " +
                               std::to_string(pass.demand),
             pass.storageUnits, ref.storageUnits);
    expectEq(out, kOracle, "pass waste at demand " +
                               std::to_string(pass.demand),
             pass.waste, ref.waste);
    expectEq(out, kOracle, "pass input droplets at demand " +
                               std::to_string(pass.demand),
             pass.inputDroplets, ref.inputDroplets);
    ++out.checksRun;
    if (pass.storageUnits > request.storageCap) {
      out.fail(kOracle, "pass of demand " + std::to_string(pass.demand) +
                            " exceeds the storage cap " +
                            std::to_string(request.storageCap));
    }
  }
  expectEq(out, kOracle, "pass demands sum to the requested demand",
           demandSum, request.demand);
  expectEq(out, kOracle, "totalCycles", plan.totalCycles, cycleSum);
  expectEq(out, kOracle, "totalWaste", plan.totalWaste, wasteSum);
  expectEq(out, kOracle, "totalInput", plan.totalInput, inputSum);
  expectEq(out, kOracle, "plan storageUnits is the pass peak",
           plan.storageUnits, peak);
}

}  // namespace dmf::check
