#include "sched/ga_scheduler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mixgraph/builders.h"
#include "runtime/thread_pool.h"
#include "sched/fitness_memo.h"
#include "sched/schedulers.h"

namespace dmf::sched {
namespace {

using forest::TaskForest;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

GaOptions quickOptions() {
  GaOptions options;
  options.population = 16;
  options.generations = 20;
  return options;
}

TEST(GaScheduler, ProducesValidSchedules) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const Schedule s = scheduleGA(f, 3, quickOptions());
  validateOrThrow(f, s);
  EXPECT_EQ(s.scheme, "GA");
}

TEST(GaScheduler, NeverWorseThanCriticalPathSeed) {
  // The GA is seeded with the OMS individual, so its completion time is
  // bounded by the OMS list schedule's.
  MixingGraph g = buildMM(pcr());
  for (std::uint64_t demand : {8u, 20u, 32u}) {
    TaskForest f(g, demand);
    const Schedule oms = scheduleOMS(f, 3);
    const Schedule ga = scheduleGA(f, 3, quickOptions());
    EXPECT_LE(ga.completionTime, oms.completionTime) << "D=" << demand;
  }
}

TEST(GaScheduler, DeterministicForSeed) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 16);
  const Schedule a = scheduleGA(f, 3, quickOptions());
  const Schedule b = scheduleGA(f, 3, quickOptions());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.cycles[i], b.cycles[i]);
    EXPECT_EQ(a.mixers[i], b.mixers[i]);
  }
}

TEST(GaScheduler, ByteIdenticalAcrossJobs) {
  // The --jobs guarantee, mirrored from the streaming planner: all RNG runs
  // on the master thread and fitness results land in index-addressed slots,
  // so the schedule is identical for every pool width.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 24);
  const Schedule base = scheduleGA(f, 3, quickOptions());
  const auto expectSame = [&](const Schedule& s, const std::string& label) {
    ASSERT_EQ(s.size(), base.size()) << label;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(s.cycles[i], base.cycles[i]) << label << " task " << i;
      EXPECT_EQ(s.mixers[i], base.mixers[i]) << label << " task " << i;
    }
    EXPECT_EQ(s.completionTime, base.completionTime) << label;
  };
  for (const unsigned jobs : {2u, 4u}) {
    runtime::ThreadPool pool(jobs);
    expectSame(scheduleGA(f, 3, quickOptions(), pool),
               "pool jobs=" + std::to_string(jobs));
  }
  GaOptions viaOptions = quickOptions();
  viaOptions.jobs = 4;
  expectSame(scheduleGA(f, 3, viaOptions), "options.jobs=4");
}

TEST(GaScheduler, PinnedGoldenForDefaultSeed) {
  // Golden for the default seed, pinned so RNG-consuming refactors (like the
  // tournament modulo-bias fix in PR 3) show up as an explicit diff here
  // rather than as silent schedule drift. The exact values depend on the
  // standard library's distributions (libstdc++ on CI).
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 16);
  const Schedule s = scheduleGA(f, 3, quickOptions());
  validateOrThrow(f, s);
  EXPECT_EQ(s.completionTime, 7u);
  EXPECT_EQ(countStorage(f, s), 4u);
}

TEST(GaScheduler, DifferentSeedsExploreDifferently) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  GaOptions a = quickOptions();
  GaOptions b = quickOptions();
  b.seed = 99;
  const Schedule sa = scheduleGA(f, 3, a);
  const Schedule sb = scheduleGA(f, 3, b);
  // Both valid; completion times may coincide, assignments usually differ.
  validateOrThrow(f, sa);
  validateOrThrow(f, sb);
}

TEST(GaScheduler, RespectsSingleMixer) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 4);
  const Schedule s = scheduleGA(f, 1, quickOptions());
  validateOrThrow(f, s);
  EXPECT_EQ(s.completionTime, f.taskCount());
}

TEST(GaScheduler, RejectsBadArguments) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 4);
  EXPECT_THROW((void)scheduleGA(f, 0, quickOptions()), std::invalid_argument);
  GaOptions bad = quickOptions();
  bad.population = 0;
  EXPECT_THROW((void)scheduleGA(f, 3, bad), std::invalid_argument);
  bad = quickOptions();
  bad.elites = bad.population;
  EXPECT_THROW((void)scheduleGA(f, 3, bad), std::invalid_argument);
  bad = quickOptions();
  bad.tournament = 0;
  EXPECT_THROW((void)scheduleGA(f, 3, bad), std::invalid_argument);
}

TEST(GaScheduler, CanReduceStorageBeyondOms) {
  // With Tc tied at the lower bound, the secondary objective pushes storage
  // down; the GA should never exceed the seed's storage at equal Tc.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 32);
  const Schedule oms = scheduleOMS(f, 3);
  const Schedule ga = scheduleGA(f, 3, quickOptions());
  if (ga.completionTime == oms.completionTime) {
    EXPECT_LE(countStorage(f, ga), countStorage(f, oms));
  }
}

// --------------------------------------------------------------------------
// FitnessMemo: the memo must never trust a hash match alone. These tests
// force collisions through a degenerate hash function — under the pre-fix
// design (bare FNV-1a lookup) every chromosome would "hit" the first entry
// and inherit the wrong fitness.

std::uint64_t constantHash(const std::vector<double>&) { return 42; }

TEST(FitnessMemo, CollidingKeysDoNotAlias) {
  FitnessMemo<int> memo(&constantHash);
  const std::vector<double> a{0.1, 0.2, 0.3};
  const std::vector<double> b{0.9, 0.8, 0.7};  // same hash, different keys
  memo.insert(a, 111);
  ASSERT_NE(memo.find(a), nullptr);
  EXPECT_EQ(*memo.find(a), 111);
  // The collision is detected, counted, and answered with a miss — not
  // with a's fitness.
  EXPECT_EQ(memo.find(b), nullptr);
  EXPECT_GE(memo.collisions(), 1u);
  memo.insert(b, 222);
  EXPECT_EQ(*memo.find(a), 111);
  EXPECT_EQ(*memo.find(b), 222);
  EXPECT_EQ(memo.size(), 2u);
}

TEST(FitnessMemo, DuplicateInsertKeepsFirstValue) {
  FitnessMemo<int> memo(&constantHash);
  const std::vector<double> a{0.5};
  memo.insert(a, 1);
  memo.insert(a, 2);  // fitness is a pure function of the keys
  EXPECT_EQ(*memo.find(a), 1);
  EXPECT_EQ(memo.size(), 1u);
}

TEST(FitnessMemo, DefaultHashDistinguishesNearbyKeys) {
  FitnessMemo<int> memo;
  const std::vector<double> a{0.25, 0.5};
  const std::vector<double> b{0.25, 0.5000000001};
  memo.insert(a, 7);
  EXPECT_EQ(*memo.find(a), 7);
  EXPECT_EQ(memo.find(b), nullptr);
  EXPECT_EQ(memo.find({}), nullptr);
  EXPECT_EQ(memo.collisions(), 0u);
}

TEST(FitnessMemo, HashOnlyLookupWouldAliasTheseKeys) {
  // Pin the failure mode itself: the two key vectors collide under the
  // degenerate hash, so any design that compares hashes instead of keys
  // cannot tell them apart. Guards against regressing to the old lookup.
  const std::vector<double> a{0.1};
  const std::vector<double> b{0.2};
  EXPECT_EQ(constantHash(a), constantHash(b));
  EXPECT_NE(a, b);
  FitnessMemo<int> memo(&constantHash);
  memo.insert(a, 10);
  memo.insert(b, 20);
  EXPECT_EQ(*memo.find(a), 10);
  EXPECT_EQ(*memo.find(b), 20);
}

}  // namespace
}  // namespace dmf::sched
