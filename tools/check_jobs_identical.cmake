# ctest helper: the GA schedule and the streaming plan must serialize to
# byte-identical JSON for every --jobs value. Run as
#   cmake -DDMFSTREAM=<path-to-binary> -P check_jobs_identical.cmake
if(NOT DEFINED DMFSTREAM)
  message(FATAL_ERROR "pass -DDMFSTREAM=<path to dmfstream>")
endif()

function(run_cli out_var)
  execute_process(
    COMMAND ${DMFSTREAM} ${ARGN}
    OUTPUT_VARIABLE output
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "dmfstream ${ARGN} exited with ${status}")
  endif()
  set(${out_var} "${output}" PARENT_SCOPE)
endfunction()

set(ga_args plan --ratio 2:1:1:1:1:1:9 --demand 20 --scheme GA
    --ga-pop 24 --ga-gens 15 --ga-seed 7 --json)
run_cli(ga_jobs1 ${ga_args} --jobs 1)
foreach(jobs 2 6)
  run_cli(ga_jobsN ${ga_args} --jobs ${jobs})
  if(NOT ga_jobs1 STREQUAL ga_jobsN)
    message(FATAL_ERROR "GA plan JSON differs between --jobs 1 and --jobs ${jobs}")
  endif()
endforeach()

set(stream_args stream --ratio 2:1:1:1:1:1:9 --demand 32 --storage 3 --json)
run_cli(stream_jobs1 ${stream_args} --jobs 1)
run_cli(stream_jobs4 ${stream_args} --jobs 4)
if(NOT stream_jobs1 STREQUAL stream_jobs4)
  message(FATAL_ERROR "streaming plan JSON differs between --jobs 1 and --jobs 4")
endif()

# A fault-injected run with a fixed --fault-seed is deterministic too: the
# replay is serial, so --jobs (which parallelizes planning only) must not
# change a single byte of the plan + recovery JSON.
set(inject_args stream --ratio 2:1:1:1:1:1:9 --demand 32 --storage 3 --json
    --inject split=0.3,eps=0.4,loss=0.1,dispense=0.05 --fault-seed 42
    --retry-budget 4)
run_cli(inject_jobs1 ${inject_args} --jobs 1)
run_cli(inject_jobs4 ${inject_args} --jobs 4)
if(NOT inject_jobs1 STREQUAL inject_jobs4)
  message(FATAL_ERROR "injected stream JSON differs between --jobs 1 and --jobs 4")
endif()
if(NOT inject_jobs1 MATCHES "\"recovery\"")
  message(FATAL_ERROR "injected stream JSON lacks the recovery section")
endif()

# Fleet dispatch: planning fans out over --jobs but the dispatch loop is
# serial, so the whole result (placement log included) must be
# byte-identical for every job count.
# '|' separates users ( ';' is the CMake list separator and would split the
# spec into separate CLI arguments).
set(fleet_users "ratio=2:1:1:1:1:1:9,demand=64,storage=3,weight=8|ratio=1:3,demand=32,storage=2|ratio=1:7,demand=24,storage=2")
set(fleet_args fleet --users ${fleet_users} --fleet 4 --policy wfq
    --json --placement)
run_cli(fleet_jobs1 ${fleet_args} --jobs 1)
run_cli(fleet_jobs4 ${fleet_args} --jobs 4)
if(NOT fleet_jobs1 STREQUAL fleet_jobs4)
  message(FATAL_ERROR "fleet dispatch JSON differs between --jobs 1 and --jobs 4")
endif()

# A mid-run chip kill migrates work between chips but never changes the
# per-user plans: the --plans-only projection is byte-identical with and
# without the kill (and across --jobs).
set(fleet_plan_args fleet --users ${fleet_users} --fleet 4 --policy wfq
    --plans-only)
run_cli(fleet_plans_clean ${fleet_plan_args} --jobs 4)
run_cli(fleet_plans_killed ${fleet_plan_args} --jobs 1 --kill chip=1,cycle=40)
if(NOT fleet_plans_clean STREQUAL fleet_plans_killed)
  message(FATAL_ERROR "fleet plans changed under a mid-run chip kill")
endif()

message(STATUS "GA, streaming, injected-recovery, and fleet JSON byte-identical across --jobs (and fleet plans across kill/migrate)")
