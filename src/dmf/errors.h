// Library-wide exception taxonomy.
//
// The planners distinguish two failure families and the CLI maps them to
// distinct exit codes (see tools/dmfstream_cli.cpp):
//  * std::invalid_argument — the request itself is malformed (exit 1);
//  * dmf::InfeasibleError  — the request is well-formed but no plan exists
//    under the given resources, e.g. a storage cap too tight for even a
//    two-droplet pass (exit 2);
//  * anything else (std::logic_error in particular) is an internal invariant
//    violation — a bug, not a user error (exit 3).
// Two further codes live outside this header: fuzz findings exit 4, and a
// damaged crash-recovery journal (journal::CorruptJournalError,
// src/journal/journal.h) exits 5.
#pragma once

#include <stdexcept>
#include <string>

namespace dmf {

/// A well-formed request that no plan can satisfy under the given resource
/// budget (mixers, storage cap, input budget). Catching this (rather than
/// every std::runtime_error) lets callers — the CLI, the fuzzer's oracles —
/// separate "infeasible, by design" from "broken, by bug".
class InfeasibleError : public std::runtime_error {
 public:
  explicit InfeasibleError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace dmf
