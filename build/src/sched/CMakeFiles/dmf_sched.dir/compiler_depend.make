# Empty compiler generated dependencies file for dmf_sched.
# This may be replaced when dependencies are built.
