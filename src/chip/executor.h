// Executes a scheduled mixing forest on a chip layout: routes every droplet
// movement (reservoir dispensing, mixer-to-mixer hand-off, storage parking,
// waste disposal, target emission) and accounts the actuated electrodes —
// the quantity the paper's Fig. 5 evaluation compares (386 for the forest
// engine vs 980 for repeated MM).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/router.h"
#include "forest/task_forest.h"
#include "sched/schedule.h"

namespace dmf::chip {

/// Why a droplet moved.
enum class MoveKind : std::uint8_t {
  kDispense,   ///< reservoir -> mixer (input droplet)
  kHandOff,    ///< mixer -> mixer (consumed the next cycle)
  kPark,       ///< mixer -> storage (consumer not ready yet)
  kUnpark,     ///< storage -> mixer
  kToWaste,    ///< mixer -> waste reservoir
  kToOutput,   ///< mixer -> output port (target droplet)
};

/// Short tag for a move kind ("disp", "hand", ...).
[[nodiscard]] std::string_view moveKindTag(MoveKind kind);

/// One droplet transport.
struct Move {
  MoveKind kind = MoveKind::kDispense;
  /// Cycle at which the droplet arrives at `to` (movement happens between
  /// mix cycles; the model charges it to the arrival cycle).
  unsigned cycle = 0;
  ModuleId from = 0;
  ModuleId to = 0;
  unsigned cost = 0;
};

/// The full execution record.
struct ExecutionTrace {
  std::vector<Move> moves;
  /// Total electrodes actuated for droplet transportation.
  std::uint64_t totalCost = 0;
  /// Electrode actuation counts per cell (reliability analysis: excessive
  /// per-electrode actuation degrades the chip, paper section 5).
  std::vector<std::vector<unsigned>> actuations;
  /// Most-actuated single electrode.
  unsigned peakActuations = 0;
  /// Largest number of simultaneously occupied storage modules.
  unsigned peakStorageUsed = 0;

  /// Cost breakdown by move kind.
  [[nodiscard]] std::uint64_t costOf(MoveKind kind) const;
};

/// Drives a (forest, schedule) pair on a layout.
///
/// Movement model: a mix-split scheduled at cycle t receives its operand
/// droplets during cycle t (dispensed from a reservoir, handed off from the
/// producing mixer if it ran at t-1, or fetched from the storage module where
/// the droplet was parked). Output droplets leave the mixer at cycle t+1 —
/// to the consuming mixer, to a free storage module chosen to minimize total
/// detour, to the nearest waste reservoir, or to the output port.
class ChipExecutor {
 public:
  /// The layout must contain a reservoir for every fluid of the forest's
  /// ratio, at least one mixer per schedule mixer index, one waste module
  /// and one output module. Throws std::invalid_argument otherwise.
  ChipExecutor(const Layout& layout, Router& router);

  /// Executes and returns the trace. Throws chip::ChipError (derived from
  /// std::runtime_error, carrying phase/cycle/droplet context) when the
  /// layout's storage modules cannot hold the schedule's parked droplets.
  [[nodiscard]] ExecutionTrace run(const forest::TaskForest& forest,
                                   const sched::Schedule& schedule) const;

 private:
  const Layout* layout_;
  Router* router_;
  std::vector<ModuleId> mixers_;
  std::vector<ModuleId> storage_;
  std::vector<ModuleId> waste_;
  std::vector<ModuleId> output_;
};

}  // namespace dmf::chip
