file(REMOVE_RECURSE
  "CMakeFiles/dmf_workload.dir/random_ratios.cpp.o"
  "CMakeFiles/dmf_workload.dir/random_ratios.cpp.o.d"
  "CMakeFiles/dmf_workload.dir/ratio_corpus.cpp.o"
  "CMakeFiles/dmf_workload.dir/ratio_corpus.cpp.o.d"
  "libdmf_workload.a"
  "libdmf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
