// Concurrent droplet routing in the time domain.
//
// The plain Router prices a single droplet's path on an empty array. During
// a real transport phase several droplets move at once, and electrowetting
// imposes *fluidic constraints* (Su & Chakrabarty): two non-merging droplets
// must never come within one cell of each other, neither in the same step
// (static constraint) nor across consecutive steps (dynamic constraint —
// else they could merge while one electrode hands off to the next).
//
// TimedRouter routes a whole phase with prioritized space-time A*: droplets
// reserve (cell, step) slots with a one-cell halo; later droplets route
// around or wait. When an ordering fails, priorities rotate and the phase is
// retried.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/layout.h"

namespace dmf::chip {

/// One droplet that must travel during a transport phase.
struct PhaseMove {
  Cell from;
  Cell to;
  /// Caller tag carried through to the result (e.g. index into a trace).
  std::uint32_t tag = 0;
};

/// The routed trajectory of one droplet: position per step, index 0 =
/// departure position. Trailing entries equal `to` once the droplet arrived.
struct Trajectory {
  std::uint32_t tag = 0;
  std::vector<Cell> positions;
  /// Steps actually spent moving or waiting before arrival.
  [[nodiscard]] unsigned arrivalStep() const;
  /// Electrodes actuated: cells entered after the start.
  [[nodiscard]] unsigned actuations() const;
};

/// Result of routing one phase.
struct PhaseResult {
  std::vector<Trajectory> trajectories;
  /// Steps until the last droplet arrived.
  unsigned makespan = 0;
  /// Total electrodes actuated across all trajectories.
  std::uint64_t totalActuations = 0;
};

/// Options for the timed router.
struct TimedRouterOptions {
  /// Hard limit on steps per phase (A* horizon). A phase that cannot finish
  /// within the horizon fails.
  unsigned horizon = 128;
  /// Number of priority rotations to try before giving up.
  unsigned retries = 8;
  /// Re-verify every routed phase with the O(n²·makespan) checkInterference
  /// sweep before returning it. The router's per-step occupancy index already
  /// enforces both fluidic constraints during the search, so the sweep is a
  /// belt-and-braces audit: leave it on in tests and debugging, switch it off
  /// on benchmark/throughput paths.
  bool verifyInterference = true;
  /// Dead (degraded) electrodes: cells no droplet may enter — the fault
  /// model's permanent electrode failures. Droplets route around them;
  /// a phase whose endpoint sits on a dead cell is unroutable. Out-of-array
  /// entries are ignored.
  std::vector<Cell> deadCells;
};

/// Routes sets of simultaneous droplet moves under fluidic constraints.
class TimedRouter {
 public:
  explicit TimedRouter(const Layout& layout, TimedRouterOptions options = {});

  /// Routes one phase. Module cells are obstacles except each droplet's own
  /// endpoint modules; dead cells (options.deadCells) are obstacles for
  /// everyone. Throws std::invalid_argument for out-of-array endpoints and
  /// chip::ChipError (a std::runtime_error carrying the failing step and
  /// droplet tag) when no interference-free routing is found within the
  /// options' horizon/retries.
  [[nodiscard]] PhaseResult routePhase(std::vector<PhaseMove> moves) const;

  /// Verifies that a set of trajectories obeys both fluidic constraints and
  /// stays on traversable cells; throws std::logic_error naming the first
  /// violation (used by tests and by routePhase in debug paths).
  void checkInterference(const std::vector<Trajectory>& trajectories) const;

 private:
  const Layout* layout_;
  TimedRouterOptions options_;
};

/// Renders a routed phase as ASCII frames (one grid per step, droplets shown
/// as letters) — handy for demos and debugging.
[[nodiscard]] std::string renderPhase(const Layout& layout,
                                      const PhaseResult& result);

}  // namespace dmf::chip
