// Reproduces Table 3: average percentage improvements over the synthetic
// target-ratio corpus (all integer partitions of L = 32 into 2..12 parts,
// the deterministic stand-in for the paper's 6058 ratios) at demand D = 32.
//
// Paper averages: Tc  MMS||R ~ 73.0/73.5/71.1 %, SRS||R ~ 72.0/72.1/69.8 %
//                 I   ~ 76.0/76.6/72.4 % (scheme-independent)
//                 q   SRS||MMS ~ 23.2/26.0/27.4 %
//                 Tc  SRS||MMS ~ -3.9/-5.5/-4.4 %
#include <iostream>

#include "engine/baseline.h"
#include "engine/mdst.h"
#include "report/table.h"
#include "workload/ratio_corpus.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("table3");
  using namespace dmf;
  using mixgraph::Algorithm;

  const auto& corpus = workload::evaluationCorpus();
  std::cout << "# Table 3 — average % improvements at D = 32 over "
            << corpus.size() << " target ratios (L = 32, 2 <= N <= 12)\n\n";

  report::Table table({"parameter", "relative schemes", "MM", "RMA", "MTCS",
                       "paper (MM/RMA/MTCS)"});

  struct Accumulator {
    double tcMmsOverRep = 0.0;
    double tcSrsOverRep = 0.0;
    double inputOverRep = 0.0;
    double qSrsOverMms = 0.0;
    double tcSrsOverMms = 0.0;
    std::size_t count = 0;
    std::size_t qCount = 0;  // instances where MMS actually stores droplets
  };

  std::vector<Accumulator> acc(3);
  const Algorithm algos[3] = {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS};

  for (const Ratio& ratio : corpus) {
    engine::MdstEngine engine(ratio);
    for (std::size_t a = 0; a < 3; ++a) {
      const engine::BaselineResult rep =
          engine::runRepeatedBaseline(engine, algos[a], 32);

      engine::MdstRequest request;
      request.algorithm = algos[a];
      request.demand = 32;
      request.scheme = engine::Scheme::kMMS;
      const engine::MdstResult mms = engine.run(request);
      request.scheme = engine::Scheme::kSRS;
      const engine::MdstResult srs = engine.run(request);

      Accumulator& acca = acc[a];
      acca.tcMmsOverRep += engine::percentImprovement(
          static_cast<double>(rep.completionTime),
          static_cast<double>(mms.completionTime));
      acca.tcSrsOverRep += engine::percentImprovement(
          static_cast<double>(rep.completionTime),
          static_cast<double>(srs.completionTime));
      acca.inputOverRep += engine::percentImprovement(
          static_cast<double>(rep.inputDroplets),
          static_cast<double>(mms.inputDroplets));
      acca.tcSrsOverMms += engine::percentImprovement(
          static_cast<double>(mms.completionTime),
          static_cast<double>(srs.completionTime));
      if (mms.storageUnits > 0) {
        acca.qSrsOverMms += engine::percentImprovement(
            static_cast<double>(mms.storageUnits),
            static_cast<double>(srs.storageUnits));
        ++acca.qCount;
      }
      ++acca.count;
    }
  }

  auto cells = [&](auto member, bool useQCount) {
    std::vector<std::string> out;
    for (std::size_t a = 0; a < 3; ++a) {
      const double n = static_cast<double>(useQCount ? acc[a].qCount
                                                     : acc[a].count);
      out.push_back(report::fixed(member(acc[a]) / n, 1) + "%");
    }
    return out;
  };

  auto addRow = [&](const std::string& parameter, const std::string& schemes,
                    std::vector<std::string> values,
                    const std::string& paper) {
    table.addRow({parameter, schemes, values[0], values[1], values[2],
                  paper});
  };

  addRow("Time of completion Tc", "MMS || Repeated",
         cells([](const Accumulator& a) { return a.tcMmsOverRep; }, false),
         "73.0 / 73.5 / 71.1");
  addRow("Time of completion Tc", "SRS || Repeated",
         cells([](const Accumulator& a) { return a.tcSrsOverRep; }, false),
         "72.0 / 72.1 / 69.8");
  addRow("Input droplets I", "forest || Repeated",
         cells([](const Accumulator& a) { return a.inputOverRep; }, false),
         "76.0 / 76.6 / 72.4");
  addRow("Storage units q", "SRS || MMS",
         cells([](const Accumulator& a) { return a.qSrsOverMms; }, true),
         "23.2 / 26.0 / 27.4");
  addRow("Time of completion Tc", "SRS || MMS",
         cells([](const Accumulator& a) { return a.tcSrsOverMms; }, false),
         "-3.9 / -5.5 / -4.4");

  std::cout << table.render();
  return 0;
}
