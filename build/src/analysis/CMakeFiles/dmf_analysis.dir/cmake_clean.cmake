file(REMOVE_RECURSE
  "CMakeFiles/dmf_analysis.dir/error_model.cpp.o"
  "CMakeFiles/dmf_analysis.dir/error_model.cpp.o.d"
  "libdmf_analysis.a"
  "libdmf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
