#include "engine/multi_target.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "engine/pass_pool.h"
#include "obs/scope.h"

namespace dmf::engine {

MultiTargetResult runMultiTarget(const std::vector<TargetDemand>& targets,
                                 Scheme scheme, unsigned mixers,
                                 unsigned jobs) {
  if (targets.empty()) {
    throw std::invalid_argument("runMultiTarget: no targets");
  }
  const obs::Span span("engine.multi_target");
  std::vector<Ratio> ratios;
  std::vector<std::uint64_t> demands;
  ratios.reserve(targets.size());
  demands.reserve(targets.size());
  for (const TargetDemand& t : targets) {
    ratios.push_back(t.ratio);
    demands.push_back(t.demand);
  }

  const auto sharedStart = std::chrono::steady_clock::now();
  const mixgraph::MixingGraph graph = mixgraph::buildMultiTarget(ratios);
  const forest::TaskForest forest(graph, demands);

  unsigned mc = mixers;
  if (mc == 0) {
    const forest::TaskForest basePass(
        graph, std::vector<std::uint64_t>(targets.size(), 2));
    mc = sched::minimumMixers(basePass);
  }
  const sched::Schedule s = schedule(forest, scheme, mc);
  const auto sharedEnd = std::chrono::steady_clock::now();

  MultiTargetResult result;
  result.completionTime = s.completionTime;
  result.storageUnits = sched::countStorage(forest, s);
  result.mixSplits = forest.stats().mixSplits;
  result.waste = forest.stats().waste;
  result.inputDroplets = forest.stats().inputTotal;
  result.mixers = mc;

  // Separate baseline: each target gets its own engine run on the same
  // mixer bank; runs execute back to back. The runs are independent, so
  // they fan out over the pool; each writes its own slot and the reduction
  // below walks the slots in target order (deterministic for any `jobs`).
  std::vector<MdstResult> perTarget(targets.size());
  PassPool pool(PassPool::resolveJobs(jobs));
  pool.forEach(targets.size(), [&](std::uint64_t i) {
    const TargetDemand& t = targets[i];
    const MdstEngine engine(t.ratio);
    MdstRequest request;
    request.algorithm = mixgraph::Algorithm::MTCS;  // same sharing per target
    request.scheme = scheme;
    request.mixers = mc;
    request.demand = t.demand;
    perTarget[i] = engine.run(request);
  });
  for (const MdstResult& r : perTarget) {
    result.separateCompletionTime += r.completionTime;
    result.separateStorageUnits =
        std::max(result.separateStorageUnits, r.storageUnits);
    result.separateInputDroplets += r.inputDroplets;
    result.separateWaste += r.waste;
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    const auto nanos = [](auto a, auto b) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
    };
    m->counter("engine.multi_target.runs").add(1);
    m->counter("engine.multi_target.targets").add(targets.size());
    m->counter("engine.multi_target.shared_nanos")
        .add(nanos(sharedStart, sharedEnd));
    m->counter("engine.multi_target.separate_nanos")
        .add(nanos(sharedEnd, std::chrono::steady_clock::now()));
  }
  return result;
}

}  // namespace dmf::engine
