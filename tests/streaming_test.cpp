// Property tests for the streaming engine: both planners, across caps,
// algorithms and demands.
#include "engine/streaming.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/mdst.h"
#include "protocols/protocols.h"

namespace dmf::engine {
namespace {

using mixgraph::Algorithm;

MdstEngine pcrEngine() { return MdstEngine(protocols::pcrMasterMixRatio()); }

StreamingRequest request(std::uint64_t demand, unsigned cap,
                         unsigned mixers = 3) {
  StreamingRequest r;
  r.demand = demand;
  r.storageCap = cap;
  r.mixers = mixers;
  return r;
}

TEST(StreamingOptimized, NeverSlowerThanMaxDemandRule) {
  MdstEngine engine = pcrEngine();
  for (unsigned cap : {3u, 5u, 7u, 12u}) {
    for (std::uint64_t demand : {16u, 20u, 32u, 50u}) {
      const StreamingPlan paper = planStreaming(engine, request(demand, cap));
      const StreamingPlan opt =
          planStreamingOptimized(engine, request(demand, cap));
      EXPECT_LE(opt.totalCycles, paper.totalCycles)
          << "cap=" << cap << " D=" << demand;
      EXPECT_LE(opt.storageUnits, cap);
    }
  }
}

TEST(StreamingOptimized, DeliversTheFullDemand) {
  MdstEngine engine = pcrEngine();
  const StreamingPlan plan =
      planStreamingOptimized(engine, request(37, 5));
  std::uint64_t produced = 0;
  for (const StreamingPass& pass : plan.passes) {
    produced += pass.demand;
    EXPECT_LE(pass.storageUnits, 5u);
  }
  EXPECT_EQ(produced, 37u);
}

TEST(StreamingOptimized, ThrowsWhenNothingFits) {
  MdstEngine engine = pcrEngine();
  // One mixer, zero storage: even a two-droplet pass parks droplets.
  EXPECT_THROW(planStreamingOptimized(engine, request(8, 0, 1)),
               std::runtime_error);
  EXPECT_THROW(planStreamingOptimized(engine, request(0, 5)),
               std::invalid_argument);
}

TEST(StreamingPlans, PassAccountingIsConsistent) {
  MdstEngine engine = pcrEngine();
  for (const StreamingPlan& plan :
       {planStreaming(engine, request(32, 5)),
        planStreamingOptimized(engine, request(32, 5))}) {
    std::uint64_t cycles = 0;
    std::uint64_t waste = 0;
    std::uint64_t input = 0;
    unsigned storage = 0;
    for (const StreamingPass& pass : plan.passes) {
      cycles += pass.cycles;
      waste += pass.waste;
      input += pass.inputDroplets;
      storage = std::max(storage, pass.storageUnits);
      // Conservation per pass: I = D + W.
      EXPECT_EQ(pass.inputDroplets, pass.demand + pass.waste);
    }
    EXPECT_EQ(plan.totalCycles, cycles);
    EXPECT_EQ(plan.totalWaste, waste);
    EXPECT_EQ(plan.totalInput, input);
    EXPECT_EQ(plan.storageUnits, storage);
  }
}

TEST(StreamingPlans, WorksWithEveryAlgorithm) {
  for (Algorithm algo : {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
    MdstEngine engine = pcrEngine();
    StreamingRequest r = request(24, 6);
    r.algorithm = algo;
    const StreamingPlan plan = planStreaming(engine, r);
    EXPECT_LE(plan.storageUnits, 6u) << mixgraph::algorithmName(algo);
    std::uint64_t produced = 0;
    for (const StreamingPass& pass : plan.passes) produced += pass.demand;
    EXPECT_EQ(produced, 24u) << mixgraph::algorithmName(algo);
  }
}

TEST(StreamingPlans, SinglePassWhenDemandIsTiny) {
  MdstEngine engine = pcrEngine();
  const StreamingPlan plan = planStreaming(engine, request(1, 10));
  ASSERT_EQ(plan.passes.size(), 1u);
  EXPECT_EQ(plan.passes[0].demand, 1u);
  // An odd single droplet still wastes the surplus target.
  EXPECT_GE(plan.totalWaste, 1u);
}

}  // namespace
}  // namespace dmf::engine
