// Physical model of a DMF biochip: a rectangular electrode array with placed
// resource modules (fluid reservoirs, mixers, storage cells, waste ports,
// the target-droplet output port).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dmf::chip {

/// A cell (electrode) position on the array.
struct Cell {
  int x = 0;
  int y = 0;
  friend bool operator==(const Cell&, const Cell&) = default;
};

/// Rectilinear distance (the minimum electrode count between two cells on an
/// unobstructed array).
[[nodiscard]] inline int manhattan(const Cell& a, const Cell& b) {
  return (a.x > b.x ? a.x - b.x : b.x - a.x) +
         (a.y > b.y ? a.y - b.y : b.y - a.y);
}

/// What a module does.
enum class ModuleKind : std::uint8_t {
  kReservoir,  ///< dispenses one input fluid
  kMixer,      ///< executes (1:1) mix-split operations
  kStorage,    ///< parks one droplet
  kWaste,      ///< absorbs waste droplets
  kOutput,     ///< emits target droplets off-chip
};

/// Short kind tag ("R", "M", "q", "W", "O").
[[nodiscard]] std::string_view moduleKindTag(ModuleKind kind);

/// Index of a module within a layout.
using ModuleId = std::uint32_t;

/// One placed resource module: an axis-aligned rectangle of electrodes.
struct Module {
  ModuleKind kind = ModuleKind::kMixer;
  /// Top-left cell.
  Cell origin;
  int width = 1;
  int height = 1;
  /// For reservoirs: the input fluid index it dispenses.
  std::size_t fluid = 0;
  /// Display label ("R3", "M1", "q2", ...).
  std::string label;

  /// The cell droplets enter/leave through (module centre).
  [[nodiscard]] Cell port() const {
    return Cell{origin.x + width / 2, origin.y + height / 2};
  }
  [[nodiscard]] bool contains(const Cell& c) const {
    return c.x >= origin.x && c.x < origin.x + width && c.y >= origin.y &&
           c.y < origin.y + height;
  }
};

/// A complete chip layout.
///
/// Invariants (validated): every module lies within the array, and modules do
/// not overlap (droplet segregation between modules is the router's job; the
/// standard one-cell module spacing is checked as a warning-level legality
/// query, not an invariant, since published layouts such as the paper's
/// Fig. 5 pack modules flush).
class Layout {
 public:
  /// An empty array of the given size. Throws std::invalid_argument unless
  /// both dimensions are at least 3.
  Layout(int width, int height);

  /// Places a module; returns its id. Throws std::invalid_argument when it
  /// leaves the array or overlaps an existing module.
  ModuleId add(Module module);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t moduleCount() const { return modules_.size(); }
  [[nodiscard]] const Module& module(ModuleId id) const;
  [[nodiscard]] const std::vector<Module>& modules() const { return modules_; }

  /// Module occupying a cell, if any.
  [[nodiscard]] std::optional<ModuleId> moduleAt(const Cell& c) const;

  /// All modules of one kind, in placement order.
  [[nodiscard]] std::vector<ModuleId> byKind(ModuleKind kind) const;

  /// The reservoir dispensing `fluid`. Throws std::invalid_argument if none.
  [[nodiscard]] ModuleId reservoirFor(std::size_t fluid) const;

  /// True when every pair of modules is separated by at least one free cell
  /// (the droplet-segregation guideline).
  [[nodiscard]] bool hasSegregationSpacing() const;

  /// ASCII rendering of the array (module tags, '.' for free cells).
  [[nodiscard]] std::string render() const;

 private:
  int width_;
  int height_;
  std::vector<Module> modules_;
};

}  // namespace dmf::chip
