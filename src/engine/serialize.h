// JSON serialization of engine artifacts, for downstream tooling (lab
// controllers, visualizers, notebooks).
#pragma once

#include "engine/mdst.h"
#include "engine/streaming.h"
#include "report/json.h"
#include "sched/schedule.h"

namespace dmf::engine {

/// Metrics of one MDST run.
[[nodiscard]] report::Json toJson(const MdstResult& result);

/// A full schedule: per-task cycle/mixer placement plus droplet routing
/// facts (operands, fates), enough to drive an external chip controller.
[[nodiscard]] report::Json toJson(const forest::TaskForest& forest,
                                  const sched::Schedule& schedule);

/// A streaming plan (pass list and totals).
[[nodiscard]] report::Json toJson(const StreamingPlan& plan);

}  // namespace dmf::engine
