// Target mixture ratios a1 : a2 : ... : aN with ratio-sum L = 2^d.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dmf {

/// A validated target mixture ratio for N fluids.
///
/// Invariants (checked at construction):
///  - N >= 2 fluids,
///  - every part a_i >= 1 (each fluid genuinely participates),
///  - the ratio-sum L = sum a_i is a power of two, L = 2^d with d >= 1.
///
/// `d` is the paper's *accuracy level*: any mixing tree realizing the ratio
/// with (1:1) mix-splits has depth d and each concentration factor is a
/// multiple of 1/2^d.
class Ratio {
 public:
  /// Constructs a validated ratio. Throws std::invalid_argument when the
  /// invariants above are violated (message says which one).
  explicit Ratio(std::vector<std::uint64_t> parts);

  /// Convenience: Ratio({a1, a2, ...}).
  Ratio(std::initializer_list<std::uint64_t> parts);

  /// Number of constituent fluids, N.
  [[nodiscard]] std::size_t fluidCount() const { return parts_.size(); }
  /// The ratio parts a_1..a_N.
  [[nodiscard]] const std::vector<std::uint64_t>& parts() const {
    return parts_;
  }
  /// Part for fluid `i` (0-based). Precondition: i < fluidCount().
  [[nodiscard]] std::uint64_t part(std::size_t i) const { return parts_[i]; }
  /// Ratio-sum L = 2^d.
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  /// Accuracy level d = log2(L) — the depth of any realizing mixing tree.
  [[nodiscard]] unsigned accuracy() const { return accuracy_; }

  /// Total number of set bits over all parts — the leaf count of the MM tree
  /// (the minimum number of input droplets per two-target pass).
  [[nodiscard]] std::size_t popcountSum() const;

  /// The concentration factor of fluid i, a_i / 2^d, as a double (for
  /// reporting only; the library's mix model is exact).
  [[nodiscard]] double concentration(std::size_t i) const;

  /// The ratio in normal form: every part divided by the overall gcd, so
  /// e.g. 2:4:2 reduces to 1:2:1. Computed through the per-fluid
  /// concentrations a_i / 2^d as canonical DyadicFractions — two ratios
  /// describe the same mixture iff their reduced forms are equal, which is
  /// what cache keys over requests must compare. The gcd of parts summing
  /// to 2^d is itself a power of two, so the reduced sum stays a power of
  /// two and the result is always a valid Ratio.
  [[nodiscard]] Ratio reduced() const;

  /// True when no smaller equivalent ratio exists (reduced() == *this).
  [[nodiscard]] bool isReduced() const;

  /// "a1:a2:...:aN".
  [[nodiscard]] std::string toString() const;

  /// Parses "a1:a2:...:aN". Returns std::nullopt on malformed text; throws
  /// std::invalid_argument if the text parses but violates ratio invariants.
  static std::optional<Ratio> parse(const std::string& text);

  friend bool operator==(const Ratio&, const Ratio&) = default;

 private:
  std::vector<std::uint64_t> parts_;
  std::uint64_t sum_ = 0;
  unsigned accuracy_ = 0;
};

}  // namespace dmf
