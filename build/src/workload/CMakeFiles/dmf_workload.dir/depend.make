# Empty dependencies file for dmf_workload.
# This may be replaced when dependencies are built.
