#include "server/socket_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/log.h"
#include "obs/scope.h"
#include "server/service.h"

namespace dmf::server {

namespace {

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Writes the whole buffer, riding out EINTR and partial writes.
bool writeAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(PlanService& service,
                           const SocketServerOptions& options)
    : service_(service) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    throw std::runtime_error("SocketServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    closeFd(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("SocketServer: cannot bind 127.0.0.1:" +
                             std::to_string(options.port) + ": " + reason);
  }
  if (::listen(listenFd_, SOMAXCONN) != 0) {
    const std::string reason = std::strerror(errno);
    closeFd(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("SocketServer: listen() failed: " + reason);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
}

SocketServer::~SocketServer() {
  stop();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  closeFd(listenFd_);
  listenFd_ = -1;
}

void SocketServer::run() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // stop() shut the listen socket down (or it broke) — drain
    }
    if (stopping_.load(std::memory_order_acquire)) {
      closeFd(fd);
      break;
    }
    obs::count("server.connections");
    obs::LogLine(obs::LogLevel::kDebug, "server.connection.accept")
        .num("fd", static_cast<std::uint64_t>(fd));
    std::lock_guard<std::mutex> lock(threadsMutex_);
    const unsigned user = nextUser_.fetch_add(1, std::memory_order_relaxed);
    threads_.emplace_back([this, fd, user] { serveConnection(fd, user); });
  }
  // Join what is there; late connection threads are joined by ~SocketServer.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Shutting down the listening socket pops accept() out with an error,
  // which is the loop's exit signal.
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
}

void SocketServer::serveConnection(int fd, unsigned user) {
  std::string pending;
  char buffer[4096];
  bool shutdownRequested = false;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed (or error): connection is done
    pending.append(buffer, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // blank lines are keepalive noise
      const std::string response =
          service_.handle(line, &shutdownRequested, user);
      if (!writeAll(fd, response.data(), response.size()) ||
          !writeAll(fd, "\n", 1)) {
        closeFd(fd);
        return;
      }
      if (shutdownRequested) {
        closeFd(fd);
        stop();
        return;
      }
    }
  }
  closeFd(fd);
}

bool driveLines(unsigned short port, std::istream& in, std::ostream& out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    closeFd(fd);
    return false;
  }
  std::string line;
  bool ok = true;
  while (ok && std::getline(in, line)) {
    if (line.empty()) continue;
    if (!writeAll(fd, line.data(), line.size()) || !writeAll(fd, "\n", 1)) {
      ok = false;
      break;
    }
    // Read exactly one response line per request.
    std::string response;
    char ch;
    for (;;) {
      const ssize_t n = ::recv(fd, &ch, 1, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ok = false;
        break;
      }
      if (ch == '\n') break;
      response.push_back(ch);
    }
    if (!ok) break;
    out << response << '\n';
    // After a shutdown acknowledgement the server hangs up; remaining
    // driver lines (there should be none) would only see a dead socket.
    if (response.find("\"op\":\"shutdown\"") != std::string::npos) break;
  }
  closeFd(fd);
  return ok;
}

}  // namespace dmf::server
