file(REMOVE_RECURSE
  "libdmf_engine.a"
)
