// The shared runtime thread pool (promoted from engine::PassPool in PR 3).
// The basic forEach contract (index coverage, reuse across batches,
// lowest-index exception, serial inline path) is also exercised under the
// PassPool alias in streaming_plan_test.cpp; this suite pins the library's
// own guarantees: worker ids, nested-use rejection, and jobs resolution.
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace dmf::runtime {
namespace {

TEST(ThreadPool, WorkerIdsStayInRange) {
  ThreadPool pool(4);
  std::vector<unsigned> worker(5000, 99);
  pool.forEachWorker(worker.size(), [&](std::uint64_t i, unsigned w) {
    worker[i] = w;
  });
  for (std::size_t i = 0; i < worker.size(); ++i) {
    ASSERT_LT(worker[i], 4u) << "index " << i;
  }
}

TEST(ThreadPool, SerialPoolRunsEverythingOnParticipantZero) {
  ThreadPool pool(1);
  std::set<unsigned> seen;
  pool.forEachWorker(64, [&](std::uint64_t, unsigned w) { seen.insert(w); });
  EXPECT_EQ(seen, std::set<unsigned>{0u});
}

TEST(ThreadPool, NestedForEachOnSamePoolThrows) {
  // A nested batch on the same pool would deadlock (the draining
  // participant would wait for a batch nobody else can finish), so it is
  // rejected — on the serial inline path too, keeping behaviour identical
  // for every job count.
  for (const unsigned jobs : {1u, 3u}) {
    ThreadPool pool(jobs);
    EXPECT_THROW(
        pool.forEach(1,
                     [&](std::uint64_t) {
                       pool.forEach(1, [](std::uint64_t) {});
                     }),
        std::logic_error)
        << "jobs=" << jobs;
  }
}

TEST(ThreadPool, NestedForEachOnDifferentPoolsIsAllowed) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.forEach(8, [&](std::uint64_t) {
    inner.forEach(8, [&](std::uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, PoolIsReusableAfterNestedRejection) {
  ThreadPool pool(2);
  try {
    pool.forEach(4, [&](std::uint64_t) {
      pool.forEach(1, [](std::uint64_t) {});
    });
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error&) {
  }
  std::atomic<int> total{0};
  pool.forEach(100, [&](std::uint64_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, LowestIndexExceptionWinsOnBatchPath) {
  ThreadPool pool(4);
  try {
    pool.forEach(2000, [](std::uint64_t i) {
      if (i >= 700) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected the batch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "700");
  }
}

TEST(ThreadPool, InlinePathPropagatesExceptions) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.forEach(10,
                   [](std::uint64_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
  EXPECT_EQ(ThreadPool::resolveJobs(5), 5u);
  ThreadPool pool(0);
  EXPECT_GE(pool.jobs(), 1u);
}

}  // namespace
}  // namespace dmf::runtime
