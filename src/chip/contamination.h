// Cross-contamination analysis (after Zhao & Chakrabarty's wash-droplet
// work): every droplet leaves residue on the electrodes it crosses, and a
// later droplet of a different composition picks it up unless the cell is
// washed first. This module counts contaminated cell reuses in a simulated
// run and estimates the wash-droplet budget needed to separate them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/simulation.h"

namespace dmf::chip {

/// Contamination summary of one simulated run.
struct ContaminationReport {
  /// Free cells crossed by at least one droplet.
  std::size_t visitedCells = 0;
  /// Cells crossed by two or more distinct droplets (residue hand-over
  /// sites).
  std::size_t sharedCells = 0;
  /// Total contaminated reuses: for each cell, every visitor after the
  /// first. Each reuse needs one wash pass over that cell.
  std::uint64_t contaminatedReuses = 0;
  /// Wash droplets needed under the naive one-wash-per-reuse policy, with
  /// one wash droplet able to clean a contiguous route of cells between two
  /// phases (estimated as one wash per phase that reuses any dirty cell).
  std::uint64_t washDroplets = 0;
};

/// Analyzes a simulation. Cells inside modules are excluded (modules are
/// dedicated to one mixture at a time and washed as part of their
/// operation). Module-port hand-offs therefore do not count.
[[nodiscard]] ContaminationReport analyzeContamination(
    const Layout& layout, const SimulationResult& simulation);

/// ASCII map of contamination: '.' untouched, 'o' visited once, digits =
/// number of distinct droplets that crossed the cell (capped at 9).
[[nodiscard]] std::string renderContamination(
    const Layout& layout, const SimulationResult& simulation);

}  // namespace dmf::chip
