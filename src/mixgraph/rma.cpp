// RMA builder (reconstruction): recursive balanced partition of the amount
// multiset. See DESIGN.md section 3 for the substitution rationale.
#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mixgraph/builders.h"

namespace dmf::mixgraph {

namespace {

// One fluid's share inside a sub-mixture under construction.
struct Share {
  std::size_t fluid;
  std::uint64_t amount;
};

// Builds the subtree for `shares` whose amounts sum to 2^k; returns its node.
NodeId buildPartition(MixingGraph& graph, std::vector<Share> shares,
                      unsigned k) {
  if (shares.empty()) {
    throw std::logic_error("buildRMA: empty partition");
  }
  if (shares.size() == 1) {
    // A single fluid at any scale is one pure droplet straight from the
    // reservoir, regardless of level.
    return graph.addLeaf(shares.front().fluid);
  }
  if (k == 0) {
    throw std::logic_error("buildRMA: multiple fluids at unit scale");
  }

  // First-fit decreasing into two halves of capacity 2^(k-1) each; a share
  // that straddles the boundary is fragmented across both halves (the extra
  // leaves this creates are RMA's higher per-pass waste).
  std::stable_sort(shares.begin(), shares.end(),
                   [](const Share& a, const Share& b) {
                     return a.amount > b.amount;
                   });
  const std::uint64_t capacity = std::uint64_t{1} << (k - 1);
  std::vector<Share> low, high;
  std::uint64_t lowRoom = capacity;
  for (const Share& s : shares) {
    std::uint64_t toLow = std::min(s.amount, lowRoom);
    if (toLow > 0) {
      low.push_back({s.fluid, toLow});
      lowRoom -= toLow;
    }
    if (toLow < s.amount) {
      high.push_back({s.fluid, s.amount - toLow});
    }
  }
  const NodeId left = buildPartition(graph, std::move(low), k - 1);
  const NodeId right = buildPartition(graph, std::move(high), k - 1);
  return graph.addMix(left, right);
}

}  // namespace

MixingGraph buildRMA(const Ratio& ratio) {
  MixingGraph graph(ratio);
  std::vector<Share> shares;
  shares.reserve(ratio.fluidCount());
  for (std::size_t fluid = 0; fluid < ratio.fluidCount(); ++fluid) {
    shares.push_back({fluid, ratio.part(fluid)});
  }
  const NodeId root =
      buildPartition(graph, std::move(shares), ratio.accuracy());
  graph.finalize(root);
  return graph;
}

}  // namespace dmf::mixgraph
