#include "chip/layout.h"

#include <stdexcept>

namespace dmf::chip {

std::string_view moduleKindTag(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kReservoir:
      return "R";
    case ModuleKind::kMixer:
      return "M";
    case ModuleKind::kStorage:
      return "q";
    case ModuleKind::kWaste:
      return "W";
    case ModuleKind::kOutput:
      return "O";
  }
  throw std::invalid_argument("moduleKindTag: unknown kind");
}

Layout::Layout(int width, int height) : width_(width), height_(height) {
  if (width < 3 || height < 3) {
    throw std::invalid_argument("Layout: array must be at least 3x3");
  }
}

ModuleId Layout::add(Module module) {
  if (module.width < 1 || module.height < 1) {
    throw std::invalid_argument("Layout: module must span at least one cell");
  }
  if (module.origin.x < 0 || module.origin.y < 0 ||
      module.origin.x + module.width > width_ ||
      module.origin.y + module.height > height_) {
    throw std::invalid_argument("Layout: module '" + module.label +
                                "' leaves the array");
  }
  for (const Module& other : modules_) {
    const bool apartX = module.origin.x + module.width <= other.origin.x ||
                        other.origin.x + other.width <= module.origin.x;
    const bool apartY = module.origin.y + module.height <= other.origin.y ||
                        other.origin.y + other.height <= module.origin.y;
    if (!apartX && !apartY) {
      throw std::invalid_argument("Layout: module '" + module.label +
                                  "' overlaps '" + other.label + "'");
    }
  }
  modules_.push_back(std::move(module));
  return static_cast<ModuleId>(modules_.size() - 1);
}

const Module& Layout::module(ModuleId id) const {
  if (id >= modules_.size()) {
    throw std::invalid_argument("Layout: bad module id");
  }
  return modules_[id];
}

std::optional<ModuleId> Layout::moduleAt(const Cell& c) const {
  for (ModuleId id = 0; id < modules_.size(); ++id) {
    if (modules_[id].contains(c)) return id;
  }
  return std::nullopt;
}

std::vector<ModuleId> Layout::byKind(ModuleKind kind) const {
  std::vector<ModuleId> out;
  for (ModuleId id = 0; id < modules_.size(); ++id) {
    if (modules_[id].kind == kind) out.push_back(id);
  }
  return out;
}

ModuleId Layout::reservoirFor(std::size_t fluid) const {
  for (ModuleId id = 0; id < modules_.size(); ++id) {
    if (modules_[id].kind == ModuleKind::kReservoir &&
        modules_[id].fluid == fluid) {
      return id;
    }
  }
  throw std::invalid_argument("Layout: no reservoir for fluid x" +
                              std::to_string(fluid + 1));
}

bool Layout::hasSegregationSpacing() const {
  for (std::size_t a = 0; a < modules_.size(); ++a) {
    for (std::size_t b = a + 1; b < modules_.size(); ++b) {
      const Module& m = modules_[a];
      const Module& o = modules_[b];
      const bool apartX = m.origin.x + m.width < o.origin.x ||
                          o.origin.x + o.width < m.origin.x;
      const bool apartY = m.origin.y + m.height < o.origin.y ||
                          o.origin.y + o.height < m.origin.y;
      if (!apartX && !apartY) return false;
    }
  }
  return true;
}

std::string Layout::render() const {
  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_),
                                            '.'));
  for (const Module& m : modules_) {
    const char tag = moduleKindTag(m.kind)[0];
    for (int y = m.origin.y; y < m.origin.y + m.height; ++y) {
      for (int x = m.origin.x; x < m.origin.x + m.width; ++x) {
        grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = tag;
      }
    }
  }
  std::string out;
  for (const std::string& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace dmf::chip
