
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chip/contamination.cpp" "src/chip/CMakeFiles/dmf_chip.dir/contamination.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/contamination.cpp.o.d"
  "/root/repo/src/chip/executor.cpp" "src/chip/CMakeFiles/dmf_chip.dir/executor.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/executor.cpp.o.d"
  "/root/repo/src/chip/layout.cpp" "src/chip/CMakeFiles/dmf_chip.dir/layout.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/layout.cpp.o.d"
  "/root/repo/src/chip/pcr_layout.cpp" "src/chip/CMakeFiles/dmf_chip.dir/pcr_layout.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/pcr_layout.cpp.o.d"
  "/root/repo/src/chip/pin_mapper.cpp" "src/chip/CMakeFiles/dmf_chip.dir/pin_mapper.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/pin_mapper.cpp.o.d"
  "/root/repo/src/chip/placer.cpp" "src/chip/CMakeFiles/dmf_chip.dir/placer.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/placer.cpp.o.d"
  "/root/repo/src/chip/reliability.cpp" "src/chip/CMakeFiles/dmf_chip.dir/reliability.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/reliability.cpp.o.d"
  "/root/repo/src/chip/router.cpp" "src/chip/CMakeFiles/dmf_chip.dir/router.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/router.cpp.o.d"
  "/root/repo/src/chip/simulation.cpp" "src/chip/CMakeFiles/dmf_chip.dir/simulation.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/simulation.cpp.o.d"
  "/root/repo/src/chip/timed_router.cpp" "src/chip/CMakeFiles/dmf_chip.dir/timed_router.cpp.o" "gcc" "src/chip/CMakeFiles/dmf_chip.dir/timed_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/dmf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/dmf_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/mixgraph/CMakeFiles/dmf_mixgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/dmf/CMakeFiles/dmf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
