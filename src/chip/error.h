// Typed chip-execution errors.
//
// The executor, timed router and simulator used to throw bare
// std::runtime_error with a prose message; the recovery layer (and any
// human reading a log) needs to know *where* in the pipeline execution
// failed — which phase, at which time step, and which droplet was involved.
// ChipError carries that context while still deriving from
// std::runtime_error, so every existing catch site keeps working.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dmf::chip {

/// A chip-execution failure with structured context.
class ChipError : public std::runtime_error {
 public:
  /// Sentinel for "no specific droplet involved".
  static constexpr std::uint32_t kNoDroplet = 0xFFFFFFFFu;
  /// Sentinel for "no specific time step".
  static constexpr unsigned kNoStep = 0xFFFFFFFFu;

  /// `phase` names the pipeline stage ("park", "route", "simulate", ...);
  /// `step` is the mix cycle or routing step the failure occurred at;
  /// `droplet` is the trace/tag id of the droplet involved, when one is.
  ChipError(std::string phase, unsigned step, const std::string& what,
            std::uint32_t droplet = kNoDroplet)
      : std::runtime_error(compose(phase, step, what, droplet)),
        phase_(std::move(phase)),
        step_(step),
        droplet_(droplet) {}

  /// Pipeline stage that failed.
  [[nodiscard]] const std::string& phase() const noexcept { return phase_; }
  /// Mix cycle / routing step of the failure; kNoStep when not applicable.
  [[nodiscard]] unsigned step() const noexcept { return step_; }
  /// Droplet tag involved; kNoDroplet when not applicable.
  [[nodiscard]] std::uint32_t droplet() const noexcept { return droplet_; }

 private:
  static std::string compose(const std::string& phase, unsigned step,
                             const std::string& what, std::uint32_t droplet) {
    std::string out = "chip[" + phase;
    if (step != kNoStep) out += " @" + std::to_string(step);
    if (droplet != kNoDroplet) out += ", droplet " + std::to_string(droplet);
    out += "]: " + what;
    return out;
  }

  std::string phase_;
  unsigned step_;
  std::uint32_t droplet_;
};

}  // namespace dmf::chip
