#include "chip/reliability.h"

#include <algorithm>
#include <stdexcept>

namespace dmf::chip {

WearReport analyzeWear(const ExecutionTrace& trace,
                       std::uint64_t actuationBudget) {
  if (trace.actuations.empty()) {
    throw std::invalid_argument("analyzeWear: trace has no heat-map");
  }
  if (actuationBudget == 0) {
    throw std::invalid_argument("analyzeWear: zero actuation budget");
  }
  WearReport report;
  std::vector<unsigned> active;
  for (const auto& row : trace.actuations) {
    for (unsigned count : row) {
      if (count == 0) continue;
      active.push_back(count);
      report.total += count;
      report.peak = std::max(report.peak, count);
    }
  }
  report.activeElectrodes = active.size();
  if (active.empty()) {
    report.workloadsToBudget = actuationBudget;  // nothing wears out
    return report;
  }
  report.meanActive =
      static_cast<double>(report.total) / static_cast<double>(active.size());

  // Gini coefficient over active electrodes.
  std::sort(active.begin(), active.end());
  double weighted = 0.0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    weighted += static_cast<double>(i + 1) * active[i];
  }
  const auto n = static_cast<double>(active.size());
  report.imbalance =
      (2.0 * weighted) / (n * static_cast<double>(report.total)) -
      (n + 1.0) / n;

  report.workloadsToBudget = actuationBudget / report.peak;
  return report;
}

std::string renderHeatMap(const ExecutionTrace& trace) {
  if (trace.actuations.empty()) return {};
  unsigned peak = 0;
  for (const auto& row : trace.actuations) {
    for (unsigned count : row) peak = std::max(peak, count);
  }
  std::string out;
  for (const auto& row : trace.actuations) {
    for (unsigned count : row) {
      if (count == 0) {
        out += '.';
      } else if (peak <= 9) {
        out += static_cast<char>('0' + count);
      } else {
        const unsigned decile = count * 9 / peak;
        out += static_cast<char>('0' + decile);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace dmf::chip
