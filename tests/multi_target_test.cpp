#include "mixgraph/builders.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/multi_target.h"
#include "forest/task_forest.h"
#include "sched/schedulers.h"

namespace dmf {
namespace {

using engine::runMultiTarget;
using engine::TargetDemand;
using forest::TaskForest;
using mixgraph::buildMTCS;
using mixgraph::buildMultiTarget;
using mixgraph::MixingGraph;

TEST(MultiTargetGraph, BuildsOneRootPerTarget) {
  const std::vector<Ratio> targets = {Ratio({2, 1, 1, 1, 1, 1, 9}),
                                      Ratio({4, 4, 2, 2, 1, 1, 2})};
  const MixingGraph g = buildMultiTarget(targets);
  ASSERT_EQ(g.roots().size(), 2u);
  EXPECT_EQ(g.node(g.roots()[0]).value, MixtureValue::target(targets[0]));
  EXPECT_EQ(g.node(g.roots()[1]).value, MixtureValue::target(targets[1]));
  EXPECT_EQ(g.targets().size(), 2u);
}

TEST(MultiTargetGraph, SharesNodesAcrossTargets) {
  // Two ratios with a large common sub-structure: the shared graph must be
  // smaller than two independent MTCS graphs.
  const Ratio a({2, 1, 1, 1, 1, 1, 9});
  const Ratio b({2, 1, 1, 1, 1, 9, 1});  // same parts, two fluids swapped
  const MixingGraph shared = buildMultiTarget({a, b});
  const std::size_t separate =
      buildMTCS(a).nodeCount() + buildMTCS(b).nodeCount();
  EXPECT_LT(shared.nodeCount(), separate);
}

TEST(MultiTargetGraph, TargetCanBeAnotherTargetsIntermediate) {
  // {2:2} is the 1:1 blend that the {3:1} chain prepares on the way up.
  const MixingGraph g = buildMultiTarget({Ratio({3, 1}), Ratio({2, 2})});
  ASSERT_EQ(g.roots().size(), 2u);
  // The {2:2} root sits below accuracy level (it is an intermediate).
  EXPECT_LT(g.node(g.roots()[1]).level, g.depth());
  // And it feeds the {3:1} root.
  bool feeds = false;
  for (mixgraph::NodeId c : g.consumers()[g.roots()[1]]) {
    feeds = feeds || c == g.roots()[0];
  }
  EXPECT_TRUE(feeds);
}

TEST(MultiTargetGraph, RejectsMixedSpacesAndDuplicates) {
  EXPECT_THROW(buildMultiTarget({Ratio({1, 1}), Ratio({1, 1, 2})}),
               std::invalid_argument);
  EXPECT_THROW(buildMultiTarget({Ratio({1, 1}), Ratio({1, 3})}),
               std::invalid_argument);  // different accuracy
  EXPECT_THROW(buildMultiTarget({Ratio({1, 3}), Ratio({2, 6})}),
               std::invalid_argument);  // same composition twice
  EXPECT_THROW(buildMultiTarget({}), std::invalid_argument);
}

TEST(MultiTargetForest, DemandsPerRootAreHonoured) {
  const MixingGraph g =
      buildMultiTarget({Ratio({2, 1, 1, 1, 1, 1, 9}),
                        Ratio({4, 4, 2, 2, 1, 1, 2})});
  const TaskForest f(g, {6, 10});
  EXPECT_EQ(f.stats().targets, 16u);
  EXPECT_EQ(f.demand(), 16u);
  EXPECT_EQ(f.demands(), (std::vector<std::uint64_t>{6, 10}));
  // Conservation still holds.
  EXPECT_EQ(f.stats().inputTotal, f.stats().targets + f.stats().waste);
  // Per-root target counts match the demands.
  std::vector<std::uint64_t> counted(2, 0);
  for (forest::TaskId id = 0; id < f.taskCount(); ++id) {
    for (const auto& drop : f.task(id).out) {
      if (drop.fate != forest::DropletFate::kTarget) continue;
      const auto node = f.task(id).node;
      counted[node == g.roots()[0] ? 0 : 1] += 1;
      EXPECT_TRUE(node == g.roots()[0] || node == g.roots()[1]);
    }
  }
  EXPECT_EQ(counted[0], 6u);
  EXPECT_EQ(counted[1], 10u);
}

TEST(MultiTargetForest, MismatchedDemandVectorThrows) {
  const MixingGraph g =
      buildMultiTarget({Ratio({3, 1}), Ratio({2, 2})});
  EXPECT_THROW(TaskForest(g, {4}), std::invalid_argument);
  EXPECT_THROW(TaskForest(g, {4, 0}), std::invalid_argument);
  // The single-demand convenience constructor refuses multi-root graphs.
  EXPECT_THROW(TaskForest(g, 4), std::invalid_argument);
}

TEST(MultiTargetForest, SchedulersHandleMultiRootForests) {
  const MixingGraph g =
      buildMultiTarget({Ratio({2, 1, 1, 1, 1, 1, 9}),
                        Ratio({4, 4, 2, 2, 1, 1, 2})});
  const TaskForest f(g, {8, 8});
  for (const sched::Schedule& s :
       {sched::scheduleMMS(f, 3), sched::scheduleSRS(f, 3),
        sched::scheduleOMS(f, 3)}) {
    sched::validateOrThrow(f, s);
    EXPECT_EQ(sched::emissionCycles(f, s).size(), 16u);
  }
}

TEST(MultiTargetEngine, SharingBeatsSeparatePreparation) {
  const engine::MultiTargetResult r = runMultiTarget(
      {TargetDemand{Ratio({2, 1, 1, 1, 1, 1, 9}), 8},
       TargetDemand{Ratio({2, 1, 1, 1, 1, 9, 1}), 8}});
  EXPECT_LT(r.completionTime, r.separateCompletionTime);
  EXPECT_LE(r.inputDroplets, r.separateInputDroplets);
  EXPECT_GT(r.mixers, 0u);
}

TEST(MultiTargetEngine, IntermediateTargetIsAlmostFree) {
  // Asking for the {2:2} blend alongside {3:1} reuses the chain's own
  // intermediate. With odd per-target demands the separate runs each waste
  // a droplet, while the shared forest folds the surplus into the other
  // target's supply.
  const engine::MultiTargetResult both = runMultiTarget(
      {TargetDemand{Ratio({3, 1}), 6}, TargetDemand{Ratio({2, 2}), 7}});
  EXPECT_LT(both.inputDroplets, both.separateInputDroplets);
  EXPECT_LT(both.waste, both.separateWaste);
}

TEST(MultiTargetEngine, RejectsBadRequests) {
  EXPECT_THROW((void)runMultiTarget({}), std::invalid_argument);
  EXPECT_THROW(
      (void)runMultiTarget({TargetDemand{Ratio({3, 1}), 0}}),
      std::invalid_argument);
}

TEST(MultiTargetEngine, SingleTargetDegeneratesToMdst) {
  const engine::MultiTargetResult multi =
      runMultiTarget({TargetDemand{Ratio({2, 1, 1, 1, 1, 1, 9}), 16}},
                     engine::Scheme::kMMS);
  engine::MdstEngine single(Ratio({2, 1, 1, 1, 1, 1, 9}));
  engine::MdstRequest request;
  request.algorithm = mixgraph::Algorithm::MTCS;
  request.scheme = engine::Scheme::kMMS;
  request.mixers = multi.mixers;
  request.demand = 16;
  const engine::MdstResult mdst = single.run(request);
  EXPECT_EQ(multi.inputDroplets, mdst.inputDroplets);
  EXPECT_EQ(multi.completionTime, mdst.completionTime);
}

}  // namespace
}  // namespace dmf
