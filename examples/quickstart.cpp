// Quickstart: prepare a stream of PCR master-mix droplets on a DMF biochip.
//
// The pipeline is: target ratio -> base mixing graph -> demand-driven mixing
// forest -> mixer schedule -> metrics.
#include <cstdint>
#include <iostream>

#include "engine/baseline.h"
#include "engine/mdst.h"
#include "protocols/protocols.h"

int main() {
  using namespace dmf;

  // The PCR master-mix at accuracy d=4: {2:1:1:1:1:1:9} over 16.
  const Ratio ratio = protocols::pcrMasterMixRatio();
  std::cout << "Target ratio : " << ratio.toString() << " (d = "
            << ratio.accuracy() << ")\n";

  engine::MdstEngine engine(ratio);
  std::cout << "Mixers (Mlb) : " << engine.defaultMixers() << "\n\n";

  // Ask the engine for 20 droplets of the mixture, storage-friendly schedule.
  engine::MdstRequest request;
  request.algorithm = mixgraph::Algorithm::MM;
  request.scheme = engine::Scheme::kSRS;
  request.demand = 20;
  const engine::MdstResult result = engine.run(request);

  std::cout << "Demand D = " << request.demand << " target droplets\n"
            << "  completion time Tc : " << result.completionTime
            << " cycles\n"
            << "  storage units q    : " << result.storageUnits << "\n"
            << "  mix-splits Tms     : " << result.mixSplits << "\n"
            << "  waste droplets W   : " << result.waste << "\n"
            << "  input droplets I   : " << result.inputDroplets << "\n";

  // Compare with the classic approach: rerun the mixing tree 10 times.
  const engine::BaselineResult baseline = engine::runRepeatedBaseline(
      engine, mixgraph::Algorithm::MM, request.demand);
  std::cout << "\nRepeated-MM baseline would need " << baseline.completionTime
            << " cycles and " << baseline.inputDroplets
            << " input droplets -- the streaming engine saves "
            << baseline.completionTime - result.completionTime
            << " cycles and "
            << baseline.inputDroplets - result.inputDroplets
            << " droplets of reactant.\n";
  return 0;
}
