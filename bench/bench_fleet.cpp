// Fleet dispatcher latency and fairness (DESIGN.md §17).
//
// One WFQ scenario: a weight-8 PCR power user against eight weight-1 light
// users on a 4-chip heterogeneous fleet. The heavy user's demand is 8x a
// light user's, so with weight-proportional service every x_u =
// serviceCycles_u / weight_u lands near the same value and the whole-run
// Jain index should sit near 1000 permille — a fairness regression (policy
// bug, placement skew) drags it down and trips the perf gate.
//
// Reported through BENCH_bench_fleet.json (bench_obs.h):
//   bench.fleet.dispatch_nanos    — best-of-N wall time of dispatchFleet()
//                                   (planning fan-out + serial dispatch)
//   bench.fleet.jain_permille     — whole-run weight-normalized Jain index
// plus the dispatcher's own instruments (fleet.dispatch_nanos histogram,
// fleet.makespan_cycles, per-chip busy gauges).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_obs.h"
#include "fleet/dispatcher.h"
#include "obs/scope.h"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t nanosSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  dmf::bench::BenchSession bench("bench_fleet", argc, argv);

  std::vector<dmf::fleet::UserStream> users;
  dmf::fleet::UserStream heavy;
  heavy.ratio = dmf::Ratio{std::vector<std::uint64_t>{2, 1, 1, 1, 1, 1, 9}};
  heavy.request.demand = 256;
  heavy.request.storageCap = 3;
  heavy.weight = 8.0;
  users.push_back(heavy);
  for (unsigned u = 0; u < 8; ++u) {
    dmf::fleet::UserStream light;
    light.ratio = dmf::Ratio{std::vector<std::uint64_t>{1, 7}};
    light.request.demand = 32;
    light.request.storageCap = 2;
    light.weight = 1.0;
    users.push_back(light);
  }

  dmf::fleet::DispatcherOptions options;
  options.chips = dmf::fleet::defaultFleet(4);
  options.policy = "wfq";
  options.jobs = 4;

  constexpr unsigned kReps = 5;
  std::uint64_t bestNanos = ~std::uint64_t{0};
  dmf::fleet::FleetResult result;
  for (unsigned rep = 0; rep < kReps; ++rep) {
    const auto start = Clock::now();
    result = dmf::fleet::dispatchFleet(users, options);
    bestNanos = std::min(bestNanos, nanosSince(start));
  }

  const auto jainPermille =
      static_cast<std::uint64_t>(result.jainIndex() * 1000.0 + 0.5);
  dmf::obs::gaugeSet("bench.fleet.dispatch_nanos", bestNanos);
  dmf::obs::gaugeSet("bench.fleet.jain_permille", jainPermille);

  std::cout << "dispatch: best of " << kReps << " reps " << bestNanos / 1000
            << " us, makespan " << result.makespan << " cycles, "
            << result.log.size() << " placements across "
            << options.chips.size() << " chips\n";
  std::cout << "fairness: Jain " << jainPermille << "/1000 (policy "
            << result.policy << ", " << users.size() << " users)\n";
  return 0;
}
