# Empty compiler generated dependencies file for dmf_engine.
# This may be replaced when dependencies are built.
