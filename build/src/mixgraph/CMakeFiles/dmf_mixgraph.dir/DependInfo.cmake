
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mixgraph/builders.cpp" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/builders.cpp.o" "gcc" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/builders.cpp.o.d"
  "/root/repo/src/mixgraph/dilution.cpp" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/dilution.cpp.o" "gcc" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/dilution.cpp.o.d"
  "/root/repo/src/mixgraph/graph.cpp" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/graph.cpp.o" "gcc" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/graph.cpp.o.d"
  "/root/repo/src/mixgraph/mm.cpp" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/mm.cpp.o" "gcc" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/mm.cpp.o.d"
  "/root/repo/src/mixgraph/mtcs.cpp" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/mtcs.cpp.o" "gcc" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/mtcs.cpp.o.d"
  "/root/repo/src/mixgraph/multi_target.cpp" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/multi_target.cpp.o" "gcc" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/multi_target.cpp.o.d"
  "/root/repo/src/mixgraph/rma.cpp" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/rma.cpp.o" "gcc" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/rma.cpp.o.d"
  "/root/repo/src/mixgraph/rsm.cpp" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/rsm.cpp.o" "gcc" "src/mixgraph/CMakeFiles/dmf_mixgraph.dir/rsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dmf/CMakeFiles/dmf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
