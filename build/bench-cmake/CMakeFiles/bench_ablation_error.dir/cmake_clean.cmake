file(REMOVE_RECURSE
  "../bench/bench_ablation_error"
  "../bench/bench_ablation_error.pdb"
  "CMakeFiles/bench_ablation_error.dir/bench_ablation_error.cpp.o"
  "CMakeFiles/bench_ablation_error.dir/bench_ablation_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
