# Empty compiler generated dependencies file for protocol_sweep.
# This may be replaced when dependencies are built.
