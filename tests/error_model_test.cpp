#include "analysis/error_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mixgraph/builders.h"
#include "workload/ratio_corpus.h"

namespace dmf::analysis {
namespace {

using mixgraph::Algorithm;
using mixgraph::buildGraph;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

TEST(ErrorModel, PerfectSplitsGiveZeroError) {
  const MixingGraph g = buildMM(pcr());
  const NodeError e = targetError(g, ErrorOptions{0.0, 0.0});
  EXPECT_DOUBLE_EQ(e.volume, 0.0);
  EXPECT_DOUBLE_EQ(e.worstConcentration, 0.0);
}

TEST(ErrorModel, LeavesCarryOnlyDispenseError) {
  const MixingGraph g = buildMM(pcr());
  const auto errors = analyzeErrors(g, ErrorOptions{0.05, 0.02});
  for (mixgraph::NodeId id = 0; id < g.nodeCount(); ++id) {
    if (g.node(id).isLeaf()) {
      EXPECT_DOUBLE_EQ(errors[id].volume, 0.02);
      EXPECT_DOUBLE_EQ(errors[id].worstConcentration, 0.0);
    }
  }
}

TEST(ErrorModel, VolumeErrorGrowsAtMostLinearlyWithDepth) {
  // w(v) = avg(children) + eps adds eps per level, so w <= depth * eps.
  const MixingGraph g = buildMM(Ratio({26, 21, 2, 2, 3, 3, 199}));
  const double eps = 0.05;
  const auto errors = analyzeErrors(g, ErrorOptions{eps, 0.0});
  for (mixgraph::NodeId id = 0; id < g.nodeCount(); ++id) {
    EXPECT_LE(errors[id].volume,
              static_cast<double>(g.depth()) * eps + 1e-12);
    if (!g.node(id).isLeaf()) {
      EXPECT_GE(errors[id].volume, eps - 1e-12);
    }
  }
}

TEST(ErrorModel, ErrorGrowsMonotonicallyWithImbalance) {
  const MixingGraph g = buildMM(pcr());
  double previous = -1.0;
  for (double eps : {0.01, 0.02, 0.05, 0.10}) {
    const NodeError e = targetError(g, ErrorOptions{eps, 0.0});
    EXPECT_GT(e.worstConcentration, previous);
    previous = e.worstConcentration;
  }
}

TEST(ErrorModel, ErrorScalesLinearlyInFirstOrder) {
  const MixingGraph g = buildMM(pcr());
  const double e1 =
      targetError(g, ErrorOptions{0.01, 0.0}).worstConcentration;
  const double e2 =
      targetError(g, ErrorOptions{0.02, 0.0}).worstConcentration;
  EXPECT_NEAR(e2, 2.0 * e1, 1e-12);  // the model is linear in eps
}

TEST(ErrorModel, QuantizationErrorMatchesAccuracy) {
  EXPECT_DOUBLE_EQ(quantizationError(buildMM(pcr())), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(
      quantizationError(buildMM(Ratio({26, 21, 2, 2, 3, 3, 199}))),
      1.0 / 512.0);
}

TEST(ErrorModel, RejectsBadInput) {
  const MixingGraph g = buildMM(pcr());
  EXPECT_THROW(analyzeErrors(g, ErrorOptions{-0.1, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(analyzeErrors(g, ErrorOptions{0.1, -0.1}),
               std::invalid_argument);
  MixingGraph unfinished(pcr());
  EXPECT_THROW(analyzeErrors(unfinished, ErrorOptions{}),
               std::invalid_argument);
}

TEST(ErrorModel, DeeperTreesAccumulateMoreError) {
  // A nearby concentration with more set bits needs a deeper mixing chain
  // and thus picks up more split error (80/256 reduces to the 5/16 chain, so
  // 85/256 = 0b01010101 is the deep counterpart).
  const MixingGraph shallow = mixgraph::buildDilution(5, 4);  // 5/16
  const MixingGraph deep = mixgraph::buildDilution(85, 8);    // 85/256
  const double eShallow =
      targetError(shallow, ErrorOptions{0.05, 0.0}).worstConcentration;
  const double eDeep =
      targetError(deep, ErrorOptions{0.05, 0.0}).worstConcentration;
  EXPECT_GT(eDeep, eShallow);
}

// Straight-line reimplementation of the header's recurrence, kept naive on
// purpose so the production code is checked against independent arithmetic.
struct NaiveBounds {
  std::vector<double> volume;
  std::vector<std::vector<double>> concentration;
};

NaiveBounds naiveAnalyze(const MixingGraph& g, const ErrorOptions& opt) {
  NaiveBounds out;
  out.volume.resize(g.nodeCount(), 0.0);
  out.concentration.resize(g.nodeCount());
  const std::size_t fluids = g.ratio().fluidCount();
  // Children have smaller levels, but node ids are not topologically sorted
  // in general; iterate until a full pass changes nothing.
  std::vector<bool> ready(g.nodeCount(), false);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (mixgraph::NodeId v = 0; v < g.nodeCount(); ++v) {
      if (ready[v]) continue;
      const mixgraph::Node& n = g.node(v);
      if (n.isLeaf()) {
        out.volume[v] = opt.dispenseError;
        out.concentration[v].assign(fluids, 0.0);
      } else {
        if (!ready[n.left] || !ready[n.right]) continue;
        const double meanW = (out.volume[n.left] + out.volume[n.right]) / 2.0;
        out.volume[v] = meanW + opt.splitImbalance;
        out.concentration[v].resize(fluids);
        for (std::size_t i = 0; i < fluids; ++i) {
          const double cfL =
              g.node(n.left).value.concentration(i).toDouble();
          const double cfR =
              g.node(n.right).value.concentration(i).toDouble();
          const double gap = cfL > cfR ? cfL - cfR : cfR - cfL;
          out.concentration[v][i] = (out.concentration[n.left][i] +
                                     out.concentration[n.right][i]) /
                                        2.0 +
                                    gap / 2.0 * meanW;
        }
      }
      ready[v] = true;
      progressed = true;
    }
  }
  return out;
}

TEST(ErrorModel, MatchesIndependentRecurrenceOnTreesAndDags) {
  const ErrorOptions opt{0.07, 0.03};
  for (Algorithm algo : {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
    const MixingGraph g = buildGraph(Ratio({26, 21, 2, 2, 3, 3, 199}), algo);
    const auto expected = naiveAnalyze(g, opt);
    const auto actual = analyzeErrors(g, opt);
    ASSERT_EQ(actual.size(), g.nodeCount());
    for (mixgraph::NodeId v = 0; v < g.nodeCount(); ++v) {
      EXPECT_NEAR(actual[v].volume, expected.volume[v], 1e-12);
      double worst = 0.0;
      ASSERT_EQ(actual[v].concentration.size(),
                expected.concentration[v].size());
      for (std::size_t i = 0; i < expected.concentration[v].size(); ++i) {
        EXPECT_NEAR(actual[v].concentration[i], expected.concentration[v][i],
                    1e-12);
        worst = std::max(worst, expected.concentration[v][i]);
      }
      EXPECT_NEAR(actual[v].worstConcentration, worst, 1e-12);
    }
  }
}

TEST(ErrorModel, RootBoundDominatesEveryMonteCarloRealization) {
  // The recurrence claims a *worst-case* bound: any concrete assignment of
  // per-split imbalances in [-eps, +eps] must land within it (to first
  // order). Exercise 64 deterministic pseudo-random realizations.
  const MixingGraph g = buildMM(pcr());
  const double eps = 0.04;
  const NodeError bound = targetError(g, ErrorOptions{eps, 0.0});
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<double>(rng >> 11) * 0x1.0p-53;  // [0,1)
  };
  const std::size_t fluids = g.ratio().fluidCount();
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<double> vol(g.nodeCount(), 0.0);
    std::vector<std::vector<double>> cfErr(g.nodeCount());
    std::vector<bool> ready(g.nodeCount(), false);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (mixgraph::NodeId v = 0; v < g.nodeCount(); ++v) {
        if (ready[v]) continue;
        const mixgraph::Node& n = g.node(v);
        if (n.isLeaf()) {
          cfErr[v].assign(fluids, 0.0);
        } else {
          if (!ready[n.left] || !ready[n.right]) continue;
          // One signed imbalance per split: left gets +delta, right -delta.
          const double delta = (2.0 * next() - 1.0) * eps;
          const double a = vol[n.left] + delta;
          const double b = vol[n.right] - delta;
          vol[v] = (a + b) / 2.0;
          cfErr[v].resize(fluids);
          for (std::size_t i = 0; i < fluids; ++i) {
            const double cfL =
                g.node(n.left).value.concentration(i).toDouble();
            const double cfR =
                g.node(n.right).value.concentration(i).toDouble();
            // First-order mixing: (cfL(1+a) + cfR(1+b))/(2+a+b) - (cfL+cfR)/2
            // = (cfL-cfR)(a-b)/4, plus the inherited averaged errors.
            cfErr[v][i] = (cfErr[n.left][i] + cfErr[n.right][i]) / 2.0 +
                          (cfL - cfR) * (a - b) / 4.0;
          }
        }
        ready[v] = true;
        progressed = true;
      }
    }
    for (std::size_t i = 0; i < fluids; ++i) {
      const double realized = cfErr[g.root()][i] < 0 ? -cfErr[g.root()][i]
                                                     : cfErr[g.root()][i];
      EXPECT_LE(realized, bound.concentration[i] + 1e-12)
          << "trial " << trial << " fluid " << i;
    }
  }
}

TEST(ErrorModel, AllBuildersStayWithinFirstOrderEnvelope) {
  // Coarse envelope: CF gaps are at most 1 and operand volume error at most
  // depth * eps, halved per level on the way up — the worst concentration
  // deviation is below depth^2 * eps / 2.
  const auto& corpus = workload::evaluationCorpus();
  for (std::size_t i = 0; i < corpus.size(); i += 211) {
    for (Algorithm algo : {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
      const MixingGraph g = buildGraph(corpus[i], algo);
      const double d = static_cast<double>(g.depth());
      const NodeError e = targetError(g, ErrorOptions{0.05, 0.0});
      EXPECT_LE(e.worstConcentration, d * d * 0.05 / 2.0 + 1e-9)
          << corpus[i].toString();
      EXPECT_GE(e.worstConcentration, 0.0);
    }
  }
}

}  // namespace
}  // namespace dmf::analysis
