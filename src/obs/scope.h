// Process-global observability session: a MetricsRegistry + TraceRecorder
// pair installed for the duration of an obs::Scope.
//
// Design constraints (see DESIGN.md §9):
//  * disabled is the default and must be near-free — every helper below
//    starts with a single relaxed atomic load of the session pointer and
//    branches out before touching a clock, a mutex, or a string;
//  * instrumentation must never change behaviour — it only observes, so the
//    planner's `--jobs N` byte-identical guarantee holds with tracing on;
//  * one session at a time — nested Scope installation throws (there is no
//    meaningful merge of two sessions' files).
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmf::obs {

/// The sinks of one observability session.
struct Session {
  MetricsRegistry metrics;
  TraceRecorder trace;
};

namespace detail {
extern std::atomic<Session*> g_session;
}  // namespace detail

/// RAII installer: the session is globally visible between construction and
/// destruction. Throws std::logic_error if a Scope is already active.
class Scope {
 public:
  explicit Scope(Session& session);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// True while a Scope is active.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_session.load(std::memory_order_acquire) != nullptr;
}

/// The active session's registry, or nullptr when observability is off.
[[nodiscard]] inline MetricsRegistry* metrics() noexcept {
  Session* s = detail::g_session.load(std::memory_order_acquire);
  return s == nullptr ? nullptr : &s->metrics;
}

/// The active session's trace recorder, or nullptr when observability is off.
[[nodiscard]] inline TraceRecorder* tracer() noexcept {
  Session* s = detail::g_session.load(std::memory_order_acquire);
  return s == nullptr ? nullptr : &s->trace;
}

/// Bumps a named counter in the active registry; no-op when disabled.
inline void count(const char* name, std::uint64_t delta = 1) {
  if (MetricsRegistry* m = metrics()) m->counter(name).add(delta);
}

/// Raises a named high-water gauge; no-op when disabled.
inline void gaugeMax(const char* name, std::uint64_t value) {
  if (MetricsRegistry* m = metrics()) m->gauge(name).accumulateMax(value);
}

/// Sets a named last-value gauge; no-op when disabled.
inline void gaugeSet(const char* name, std::uint64_t value) {
  if (MetricsRegistry* m = metrics()) m->gauge(name).set(value);
}

/// RAII wall-clock span on the calling thread's trace track. Latches the
/// recorder at construction: when tracing is off this is two null checks and
/// no clock read.
class Span {
 public:
  explicit Span(const char* name, const char* category = "engine") noexcept
      : recorder_(tracer()),
        name_(name),
        category_(category),
        start_(recorder_ == nullptr ? 0 : recorder_->nowNanos()) {}

  ~Span() {
    if (recorder_ != nullptr) {
      recorder_->completeEvent(name_, category_, start_,
                               recorder_->nowNanos() - start_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  std::uint64_t start_;
};

}  // namespace dmf::obs
