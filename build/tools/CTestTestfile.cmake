# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_plan "/root/repo/build/tools/dmfstream" "plan" "--ratio" "2:1:1:1:1:1:9" "--demand" "20" "--gantt")
set_tests_properties(cli_plan PROPERTIES  PASS_REGULAR_EXPRESSION "storage units q" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan_ga "/root/repo/build/tools/dmfstream" "plan" "--ratio" "3:1" "--demand" "8" "--scheme" "GA")
set_tests_properties(cli_plan_ga PROPERTIES  PASS_REGULAR_EXPRESSION "completion Tc" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stream "/root/repo/build/tools/dmfstream" "stream" "--ratio" "2:1:1:1:1:1:9" "--demand" "32" "--storage" "3")
set_tests_properties(cli_stream PROPERTIES  PASS_REGULAR_EXPRESSION "passes" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dilute "/root/repo/build/tools/dmfstream" "dilute" "--sample" "5/2^4" "--demand" "8")
set_tests_properties(cli_dilute PROPERTIES  PASS_REGULAR_EXPRESSION "5:11" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_chip "/root/repo/build/tools/dmfstream" "chip" "--ratio" "2:1:1:1:1:1:9" "--demand" "8" "--simulate" "--pins" "--wear")
set_tests_properties(cli_chip PROPERTIES  PASS_REGULAR_EXPRESSION "broadcast addressing" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_corpus "/root/repo/build/tools/dmfstream" "corpus" "--sum" "16" "--max-fluids" "6")
set_tests_properties(cli_corpus PROPERTIES  PASS_REGULAR_EXPRESSION "135 target ratios" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/dmfstream" "nonsense")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_ratio "/root/repo/build/tools/dmfstream" "plan" "--ratio" "3:4" "--demand" "4")
set_tests_properties(cli_bad_ratio PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_infeasible "/root/repo/build/tools/dmfstream" "stream" "--ratio" "2:1:1:1:1:1:9" "--demand" "32" "--storage" "0" "--mixers" "1")
set_tests_properties(cli_infeasible PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_multi "/root/repo/build/tools/dmfstream" "multi" "--targets" "2:1:1:1:1:1:9;2:1:1:1:1:9:1" "--demands" "8,8")
set_tests_properties(cli_multi PROPERTIES  PASS_REGULAR_EXPRESSION "shared forest" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_multi_bad "/root/repo/build/tools/dmfstream" "multi" "--targets" "2:1:1" "--demands" "8,8")
set_tests_properties(cli_multi_bad PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan_error "/root/repo/build/tools/dmfstream" "plan" "--ratio" "2:1:1:1:1:1:9" "--demand" "8" "--split-error" "0.05")
set_tests_properties(cli_plan_error PROPERTIES  PASS_REGULAR_EXPRESSION "worst CF error" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan_json "/root/repo/build/tools/dmfstream" "plan" "--ratio" "2:1:1:1:1:1:9" "--demand" "8" "--json")
set_tests_properties(cli_plan_json PROPERTIES  PASS_REGULAR_EXPRESSION "\"tasks\"" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_chip_contamination "/root/repo/build/tools/dmfstream" "chip" "--ratio" "2:1:1:1:1:1:9" "--demand" "8" "--contamination")
set_tests_properties(cli_chip_contamination PROPERTIES  PASS_REGULAR_EXPRESSION "wash droplets" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
