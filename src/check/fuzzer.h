// Seeded coverage-guided differential fuzzing over the whole pipeline
// (DESIGN.md §12).
//
// The fuzzer sweeps (ratio, algorithm, demand, mixers, storageCap,
// fault-spec) tuples through buildGraph -> TaskForest -> every scheduler ->
// the streaming planner -> the recovery engine, runs the invariant oracles
// of oracles.h on each stage, and cross-checks every pair of paths that must
// agree:
//
//  * planStreaming with --jobs 1 vs --jobs 4: byte-identical JSON plans;
//  * scheduleHeterogeneous on a unit MixerBank vs scheduleOMS: equal
//    completion time (both are critical-path list schedulers);
//  * a fault-free RecoveryEngine replay vs the original schedule: full
//    delivery, no repair rounds, identical completion cycle;
//  * a repeated faulty recovery run with one seed: byte-identical reports;
//  * planStreamingOptimized vs planStreaming: never more total cycles;
//  * a journaled run killed at a fuzzer-chosen pass boundary, then resumed:
//    byte-identical output vs the uninterrupted twin — and with the journal
//    truncated (torn tail: silent repair, still byte-identical) or
//    bit-flipped (CRC failure: a typed CorruptJournalError, never a wrong
//    answer or UB).
//
// A failing case is shrunk to a minimal reproducer (greedy descent over
// demand, mixers, cap, ratio, fault spec) and reported as a ready-to-paste
// CLI invocation plus a JSON seed that `dmfstream fuzz --replay` accepts.
//
// Determinism: one run is fully determined by (seed, iterations, scope) —
// the time budget can only truncate the case sequence, never reorder it.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "engine/mdst.h"
#include "mixgraph/builders.h"
#include "report/json.h"

namespace dmf::check {

/// One generated pipeline configuration — everything needed to reproduce a
/// finding exactly.
struct FuzzCase {
  /// Ratio parts (each >= 1, sum a power of two >= 2).
  std::vector<std::uint64_t> ratioParts{1, 3};
  mixgraph::Algorithm algorithm = mixgraph::Algorithm::MM;
  /// Scheduler the streaming stage plans with.
  engine::Scheme scheme = engine::Scheme::kSRS;
  std::uint64_t demand = 2;
  unsigned mixers = 1;
  /// 0 = uncapped (the capped-scheduler and streaming stages are skipped).
  unsigned storageCap = 0;
  /// FaultSpec::parse format; empty = the fault-free replay differential.
  std::string faultSpec;
  std::uint64_t faultSeed = 1;

  /// "a1:a2:...:aN".
  [[nodiscard]] std::string ratioString() const;
  /// Ready-to-paste reproducer: `dmfstream fuzz --replay '<json>'`.
  [[nodiscard]] std::string toCli() const;
  [[nodiscard]] report::Json toJson() const;
  /// Inverse of toJson. Throws std::invalid_argument on missing/bad fields.
  [[nodiscard]] static FuzzCase fromJson(const report::Json& json);

  /// Shrinking order: lexicographic cost a smaller reproducer minimizes.
  [[nodiscard]] std::uint64_t cost() const;
};

/// What the fuzz driver sweeps.
struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 200;
  /// Wall-clock cutoff; 0 = run all iterations.
  double timeBudgetSeconds = 0.0;
  /// "all", "forest", "sched", "stream", "fault", "server", "crash", or
  /// "fleet" — which pipeline stages the oracles cover ("server"
  /// cross-checks cached vs fresh plans for byte-identity through the
  /// serving layer; "crash" kills journaled runs at pass boundaries and
  /// corrupts the journal on disk, asserting byte-identical resume or
  /// clean detection; "fleet" dispatches a three-user fleet and asserts
  /// exactly-once execution, --jobs determinism, busy/service
  /// conservation, and kill-invariant plans). Unknown scopes throw
  /// std::invalid_argument at run().
  std::string scope = "all";
};

/// One confirmed failure, shrunk.
struct FuzzFinding {
  FuzzCase original;
  FuzzCase reproducer;
  /// Oracle failures of the *reproducer* (superset match with the original's
  /// oracle names guaranteed by the shrinker).
  std::vector<std::string> failures;
  std::uint64_t iteration = 0;
  unsigned shrinkSteps = 0;
};

/// Outcome of one fuzz run.
struct FuzzReport {
  std::uint64_t casesRun = 0;
  std::uint64_t checksRun = 0;
  /// Distinct forest shapes exercised (coverage proxy).
  std::uint64_t distinctShapes = 0;
  bool timedOut = false;
  std::vector<FuzzFinding> findings;

  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// The seeded fuzz driver.
class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions options);

  [[nodiscard]] const FuzzOptions& options() const { return options_; }

  /// Sweeps options().iterations cases; deterministic for a fixed seed.
  [[nodiscard]] FuzzReport run() const;

  /// Runs every oracle and differential check the scope selects on one case.
  /// Unexpected exceptions become "exception:" failures; expected
  /// infeasibility (dmf::InfeasibleError under a tight cap) skips the stage.
  [[nodiscard]] CheckResult runCase(const FuzzCase& c) const;

  /// Draws the next case from the generator stream.
  [[nodiscard]] FuzzCase generate(std::mt19937_64& rng) const;

  /// Greedy shrink: repeatedly applies the cheapest simplification that
  /// still satisfies `stillFails`, until none applies. `stillFails` must be
  /// true for `c` itself. Exposed with an arbitrary predicate for tests.
  [[nodiscard]] static FuzzCase shrink(
      const FuzzCase& c, const std::function<bool(const FuzzCase&)>& stillFails,
      unsigned* stepsOut = nullptr);

 private:
  FuzzOptions options_;
};

/// Human-readable report: per-finding CLI reproducer + JSON seed + failures.
[[nodiscard]] std::string renderReport(const FuzzReport& report);

}  // namespace dmf::check
