#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>

#include "obs/scope.h"
#include "report/json.h"

namespace dmf::obs {

const char* logLevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

LogLevel parseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument(
      "log level: expected debug|info|warn|error|off, got '" + name + "'");
}

struct Logger::Impl {
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::mutex mutex;
  std::ofstream file;  // unopened = stderr sink
};

Logger::Logger(const Options& options)
    : options_(options), impl_(new Impl()) {
  if (!options_.path.empty()) {
    impl_->file.open(options_.path, std::ios::binary | std::ios::trunc);
    if (!impl_->file) {
      delete impl_;
      throw std::invalid_argument("Logger: cannot open log file '" +
                                  options_.path + "'");
    }
  }
}

Logger::~Logger() { delete impl_; }

std::uint64_t Logger::nowNanos() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

void Logger::write(const std::string& line) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->file.is_open()) {
    impl_->file << line << '\n';
    impl_->file.flush();
  } else {
    std::cerr << line << '\n';
  }
  lines_.fetch_add(1, std::memory_order_relaxed);
}

namespace detail {
std::atomic<int> g_logThreshold{static_cast<int>(LogLevel::kOff)};
std::atomic<Logger*> g_logger{nullptr};
}  // namespace detail

LogScope::LogScope(Logger& logger) {
  Logger* expected = nullptr;
  if (!detail::g_logger.compare_exchange_strong(expected, &logger,
                                                std::memory_order_acq_rel)) {
    throw std::logic_error("obs::LogScope: a logger is already installed");
  }
  detail::g_logThreshold.store(static_cast<int>(logger.level()),
                               std::memory_order_release);
}

LogScope::~LogScope() {
  detail::g_logThreshold.store(static_cast<int>(LogLevel::kOff),
                               std::memory_order_release);
  detail::g_logger.store(nullptr, std::memory_order_release);
}

LogLine::LogLine(LogLevel level, const char* event)
    : logger_(loggerFor(level)) {
  if (logger_ == nullptr) return;
  buffer_.reserve(128);
  buffer_ += "{";
  if (logger_->timestamps()) {
    buffer_ += "\"ts\":";
    buffer_ += std::to_string(logger_->nowNanos());
    buffer_ += ",";
  }
  buffer_ += "\"level\":\"";
  buffer_ += logLevelName(level);
  buffer_ += "\",\"event\":\"";
  buffer_ += report::jsonEscape(event);
  buffer_ += "\"";
}

LogLine::~LogLine() {
  if (logger_ == nullptr) return;
  // Trace correlation last, in a fixed order: a record emitted inside a
  // request span carries that request's identity.
  const SpanContext context = currentContext();
  if (context.valid()) {
    buffer_ += ",\"trace_id\":";
    buffer_ += std::to_string(context.traceId);
    buffer_ += ",\"span_id\":";
    buffer_ += std::to_string(context.spanId);
  }
  buffer_ += "}";
  logger_->write(buffer_);
}

LogLine& LogLine::str(const char* key, std::string_view value) {
  if (logger_ == nullptr) return *this;
  buffer_ += ",\"";
  buffer_ += key;
  buffer_ += "\":\"";
  buffer_ += report::jsonEscape(std::string(value));
  buffer_ += "\"";
  return *this;
}

LogLine& LogLine::num(const char* key, std::uint64_t value) {
  if (logger_ == nullptr) return *this;
  buffer_ += ",\"";
  buffer_ += key;
  buffer_ += "\":";
  buffer_ += std::to_string(value);
  return *this;
}

LogLine& LogLine::real(const char* key, double value) {
  if (logger_ == nullptr) return *this;
  char text[32];
  std::snprintf(text, sizeof(text), "%.6g", value);
  buffer_ += ",\"";
  buffer_ += key;
  buffer_ += "\":";
  buffer_ += text;
  return *this;
}

LogLine& LogLine::boolean(const char* key, bool value) {
  if (logger_ == nullptr) return *this;
  buffer_ += ",\"";
  buffer_ += key;
  buffer_ += "\":";
  buffer_ += value ? "true" : "false";
  return *this;
}

}  // namespace dmf::obs
