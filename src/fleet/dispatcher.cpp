#include "fleet/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "dmf/errors.h"
#include "engine/pass_cache.h"
#include "journal/journal.h"
#include "obs/scope.h"
#include "runtime/thread_pool.h"

namespace dmf::fleet {

namespace {

/// Splits "a;b;c" into non-empty trimmed entries.
std::vector<std::string> splitEntries(const std::string& spec, char sep) {
  std::vector<std::string> entries;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t next = spec.find(sep, pos);
    if (next == std::string::npos) next = spec.size();
    std::string entry = spec.substr(pos, next - pos);
    while (!entry.empty() && entry.front() == ' ') entry.erase(entry.begin());
    while (!entry.empty() && entry.back() == ' ') entry.pop_back();
    if (!entry.empty()) entries.push_back(std::move(entry));
    pos = next + 1;
  }
  return entries;
}

/// Splits one "key=value,key=value,flag" entry into (key, value) pairs
/// (flags get an empty value).
std::vector<std::pair<std::string, std::string>> splitFields(
    const std::string& entry) {
  std::vector<std::pair<std::string, std::string>> fields;
  for (const std::string& token : splitEntries(entry, ',')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      fields.emplace_back(token, "");
    } else {
      fields.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
  }
  return fields;
}

std::uint64_t parseU64Field(const std::string& key, const std::string& value,
                            const char* who) {
  try {
    if (value.empty() || value.find_first_not_of("0123456789") !=
                             std::string::npos) {
      throw std::invalid_argument(value);
    }
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(who) + ": bad value for '" + key +
                                "': '" + value + "'");
  }
}

mixgraph::Algorithm parseAlgorithmName(const std::string& name) {
  if (name == "MM" || name == "mm") return mixgraph::Algorithm::MM;
  if (name == "RMA" || name == "rma") return mixgraph::Algorithm::RMA;
  if (name == "MTCS" || name == "mtcs") return mixgraph::Algorithm::MTCS;
  if (name == "RSM" || name == "rsm") return mixgraph::Algorithm::RSM;
  throw std::invalid_argument("parseUsers: unknown algorithm '" + name + "'");
}

engine::Scheme parseSchemeName(const std::string& name) {
  if (name == "MMS" || name == "mms") return engine::Scheme::kMMS;
  if (name == "SRS" || name == "srs") return engine::Scheme::kSRS;
  if (name == "OMS" || name == "oms") return engine::Scheme::kOMS;
  throw std::invalid_argument("parseUsers: unknown scheme '" + name + "'");
}

/// True when the chip can host the item at all.
bool capable(const ChipSpec& chip, const WorkItem& item) {
  return chip.effectiveMixers() >= item.minMixers &&
         chip.storageCap >= item.minStorage;
}

/// Per-user journal: the checkpoint a migration replays. Always keeps the
/// framed byte image in memory; mirrors appends into a durable RecordLog
/// when the run is journaled to disk.
struct UserJournal {
  std::string bytes;
  std::unique_ptr<journal::RecordLog> log;

  void append(const std::string& payload) {
    bytes += journal::frameRecord(payload);
    if (log) log->append(payload);
  }

  /// Replays the checkpoint and returns the number of completed passes it
  /// records. Disk-backed journals replay from disk (torn tails repaired),
  /// so the migration path is the same one crash recovery exercises.
  [[nodiscard]] std::uint64_t replayCompleted(unsigned user) {
    const journal::ReplayResult replayed =
        log ? log->replayAndRepair()
            : journal::replayRecords(
                  bytes, "fleet user " + std::to_string(user) + " journal");
    return replayed.records.size();
  }
};

report::Json planJson(const engine::StreamingPlan& plan) {
  report::Json json = report::Json::object();
  json.set("perPassDemand", plan.perPassDemand);
  report::Json passes = report::Json::array();
  for (const engine::StreamingPass& pass : plan.passes) {
    report::Json p = report::Json::object();
    p.set("demand", pass.demand);
    p.set("cycles", static_cast<std::uint64_t>(pass.cycles));
    p.set("storageUnits", static_cast<std::uint64_t>(pass.storageUnits));
    p.set("waste", pass.waste);
    p.set("inputDroplets", pass.inputDroplets);
    p.set("mixSplits", pass.mixSplits);
    passes.push(std::move(p));
  }
  json.set("passes", std::move(passes));
  json.set("totalCycles", plan.totalCycles);
  json.set("totalWaste", plan.totalWaste);
  json.set("totalInput", plan.totalInput);
  json.set("storageUnits", static_cast<std::uint64_t>(plan.storageUnits));
  json.set("mixers", static_cast<std::uint64_t>(plan.mixers));
  return json;
}

}  // namespace

std::vector<ChipSpec> parseChips(const std::string& spec) {
  std::vector<ChipSpec> chips;
  for (const std::string& entry : splitEntries(spec, ';')) {
    ChipSpec chip;
    for (const auto& [key, value] : splitFields(entry)) {
      if (key == "mixers") {
        chip.mixers =
            static_cast<unsigned>(parseU64Field(key, value, "parseChips"));
      } else if (key == "storage") {
        chip.storageCap =
            static_cast<unsigned>(parseU64Field(key, value, "parseChips"));
      } else if (key == "dead") {
        chip.deadMixers =
            static_cast<unsigned>(parseU64Field(key, value, "parseChips"));
      } else {
        throw std::invalid_argument("parseChips: unknown field '" + key + "'");
      }
    }
    if (chip.mixers == 0) {
      throw std::invalid_argument("parseChips: chip needs mixers >= 1");
    }
    chips.push_back(chip);
  }
  if (chips.empty()) {
    throw std::invalid_argument("parseChips: empty chip list");
  }
  return chips;
}

std::vector<ChipSpec> defaultFleet(unsigned count) {
  if (count == 0) {
    throw std::invalid_argument("defaultFleet: need at least one chip");
  }
  std::vector<ChipSpec> chips;
  chips.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    ChipSpec chip;
    chip.mixers = 3 + (i * 2) % 5;          // 3..7, varying
    chip.storageCap = 6 + (i * 3) % 7;      // 6..12, varying
    chip.deadMixers = (i % 3 == 2) ? 1 : 0; // every third chip degraded
    chips.push_back(chip);
  }
  return chips;
}

std::vector<UserStream> parseUsers(const std::string& spec) {
  std::vector<UserStream> users;
  // '|' is an alternate user separator: ';' is a list separator in CMake and
  // a command separator in most shells, so scripts can pass "a|b|c" unquoted.
  std::string normalized = spec;
  std::replace(normalized.begin(), normalized.end(), '|', ';');
  for (const std::string& entry : splitEntries(normalized, ';')) {
    UserStream user;
    user.request.demand = 16;
    user.request.storageCap = 3;
    bool haveRatio = false;
    for (const auto& [key, value] : splitFields(entry)) {
      if (key == "ratio") {
        haveRatio = true;
        auto ratio = Ratio::parse(value);
        if (!ratio.has_value()) {
          throw std::invalid_argument("parseUsers: malformed ratio '" + value +
                                      "'");
        }
        user.ratio = *ratio;
      } else if (key == "demand") {
        user.request.demand = parseU64Field(key, value, "parseUsers");
      } else if (key == "storage") {
        user.request.storageCap =
            static_cast<unsigned>(parseU64Field(key, value, "parseUsers"));
      } else if (key == "mixers") {
        user.request.mixers =
            static_cast<unsigned>(parseU64Field(key, value, "parseUsers"));
      } else if (key == "weight") {
        try {
          std::size_t used = 0;
          user.weight = std::stod(value, &used);
          if (used != value.size()) throw std::invalid_argument(value);
        } catch (const std::exception&) {
          throw std::invalid_argument("parseUsers: bad weight '" + value +
                                      "'");
        }
        if (!(user.weight > 0.0)) {
          throw std::invalid_argument("parseUsers: weight must be > 0");
        }
      } else if (key == "algo") {
        user.request.algorithm = parseAlgorithmName(value);
      } else if (key == "scheme") {
        user.request.scheme = parseSchemeName(value);
      } else if (key == "optimize") {
        user.optimize = true;
      } else {
        throw std::invalid_argument("parseUsers: unknown field '" + key + "'");
      }
    }
    if (!haveRatio) {
      throw std::invalid_argument("parseUsers: entry '" + entry +
                                  "' is missing ratio=");
    }
    users.push_back(std::move(user));
  }
  if (users.empty()) {
    throw std::invalid_argument("parseUsers: empty user list");
  }
  return users;
}

KillSpec parseKill(const std::string& spec) {
  KillSpec kill;
  kill.active = true;
  bool haveChip = false;
  bool haveCycle = false;
  for (const auto& [key, value] : splitFields(spec)) {
    if (key == "chip") {
      kill.chip = static_cast<unsigned>(parseU64Field(key, value, "parseKill"));
      haveChip = true;
    } else if (key == "cycle") {
      kill.cycle = parseU64Field(key, value, "parseKill");
      haveCycle = true;
    } else {
      throw std::invalid_argument("parseKill: unknown field '" + key + "'");
    }
  }
  if (!haveChip || !haveCycle) {
    throw std::invalid_argument("parseKill: need both chip= and cycle=");
  }
  return kill;
}

double FleetResult::jainIndex() const {
  double sum = 0.0;
  double sumSquares = 0.0;
  for (const UserReport& user : users) {
    const double x = static_cast<double>(user.serviceCycles) / user.weight;
    sum += x;
    sumSquares += x * x;
  }
  if (sumSquares == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(users.size()) * sumSquares);
}

std::vector<double> FleetResult::serviceShares(std::uint64_t upToCycle) const {
  std::vector<double> service(users.size(), 0.0);
  double total = 0.0;
  for (const PassRecord& record : log) {
    const std::uint64_t end = std::min(record.endCycle, upToCycle);
    if (record.startCycle >= end) continue;
    const double span = static_cast<double>(end - record.startCycle);
    service[record.user] += span;
    total += span;
  }
  if (total > 0.0) {
    for (double& share : service) share /= total;
  }
  return service;
}

report::Json FleetResult::plansJson() const {
  report::Json json = report::Json::object();
  report::Json list = report::Json::array();
  for (std::size_t u = 0; u < users.size(); ++u) {
    report::Json entry = report::Json::object();
    entry.set("user", static_cast<std::uint64_t>(u));
    entry.set("plan", planJson(users[u].plan));
    list.push(std::move(entry));
  }
  json.set("users", std::move(list));
  return json;
}

report::Json FleetResult::toJson(bool includePlacement) const {
  report::Json json = report::Json::object();
  json.set("policy", policy);

  report::Json chipList = report::Json::array();
  for (std::size_t c = 0; c < chips.size(); ++c) {
    const ChipReport& chip = chips[c];
    report::Json entry = report::Json::object();
    entry.set("chip", static_cast<std::uint64_t>(c));
    entry.set("mixers", static_cast<std::uint64_t>(chip.spec.mixers));
    entry.set("storage", static_cast<std::uint64_t>(chip.spec.storageCap));
    entry.set("dead", static_cast<std::uint64_t>(chip.spec.deadMixers));
    entry.set("busyCycles", chip.busyCycles);
    entry.set("passesCompleted", chip.passesCompleted);
    entry.set("abortedCycles", chip.abortedCycles);
    entry.set("failed", report::Json::boolean(chip.failed));
    entry.set("failedAtCycle", chip.failedAtCycle);
    chipList.push(std::move(entry));
  }
  json.set("chips", std::move(chipList));

  report::Json userList = report::Json::array();
  for (std::size_t u = 0; u < users.size(); ++u) {
    const UserReport& user = users[u];
    report::Json entry = report::Json::object();
    entry.set("user", static_cast<std::uint64_t>(u));
    entry.set("weight", user.weight);
    entry.set("serviceCycles", user.serviceCycles);
    entry.set("passesExecuted", user.passesExecuted);
    entry.set("migratedPasses", user.migratedPasses);
    entry.set("unplacedPasses", user.unplacedPasses);
    entry.set("plan", planJson(user.plan));
    userList.push(std::move(entry));
  }
  json.set("users", std::move(userList));

  report::Json summary = report::Json::object();
  summary.set("makespan", makespan);
  summary.set("migrations", migrations);
  summary.set("degraded", report::Json::boolean(degraded));
  if (degraded) summary.set("degradationReason", degradationReason);
  summary.set("jainPermille",
              static_cast<std::uint64_t>(std::llround(jainIndex() * 1000.0)));
  json.set("summary", std::move(summary));

  if (includePlacement) {
    report::Json placement = report::Json::array();
    for (const PassRecord& record : log) {
      report::Json entry = report::Json::object();
      entry.set("user", static_cast<std::uint64_t>(record.user));
      entry.set("pass", record.passIndex);
      entry.set("chip", static_cast<std::uint64_t>(record.chip));
      entry.set("start", record.startCycle);
      entry.set("end", record.endCycle);
      entry.set("attempt", static_cast<std::uint64_t>(record.attempt));
      entry.set("completed", report::Json::boolean(record.completed));
      placement.push(std::move(entry));
    }
    json.set("placement", std::move(placement));
  }
  return json;
}

FleetResult dispatchFleet(const std::vector<UserStream>& users,
                          const DispatcherOptions& options) {
  if (users.empty()) {
    throw std::invalid_argument("dispatchFleet: need at least one user");
  }
  if (options.chips.empty()) {
    throw std::invalid_argument("dispatchFleet: need at least one chip");
  }
  if (!options.weights.empty() && options.weights.size() != users.size()) {
    throw std::invalid_argument(
        "dispatchFleet: " + std::to_string(options.weights.size()) +
        " weights for " + std::to_string(users.size()) + " users");
  }
  const auto started = std::chrono::steady_clock::now();

  FleetResult result;
  result.policy = options.policy;
  result.chips.resize(options.chips.size());
  for (std::size_t c = 0; c < options.chips.size(); ++c) {
    result.chips[c].spec = options.chips[c];
  }
  result.users.resize(users.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    result.users[u].weight =
        options.weights.empty() ? users[u].weight : options.weights[u];
    if (!(result.users[u].weight > 0.0)) {
      throw std::invalid_argument("dispatchFleet: weights must be > 0");
    }
  }

  // Phase 1 — plan every user's stream. One result slot per user, fanned
  // out over the pool: byte-identical for every job count.
  {
    runtime::ThreadPool pool(runtime::ThreadPool::resolveJobs(options.jobs));
    pool.forEach(users.size(), [&](std::uint64_t u) {
      engine::MdstEngine engine(users[u].ratio);
      engine::PassCache cache;
      engine::StreamingRequest request = users[u].request;
      request.jobs = 1;  // the fleet pool already provides the parallelism
      result.users[u].plan =
          users[u].optimize ? planStreamingOptimized(engine, request, cache)
                            : planStreaming(engine, request, cache);
    });
  }

  // Admission: every pass of every user, in (user, passIndex) order.
  const std::unique_ptr<ArbitrationPolicy> policy = makePolicy(options.policy);
  policy->setUsers(static_cast<unsigned>(users.size()));
  {
    std::vector<double> weights(users.size());
    for (std::size_t u = 0; u < users.size(); ++u) {
      weights[u] = result.users[u].weight;
    }
    policy->setWeights(weights);
  }
  policy->setQuantum(options.quantum);

  std::uint64_t admission = 0;
  for (std::size_t u = 0; u < users.size(); ++u) {
    const engine::StreamingPlan& plan = result.users[u].plan;
    bool feasible = false;
    for (const ChipSpec& chip : options.chips) {
      if (chip.effectiveMixers() >= plan.mixers &&
          chip.storageCap >= plan.storageUnits) {
        feasible = true;
        break;
      }
    }
    if (!feasible) {
      throw InfeasibleError(
          "dispatchFleet: user " + std::to_string(u) + " needs " +
          std::to_string(plan.mixers) + " mixers / " +
          std::to_string(plan.storageUnits) +
          " storage units but no chip in the fleet provides them");
    }
    for (std::size_t p = 0; p < plan.passes.size(); ++p) {
      WorkItem item;
      item.user = static_cast<unsigned>(u);
      item.admission = admission++;
      item.passIndex = p;
      item.cost = std::max<std::uint64_t>(1, plan.passes[p].cycles);
      item.minMixers = plan.mixers;
      item.minStorage = plan.passes[p].storageUnits;
      policy->enqueue(item);
    }
  }

  // Per-user journals (the migration checkpoints).
  std::vector<UserJournal> journals(users.size());
  if (!options.journalDir.empty()) {
    journal::ensureJournalDir(options.journalDir);
    for (std::size_t u = 0; u < users.size(); ++u) {
      journals[u].log = std::make_unique<journal::RecordLog>(
          options.journalDir + "/user" + std::to_string(u) + ".log");
      // A fresh dispatch owns its checkpoint; stale records from an
      // earlier run would make the replayed count contradict this run.
      journals[u].log->reset();
    }
  }

  // Phase 2 — the serial virtual-time dispatch loop.
  std::vector<std::uint64_t> freeAt(options.chips.size(), 0);
  const KillSpec& kill = options.kill;

  const auto failChip = [&](unsigned chip, std::uint64_t atCycle) {
    ChipReport& report = result.chips[chip];
    if (!report.failed) {
      report.failed = true;
      report.failedAtCycle = atCycle;
    }
  };

  while (!policy->empty()) {
    // The decision instant: the earliest any alive chip frees up.
    std::uint64_t now = 0;
    bool anyAlive = false;
    for (std::size_t c = 0; c < freeAt.size(); ++c) {
      if (result.chips[c].failed) continue;
      if (!anyAlive || freeAt[c] < now) now = freeAt[c];
      anyAlive = true;
    }
    if (!anyAlive) {
      result.degraded = true;
      result.degradationReason = "all chips failed with work pending";
      break;
    }

    const std::optional<unsigned> picked =
        policy->pickUser(static_cast<double>(now));
    if (!picked.has_value()) break;
    const std::optional<WorkItem> popped = policy->pop(*picked);
    if (!popped.has_value()) continue;
    const WorkItem item = *popped;

    // Placement: earliest-free alive capable chip, ties to the lowest id.
    // A chip whose next start would land on or after its scripted death is
    // dead for scheduling purposes — fail it the moment that is observed.
    std::optional<unsigned> best;
    for (unsigned c = 0; c < result.chips.size(); ++c) {
      if (result.chips[c].failed) continue;
      if (kill.active && c == kill.chip && freeAt[c] >= kill.cycle) {
        failChip(c, kill.cycle);
        continue;
      }
      if (!capable(result.chips[c].spec, item)) continue;
      if (!best.has_value() || freeAt[c] < freeAt[*best]) best = c;
    }
    if (!best.has_value()) {
      result.users[item.user].unplacedPasses += 1;
      result.degraded = true;
      result.degradationReason =
          "no capable alive chip for user " + std::to_string(item.user);
      continue;
    }

    const unsigned chip = *best;
    const std::uint64_t start = freeAt[chip];
    const std::uint64_t end = start + item.cost;

    if (kill.active && chip == kill.chip && end > kill.cycle) {
      // The chip dies mid-pass: abort, then migrate via journal replay.
      result.log.push_back(PassRecord{item.user, item.passIndex, chip, start,
                                      kill.cycle, item.attempt, false});
      result.chips[chip].abortedCycles += kill.cycle - start;
      freeAt[chip] = kill.cycle;
      failChip(chip, kill.cycle);

      const std::uint64_t checkpointed =
          journals[item.user].replayCompleted(item.user);
      if (checkpointed != result.users[item.user].passesExecuted) {
        throw journal::CorruptJournalError(
            "fleet migration: user " + std::to_string(item.user) +
            " checkpoint records " + std::to_string(checkpointed) +
            " completed passes, dispatcher saw " +
            std::to_string(result.users[item.user].passesExecuted));
      }
      WorkItem retry = item;
      retry.attempt += 1;
      policy->enqueue(retry);
      result.users[item.user].migratedPasses += 1;
      result.migrations += 1;
      obs::count("fleet.passes.migrated");
      continue;
    }

    result.log.push_back(PassRecord{item.user, item.passIndex, chip, start,
                                    end, item.attempt, true});
    freeAt[chip] = end;
    result.chips[chip].busyCycles += item.cost;
    result.chips[chip].passesCompleted += 1;
    result.users[item.user].serviceCycles += item.cost;
    result.users[item.user].passesExecuted += 1;
    result.makespan = std::max(result.makespan, end);
    journals[item.user].append(
        "pass user=" + std::to_string(item.user) +
        " idx=" + std::to_string(item.passIndex) +
        " chip=" + std::to_string(chip) + " start=" + std::to_string(start) +
        " end=" + std::to_string(end));
    obs::count("fleet.passes.dispatched");
  }

  // Observability (metrics only — never behaviour).
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
    metrics->histogram("fleet.dispatch_nanos",
                       {1000, 10000, 100000, 1000000, 10000000, 100000000})
        .observe(static_cast<std::uint64_t>(nanos));
    metrics->gauge("fleet.makespan_cycles").set(result.makespan);
    metrics->gauge("fleet.jain_permille")
        .set(static_cast<std::uint64_t>(
            std::llround(result.jainIndex() * 1000.0)));
    auto& busy = metrics->histogram("fleet.chip.busy_cycles",
                                    {64, 256, 1024, 4096, 16384, 65536});
    for (std::size_t c = 0; c < result.chips.size(); ++c) {
      busy.observe(result.chips[c].busyCycles);
      metrics->gauge("fleet.chip." + std::to_string(c) + ".busy_cycles")
          .set(result.chips[c].busyCycles);
    }
    for (std::size_t u = 0; u < result.users.size(); ++u) {
      metrics->gauge("fleet.user." + std::to_string(u) + ".service_cycles")
          .set(result.users[u].serviceCycles);
    }
  }
  return result;
}

}  // namespace dmf::fleet
