#include "journal/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "obs/scope.h"

namespace dmf::journal {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void putU32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t getU32(const std::string& bytes, std::size_t at) {
  return static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at])) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(bytes[at + 1]))
          << 8) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(bytes[at + 2]))
          << 16) |
         (static_cast<std::uint32_t>(
              static_cast<unsigned char>(bytes[at + 3]))
          << 24);
}

void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer to fd, riding out EINTR and partial writes.
void writeAllFd(int fd, const char* data, std::size_t size,
                const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("journal: write '" + path + "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
}

void fsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throwErrno("journal: fsync '" + path + "' failed");
}

/// fsyncs the directory containing `path` so a rename into it is durable.
/// Best-effort: some filesystems refuse O_RDONLY directory fsync — that
/// only weakens power-loss durability, never crash-of-this-process safety.
void fsyncParentDir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> kTable = makeCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string frameRecord(const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  putU32(out, crc32(payload));
  out += payload;
  return out;
}

ReplayResult replayRecords(const std::string& bytes,
                           const std::string& context) {
  ReplayResult out;
  std::size_t at = 0;
  while (at < bytes.size()) {
    if (bytes.size() - at < kFrameHeaderBytes) {
      out.tornTail = true;  // header itself is incomplete
      break;
    }
    const std::uint32_t length = getU32(bytes, at);
    const std::uint32_t crc = getU32(bytes, at + 4);
    if (bytes.size() - at - kFrameHeaderBytes < length) {
      // The frame promises more payload than the file holds: the append
      // was interrupted. Expected after a crash — truncate, don't throw.
      out.tornTail = true;
      break;
    }
    const char* payload = bytes.data() + at + kFrameHeaderBytes;
    if (crc32(payload, length) != crc) {
      // The frame is complete, so this is not an interrupted append: the
      // committed region itself is damaged (bit rot, manual edit, a
      // misbehaving tool). Detected, never repaired silently.
      throw CorruptJournalError(
          context + ": CRC mismatch in record " +
          std::to_string(out.records.size()) + " at byte " +
          std::to_string(at) + " (complete frame, damaged payload)");
    }
    out.records.emplace_back(payload, length);
    at += kFrameHeaderBytes + length;
  }
  out.validBytes = at;
  return out;
}

// ---------------------------------------------------------------------------
// RecordLog

RecordLog::RecordLog(std::string path) : path_(std::move(path)) { open(); }

RecordLog::~RecordLog() {
  if (fd_ >= 0) ::close(fd_);
}

void RecordLog::open() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throwErrno("journal: cannot open log '" + path_ + "'");
}

void RecordLog::append(const std::string& payload) {
  const std::string frame = frameRecord(payload);
  writeAllFd(fd_, frame.data(), frame.size(), path_);
  fsyncFd(fd_, path_);
  obs::count("journal.append");
  obs::count("journal.append_bytes", frame.size());
}

ReplayResult RecordLog::replayAndRepair() {
  const obs::Span span("journal.replay", "journal");
  std::string bytes;
  {
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < 0) throwErrno("journal: lseek '" + path_ + "' failed");
    bytes.resize(static_cast<std::size_t>(size));
    std::size_t got = 0;
    while (got < bytes.size()) {
      const ssize_t n = ::pread(fd_, bytes.data() + got, bytes.size() - got,
                                static_cast<off_t>(got));
      if (n < 0) {
        if (errno == EINTR) continue;
        throwErrno("journal: read '" + path_ + "' failed");
      }
      if (n == 0) break;  // shrank underneath us; replay what we have
      got += static_cast<std::size_t>(n);
    }
    bytes.resize(got);
  }
  ReplayResult result = replayRecords(bytes, "journal '" + path_ + "'");
  if (result.tornTail) {
    // Drop the torn tail on disk too, so the next append extends the valid
    // prefix instead of burying garbage mid-log.
    if (::ftruncate(fd_, static_cast<off_t>(result.validBytes)) != 0) {
      throwErrno("journal: truncate '" + path_ + "' failed");
    }
    fsyncFd(fd_, path_);
    obs::count("journal.torn_tail");
  }
  obs::count("journal.replay.records", result.records.size());
  return result;
}

void RecordLog::reset() {
  if (::ftruncate(fd_, 0) != 0) {
    throwErrno("journal: truncate '" + path_ + "' failed");
  }
  fsyncFd(fd_, path_);
}

// ---------------------------------------------------------------------------
// Atomic snapshot I/O

void writeFileAtomic(const std::string& path, const std::string& bytes) {
  const obs::Span span("journal.snapshot.write", "journal");
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throwErrno("journal: cannot create '" + tmp + "'");
  try {
    writeAllFd(fd, bytes.data(), bytes.size(), tmp);
    // fsync BEFORE rename: rename is atomic, but renaming an unflushed
    // file can publish an empty-but-named entry after a crash.
    fsyncFd(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    errno = err;
    throwErrno("journal: rename '" + tmp + "' -> '" + path + "' failed");
  }
  fsyncParentDir(path);
  obs::count("journal.snapshot");
}

std::optional<std::string> readFileIfExists(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throwErrno("journal: cannot read '" + path + "'");
  }
  std::string bytes;
  char buffer[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      errno = err;
      throwErrno("journal: read '" + path + "' failed");
    }
    if (n == 0) break;
    bytes.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return bytes;
}

void ensureJournalDir(const std::string& dir) {
  if (dir.empty()) {
    throw std::invalid_argument("journal: empty journal directory");
  }
  const fs::path path(dir);
  const fs::path parent = path.parent_path();
  if (!parent.empty() && !fs::is_directory(parent)) {
    throw std::invalid_argument("journal: parent directory '" +
                                parent.string() + "' does not exist");
  }
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec || !fs::is_directory(path)) {
    throw std::invalid_argument("journal: cannot create journal dir '" + dir +
                                "'");
  }
}

}  // namespace dmf::journal
