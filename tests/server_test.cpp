// Plan-as-a-service tests (DESIGN.md §13): canonical request keying, the
// two-tier LRU plan cache, request coalescing, socket round trips, and the
// byte-identity guarantees (cache hit == cold plan == direct engine dump,
// for every --jobs value).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/mdst.h"
#include "engine/serialize.h"
#include "engine/streaming.h"
#include "obs/scope.h"
#include "journal/server_journal.h"
#include "report/json.h"
#include "server/canonical.h"
#include "server/plan_cache.h"
#include "server/service.h"
#include "server/socket_server.h"

namespace dmf::server {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("dmf_server_test_" + tag + "_" +
              std::to_string(static_cast<unsigned long>(::getpid()))))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string planLine(const std::string& ratio, std::uint64_t demand,
                     unsigned storage) {
  return "{\"op\":\"plan\",\"ratio\":\"" + ratio +
         "\",\"demand\":" + std::to_string(demand) +
         ",\"storage\":" + std::to_string(storage) + "}";
}

/// The "plan" payload of a response, as raw bytes.
std::string planBytes(const std::string& response) {
  const report::Json json = report::Json::parse(response);
  EXPECT_TRUE(json.at("ok").asBool()) << response;
  return json.at("plan").dump();
}

std::string sourceOf(const std::string& response) {
  return report::Json::parse(response).at("source").asString();
}

// --------------------------------------------------------------------------
// Canonical request keying (satellite: 2:4:2 == 1:2:1).

CanonicalRequest canonicalOf(const std::string& line) {
  return canonicalize(PlanRequest::fromJson(report::Json::parse(line)));
}

TEST(ServerCanonical, GoldenKeyFormat) {
  const CanonicalRequest c = canonicalOf(
      "{\"ratio\":\"2:1:1:1:1:1:9\",\"demand\":20,\"storage\":4,"
      "\"algo\":\"MM\",\"scheme\":\"SRS\",\"mixers\":3}");
  EXPECT_EQ(c.key(),
            "v1|ratio=2:1:1:1:1:1:9|algo=MM|scheme=SRS|d=20|cap=4|mc=3|opt=0");
}

TEST(ServerCanonical, EquivalentRatiosShareOneKey) {
  const std::string a =
      canonicalOf("{\"ratio\":\"2:4:2\",\"demand\":4}").key();
  const std::string b =
      canonicalOf("{\"ratio\":\"1:2:1\",\"demand\":4}").key();
  const std::string c =
      canonicalOf("{\"ratio\":\"8:16:8\",\"demand\":4}").key();
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(a, "v1|ratio=1:2:1|algo=MM|scheme=SRS|d=4|cap=4|mc=0|opt=0");
}

TEST(ServerCanonical, DistinctRequestsGetDistinctKeys) {
  const std::string base = canonicalOf(
      "{\"ratio\":\"3:1\",\"demand\":8}").key();
  EXPECT_NE(canonicalOf("{\"ratio\":\"3:1\",\"demand\":9}").key(), base);
  EXPECT_NE(canonicalOf("{\"ratio\":\"3:1\",\"demand\":8,\"storage\":5}")
                .key(),
            base);
  EXPECT_NE(canonicalOf(
                "{\"ratio\":\"3:1\",\"demand\":8,\"algo\":\"RMA\"}").key(),
            base);
  EXPECT_NE(canonicalOf(
                "{\"ratio\":\"3:1\",\"demand\":8,\"optimize\":true}").key(),
            base);
  EXPECT_NE(canonicalOf("{\"ratio\":\"1:3\",\"demand\":8}").key(), base);
}

TEST(ServerCanonical, RejectsMalformedRequests) {
  EXPECT_THROW(canonicalOf("{\"demand\":4}"), std::invalid_argument);
  EXPECT_THROW(canonicalOf("{\"ratio\":\"3:1\"}"), std::invalid_argument);
  EXPECT_THROW(canonicalOf("{\"ratio\":\"3:4\",\"demand\":4}"),
               std::invalid_argument);
  EXPECT_THROW(canonicalOf("{\"ratio\":\"3:1\",\"demand\":0}"),
               std::invalid_argument);
  EXPECT_THROW(canonicalOf("{\"ratio\":\"3:1\",\"demand\":4,\"storage\":0}"),
               std::invalid_argument);
  EXPECT_THROW(
      canonicalOf("{\"ratio\":\"3:1\",\"demand\":4,\"scheme\":\"XX\"}"),
      std::invalid_argument);
  EXPECT_THROW(
      canonicalOf("{\"ratio\":\"3:1\",\"demand\":4,\"algo\":\"XX\"}"),
      std::invalid_argument);
  EXPECT_THROW(canonicalOf("{\"ratio\":3,\"demand\":4}"),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// PlanCache: LRU order, eviction, first-value-wins, persistent tier.

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache(PlanCache::Options{2, ""});
  cache.put("a", "plan-a");
  cache.put("b", "plan-b");
  ASSERT_TRUE(cache.get("a").has_value());  // a is now MRU, b is LRU
  cache.put("c", "plan-c");                 // evicts b
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(PlanCache, DuplicatePutKeepsFirstValue) {
  PlanCache cache(PlanCache::Options{4, ""});
  cache.put("k", "first");
  cache.put("k", "second");
  EXPECT_EQ(cache.get("k").value(), "first");
}

TEST(PlanCache, RejectsBadOptions) {
  EXPECT_THROW(PlanCache(PlanCache::Options{0, ""}), std::invalid_argument);
  EXPECT_THROW(
      PlanCache(PlanCache::Options{4, "/nonexistent-dir-for-test/cache"}),
      std::invalid_argument);
}

TEST(PlanCache, PersistentTierSurvivesRestartByteIdentically) {
  TempDir dir("cache_tier");
  const std::string plan = "{\"totalCycles\":7,\"passes\":[1,2,3]}";
  {
    PlanCache cache(PlanCache::Options{4, dir.path()});
    cache.put("key-1", plan);
  }
  PlanCache reborn(PlanCache::Options{4, dir.path()});
  const auto hit = reborn.get("key-1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, plan);  // byte-identical through the disk round trip
  EXPECT_EQ(reborn.stats().diskHits, 1u);
  // Promoted into memory: the second get is a memory hit.
  (void)reborn.get("key-1");
  EXPECT_EQ(reborn.stats().hits, 1u);
}

TEST(PlanCache, CorruptDiskEntryDegradesToMiss) {
  TempDir dir("cache_corrupt");
  {
    PlanCache cache(PlanCache::Options{4, dir.path()});
    cache.put("key-1", "{\"a\":1}");
  }
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    std::ofstream(entry.path(), std::ios::trunc) << "not json";
  }
  PlanCache reborn(PlanCache::Options{4, dir.path()});
  EXPECT_FALSE(reborn.get("key-1").has_value());
  EXPECT_EQ(reborn.stats().misses, 1u);
}

TEST(PlanCache, TornDiskWriteDegradesToMiss) {
  // Entries are published atomically (tmp + fsync + rename), so a torn
  // entry should never exist — but if one does (pre-durability file, disk
  // damage), it must read as a miss, never as a half-parsed plan.
  TempDir dir("cache_torn");
  {
    PlanCache cache(PlanCache::Options{4, dir.path()});
    cache.put("key-1", "{\"totalCycles\":7,\"passes\":[1,2,3]}");
  }
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  PlanCache reborn(PlanCache::Options{4, dir.path()});
  EXPECT_FALSE(reborn.get("key-1").has_value());
  EXPECT_EQ(reborn.stats().misses, 1u);
  // And no .tmp intermediates were ever left behind by the atomic writes.
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    EXPECT_EQ(entry.path().extension(), ".json");
  }
}

TEST(PlanCache, DiskEntryForDifferentKeyIsNotServed) {
  // The file name is a hash; the key inside is the identity. Swap the key
  // field and the entry must degrade to a miss, not serve the wrong plan.
  TempDir dir("cache_wrongkey");
  {
    PlanCache cache(PlanCache::Options{4, dir.path()});
    cache.put("key-1", "{\"a\":1}");
  }
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    report::Json doc = report::Json::object();
    doc.set("key", std::string("key-OTHER")).set("plan", std::string("{}"));
    std::ofstream(entry.path(), std::ios::trunc) << doc.dump();
  }
  PlanCache reborn(PlanCache::Options{4, dir.path()});
  EXPECT_FALSE(reborn.get("key-1").has_value());
}

// --------------------------------------------------------------------------
// PlanService: caching, coalescing, error taxonomy, determinism.

TEST(ServerService, CacheHitIsByteIdenticalToColdPlan) {
  PlanService service(ServiceOptions{});
  const std::string line = planLine("2:1:1:1:1:1:9", 32, 3);
  const std::string cold = service.handle(line);
  const std::string warm = service.handle(line);
  EXPECT_EQ(sourceOf(cold), "planned");
  EXPECT_EQ(sourceOf(warm), "cache");
  EXPECT_EQ(planBytes(cold), planBytes(warm));

  // ...and identical to what the engine library produces directly.
  const engine::MdstEngine engine(Ratio({2, 1, 1, 1, 1, 1, 9}));
  engine::StreamingRequest request;
  request.demand = 32;
  request.storageCap = 3;
  const engine::StreamingPlan plan = engine::planStreaming(engine, request);
  EXPECT_EQ(planBytes(cold), engine::toJson(plan).dump());
}

TEST(ServerService, EquivalentRatiosHitOneEntry) {
  PlanService service(ServiceOptions{});
  const std::string cold = service.handle(planLine("2:4:2", 4, 4));
  const std::string warm = service.handle(planLine("1:2:1", 4, 4));
  EXPECT_EQ(sourceOf(cold), "planned");
  EXPECT_EQ(sourceOf(warm), "cache");
  EXPECT_EQ(planBytes(cold), planBytes(warm));
  EXPECT_EQ(service.planned(), 1u);
  EXPECT_EQ(service.cache().stats().size, 1u);
}

TEST(ServerService, ResponsesAreIdenticalForEveryJobsValue) {
  const std::vector<std::string> lines = {
      planLine("2:1:1:1:1:1:9", 32, 3), planLine("3:1", 8, 3),
      planLine("7:3:3:3", 40, 4), planLine("1:2:1", 6, 4)};
  std::vector<std::string> baseline;
  for (unsigned jobs : {1u, 4u}) {
    ServiceOptions options;
    options.jobs = jobs;
    PlanService service(options);
    std::vector<std::string> responses;
    for (const std::string& line : lines) {
      responses.push_back(service.handle(line));
    }
    if (baseline.empty()) {
      baseline = responses;
    } else {
      EXPECT_EQ(responses, baseline) << "jobs=" << jobs;
    }
  }
}

TEST(ServerService, MalformedLinesNeverThrowAndKeepTaxonomy) {
  PlanService service(ServiceOptions{});
  auto kindOf = [&](const std::string& line) {
    const std::string response = service.handle(line);
    const report::Json json = report::Json::parse(response);
    EXPECT_FALSE(json.at("ok").asBool());
    return json.at("kind").asString();
  };
  EXPECT_EQ(kindOf("not json"), "parse");
  EXPECT_EQ(kindOf("{} trailing"), "parse");
  EXPECT_EQ(kindOf("[1,2,3]"), "parse");
  EXPECT_EQ(kindOf("{\"op\":\"nope\"}"), "request");
  EXPECT_EQ(kindOf("{\"op\":\"plan\"}"), "request");
  EXPECT_EQ(kindOf("{\"op\":\"plan\",\"ratio\":\"3:4\",\"demand\":4}"),
            "request");
  EXPECT_EQ(kindOf("{\"op\":\"plan\",\"ratio\":\"1:1:1:1:1:1:1:1\","
                   "\"demand\":32,\"storage\":1,\"mixers\":1}"),
            "infeasible");
}

TEST(ServerService, InfeasibleOutcomesAreNotCached) {
  PlanService service(ServiceOptions{});
  const std::string line =
      "{\"op\":\"plan\",\"ratio\":\"1:1:1:1:1:1:1:1\",\"demand\":32,"
      "\"storage\":1,\"mixers\":1}";
  (void)service.handle(line);
  (void)service.handle(line);
  EXPECT_EQ(service.cache().stats().size, 0u);
  EXPECT_EQ(service.planned(), 2u);  // recomputed (and refused) both times
}

TEST(ServerService, CoalescesConcurrentIdenticalRequests) {
  obs::Session session;
  obs::Scope scope(session);
  ServiceOptions options;
  options.jobs = 4;
  // Stretch the computation so every thread arrives inside the in-flight
  // window of the first.
  options.computeDelayNanosForTest = 50'000'000;  // 50 ms
  PlanService service(options);
  const std::string line = planLine("2:1:1:1:1:1:9", 16, 3);
  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back(
          [&service, &responses, &line, i] {
            responses[static_cast<std::size_t>(i)] = service.handle(line);
          });
    }
    for (std::thread& t : clients) t.join();
  }
  // Exactly one computation ran; every other client either coalesced onto
  // it or (having arrived after publication) hit the cache.
  EXPECT_EQ(service.planned(), 1u);
  EXPECT_EQ(service.coalesced() + service.cache().stats().hits,
            static_cast<std::uint64_t>(kClients - 1));
  EXPECT_GE(service.coalesced(), 1u);
  EXPECT_EQ(session.metrics.counter("server.coalesce").value(),
            service.coalesced());
  for (const std::string& response : responses) {
    EXPECT_EQ(planBytes(response), planBytes(responses[0]));
  }
}

TEST(ServerService, FleetArbitrationAccountsPerUserService) {
  ServiceOptions options;
  options.fleet = 2;
  options.fleetPolicy = "wfq";
  options.fleetWeights = {8.0, 1.0, 1.0};
  PlanService service(options);
  // Distinct plans from distinct users; the demand is the service cost the
  // policy accounts.
  (void)service.handle(planLine("2:1:1:1:1:1:9", 32, 3), nullptr, 0);
  (void)service.handle(planLine("3:1", 8, 3), nullptr, 1);
  (void)service.handle(planLine("1:2:1", 6, 4), nullptr, 5);  // folds to slot 2
  const FleetQueueStats stats = service.fleetStats();
  EXPECT_EQ(stats.lanes, 2u);
  EXPECT_EQ(stats.policy, "wfq");
  ASSERT_EQ(stats.userService.size(), 3u);
  EXPECT_EQ(stats.userService[0], 32u);
  EXPECT_EQ(stats.userService[1], 8u);
  EXPECT_EQ(stats.userService[2], 6u);
  ASSERT_EQ(stats.laneBusy.size(), 2u);
  EXPECT_EQ(stats.laneBusy[0] + stats.laneBusy[1], 32u + 8u + 6u);
  EXPECT_GT(stats.jainPermille, 0u);
  EXPECT_LE(stats.jainPermille, 1000u);

  // The stats op surfaces the same accounting for `dmfstream stats`.
  const report::Json statsJson =
      report::Json::parse(service.handle("{\"op\":\"stats\"}"));
  ASSERT_TRUE(statsJson.contains("fleet"));
  EXPECT_EQ(statsJson.at("fleet").at("policy").asString(), "wfq");
  EXPECT_EQ(statsJson.at("fleet").at("lanes").asUint(), 2u);
}

TEST(ServerService, UserFieldOverridesConnectionIdentityButNotTheKey) {
  ServiceOptions options;
  options.fleet = 1;
  options.fleetWeights = {1.0, 1.0};
  PlanService service(options);
  const std::string base = planLine("2:1:1:1:1:1:9", 16, 3);
  // Same plan, explicit "user":1 in the request body (connection user 0).
  std::string tagged = base;
  tagged.insert(tagged.size() - 1, ",\"user\":1");
  const std::string cold = service.handle(tagged, nullptr, 0);
  const std::string warm = service.handle(base, nullptr, 0);
  // Identity never enters the canonical key: the second request (different
  // user, same plan) is a cache hit on the first's entry.
  EXPECT_EQ(sourceOf(cold), "planned");
  EXPECT_EQ(sourceOf(warm), "cache");
  EXPECT_EQ(planBytes(cold), planBytes(warm));
  // But the service cost was accounted to the tagged user slot.
  const FleetQueueStats stats = service.fleetStats();
  ASSERT_EQ(stats.userService.size(), 2u);
  EXPECT_EQ(stats.userService[1], 16u);
  // A mistyped user field is a request error, not a crash.
  std::string bad = base;
  bad.insert(bad.size() - 1, ",\"user\":\"alice\"");
  const report::Json rejected = report::Json::parse(service.handle(bad));
  EXPECT_FALSE(rejected.at("ok").asBool());
  EXPECT_EQ(rejected.at("kind").asString(), "request");
}

// Regression: the leader used to drop its in-flight entry *before*
// publishing the outcome to its shared future. A follower arriving in that
// window missed the coalescing map, and — when LRU pressure had already
// evicted the freshly-put entry — missed the cache too, electing itself a
// duplicate leader: one request computed (and WAL-appended) twice. The fix
// publishes first, so a capacity-1 cache under concurrent eviction must
// still compute each distinct request exactly once per burst.
TEST(PlanCache, ForcedEvictionUnderCoalescingKeepsOneLeaderPerKey) {
  const std::string lineA = planLine("2:1:1:1:1:1:9", 16, 3);
  const std::string lineB = planLine("3:1", 8, 3);
  const std::string lineC = planLine("1:2:1", 6, 4);
  for (int iteration = 0; iteration < 15; ++iteration) {
    ServiceOptions options;
    options.cacheSize = 1;  // every distinct put evicts the previous entry
    options.jobs = 4;
    // Stretch computations so every client of lineA lands inside the
    // leader's in-flight window while lineB/lineC evict underneath it.
    options.computeDelayNanosForTest = 10'000'000;  // 10 ms
    PlanService service(options);
    constexpr int kClientsA = 6;
    std::vector<std::string> responsesA(kClientsA);
    std::string responseB;
    std::string responseC;
    {
      std::vector<std::thread> clients;
      clients.reserve(kClientsA + 2);
      for (int i = 0; i < kClientsA; ++i) {
        clients.emplace_back([&service, &responsesA, &lineA, i] {
          responsesA[static_cast<std::size_t>(i)] = service.handle(lineA);
        });
      }
      clients.emplace_back(
          [&service, &responseB, &lineB] { responseB = service.handle(lineB); });
      clients.emplace_back(
          [&service, &responseC, &lineC] { responseC = service.handle(lineC); });
      for (std::thread& t : clients) t.join();
    }
    // Exactly one computation per distinct request, despite the eviction
    // churn racing the leader's publication.
    EXPECT_EQ(service.planned(), 3u) << "iteration " << iteration;
    EXPECT_GE(service.cache().stats().evictions, 1u)
        << "capacity-1 cache saw no eviction pressure — the regression "
           "scenario was not exercised";
    for (const std::string& response : responsesA) {
      EXPECT_EQ(planBytes(response), planBytes(responsesA[0]));
    }
    EXPECT_FALSE(planBytes(responseB).empty());
    EXPECT_FALSE(planBytes(responseC).empty());
  }
}

TEST(ServerService, PersistentTierAnswersAfterRestartWithoutReplanning) {
  TempDir dir("service_restart");
  const std::string line = planLine("2:1:1:1:1:1:9", 32, 3);
  std::string cold;
  {
    ServiceOptions options;
    options.cacheDir = dir.path();
    PlanService service(options);
    cold = service.handle(line);
    EXPECT_EQ(sourceOf(cold), "planned");
  }
  ServiceOptions options;
  options.cacheDir = dir.path();
  PlanService reborn(options);
  const std::string warm = reborn.handle(line);
  EXPECT_EQ(sourceOf(warm), "cache");
  EXPECT_EQ(planBytes(warm), planBytes(cold));
  EXPECT_EQ(reborn.planned(), 0u);  // nothing recomputed across the restart
}

TEST(ServerService, JournalReplaysUnackedRequestsIntoTheCache) {
  TempDir dir("service_wal");
  const std::string line = planLine("1:3", 8, 3);
  {
    // Simulate a daemon killed mid-compute: the request was journaled on
    // admission but the ack (written after the cache put) never landed.
    journal::ServerJournal wal(dir.path());
    (void)wal.logRequest(line);
  }
  ServiceOptions options;
  options.journalDir = dir.path();
  PlanService service(options);
  EXPECT_EQ(service.replayJournal(), 1u);
  // The replayed computation went through the normal path and is cached:
  // the client's retry is answered without replanning.
  EXPECT_EQ(sourceOf(service.handle(line)), "cache");
}

TEST(ServerService, AckedRequestsAreNotReplayed) {
  TempDir dir("service_wal_acked");
  const std::string line = planLine("1:3", 8, 3);
  {
    ServiceOptions options;
    options.journalDir = dir.path();
    PlanService service(options);
    EXPECT_EQ(sourceOf(service.handle(line)), "planned");  // logged + acked
  }
  ServiceOptions options;
  options.journalDir = dir.path();
  PlanService reborn(options);
  EXPECT_EQ(reborn.replayJournal(), 0u);
  EXPECT_EQ(reborn.planned(), 0u);
}

TEST(ServerService, ReplayJournalIsANoOpWithoutAJournal) {
  PlanService service{ServiceOptions{}};
  EXPECT_EQ(service.replayJournal(), 0u);
}

TEST(ServerService, OpsPingStatsShutdown) {
  PlanService service(ServiceOptions{});
  bool shutdown = false;
  EXPECT_EQ(service.handle("{\"op\":\"ping\"}", &shutdown),
            "{\"ok\":true,\"op\":\"ping\"}");
  EXPECT_FALSE(shutdown);
  (void)service.handle(planLine("3:1", 4, 4));
  const report::Json stats =
      report::Json::parse(service.handle("{\"op\":\"stats\"}"));
  EXPECT_TRUE(stats.at("ok").asBool());
  EXPECT_EQ(stats.at("planned").asUint(), 1u);
  EXPECT_EQ(stats.at("cache").at("size").asUint(), 1u);
  EXPECT_EQ(service.handle("{\"op\":\"shutdown\"}", &shutdown),
            "{\"ok\":true,\"op\":\"shutdown\"}");
  EXPECT_TRUE(shutdown);
}

// --------------------------------------------------------------------------
// Observability (DESIGN.md §14): split cache-tier counters, the stats op's
// metrics snapshot, and one-trace-per-request span trees including the
// coalesced follower's reference to its leader.

TEST(ServerService, StatsCarriesMetricsSnapshotWhenSessionInstalled) {
  {
    PlanService bare(ServiceOptions{});
    const report::Json stats =
        report::Json::parse(bare.handle("{\"op\":\"stats\"}"));
    EXPECT_FALSE(stats.contains("metrics"));  // no session, no snapshot
    EXPECT_EQ(stats.at("requests").asUint(), 1u);
  }
  obs::Session session;
  obs::Scope scope(session);
  PlanService service(ServiceOptions{});
  (void)service.handle(planLine("3:1", 4, 4));
  const report::Json stats =
      report::Json::parse(service.handle("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.at("requests").asUint(), 2u);
  EXPECT_EQ(stats.at("planned").asUint(), 1u);
  EXPECT_EQ(stats.at("coalesced").asUint(), 0u);
  EXPECT_EQ(stats.at("modelCycles").asUint(), service.modelCycles());
  EXPECT_GT(service.modelCycles(), 0u);
  ASSERT_TRUE(stats.contains("metrics"));
  const report::Json& metrics = stats.at("metrics");
  EXPECT_GE(metrics.at("counters").at("server.requests").asUint(), 1u);
  EXPECT_TRUE(metrics.at("histograms").contains("server.request_nanos"));
}

TEST(ServerService, CacheTierCountersSplitMemoryAndDisk) {
  TempDir dir("tier_counters");
  obs::Session session;
  obs::Scope scope(session);
  const std::string line = planLine("2:1:1:1:1:1:9", 16, 3);
  {
    ServiceOptions options;
    options.cacheDir = dir.path();
    PlanService service(options);
    (void)service.handle(line);  // miss -> planned
    (void)service.handle(line);  // memory hit
  }
  EXPECT_EQ(session.metrics.counter("server.cache.miss").value(), 1u);
  EXPECT_EQ(session.metrics.counter("server.cache.mem_hit").value(), 1u);
  EXPECT_EQ(session.metrics.counter("server.cache.disk_hit").value(), 0u);
  ServiceOptions options;
  options.cacheDir = dir.path();
  PlanService reborn(options);
  (void)reborn.handle(line);  // memory cold after restart -> disk tier
  EXPECT_EQ(session.metrics.counter("server.cache.disk_hit").value(), 1u);
  EXPECT_EQ(session.metrics.counter("server.cache.miss").value(), 1u);
}

/// Span identity parsed back out of a recorded trace.
struct ParsedSpan {
  std::string name;
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;
  std::uint64_t parentSpanId = 0;
  std::uint64_t leaderTrace = 0;
  std::uint64_t leaderSpan = 0;
};

std::vector<ParsedSpan> parseSpans(const obs::TraceRecorder& recorder) {
  const report::Json trace = report::Json::parse(recorder.toJson().dump(2));
  std::vector<ParsedSpan> spans;
  const report::Json& events = trace.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const report::Json& e = events.at(i);
    if (e.at("ph").asString() != "X" || !e.contains("args")) continue;
    const report::Json& args = e.at("args");
    if (!args.contains("span_id")) continue;
    ParsedSpan span;
    span.name = e.at("name").asString();
    span.traceId = args.at("trace_id").asUint();
    span.spanId = args.at("span_id").asUint();
    if (args.contains("parent_span_id")) {
      span.parentSpanId = args.at("parent_span_id").asUint();
    }
    if (args.contains("leader_trace")) {
      span.leaderTrace =
          std::stoull(args.at("leader_trace").asString());
      span.leaderSpan = std::stoull(args.at("leader_span").asString());
    }
    spans.push_back(span);
  }
  return spans;
}

TEST(ServerService, ColdRequestSpansFormOneTrace) {
  obs::Session session;
  {
    obs::Scope scope(session);
    PlanService service(ServiceOptions{});
    (void)service.handle(planLine("3:1", 8, 3));
  }
  const std::vector<ParsedSpan> spans = parseSpans(session.trace);
  const ParsedSpan* root = nullptr;
  for (const ParsedSpan& span : spans) {
    if (span.name == "server.request") root = &span;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parentSpanId, 0u);
  // Every span of the request — probe, compute, engine internals spliced
  // across the admission queue — carries the root's trace id.
  std::set<std::string> names;
  for (const ParsedSpan& span : spans) {
    EXPECT_EQ(span.traceId, root->traceId) << span.name;
    names.insert(span.name);
  }
  EXPECT_TRUE(names.count("server.cache.probe"));
  EXPECT_TRUE(names.count("server.compute"));
  EXPECT_TRUE(names.count("engine.plan_streaming"));
}

TEST(ServerService, CoalescedFollowersReferenceTheLeaderTrace) {
  obs::Session session;
  std::uint64_t coalesced = 0;
  {
    obs::Scope scope(session);
    ServiceOptions options;
    options.jobs = 4;
    options.computeDelayNanosForTest = 50'000'000;  // 50 ms
    PlanService service(options);
    const std::string line = planLine("2:1:1:1:1:1:9", 16, 3);
    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&service, &line] { (void)service.handle(line); });
    }
    for (std::thread& t : clients) t.join();
    coalesced = service.coalesced();
  }
  ASSERT_GE(coalesced, 1u);

  const std::vector<ParsedSpan> spans = parseSpans(session.trace);
  // The leader is the request trace that ran the computation.
  std::uint64_t leaderTrace = 0;
  for (const ParsedSpan& span : spans) {
    if (span.name == "server.compute") leaderTrace = span.traceId;
  }
  ASSERT_NE(leaderTrace, 0u);
  std::map<std::uint64_t, const ParsedSpan*> requestsByTrace;
  for (const ParsedSpan& span : spans) {
    if (span.name == "server.request") {
      requestsByTrace.emplace(span.traceId, &span);
    }
  }
  std::size_t waits = 0;
  for (const ParsedSpan& span : spans) {
    if (span.name != "server.coalesce.wait") continue;
    ++waits;
    // The wait belongs to the follower's own trace...
    EXPECT_NE(span.traceId, leaderTrace);
    // ...and names the leader's request root, joinable in the trace file.
    EXPECT_EQ(span.leaderTrace, leaderTrace);
    const auto leader = requestsByTrace.find(span.leaderTrace);
    ASSERT_NE(leader, requestsByTrace.end());
    EXPECT_EQ(span.leaderSpan, leader->second->spanId);
  }
  EXPECT_EQ(waits, coalesced);
}

// --------------------------------------------------------------------------
// SocketServer: a real TCP round trip, including shutdown-by-request.

TEST(ServerSocket, RoundTripsRequestsOverTcp) {
  PlanService service(ServiceOptions{});
  SocketServer socket(service, SocketServerOptions{0});
  ASSERT_GT(socket.port(), 0);
  std::thread serverThread([&socket] { socket.run(); });

  std::istringstream in(planLine("3:1", 8, 3) + "\n" +
                        planLine("3:1", 8, 3) + "\n" +
                        "{\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  EXPECT_TRUE(driveLines(socket.port(), in, out));
  socket.stop();
  serverThread.join();

  std::vector<std::string> responses;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    responses.push_back(line);
  }
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(sourceOf(responses[0]), "planned");
  EXPECT_EQ(sourceOf(responses[1]), "cache");
  EXPECT_EQ(planBytes(responses[0]), planBytes(responses[1]));
  EXPECT_EQ(responses[2], "{\"ok\":true,\"op\":\"shutdown\"}");
}

TEST(ServerSocket, MalformedLinesKeepTheConnectionAlive) {
  PlanService service(ServiceOptions{});
  SocketServer socket(service, SocketServerOptions{0});
  std::thread serverThread([&socket] { socket.run(); });

  std::istringstream in("garbage\n{\"op\":\"ping\"}\n{\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  EXPECT_TRUE(driveLines(socket.port(), in, out));
  socket.stop();
  serverThread.join();

  const std::string text = out.str();
  EXPECT_NE(text.find("\"kind\":\"parse\""), std::string::npos);
  EXPECT_NE(text.find("{\"ok\":true,\"op\":\"ping\"}"), std::string::npos);
}

}  // namespace
}  // namespace dmf::server
