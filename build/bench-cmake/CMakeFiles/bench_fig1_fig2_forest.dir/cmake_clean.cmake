file(REMOVE_RECURSE
  "../bench/bench_fig1_fig2_forest"
  "../bench/bench_fig1_fig2_forest.pdb"
  "CMakeFiles/bench_fig1_fig2_forest.dir/bench_fig1_fig2_forest.cpp.o"
  "CMakeFiles/bench_fig1_fig2_forest.dir/bench_fig1_fig2_forest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fig2_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
