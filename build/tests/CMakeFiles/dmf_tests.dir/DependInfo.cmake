
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chip_test.cpp" "tests/CMakeFiles/dmf_tests.dir/chip_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/chip_test.cpp.o.d"
  "/root/repo/tests/contamination_test.cpp" "tests/CMakeFiles/dmf_tests.dir/contamination_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/contamination_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/dmf_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/error_model_test.cpp" "tests/CMakeFiles/dmf_tests.dir/error_model_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/error_model_test.cpp.o.d"
  "/root/repo/tests/forest_test.cpp" "tests/CMakeFiles/dmf_tests.dir/forest_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/forest_test.cpp.o.d"
  "/root/repo/tests/fraction_test.cpp" "tests/CMakeFiles/dmf_tests.dir/fraction_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/fraction_test.cpp.o.d"
  "/root/repo/tests/ga_scheduler_test.cpp" "tests/CMakeFiles/dmf_tests.dir/ga_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/ga_scheduler_test.cpp.o.d"
  "/root/repo/tests/heterogeneous_test.cpp" "tests/CMakeFiles/dmf_tests.dir/heterogeneous_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/heterogeneous_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/dmf_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mixgraph_test.cpp" "tests/CMakeFiles/dmf_tests.dir/mixgraph_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/mixgraph_test.cpp.o.d"
  "/root/repo/tests/mixture_value_test.cpp" "tests/CMakeFiles/dmf_tests.dir/mixture_value_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/mixture_value_test.cpp.o.d"
  "/root/repo/tests/multi_target_test.cpp" "tests/CMakeFiles/dmf_tests.dir/multi_target_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/multi_target_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/dmf_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/protocols_test.cpp" "tests/CMakeFiles/dmf_tests.dir/protocols_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/protocols_test.cpp.o.d"
  "/root/repo/tests/ratio_test.cpp" "tests/CMakeFiles/dmf_tests.dir/ratio_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/ratio_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/dmf_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/dmf_tests.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/sched_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/dmf_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/streaming_test.cpp" "tests/CMakeFiles/dmf_tests.dir/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/streaming_test.cpp.o.d"
  "/root/repo/tests/timed_router_test.cpp" "tests/CMakeFiles/dmf_tests.dir/timed_router_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/timed_router_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/dmf_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/dmf_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/dmf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/dmf_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dmf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/dmf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/dmf_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dmf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dmf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/dmf_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/mixgraph/CMakeFiles/dmf_mixgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/dmf/CMakeFiles/dmf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
