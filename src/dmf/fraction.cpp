#include "dmf/fraction.h"

#include <limits>
#include <stdexcept>

namespace dmf {

namespace {

void canonicalize(std::uint64_t& num, unsigned& exp) {
  if (num == 0) {
    exp = 0;
    return;
  }
  while (exp > 0 && (num & 1u) == 0) {
    num >>= 1;
    --exp;
  }
}

}  // namespace

DyadicFraction::DyadicFraction(std::uint64_t num, unsigned exp)
    : num_(num), exp_(exp) {
  if (exp > kMaxExponent) {
    throw std::invalid_argument("DyadicFraction: exponent " +
                                std::to_string(exp) + " exceeds limit");
  }
  canonicalize(num_, exp_);
}

double DyadicFraction::toDouble() const {
  return static_cast<double>(num_) /
         static_cast<double>(std::uint64_t{1} << exp_);
}

std::uint64_t DyadicFraction::numeratorAtScale(unsigned exp) const {
  if (exp < exp_ || exp > kMaxExponent) {
    throw std::invalid_argument("DyadicFraction: not representable at scale 2^" +
                                std::to_string(exp));
  }
  const unsigned shift = exp - exp_;
  if (shift > 0 &&
      num_ > (std::numeric_limits<std::uint64_t>::max() >> shift)) {
    throw std::overflow_error("DyadicFraction: scale overflow");
  }
  return num_ << shift;
}

DyadicFraction DyadicFraction::operator+(const DyadicFraction& o) const {
  const unsigned exp = std::max(exp_, o.exp_);
  const std::uint64_t a = numeratorAtScale(exp);
  const std::uint64_t b = o.numeratorAtScale(exp);
  if (a > std::numeric_limits<std::uint64_t>::max() - b) {
    throw std::overflow_error("DyadicFraction: addition overflow");
  }
  return DyadicFraction(a + b, exp);
}

DyadicFraction DyadicFraction::half() const {
  if (num_ == 0) return {};
  if (exp_ + 1 > kMaxExponent) {
    throw std::overflow_error("DyadicFraction: exponent overflow in half()");
  }
  return DyadicFraction(num_, exp_ + 1);
}

DyadicFraction DyadicFraction::mix(const DyadicFraction& a,
                                   const DyadicFraction& b) {
  return (a + b).half();
}

std::strong_ordering DyadicFraction::operator<=>(
    const DyadicFraction& o) const {
  const unsigned exp = std::max(exp_, o.exp_);
  return numeratorAtScale(exp) <=> o.numeratorAtScale(exp);
}

std::string DyadicFraction::toString() const {
  if (exp_ == 0) return std::to_string(num_);
  return std::to_string(num_) + "/2^" + std::to_string(exp_);
}

}  // namespace dmf
