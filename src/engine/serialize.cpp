#include "engine/serialize.h"

namespace dmf::engine {

using report::Json;

Json toJson(const MdstResult& result) {
  Json out = Json::object();
  out.set("completionTime", Json::number(std::uint64_t{result.completionTime}))
      .set("storageUnits", Json::number(std::uint64_t{result.storageUnits}))
      .set("mixSplits", Json::number(result.mixSplits))
      .set("waste", Json::number(result.waste))
      .set("inputDroplets", Json::number(result.inputDroplets))
      .set("componentTrees", Json::number(result.componentTrees))
      .set("mixers", Json::number(std::uint64_t{result.mixers}));
  Json perFluid = Json::array();
  for (std::uint64_t n : result.inputPerFluid) {
    perFluid.push(Json::number(n));
  }
  out.set("inputPerFluid", std::move(perFluid));
  return out;
}

Json toJson(const forest::TaskForest& forest,
            const sched::Schedule& schedule) {
  Json out = Json::object();
  out.set("ratio", Json::string(forest.graph().ratio().toString()))
      .set("demand", Json::number(forest.demand()))
      .set("scheme", Json::string(schedule.scheme))
      .set("mixers", Json::number(std::uint64_t{schedule.mixerCount}))
      .set("completionTime",
           Json::number(std::uint64_t{schedule.completionTime}));
  Json tasks = Json::array();
  for (forest::TaskId id = 0; id < forest.taskCount(); ++id) {
    const forest::Task& t = forest.task(id);
    Json task = Json::object();
    task.set("id", Json::number(std::uint64_t{id}))
        .set("label", Json::string(forest.taskLabel(id)))
        .set("tree", Json::number(std::uint64_t{t.tree}))
        .set("level", Json::number(std::uint64_t{t.level}))
        .set("cycle", Json::number(std::uint64_t{schedule.cycles[id]}))
        .set("mixer", Json::number(std::uint64_t{schedule.mixers[id]}));
    Json outputs = Json::array();
    for (const forest::OutputDroplet& drop : t.out) {
      Json droplet = Json::object();
      switch (drop.fate) {
        case forest::DropletFate::kConsumed:
          droplet.set("fate", Json::string("consumed"))
              .set("consumer", Json::number(std::uint64_t{drop.consumer}));
          break;
        case forest::DropletFate::kTarget:
          droplet.set("fate", Json::string("target"));
          break;
        case forest::DropletFate::kWaste:
          droplet.set("fate", Json::string("waste"));
          break;
      }
      outputs.push(std::move(droplet));
    }
    task.set("outputs", std::move(outputs));
    tasks.push(std::move(task));
  }
  out.set("tasks", std::move(tasks));
  return out;
}

Json toJson(const StreamingPlan& plan) {
  Json out = Json::object();
  out.set("perPassDemand", Json::number(plan.perPassDemand))
      .set("totalCycles", Json::number(plan.totalCycles))
      .set("totalWaste", Json::number(plan.totalWaste))
      .set("totalInput", Json::number(plan.totalInput))
      .set("peakStorage", Json::number(std::uint64_t{plan.storageUnits}))
      .set("mixers", Json::number(std::uint64_t{plan.mixers}));
  Json passes = Json::array();
  for (const StreamingPass& pass : plan.passes) {
    Json p = Json::object();
    p.set("demand", Json::number(pass.demand))
        .set("cycles", Json::number(std::uint64_t{pass.cycles}))
        .set("storage", Json::number(std::uint64_t{pass.storageUnits}))
        .set("waste", Json::number(pass.waste))
        .set("input", Json::number(pass.inputDroplets))
        .set("mixSplits", Json::number(pass.mixSplits));
    passes.push(std::move(p));
  }
  out.set("passes", std::move(passes));
  return out;
}

Json toJson(const MultiTargetResult& result) {
  Json shared = Json::object();
  shared.set("completionTime",
             Json::number(std::uint64_t{result.completionTime}))
      .set("storageUnits", Json::number(std::uint64_t{result.storageUnits}))
      .set("mixSplits", Json::number(result.mixSplits))
      .set("waste", Json::number(result.waste))
      .set("inputDroplets", Json::number(result.inputDroplets));
  Json separate = Json::object();
  separate
      .set("completionTime",
           Json::number(std::uint64_t{result.separateCompletionTime}))
      .set("storageUnits",
           Json::number(std::uint64_t{result.separateStorageUnits}))
      .set("waste", Json::number(result.separateWaste))
      .set("inputDroplets", Json::number(result.separateInputDroplets));
  Json out = Json::object();
  out.set("mixers", Json::number(std::uint64_t{result.mixers}))
      .set("shared", std::move(shared))
      .set("separate", std::move(separate));
  return out;
}

Json toJson(const PassCacheStats& stats) {
  Json out = Json::object();
  out.set("hits", stats.hits)
      .set("misses", stats.misses)
      .set("evaluations", stats.evaluations());
  Json timings = Json::object();
  timings.set("forestBuildNanos", stats.buildNanos)
      .set("scheduleNanos", stats.scheduleNanos)
      .set("storageCountNanos", stats.storageNanos)
      .set("totalNanos", stats.totalNanos());
  out.set("stageTimings", std::move(timings));
  return out;
}

Json toJson(const RecoveryReport& report) {
  Json out = Json::object();
  out.set("demand", Json::number(report.demand))
      .set("delivered", Json::number(report.delivered))
      .set("shortfall", Json::number(report.shortfall))
      .set("escapedErrors", Json::number(report.escapedErrors))
      .set("discarded", Json::number(report.discarded))
      .set("faultsInjected", Json::number(std::uint64_t{report.faults.size()}))
      .set("baseCompletion", Json::number(std::uint64_t{report.baseCompletion}))
      .set("completionCycle",
           Json::number(std::uint64_t{report.completionCycle}))
      .set("retryBudget", Json::number(std::uint64_t{report.retryBudget}))
      .set("roundsUsed", Json::number(std::uint64_t{report.roundsUsed}))
      .set("extraMixSplits", Json::number(report.extraMixSplits))
      .set("extraInputDroplets", Json::number(report.extraInputDroplets))
      .set("extraActuations", Json::number(report.extraActuations))
      .set("mixersLost", Json::number(std::uint64_t{report.mixersLost}))
      .set("storageLost", Json::number(std::uint64_t{report.storageLost}))
      .set("degraded", Json::boolean(report.degraded))
      .set("degradationReason", Json::string(report.degradationReason));
  Json faults = Json::array();
  for (const fault::FaultEvent& e : report.faults) {
    Json f = Json::object();
    f.set("kind", Json::string(std::string(fault::faultKindName(e.kind))))
        .set("cycle", Json::number(std::uint64_t{e.cycle}))
        .set("detail", Json::string(e.detail));
    if (e.magnitude > 0.0) f.set("magnitude", Json::number(e.magnitude));
    faults.push(std::move(f));
  }
  out.set("faults", std::move(faults));
  Json rounds = Json::array();
  for (const RepairRound& r : report.rounds) {
    Json round = Json::object();
    round.set("cycle", Json::number(std::uint64_t{r.cycle}))
        .set("span", Json::number(std::uint64_t{r.span}))
        .set("mixSplits", Json::number(r.mixSplits))
        .set("inputDroplets", Json::number(r.inputDroplets))
        .set("actuations", Json::number(r.actuations));
    Json needs = Json::array();
    for (const forest::NodeDemand& need : r.needs) {
      Json n = Json::object();
      n.set("node", Json::number(std::uint64_t{need.node}))
          .set("count", Json::number(need.count));
      needs.push(std::move(n));
    }
    round.set("needs", std::move(needs));
    rounds.push(std::move(round));
  }
  out.set("rounds", std::move(rounds));
  Json dead = Json::array();
  for (const chip::Cell& c : report.deadCells) {
    Json cell = Json::array();
    cell.push(Json::number(std::uint64_t{static_cast<unsigned>(c.x)}));
    cell.push(Json::number(std::uint64_t{static_cast<unsigned>(c.y)}));
    dead.push(std::move(cell));
  }
  out.set("deadCells", std::move(dead));
  return out;
}

}  // namespace dmf::engine
