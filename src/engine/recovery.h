// Demand-driven error recovery for chip execution (DESIGN.md §11).
//
// The forest engine's own demand arithmetic is the recovery mechanism: a
// lost or corrupted droplet of mix node v is exactly one extra unit of
// need(v), so re-running demand propagation with the flagged needs yields a
// minimal repair sub-forest — only the ancestors the replacement droplets
// require are re-executed, not the whole assay. RecoveryEngine replays a
// scheduled forest cycle-by-cycle against a FaultInjector, senses errors at
// checkpoints, builds repair forests via TaskForest's NodeDemand
// constructor, schedules them under the *remaining* mixer/storage budget
// (scheduleStorageCapped when a cap is given, scheduleSRS otherwise), and
// splices them into the in-flight run.
//
// Semantics are stall-don't-cancel: a consumer whose operand droplet was
// lost or discarded waits for the repair round to deliver a replacement
// instead of cancelling its whole subtree — cancelling would collapse the
// repair demand to the root and forfeit the demand-driven saving.
//
// The run is deterministic for a fixed (options, forest, schedule): one
// seeded generator drives every draw on a serial execution path, so results
// are independent of thread count. The engine never throws on faults; it
// degrades gracefully into a RecoveryReport with an explicit shortfall when
// the retry budget, input budget, cycle limit, or surviving hardware cannot
// cover the demand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/layout.h"
#include "fault/checkpoint.h"
#include "fault/fault_injector.h"
#include "forest/task_forest.h"
#include "sched/schedule.h"

namespace dmf::engine {

/// Configuration of one recovery run.
struct RecoveryOptions {
  /// Fault rates (all zero = fault-free replay).
  fault::FaultSpec faults;
  /// Seed of the injector's generator.
  std::uint64_t seed = 1;
  /// Sensing granularity and latency.
  fault::CheckpointOptions checkpoint;
  /// Repair rounds allowed before remaining errors become shortfall.
  unsigned retryBudget = 4;
  /// CF deviation above which a sensed droplet is flagged as erroneous;
  /// <= 0 selects the graph's quantization error 1/2^(d+1).
  double cfThreshold = 0.0;
  /// Storage budget for repair scheduling (scheduleStorageCapped);
  /// 0 = uncapped (scheduleSRS).
  unsigned storageCap = 0;
  /// Total input droplets the reservoirs hold (base + repairs);
  /// 0 = unlimited.
  std::uint64_t inputBudget = 0;
  /// Optional physical layout: enables electrode-death localization (dead
  /// mixers shrink the mixer bank, dead storage shrinks the cap) and
  /// actuation accounting of repair rounds. May be nullptr.
  const chip::Layout* layout = nullptr;
  /// Hard cycle limit; 0 picks (4 * baseCompletion + 256) * (budget + 1).
  unsigned maxCycles = 0;
};

/// One spliced repair round.
struct RepairRound {
  /// Mix cycle the round was spliced at (its tasks start the next cycle).
  unsigned cycle = 0;
  /// Completion span of the repair schedule (its own cycles).
  unsigned span = 0;
  /// The injected needs, node-sorted.
  std::vector<forest::NodeDemand> needs;
  /// Repair forest cost: extra mix-splits and input droplets.
  std::uint64_t mixSplits = 0;
  std::uint64_t inputDroplets = 0;
  /// Extra electrode actuations (0 without a layout).
  std::uint64_t actuations = 0;
};

/// Structured outcome of a recovery run — returned, never thrown.
struct RecoveryReport {
  /// Requested target droplets (the forest's demand D).
  std::uint64_t demand = 0;
  /// Targets emitted and never flagged by a checkpoint.
  std::uint64_t delivered = 0;
  /// demand - delivered when positive: the explicit degradation figure.
  std::uint64_t shortfall = 0;
  /// Delivered targets that are in fact beyond the CF threshold — faults
  /// the sensing model never caught (latency or granularity too coarse).
  std::uint64_t escapedErrors = 0;
  /// Droplets flagged and discarded (includes recalled bad targets).
  std::uint64_t discarded = 0;
  /// The injector's full fault trace.
  std::vector<fault::FaultEvent> faults;
  /// Repair rounds actually spliced.
  std::vector<RepairRound> rounds;
  /// Sums over rounds.
  std::uint64_t extraMixSplits = 0;
  std::uint64_t extraInputDroplets = 0;
  std::uint64_t extraActuations = 0;
  /// Fault-free completion (the input schedule's) vs actual last busy cycle.
  unsigned baseCompletion = 0;
  unsigned completionCycle = 0;
  /// Budget given / rounds consumed.
  unsigned retryBudget = 0;
  unsigned roundsUsed = 0;
  /// Hardware lost to electrode deaths.
  unsigned mixersLost = 0;
  unsigned storageLost = 0;
  std::vector<chip::Cell> deadCells;
  /// True when the run could not fully cover the demand (see reason).
  bool degraded = false;
  std::string degradationReason;

  [[nodiscard]] bool fullyRecovered() const {
    return shortfall == 0 && escapedErrors == 0;
  }
};

/// Replays a scheduled forest under fault injection with demand-driven
/// repair.
class RecoveryEngine {
 public:
  /// Throws std::invalid_argument on negative rates (via FaultSpec use) or
  /// checkpoint.everyLevels == 0.
  explicit RecoveryEngine(RecoveryOptions options);

  [[nodiscard]] const RecoveryOptions& options() const { return options_; }

  /// Runs the schedule against the fault model. `forest` must be the
  /// schedule's forest (validated). Deterministic for fixed options.
  [[nodiscard]] RecoveryReport run(const forest::TaskForest& forest,
                                   const sched::Schedule& schedule) const;

 private:
  RecoveryOptions options_;
};

/// Compact human-readable rendering of a report (CLI and demos).
[[nodiscard]] std::string renderReport(const RecoveryReport& report);

}  // namespace dmf::engine
