#include "forest/task_forest.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "runtime/arena.h"

namespace dmf::forest {

namespace {

using mixgraph::kNoNode;
using mixgraph::MixingGraph;
using mixgraph::NodeId;

// Safety valve: a forest this large means a absurd demand or ratio; refuse
// rather than exhaust memory.
constexpr std::uint64_t kMaxTasks = 50'000'000;

OperandClass classify(const MixingGraph& graph, NodeId node) {
  const auto& n = graph.node(node);
  const bool leftLeaf = graph.node(n.left).isLeaf();
  const bool rightLeaf = graph.node(n.right).isLeaf();
  if (leftLeaf && rightLeaf) return OperandClass::kTypeC;
  if (leftLeaf || rightLeaf) return OperandClass::kTypeB;
  return OperandClass::kTypeA;
}

}  // namespace

TaskForest::TaskForest(const MixingGraph& graph, std::uint64_t demand)
    : TaskForest(graph, std::vector<std::uint64_t>{demand}) {}

TaskForest::TaskForest(const MixingGraph& graph,
                       std::vector<std::uint64_t> demands)
    : graph_(&graph), demands_(std::move(demands)) {
  if (!graph.finalized()) {
    throw std::invalid_argument("TaskForest: graph must be finalized");
  }
  if (demands_.size() != graph.roots().size()) {
    throw std::invalid_argument(
        "TaskForest: need exactly one demand per graph root (" +
        std::to_string(graph.roots().size()) + ")");
  }
  for (std::uint64_t d : demands_) {
    if (d == 0) {
      throw std::invalid_argument("TaskForest: demands must be positive");
    }
  }
  demandNodes_ = graph.roots();
  build();
}

TaskForest::TaskForest(const MixingGraph& graph,
                       const std::vector<NodeDemand>& needs)
    : graph_(&graph) {
  if (!graph.finalized()) {
    throw std::invalid_argument("TaskForest: graph must be finalized");
  }
  if (needs.empty()) {
    throw std::invalid_argument("TaskForest: no demand injected");
  }
  for (const NodeDemand& need : needs) {
    if (need.node >= graph.nodeCount()) {
      throw std::invalid_argument("TaskForest: demand at unknown node " +
                                  std::to_string(need.node));
    }
    if (graph.node(need.node).isLeaf()) {
      throw std::invalid_argument(
          "TaskForest: demand at leaf node " + std::to_string(need.node) +
          " (a leaf droplet is a dispense, not a mix product)");
    }
    if (need.count == 0) {
      throw std::invalid_argument("TaskForest: demands must be positive");
    }
    // Duplicate nodes merge at the first occurrence.
    const auto it =
        std::find(demandNodes_.begin(), demandNodes_.end(), need.node);
    if (it == demandNodes_.end()) {
      demandNodes_.push_back(need.node);
      demands_.push_back(need.count);
    } else {
      demands_[static_cast<std::size_t>(it - demandNodes_.begin())] +=
          need.count;
    }
  }
  build();
}

void TaskForest::build() {
  const MixingGraph& graph = *graph_;
  const std::size_t nodeCount = graph.nodeCount();
  const std::vector<NodeId> topDown = graph.nodesByLevelDesc();

  // All build-time temporaries live in the per-thread scratch arena; a
  // demand-ladder sweep re-building forests back to back touches the same
  // warm chunks instead of hitting the system allocator per build.
  runtime::ArenaScope scratch(runtime::scratchArena());
  runtime::Arena& arena = scratch.arena();

  // Per-node demand-point index (for target-droplet allocation), kNoRoot
  // otherwise. For the classic constructors the demand points are the roots.
  constexpr std::size_t kNoRoot = static_cast<std::size_t>(-1);
  std::size_t* rootIndex = arena.allocate<std::size_t>(nodeCount);
  std::fill_n(rootIndex, nodeCount, kNoRoot);
  for (std::size_t r = 0; r < demandNodes_.size(); ++r) {
    rootIndex[demandNodes_[r]] = r;
  }

  // ---- demand propagation ------------------------------------------------
  std::uint64_t* need = arena.allocate<std::uint64_t>(nodeCount);
  std::fill_n(need, nodeCount, 0);
  execs_.assign(nodeCount, 0);
  stats_ = ForestStats{};
  stats_.targets =
      std::accumulate(demands_.begin(), demands_.end(), std::uint64_t{0});
  stats_.inputPerFluid.assign(graph.ratio().fluidCount(), 0);

  for (std::size_t r = 0; r < demands_.size(); ++r) {
    need[demandNodes_[r]] += demands_[r];
  }
  std::uint64_t totalTasks = 0;
  for (NodeId v : topDown) {
    if (need[v] == 0) continue;
    const auto& n = graph.node(v);
    if (n.isLeaf()) {
      stats_.inputPerFluid[n.value.pureFluid()] += need[v];
      stats_.inputTotal += need[v];
      continue;
    }
    execs_[v] = (need[v] + 1) / 2;
    stats_.mixSplits += execs_[v];
    stats_.waste += 2 * execs_[v] - need[v];
    totalTasks += execs_[v];
    need[n.left] += execs_[v];
    need[n.right] += execs_[v];
  }
  for (NodeId root : demandNodes_) {
    stats_.componentTrees += execs_[root];
  }
  if (totalTasks > kMaxTasks ||
      totalTasks > std::numeric_limits<TaskId>::max() - 1) {
    throw std::overflow_error("TaskForest: forest too large (" +
                              std::to_string(totalTasks) + " mix-splits)");
  }

  // ---- task instantiation (level-ascending id order) ---------------------
  TaskId* taskBase = arena.allocate<TaskId>(nodeCount);
  std::fill_n(taskBase, nodeCount, kNoTask);
  tasks_.reserve(static_cast<std::size_t>(totalTasks));
  for (auto it = topDown.rbegin(); it != topDown.rend(); ++it) {
    const NodeId v = *it;
    if (graph.node(v).isLeaf() || execs_[v] == 0) continue;
    taskBase[v] = static_cast<TaskId>(tasks_.size());
    for (std::uint64_t k = 0; k < execs_[v]; ++k) {
      Task t;
      t.node = v;
      t.instance = static_cast<std::uint32_t>(k);
      t.level = graph.node(v).level;
      t.operandClass = classify(graph, v);
      tasks_.push_back(t);
    }
  }

  // ---- droplet allocation & dependency wiring ----------------------------
  // Droplets of node v are indexed 0 .. 2*execs(v)-1 in production order;
  // droplet j comes from instance j/2. A root's first demand[r] droplets are
  // targets; remaining droplets go to consumer positions in graph order,
  // each position taking one droplet per instance in instance order.
  for (NodeId v = 0; v < nodeCount; ++v) {
    if (graph.node(v).isLeaf() || execs_[v] == 0) continue;
    std::uint64_t next = 0;
    auto produce = [&](DropletFate fate, TaskId consumer) {
      Task& producer = tasks_[taskBase[v] + static_cast<TaskId>(next / 2)];
      producer.out[next % 2] = OutputDroplet{fate, consumer};
      ++next;
    };
    if (rootIndex[v] != kNoRoot) {
      for (std::uint64_t i = 0; i < demands_[rootIndex[v]]; ++i) {
        produce(DropletFate::kTarget, kNoTask);
      }
    }
    for (NodeId p : graph.consumers()[v]) {
      // `p` appears once per operand slot that references v.
      const bool leftSlot = graph.node(p).left == v;
      for (std::uint64_t k = 0; k < execs_[p]; ++k) {
        const TaskId consumer = taskBase[p] + static_cast<TaskId>(k);
        const TaskId producer =
            taskBase[v] + static_cast<TaskId>(next / 2);
        if (leftSlot) {
          tasks_[consumer].depLeft = producer;
        } else {
          tasks_[consumer].depRight = producer;
        }
        produce(DropletFate::kConsumed, consumer);
      }
    }
    while (next < 2 * execs_[v]) {
      produce(DropletFate::kWaste, kNoTask);
    }
  }

  // ---- component-tree labelling ------------------------------------------
  // Demand-point instances own trees, numbered across demand points in
  // target order; every other instance belongs to the tree of its first
  // consumer (consumers have larger ids, so one descending sweep settles
  // everything).
  std::uint32_t* treeBase = arena.allocate<std::uint32_t>(demandNodes_.size());
  std::fill_n(treeBase, demandNodes_.size(), 0);
  {
    std::uint32_t base = 0;
    for (std::size_t r = 0; r < demandNodes_.size(); ++r) {
      treeBase[r] = base;
      base += static_cast<std::uint32_t>(execs_[demandNodes_[r]]);
    }
  }
  for (TaskId id = static_cast<TaskId>(tasks_.size()); id-- > 0;) {
    Task& t = tasks_[id];
    if (rootIndex[t.node] != kNoRoot) {
      t.tree = treeBase[rootIndex[t.node]] + t.instance + 1;
      continue;
    }
    for (const OutputDroplet& drop : t.out) {
      if (drop.fate == DropletFate::kConsumed) {
        t.tree = tasks_[drop.consumer].tree;
        break;
      }
    }
  }

  buildSoaViews();
  validateOrThrow();
}

void TaskForest::buildSoaViews() {
  const std::size_t n = tasks_.size();
  levels_.resize(n);
  depLeft_.resize(n);
  depRight_.resize(n);
  outConsumer_.resize(2 * n);
  outFate_.resize(2 * n);
  initialPending_.resize(n);
  consumedOuts_.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    const Task& t = tasks_[id];
    levels_[id] = t.level;
    depLeft_[id] = t.depLeft;
    depRight_[id] = t.depRight;
    initialPending_[id] = static_cast<std::uint8_t>(
        (t.depLeft != kNoTask ? 1 : 0) + (t.depRight != kNoTask ? 1 : 0));
    std::uint8_t consumed = 0;
    for (std::size_t s = 0; s < 2; ++s) {
      outConsumer_[2 * id + s] = t.out[s].consumer;
      outFate_[2 * id + s] = static_cast<std::uint8_t>(t.out[s].fate);
      consumed = static_cast<std::uint8_t>(
          consumed + (t.out[s].fate == DropletFate::kConsumed ? 1 : 0));
    }
    consumedOuts_[id] = consumed;
  }
}

std::uint64_t TaskForest::demand() const { return stats_.targets; }

unsigned TaskForest::depth() const { return graph_->depth(); }

std::vector<TaskId> TaskForest::initialReady() const {
  std::vector<TaskId> ready;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].depLeft == kNoTask && tasks_[id].depRight == kNoTask) {
      ready.push_back(id);
    }
  }
  return ready;
}

std::string TaskForest::taskLabel(TaskId id) const {
  const Task& t = tasks_[id];
  return "m" + std::to_string(t.tree) + "." + std::to_string(t.node);
}

std::string TaskForest::toDot() const {
  std::string out = "digraph forest {\n  rankdir=BT;\n";
  // Cluster tasks by component tree, as in the paper's figures.
  for (std::uint64_t tree = 1; tree <= stats_.componentTrees; ++tree) {
    out += "  subgraph cluster_T" + std::to_string(tree) + " {\n    label=\"T" +
           std::to_string(tree) + "\";\n";
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      if (tasks_[id].tree != tree) continue;
      const bool emitsTarget =
          tasks_[id].out[0].fate == DropletFate::kTarget ||
          tasks_[id].out[1].fate == DropletFate::kTarget;
      const bool wastes = tasks_[id].out[0].fate == DropletFate::kWaste ||
                          tasks_[id].out[1].fate == DropletFate::kWaste;
      out += "    t" + std::to_string(id) + " [label=\"" + taskLabel(id) +
             "\\nL" + std::to_string(tasks_[id].level) + "\"" +
             (emitsTarget ? ", shape=doublecircle" : "") +
             (wastes ? ", color=red" : "") + "];\n";
    }
    out += "  }\n";
  }
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    for (const OutputDroplet& drop : tasks_[id].out) {
      if (drop.fate != DropletFate::kConsumed) continue;
      const bool crossTree = tasks_[drop.consumer].tree != tasks_[id].tree;
      out += "  t" + std::to_string(id) + " -> t" +
             std::to_string(drop.consumer) + " [color=" +
             (crossTree ? "brown" : "darkgreen") + "];\n";
    }
  }
  out += "}\n";
  return out;
}

void TaskForest::validateOrThrow() const {
  std::uint64_t targets = 0;
  std::uint64_t waste = 0;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const Task& t = tasks_[id];
    const auto& n = graph_->node(t.node);
    if (n.isLeaf()) {
      throw std::logic_error("TaskForest: task on a leaf node");
    }
    const bool leftLeaf = graph_->node(n.left).isLeaf();
    const bool rightLeaf = graph_->node(n.right).isLeaf();
    if (leftLeaf != (t.depLeft == kNoTask) ||
        rightLeaf != (t.depRight == kNoTask)) {
      throw std::logic_error("TaskForest: operand wiring disagrees with graph");
    }
    for (TaskId dep : {t.depLeft, t.depRight}) {
      if (dep == kNoTask) continue;
      if (dep >= tasks_.size() || tasks_[dep].level >= t.level) {
        throw std::logic_error("TaskForest: bad dependency");
      }
      bool found = false;
      for (const OutputDroplet& drop : tasks_[dep].out) {
        found = found ||
                (drop.fate == DropletFate::kConsumed && drop.consumer == id);
      }
      if (!found) {
        throw std::logic_error("TaskForest: consumer back-pointer missing");
      }
    }
    for (const OutputDroplet& drop : t.out) {
      targets += drop.fate == DropletFate::kTarget ? 1 : 0;
      waste += drop.fate == DropletFate::kWaste ? 1 : 0;
    }
    if (t.tree == 0 || t.tree > stats_.componentTrees) {
      throw std::logic_error("TaskForest: task without a component tree");
    }
  }
  if (targets != stats_.targets || waste != stats_.waste) {
    throw std::logic_error("TaskForest: droplet accounting broken");
  }
  // Droplet conservation: every input droplet becomes a target or a waste
  // droplet ((1:1) mix-split preserves droplet count).
  if (stats_.inputTotal != stats_.targets + stats_.waste) {
    throw std::logic_error("TaskForest: droplet conservation violated");
  }
}

}  // namespace dmf::forest
