// Plan-as-a-service throughput and latency (DESIGN.md §13).
//
// Three phases over the PCR master-mix workload (2:1:1:1:1:1:9):
//   cold      — distinct requests, every one a cache miss that plans
//   hot       — one request repeated, served from the in-memory cache
//   sustained — 4 client threads hammering a mixed working set
//
// Reported through BENCH_bench_server_throughput.json (bench_obs.h):
//   server.bench.cold.p50_nanos / p99_nanos
//   server.bench.hit.p50_nanos / p99_nanos   (the <100us p50 target)
//   server.bench.sustained.requests_per_sec
// plus the serving layer's own counters (server.cache.mem_hit/miss,
// server.coalesce, server.request_nanos histogram).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_obs.h"
#include "obs/scope.h"
#include "server/service.h"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t nanosSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

std::string planLine(std::uint64_t demand, unsigned storage) {
  return "{\"op\":\"plan\",\"ratio\":\"2:1:1:1:1:1:9\",\"demand\":" +
         std::to_string(demand) + ",\"storage\":" + std::to_string(storage) +
         "}";
}

std::uint64_t percentile(std::vector<std::uint64_t> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

void gaugeLatency(const std::string& phase,
                  const std::vector<std::uint64_t>& samples) {
  dmf::obs::gaugeSet(("server.bench." + phase + ".p50_nanos").c_str(),
                     percentile(samples, 0.50));
  dmf::obs::gaugeSet(("server.bench." + phase + ".p99_nanos").c_str(),
                     percentile(samples, 0.99));
  std::cout << phase << ": p50 " << percentile(samples, 0.50) / 1000
            << " us, p99 " << percentile(samples, 0.99) / 1000 << " us over "
            << samples.size() << " requests\n";
}

}  // namespace

int main(int argc, char** argv) {
  dmf::bench::BenchSession bench("bench_server_throughput", argc, argv);
  dmf::server::ServiceOptions options;
  options.jobs = 4;
  dmf::server::PlanService service(options);

  // Phase 1: cold — every demand is a distinct canonical key.
  constexpr std::uint64_t kColdRequests = 64;
  std::vector<std::uint64_t> coldNanos;
  coldNanos.reserve(kColdRequests);
  for (std::uint64_t d = 0; d < kColdRequests; ++d) {
    const std::string line = planLine(8 + d, 3);
    const auto start = Clock::now();
    (void)service.handle(line);
    coldNanos.push_back(nanosSince(start));
  }
  gaugeLatency("cold", coldNanos);

  // Phase 2: hot — one key, straight off the in-memory LRU. The serving
  // contract is a p50 in the microseconds (<100us), byte-identical to cold.
  constexpr std::uint64_t kHotRequests = 5000;
  const std::string hotLine = planLine(20, 3);
  (void)service.handle(hotLine);  // fill
  std::vector<std::uint64_t> hitNanos;
  hitNanos.reserve(kHotRequests);
  for (std::uint64_t i = 0; i < kHotRequests; ++i) {
    const auto start = Clock::now();
    (void)service.handle(hotLine);
    hitNanos.push_back(nanosSince(start));
  }
  gaugeLatency("hit", hitNanos);

  // Phase 3: sustained — 4 clients over a mixed working set (mostly hits,
  // some colds), the daemon's steady state.
  constexpr unsigned kClients = 4;
  constexpr std::uint64_t kPerClient = 2000;
  std::atomic<std::uint64_t> completed{0};
  const auto start = Clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned t = 0; t < kClients; ++t) {
      clients.emplace_back([&service, &completed, t] {
        for (std::uint64_t i = 0; i < kPerClient; ++i) {
          // 1-in-64 requests is a fresh demand (a cold plan; kept small —
          // planStreaming is superlinear in demand); the rest cycle
          // through 8 already-cached keys.
          // Fresh keys stay in 100..227: distinct per (client, round)
          // without ballooning the plan size.
          const std::uint64_t demand = (i % 64 == 63)
                                           ? 100 + t * 32 + i / 64
                                           : 8 + (i % 8);
          (void)service.handle(planLine(demand, 3));
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& c : clients) c.join();
  }
  const double seconds = static_cast<double>(nanosSince(start)) / 1e9;
  const auto rps = static_cast<std::uint64_t>(
      static_cast<double>(completed.load()) / seconds);
  dmf::obs::gaugeSet("server.bench.sustained.requests_per_sec", rps);
  std::cout << "sustained: " << completed.load() << " requests in " << seconds
            << " s = " << rps << " req/s across " << kClients << " clients\n";

  const dmf::server::PlanCache::Stats stats = service.cache().stats();
  std::cout << "cache: " << stats.hits << " hits, " << stats.misses
            << " misses, " << stats.evictions << " evictions; planned "
            << service.planned() << ", coalesced " << service.coalesced()
            << "\n";
  return 0;
}
