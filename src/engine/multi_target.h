// Multi-target preparation engine: satisfy droplet demands for several
// different mixtures from one shared mixing forest (the SDMT/MDMT
// generalization of the paper's Table 1). Sharing sub-mixtures across
// targets saves reactant and time over preparing each target separately.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/mdst.h"

namespace dmf::engine {

/// One target mixture and how many droplets of it are needed.
struct TargetDemand {
  Ratio ratio;
  std::uint64_t demand = 2;
};

/// Metrics of a multi-target run, with the separate-preparation comparison.
struct MultiTargetResult {
  /// Shared-forest execution.
  unsigned completionTime = 0;
  unsigned storageUnits = 0;
  std::uint64_t mixSplits = 0;
  std::uint64_t waste = 0;
  std::uint64_t inputDroplets = 0;
  unsigned mixers = 0;
  /// Baseline: each target prepared by its own engine, run back to back on
  /// the same mixer bank (sum of completion times / inputs, max storage).
  unsigned separateCompletionTime = 0;
  unsigned separateStorageUnits = 0;
  std::uint64_t separateInputDroplets = 0;
  std::uint64_t separateWaste = 0;
};

/// Runs the shared multi-target forest and the separate baseline. All
/// targets must share fluid space and accuracy (buildMultiTarget's rules).
/// `mixers == 0` resolves to the minimum mixer count that lets the shared
/// two-droplet pass finish at its critical path. The per-target separate
/// baseline fans out over `jobs` workers (1 = serial, 0 = one per core);
/// the reduction runs in target order, so results are identical for every
/// job count. Throws std::invalid_argument on an empty target list or zero
/// demands.
[[nodiscard]] MultiTargetResult runMultiTarget(
    const std::vector<TargetDemand>& targets, Scheme scheme = Scheme::kSRS,
    unsigned mixers = 0, unsigned jobs = 1);

}  // namespace dmf::engine
