# Empty compiler generated dependencies file for dmf_chip.
# This may be replaced when dependencies are built.
