# Empty dependencies file for dilution_streaming.
# This may be replaced when dependencies are built.
