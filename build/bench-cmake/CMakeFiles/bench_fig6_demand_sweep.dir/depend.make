# Empty dependencies file for bench_fig6_demand_sweep.
# This may be replaced when dependencies are built.
