# Empty dependencies file for dmf_forest.
# This may be replaced when dependencies are built.
