#include "dmf/fraction.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dmf {
namespace {

TEST(DyadicFraction, DefaultIsZero) {
  DyadicFraction f;
  EXPECT_TRUE(f.isZero());
  EXPECT_EQ(f.numerator(), 0u);
  EXPECT_EQ(f.exponent(), 0u);
}

TEST(DyadicFraction, CanonicalizesEvenNumerators) {
  DyadicFraction f(8, 4);  // 8/16 == 1/2
  EXPECT_EQ(f.numerator(), 1u);
  EXPECT_EQ(f.exponent(), 1u);
}

TEST(DyadicFraction, ZeroCanonicalizesToExponentZero) {
  DyadicFraction f(0, 10);
  EXPECT_TRUE(f.isZero());
  EXPECT_EQ(f.exponent(), 0u);
}

TEST(DyadicFraction, RejectsHugeExponent) {
  EXPECT_THROW(DyadicFraction(1, 63), std::invalid_argument);
}

TEST(DyadicFraction, WholeNumbers) {
  EXPECT_TRUE(DyadicFraction::whole(1).isOne());
  EXPECT_EQ(DyadicFraction::whole(7).toDouble(), 7.0);
}

TEST(DyadicFraction, AdditionAlignsScales) {
  DyadicFraction a(1, 2);  // 1/4
  DyadicFraction b(1, 1);  // 1/2
  DyadicFraction sum = a + b;
  EXPECT_EQ(sum, DyadicFraction(3, 2));
}

TEST(DyadicFraction, MixHalvesTheSum) {
  DyadicFraction pure = DyadicFraction::whole(1);
  DyadicFraction zero;
  EXPECT_EQ(DyadicFraction::mix(pure, zero), DyadicFraction(1, 1));
  EXPECT_EQ(DyadicFraction::mix(DyadicFraction(1, 1), DyadicFraction(1, 2)),
            DyadicFraction(3, 3));
}

TEST(DyadicFraction, NumeratorAtScale) {
  DyadicFraction half(1, 1);
  EXPECT_EQ(half.numeratorAtScale(4), 8u);
  EXPECT_THROW((void)half.numeratorAtScale(0), std::invalid_argument);
}

TEST(DyadicFraction, OrderingIsByValue) {
  EXPECT_LT(DyadicFraction(1, 2), DyadicFraction(1, 1));
  EXPECT_GT(DyadicFraction(3, 2), DyadicFraction(1, 1));
  EXPECT_EQ(DyadicFraction(2, 2) <=> DyadicFraction(1, 1),
            std::strong_ordering::equal);
}

TEST(DyadicFraction, ToDoubleIsExactForSmallValues) {
  EXPECT_DOUBLE_EQ(DyadicFraction(9, 4).toDouble(), 9.0 / 16.0);
}

TEST(DyadicFraction, ToStringFormats) {
  EXPECT_EQ(DyadicFraction(9, 4).toString(), "9/2^4");
  EXPECT_EQ(DyadicFraction::whole(3).toString(), "3");
}

TEST(DyadicFraction, AdditionOverflowThrows) {
  DyadicFraction big(0xFFFFFFFFFFFFFFFFull, 0);
  EXPECT_THROW((void)(big + big), std::overflow_error);
}

TEST(DyadicFraction, MixIsCommutative) {
  DyadicFraction a(3, 3);
  DyadicFraction b(5, 4);
  EXPECT_EQ(DyadicFraction::mix(a, b), DyadicFraction::mix(b, a));
}

}  // namespace
}  // namespace dmf
