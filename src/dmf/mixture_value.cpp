#include "dmf/mixture_value.h"

#include <algorithm>
#include <stdexcept>

namespace dmf {

namespace {

bool allEven(const std::vector<std::uint64_t>& v) {
  return std::all_of(v.begin(), v.end(),
                     [](std::uint64_t n) { return (n & 1u) == 0; });
}

}  // namespace

MixtureValue::MixtureValue(std::vector<std::uint64_t> numerators,
                           unsigned exponent)
    : num_(std::move(numerators)), exp_(exponent) {
  if (num_.empty()) {
    throw std::invalid_argument("MixtureValue: empty numerator vector");
  }
  if (exp_ > DyadicFraction::kMaxExponent) {
    throw std::invalid_argument("MixtureValue: exponent out of range");
  }
  std::uint64_t sum = 0;
  for (std::uint64_t n : num_) {
    if (n > (std::uint64_t{1} << exp_)) {
      throw std::invalid_argument("MixtureValue: numerator exceeds denominator");
    }
    sum += n;
  }
  if (sum != (std::uint64_t{1} << exp_)) {
    throw std::invalid_argument(
        "MixtureValue: numerators sum to " + std::to_string(sum) +
        ", expected 2^" + std::to_string(exp_));
  }
  while (exp_ > 0 && allEven(num_)) {
    for (auto& n : num_) n >>= 1;
    --exp_;
  }
}

MixtureValue MixtureValue::pure(std::size_t fluid, std::size_t fluidCount) {
  if (fluidCount == 0 || fluid >= fluidCount) {
    throw std::invalid_argument("MixtureValue::pure: fluid index " +
                                std::to_string(fluid) + " out of range");
  }
  std::vector<std::uint64_t> num(fluidCount, 0);
  num[fluid] = 1;
  return MixtureValue(std::move(num), 0);
}

MixtureValue MixtureValue::target(const Ratio& ratio) {
  return MixtureValue(ratio.parts(), ratio.accuracy());
}

MixtureValue MixtureValue::mix(const MixtureValue& a, const MixtureValue& b) {
  if (a.fluidCount() != b.fluidCount()) {
    throw std::invalid_argument("MixtureValue::mix: fluid spaces differ");
  }
  if (a == b) {
    throw std::invalid_argument(
        "MixtureValue::mix: mixing two identical droplets is a no-op");
  }
  const unsigned exp = std::max(a.exp_, b.exp_) + 1;
  if (exp > DyadicFraction::kMaxExponent) {
    throw std::overflow_error("MixtureValue::mix: exponent overflow");
  }
  std::vector<std::uint64_t> num(a.fluidCount());
  for (std::size_t i = 0; i < num.size(); ++i) {
    // a_i/2^ea scaled to 2^(exp-1), likewise b; the (1:1) mix halves the sum.
    num[i] = (a.num_[i] << (exp - 1 - a.exp_)) +
             (b.num_[i] << (exp - 1 - b.exp_));
  }
  return MixtureValue(std::move(num), exp);
}

DyadicFraction MixtureValue::concentration(std::size_t i) const {
  if (i >= num_.size()) {
    throw std::invalid_argument("MixtureValue::concentration: index out of range");
  }
  return DyadicFraction(num_[i], exp_);
}

bool MixtureValue::isPure() const {
  return exp_ == 0;
}

std::size_t MixtureValue::pureFluid() const {
  if (!isPure()) {
    throw std::logic_error("MixtureValue::pureFluid: droplet is a mixture");
  }
  for (std::size_t i = 0; i < num_.size(); ++i) {
    if (num_[i] == 1) return i;
  }
  throw std::logic_error("MixtureValue::pureFluid: corrupt value");
}

std::size_t MixtureValue::hash() const {
  std::size_t h = std::hash<unsigned>{}(exp_);
  for (std::uint64_t n : num_) {
    h ^= std::hash<std::uint64_t>{}(n) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

std::string MixtureValue::toString() const {
  if (isPure()) {
    return "pure(x" + std::to_string(pureFluid() + 1) + ")";
  }
  std::string out = "{";
  for (std::size_t i = 0; i < num_.size(); ++i) {
    if (i != 0) out += ':';
    out += std::to_string(num_[i]);
  }
  out += "}/2^" + std::to_string(exp_);
  return out;
}

}  // namespace dmf
