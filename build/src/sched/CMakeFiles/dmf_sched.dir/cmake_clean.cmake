file(REMOVE_RECURSE
  "CMakeFiles/dmf_sched.dir/ga_scheduler.cpp.o"
  "CMakeFiles/dmf_sched.dir/ga_scheduler.cpp.o.d"
  "CMakeFiles/dmf_sched.dir/gantt.cpp.o"
  "CMakeFiles/dmf_sched.dir/gantt.cpp.o.d"
  "CMakeFiles/dmf_sched.dir/heterogeneous.cpp.o"
  "CMakeFiles/dmf_sched.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/dmf_sched.dir/schedule.cpp.o"
  "CMakeFiles/dmf_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/dmf_sched.dir/schedulers.cpp.o"
  "CMakeFiles/dmf_sched.dir/schedulers.cpp.o.d"
  "libdmf_sched.a"
  "libdmf_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
