#include "obs/trace.h"

namespace dmf::obs {

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceRecorder::nowNanos() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t TraceRecorder::threadTrack() {
  // Caller holds mutex_.
  const auto [it, inserted] = threadIds_.emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(threadIds_.size() + 1));
  (void)inserted;
  return it->second;
}

void TraceRecorder::completeEvent(
    std::string name, std::string category, std::uint64_t startNanos,
    std::uint64_t durationNanos,
    std::vector<std::pair<std::string, std::string>> args) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{std::move(name), std::move(category), 'X',
                               startNanos, durationNanos, 1, threadTrack(), 0,
                               0, 0, std::move(args)});
}

void TraceRecorder::completeEvent(
    std::string name, std::string category, std::uint64_t startNanos,
    std::uint64_t durationNanos, const SpanContext& context,
    std::uint64_t parentSpanId,
    std::vector<std::pair<std::string, std::string>> args) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{std::move(name), std::move(category), 'X',
                               startNanos, durationNanos, 1, threadTrack(),
                               context.traceId, context.spanId, parentSpanId,
                               std::move(args)});
}

void TraceRecorder::instantEvent(
    std::string name, std::string category,
    std::vector<std::pair<std::string, std::string>> args) {
  const std::uint64_t now = nowNanos();
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{std::move(name), std::move(category), 'i', now,
                               0, 1, threadTrack(), 0, 0, 0, std::move(args)});
}

void TraceRecorder::modelEvent(
    std::string name, std::string category, std::uint64_t start,
    std::uint64_t duration, std::uint32_t track,
    std::vector<std::pair<std::string, std::string>> args) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Model time: one schedule cycle renders as one microsecond.
  events_.push_back(TraceEvent{std::move(name), std::move(category), 'X',
                               start * 1000, duration * 1000, 2, track, 0, 0,
                               0, std::move(args)});
}

std::size_t TraceRecorder::eventCount() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

namespace {

report::Json metadataEvent(const std::string& kind, std::uint32_t pid,
                           std::uint32_t tid, const std::string& label) {
  report::Json meta = report::Json::object();
  meta.set("name", kind);
  meta.set("ph", std::string("M"));
  meta.set("pid", std::uint64_t{pid});
  meta.set("tid", std::uint64_t{tid});
  report::Json args = report::Json::object();
  args.set("name", label);
  meta.set("args", std::move(args));
  return meta;
}

}  // namespace

report::Json TraceRecorder::toJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  report::Json events = report::Json::array();

  events.push(metadataEvent("process_name", 1, 0, "dmfstream (wall clock)"));
  events.push(metadataEvent("process_name", 2, 0, "plan timeline (cycles)"));
  for (const auto& [id, track] : threadIds_) {
    events.push(metadataEvent("thread_name", 1, track,
                              track == 1 ? "main" : "worker-" +
                                                        std::to_string(track)));
  }

  for (const TraceEvent& e : events_) {
    report::Json event = report::Json::object();
    event.set("name", e.name);
    if (!e.category.empty()) event.set("cat", e.category);
    event.set("ph", std::string(1, e.phase));
    // Chrome trace timestamps are microseconds; keep sub-us precision.
    event.set("ts", static_cast<double>(e.startNanos) / 1000.0);
    if (e.phase == 'X') {
      event.set("dur", static_cast<double>(e.durationNanos) / 1000.0);
    }
    if (e.phase == 'i') event.set("s", std::string("t"));
    event.set("pid", std::uint64_t{e.pid});
    event.set("tid", std::uint64_t{e.tid});
    if (e.spanId != 0 || !e.args.empty()) {
      report::Json args = report::Json::object();
      // Span identity first, in a fixed order, so one request's lifecycle is
      // greppable by "trace_id":N across every thread track.
      if (e.spanId != 0) {
        args.set("trace_id", e.traceId);
        args.set("span_id", e.spanId);
        if (e.parentSpanId != 0) args.set("parent_span_id", e.parentSpanId);
      }
      for (const auto& [key, value] : e.args) args.set(key, value);
      event.set("args", std::move(args));
    }
    events.push(std::move(event));
  }

  report::Json out = report::Json::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", std::string("ms"));
  return out;
}

}  // namespace dmf::obs
