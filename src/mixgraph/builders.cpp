#include <stdexcept>

#include "mixgraph/builders.h"

namespace dmf::mixgraph {

std::string_view algorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::MM:
      return "MM";
    case Algorithm::RMA:
      return "RMA";
    case Algorithm::MTCS:
      return "MTCS";
    case Algorithm::RSM:
      return "RSM";
  }
  throw std::invalid_argument("algorithmName: unknown algorithm");
}

MixingGraph buildGraph(const Ratio& ratio, Algorithm algo) {
  switch (algo) {
    case Algorithm::MM:
      return buildMM(ratio);
    case Algorithm::RMA:
      return buildRMA(ratio);
    case Algorithm::MTCS:
      return buildMTCS(ratio);
    case Algorithm::RSM:
      return buildRSM(ratio);
  }
  throw std::invalid_argument("buildGraph: unknown algorithm");
}

}  // namespace dmf::mixgraph
