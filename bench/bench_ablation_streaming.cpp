// Ablation: streaming pass-size policy. The paper fills each pass with the
// LARGEST feasible demand D'; this harness compares that rule against an
// exhaustive search over pass sizes (planStreamingOptimized) on the Table 4
// grid, showing where the max-D' rule leaves cycles on the table.
#include <iostream>

#include "engine/streaming.h"
#include "protocols/protocols.h"
#include "report/table.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("ablation_streaming");
  using namespace dmf;

  std::cout << "# Ablation — streaming pass-size policy (PCR master-mix, "
               "3 mixers)\n# cell: passes (total cycles, total waste)\n\n";

  const std::vector<double>& percentages =
      protocols::pcrMasterMixPercentages();

  report::Table table({"d", "q'", "D", "max-D' rule (paper)",
                       "optimized pass size", "cycles saved"});
  std::uint64_t saved = 0;
  std::size_t cells = 0;
  for (unsigned d : {4u, 5u, 6u}) {
    const Ratio ratio = protocols::approximatePercentages(percentages, d);
    engine::MdstEngine engine(ratio);
    for (unsigned cap : {3u, 5u, 7u}) {
      for (std::uint64_t demand : {16u, 20u, 32u}) {
        engine::StreamingRequest request;
        request.demand = demand;
        request.storageCap = cap;
        request.mixers = 3;
        const engine::StreamingPlan paper = planStreaming(engine, request);
        const engine::StreamingPlan opt =
            planStreamingOptimized(engine, request);
        auto cell = [](const engine::StreamingPlan& plan) {
          return std::to_string(plan.passes.size()) + " (" +
                 std::to_string(plan.totalCycles) + "," +
                 std::to_string(plan.totalWaste) + ")";
        };
        table.addRow({std::to_string(d), std::to_string(cap),
                      std::to_string(demand), cell(paper), cell(opt),
                      std::to_string(paper.totalCycles - opt.totalCycles)});
        saved += paper.totalCycles - opt.totalCycles;
        ++cells;
      }
    }
  }
  std::cout << table.render() << "\nTotal cycles saved by pass-size search "
            << "across " << cells << " grid cells: " << saved << "\n";
  return 0;
}
