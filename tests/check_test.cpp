// The checker checked: the oracle library must accept everything the
// pipeline produces and reject hand-corrupted artifacts, and the fuzz
// driver must be deterministic, round-trippable, and able to shrink.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "check/fuzzer.h"
#include "check/oracles.h"
#include "engine/mdst.h"
#include "engine/streaming.h"
#include "mixgraph/builders.h"
#include "sched/schedulers.h"

namespace dmf {
namespace {

using check::CheckResult;
using check::FuzzCase;
using check::Fuzzer;
using check::FuzzOptions;
using forest::TaskForest;
using mixgraph::Algorithm;

TaskForest makeForest(Algorithm algo, std::uint64_t demand) {
  static const Ratio kRatio{2, 1, 1, 1, 1, 1, 9};
  // The graphs are cached per algorithm so repeated tests stay cheap.
  static engine::MdstEngine engine(kRatio);
  return engine.buildForest(algo, demand);
}

TEST(CheckOracles, CleanForestPassesEveryOracle) {
  for (Algorithm algo : {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS,
                         Algorithm::RSM}) {
    const TaskForest f = makeForest(algo, 20);
    CheckResult out;
    check::checkForestConservation(f, out);
    check::checkForestWiring(f, out);
    check::checkMixtureCorrectness(f, out);
    EXPECT_TRUE(out.ok()) << out.summary();
    EXPECT_GT(out.checksRun, 0u);
  }
}

TEST(CheckOracles, StorageOracleMatchesAlgorithm3) {
  const TaskForest f = makeForest(Algorithm::MM, 26);
  for (unsigned mixers : {1u, 2u, 4u}) {
    for (const sched::Schedule& s :
         {sched::scheduleMMS(f, mixers), sched::scheduleSRS(f, mixers),
          sched::scheduleOMS(f, mixers)}) {
      EXPECT_EQ(check::storageOracle(f, s), sched::countStorage(f, s))
          << s.scheme << " M=" << mixers;
    }
  }
}

TEST(CheckOracles, ScheduleOracleAcceptsValidSchedules) {
  const TaskForest f = makeForest(Algorithm::RMA, 14);
  const sched::Schedule srs = sched::scheduleSRS(f, 3);
  const sched::Schedule mms = sched::scheduleMMS(f, 3);
  CheckResult out;
  check::checkScheduledForest(f, srs, 0, out);
  check::checkSrsContract(f, srs, mms, out);
  EXPECT_TRUE(out.ok()) << out.summary();
}

TEST(CheckOracles, ScheduleOracleRejectsPrecedenceViolation) {
  const TaskForest f = makeForest(Algorithm::MM, 8);
  sched::Schedule s = sched::scheduleSRS(f, 2);
  // Yank a dependent task back to cycle 1: its operands now arrive late.
  for (forest::TaskId id = 0; id < f.taskCount(); ++id) {
    if (f.task(id).depLeft != forest::kNoTask) {
      s.cycles[id] = 1;
      break;
    }
  }
  CheckResult out;
  check::checkScheduleValidity(f, s, out);
  EXPECT_FALSE(out.ok());
}

TEST(CheckOracles, ScheduleOracleRejectsDoubleBookedMixer) {
  const TaskForest f = makeForest(Algorithm::MM, 8);
  sched::Schedule s = sched::scheduleMMS(f, 2);
  ASSERT_GE(f.taskCount(), 2u);
  // Two tasks, one (cycle, mixer) slot.
  s.cycles[1] = s.cycles[0];
  s.mixers[1] = s.mixers[0];
  CheckResult out;
  check::checkScheduleValidity(f, s, out);
  EXPECT_FALSE(out.ok());
}

TEST(CheckOracles, StreamingPlanOracleAcceptsAndRejects) {
  const Ratio ratio{2, 1, 1, 1, 1, 1, 9};
  const engine::MdstEngine engine(ratio);
  engine::StreamingRequest request;
  request.demand = 32;
  request.storageCap = 3;
  const engine::StreamingPlan plan = engine::planStreaming(engine, request);
  {
    CheckResult out;
    check::checkStreamingPlan(engine, request, plan, out);
    EXPECT_TRUE(out.ok()) << out.summary();
  }
  {
    engine::StreamingPlan corrupted = plan;
    corrupted.totalCycles += 1;
    CheckResult out;
    check::checkStreamingPlan(engine, request, corrupted, out);
    EXPECT_FALSE(out.ok());
  }
}

TEST(CheckFuzzer, CaseJsonRoundTrip) {
  FuzzCase c;
  c.ratioParts = {2, 1, 1, 1, 1, 1, 9};
  c.algorithm = Algorithm::MTCS;
  c.scheme = engine::Scheme::kOMS;
  c.demand = 17;
  c.mixers = 3;
  c.storageCap = 5;
  c.faultSpec = "loss=0.1";
  c.faultSeed = 99;
  const FuzzCase back = FuzzCase::fromJson(c.toJson());
  EXPECT_EQ(back.ratioParts, c.ratioParts);
  EXPECT_EQ(back.algorithm, c.algorithm);
  EXPECT_EQ(back.scheme, c.scheme);
  EXPECT_EQ(back.demand, c.demand);
  EXPECT_EQ(back.mixers, c.mixers);
  EXPECT_EQ(back.storageCap, c.storageCap);
  EXPECT_EQ(back.faultSpec, c.faultSpec);
  EXPECT_EQ(back.faultSeed, c.faultSeed);
  EXPECT_NE(c.toCli().find("fuzz --replay"), std::string::npos);
}

TEST(CheckFuzzer, FromJsonRejectsMissingFields) {
  EXPECT_THROW(
      (void)FuzzCase::fromJson(report::Json::parse(R"({"ratio":"3:1"})")),
      std::invalid_argument);
  EXPECT_THROW((void)FuzzCase::fromJson(report::Json::parse("[1,2]")),
               std::invalid_argument);
}

TEST(CheckFuzzer, RunCaseCleanOnKnownGoodCase) {
  FuzzCase c;
  c.ratioParts = {2, 1, 1, 1, 1, 1, 9};
  c.demand = 12;
  c.mixers = 3;
  c.storageCap = 4;
  c.faultSpec = "split=0.05,loss=0.02";
  const Fuzzer fuzzer(FuzzOptions{});
  const CheckResult result = fuzzer.runCase(c);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_GT(result.checksRun, 100u);
}

TEST(CheckFuzzer, AbsurdDemandSurfacesAsFindingNotCrash) {
  // The shrunken reproducer of the first real sweep finding: a mutator
  // unsigned-underflow drove demand to ~2^64. The library's overflow guard
  // must turn that into a reported failure, never UB or a crash.
  const FuzzCase c = FuzzCase::fromJson(report::Json::parse(
      R"({"ratio":"3:3:2","algorithm":"RSM","scheme":"SRS",
          "demand":18446744073709551548,"mixers":1,"storageCap":2,
          "faultSpec":"","faultSeed":614})"));
  const Fuzzer fuzzer(FuzzOptions{});
  const CheckResult result = fuzzer.runCase(c);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.failures.front().find("exception"), std::string::npos);
}

TEST(CheckFuzzer, DeterministicForSeed) {
  FuzzOptions options;
  options.seed = 5;
  options.iterations = 40;
  const check::FuzzReport first = Fuzzer(options).run();
  const check::FuzzReport second = Fuzzer(options).run();
  EXPECT_EQ(first.casesRun, second.casesRun);
  EXPECT_EQ(first.checksRun, second.checksRun);
  EXPECT_EQ(first.distinctShapes, second.distinctShapes);
  EXPECT_EQ(first.findings.size(), second.findings.size());
  EXPECT_TRUE(first.ok()) << check::renderReport(first);
}

TEST(CheckFuzzer, ScopesRestrictTheOracleSet) {
  FuzzOptions options;
  options.seed = 3;
  options.iterations = 15;
  options.scope = "forest";
  const check::FuzzReport forestOnly = Fuzzer(options).run();
  options.scope = "all";
  const check::FuzzReport all = Fuzzer(options).run();
  EXPECT_TRUE(forestOnly.ok()) << check::renderReport(forestOnly);
  EXPECT_TRUE(all.ok()) << check::renderReport(all);
  EXPECT_LT(forestOnly.checksRun, all.checksRun);
}

TEST(CheckFuzzer, UnknownScopeThrows) {
  FuzzOptions options;
  options.scope = "bogus";
  EXPECT_THROW((void)Fuzzer(options).run(), std::invalid_argument);
}

TEST(CheckFuzzer, TimeBudgetTruncatesButNeverReorders) {
  FuzzOptions options;
  options.seed = 9;
  options.iterations = 100000;
  options.timeBudgetSeconds = 0.2;
  const check::FuzzReport report = Fuzzer(options).run();
  EXPECT_TRUE(report.timedOut);
  EXPECT_LT(report.casesRun, options.iterations);
  EXPECT_TRUE(report.ok()) << check::renderReport(report);
}

TEST(CheckFuzzer, ShrinkFindsTheMinimalDemand) {
  FuzzCase c;
  c.ratioParts = {2, 1, 1, 1, 1, 1, 9};
  c.algorithm = Algorithm::MTCS;
  c.demand = 48;
  c.mixers = 4;
  c.storageCap = 6;
  c.faultSpec = "loss=0.1";
  // Synthetic predicate: "fails" whenever demand >= 10. The shrinker must
  // land exactly on 10 and strip every irrelevant field on the way.
  unsigned steps = 0;
  const FuzzCase shrunk = Fuzzer::shrink(
      c, [](const FuzzCase& v) { return v.demand >= 10; }, &steps);
  EXPECT_EQ(shrunk.demand, 10u);
  EXPECT_EQ(shrunk.mixers, 1u);
  EXPECT_EQ(shrunk.storageCap, 0u);
  EXPECT_TRUE(shrunk.faultSpec.empty());
  EXPECT_EQ(shrunk.algorithm, Algorithm::MM);
  EXPECT_EQ(shrunk.ratioParts.size(), 2u);
  EXPECT_GT(steps, 0u);
}

TEST(CheckFuzzer, ShrinkKeepsTheOriginalWhenNothingSmallerFails) {
  FuzzCase c;
  c.ratioParts = {1, 3};
  c.demand = 1;
  c.mixers = 1;
  c.storageCap = 0;
  const FuzzCase shrunk =
      Fuzzer::shrink(c, [](const FuzzCase&) { return true; });
  EXPECT_EQ(shrunk.demand, 1u);
  EXPECT_EQ(shrunk.cost(), c.cost());
}

}  // namespace
}  // namespace dmf
