// Thread-safe span / instant-event recording with a Chrome trace-event JSON
// writer. The output of `toJson()` loads directly in chrome://tracing and
// Perfetto (https://ui.perfetto.dev): a {"traceEvents": [...]} object of
// complete ("ph":"X") and instant ("ph":"i") events with microsecond
// timestamps relative to the recorder's construction.
//
// Two timelines coexist, distinguished by pid:
//  * pid 1 — wall-clock events (real durations, one track per thread);
//  * pid 2 — model-time events whose "timestamps" are schedule cycles
//    (the streaming plan rendered as a Gantt chart, one track per pass).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "report/json.h"

namespace dmf::obs {

/// Request-scoped span identity (distributed-tracing style). A root span
/// starts a new trace (fresh traceId); children inherit the traceId and
/// record their parent's spanId. Ids are allocated from one atomic counter
/// per recorder, so they are small, unique, and stable within a trace file.
/// A zero id means "none" (event recorded outside any span context).
struct SpanContext {
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;

  [[nodiscard]] bool valid() const noexcept { return spanId != 0; }
};

/// One recorded trace event (already resolved to a thread-track id).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';               ///< 'X' complete span, 'i' instant
  std::uint64_t startNanos = 0;   ///< wall: ns since epoch; model: cycles*1000
  std::uint64_t durationNanos = 0;
  std::uint32_t pid = 1;          ///< 1 = wall clock, 2 = model time
  std::uint32_t tid = 0;
  std::uint64_t traceId = 0;      ///< 0 = outside any request context
  std::uint64_t spanId = 0;
  std::uint64_t parentSpanId = 0;
  /// Extra string arguments rendered into the event's "args" object.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects events from any number of threads behind one mutex. Recording is
/// cheap (one clock read + one lock per event) but not free — call sites gate
/// on obs::tracer() so a disabled run never reaches this class.
class TraceRecorder {
 public:
  TraceRecorder();

  /// Nanoseconds elapsed since this recorder was constructed.
  [[nodiscard]] std::uint64_t nowNanos() const;

  /// Allocates a fresh nonzero id (trace or span — one sequence serves
  /// both). Lock-free; ids are dense in allocation order.
  [[nodiscard]] std::uint64_t newId() noexcept {
    return nextId_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Records a complete span [startNanos, startNanos + durationNanos) on the
  /// calling thread's wall-clock track.
  void completeEvent(
      std::string name, std::string category, std::uint64_t startNanos,
      std::uint64_t durationNanos,
      std::vector<std::pair<std::string, std::string>> args = {});

  /// Records a complete span carrying its span context: the event's
  /// trace/span/parent ids are rendered into the trace-file args, so one
  /// request's full lifecycle is greppable by trace id across threads.
  void completeEvent(std::string name, std::string category,
                     std::uint64_t startNanos, std::uint64_t durationNanos,
                     const SpanContext& context, std::uint64_t parentSpanId,
                     std::vector<std::pair<std::string, std::string>> args);

  /// Records an instant event "now" on the calling thread's track.
  void instantEvent(std::string name, std::string category,
                    std::vector<std::pair<std::string, std::string>> args = {});

  /// Records a model-time span on the virtual timeline (pid 2): `start` and
  /// `duration` are schedule cycles, rendered as if one cycle were 1 us.
  /// `track` selects the row within the virtual process.
  void modelEvent(std::string name, std::string category, std::uint64_t start,
                  std::uint64_t duration, std::uint32_t track,
                  std::vector<std::pair<std::string, std::string>> args = {});

  [[nodiscard]] std::size_t eventCount() const;

  /// The full trace as a Chrome trace-event object:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"} including process/thread
  /// name metadata events.
  [[nodiscard]] report::Json toJson() const;

 private:
  /// Small dense id for the calling thread (registration order).
  std::uint32_t threadTrack();

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> nextId_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, std::uint32_t> threadIds_;
};

}  // namespace dmf::obs
