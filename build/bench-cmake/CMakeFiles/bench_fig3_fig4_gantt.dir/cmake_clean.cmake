file(REMOVE_RECURSE
  "../bench/bench_fig3_fig4_gantt"
  "../bench/bench_fig3_fig4_gantt.pdb"
  "CMakeFiles/bench_fig3_fig4_gantt.dir/bench_fig3_fig4_gantt.cpp.o"
  "CMakeFiles/bench_fig3_fig4_gantt.dir/bench_fig3_fig4_gantt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fig4_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
