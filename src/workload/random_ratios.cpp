#include "workload/random_ratios.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace dmf::workload {

RandomRatioGenerator::RandomRatioGenerator(std::uint64_t sum,
                                           std::size_t parts,
                                           std::uint64_t seed)
    : sum_(sum), parts_(parts), rng_(seed) {
  if (sum < 2 || !std::has_single_bit(sum)) {
    throw std::invalid_argument(
        "RandomRatioGenerator: sum must be a power of two >= 2");
  }
  if (parts < 2 || parts > sum) {
    throw std::invalid_argument("RandomRatioGenerator: bad part count");
  }
}

Ratio RandomRatioGenerator::next() {
  // Stars and bars: choose parts-1 distinct cut points in [1, sum-1]; the
  // gaps between consecutive cuts are the parts.
  std::unordered_set<std::uint64_t> cutSet;
  std::uniform_int_distribution<std::uint64_t> dist(1, sum_ - 1);
  while (cutSet.size() < parts_ - 1) {
    cutSet.insert(dist(rng_));
  }
  std::vector<std::uint64_t> cuts(cutSet.begin(), cutSet.end());
  std::sort(cuts.begin(), cuts.end());
  std::vector<std::uint64_t> partsVec;
  partsVec.reserve(parts_);
  std::uint64_t prev = 0;
  for (std::uint64_t c : cuts) {
    partsVec.push_back(c - prev);
    prev = c;
  }
  partsVec.push_back(sum_ - prev);
  return Ratio(std::move(partsVec));
}

}  // namespace dmf::workload
