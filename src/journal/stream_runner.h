// Journaled execution of streaming-plan runs (DESIGN.md §16).
//
// runStream() is the one code path behind `dmfstream stream`: it plans,
// optionally replays every pass against the fault model with demand-driven
// recovery, and — when a journal directory is given — records progress so a
// killed run resumes at the first unfinished pass instead of starting over.
//
// Journal layout under the directory:
//
//   snapshot.json  one CRC-framed record holding the full resume state
//                  (fingerprint, plan, completed-pass recovery reports),
//                  atomically republished every `snapshotEvery` passes
//   journal.log    framed records appended since the last snapshot:
//                  "plan" (the computed plan), "pass" (one completed pass
//                  and its recovery splices), "done"
//
// Resume = load snapshot, apply the log's records on top, re-execute the
// rest. Every pass p derives its fault seed as faultSeed + p, so the passes
// a resume re-executes draw exactly what the uninterrupted run drew and the
// final output is byte-identical — the property the `crash` fuzz scope
// asserts. A journal written by a different request is rejected up front
// (the fingerprint covers every output-shaping knob except --jobs, which is
// byte-identical by construction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/recovery.h"
#include "engine/streaming.h"

namespace dmf::engine {
class MdstEngine;
class PassCache;
}  // namespace dmf::engine

namespace dmf::journal {

/// Everything that shapes a journaled stream run's output.
struct StreamRunRequest {
  engine::StreamingRequest streaming;
  /// Exhaustive per-pass-demand search (planStreamingOptimized).
  bool optimize = false;
  /// Replay each pass against the fault model (the --inject path).
  bool inject = false;
  fault::FaultSpec faults;
  std::uint64_t faultSeed = 1;
  unsigned retryBudget = 4;
  unsigned checkpointEvery = 1;
  unsigned detectLatency = 0;
};

/// Journal/resume knobs, all inactive by default (plain in-memory run).
struct StreamRunOptions {
  /// Journal directory; empty = no journaling.
  std::string journalDir;
  /// Resume from the journal instead of starting fresh. Requires
  /// journalDir; throws std::invalid_argument when there is nothing to
  /// resume or the journal belongs to a different request.
  bool resume = false;
  /// Republish the snapshot (and truncate the log) every N completed
  /// passes; 0 disables periodic snapshots (final snapshot still written).
  unsigned snapshotEvery = 8;
  /// Crash hook for tests and the fuzzer: stop after journaling this many
  /// passes (1-based count) and return with `partial = true`. 0 = run to
  /// completion. Only meaningful with a journal.
  std::uint64_t stopAfterPass = 0;
};

/// Outcome of a (possibly journaled, possibly resumed) stream run.
struct StreamRunResult {
  engine::StreamingPlan plan;
  /// Per-pass recovery reports, in pass order (empty unless injecting).
  std::vector<engine::RecoveryReport> recovery;
  /// True when the run started from an existing journal.
  bool resumed = false;
  /// Passes restored from the journal rather than executed now.
  std::uint64_t journaledPasses = 0;
  /// True when stopAfterPass cut the run short (journal holds the state).
  bool partial = false;
};

/// The request fingerprint stored in (and checked against) the journal.
/// Covers the target ratio and every output-shaping request field; --jobs
/// is deliberately excluded (results are byte-identical across job counts).
[[nodiscard]] std::string fingerprint(const Ratio& ratio,
                                      const StreamRunRequest& request);

/// Runs a stream request, journaling and/or resuming per `options`.
///
/// Throws std::invalid_argument on bad options or a request/journal
/// mismatch, CorruptJournalError on a damaged journal (CLI exit 5), and
/// whatever planStreaming throws (InfeasibleError on an unsatisfiable cap).
[[nodiscard]] StreamRunResult runStream(const engine::MdstEngine& engine,
                                        const StreamRunRequest& request,
                                        engine::PassCache& cache,
                                        const StreamRunOptions& options = {});

}  // namespace dmf::journal
