// Prometheus text exposition (version 0.0.4) of a metrics snapshot
// (DESIGN.md §14).
//
// Works from the MetricsRegistry::snapshot() JSON shape, so the same
// renderer serves a live registry (`dmfstream stats --port P`), a snapshot
// file written by --metrics, and the BENCH_*.json blobs. Instrument names
// are sanitized to the Prometheus grammar (dots become underscores) under a
// "dmf_" prefix; counters get the conventional "_total" suffix; histograms
// render cumulative "_bucket{le=...}" series plus "_sum"/"_count" and
// derived p50/p95/p99 gauges estimated by linear interpolation within the
// fixed buckets (obs::histogramQuantile).
#pragma once

#include <string>

#include "obs/metrics.h"
#include "report/json.h"

namespace dmf::obs {

/// Renders a snapshot (the MetricsRegistry::snapshot() shape) as Prometheus
/// text. Throws std::invalid_argument when the JSON is not snapshot-shaped.
[[nodiscard]] std::string prometheusText(const report::Json& snapshot);

/// Convenience: snapshot + render in one step.
[[nodiscard]] std::string prometheusText(const MetricsRegistry& registry);

}  // namespace dmf::obs
