# Empty compiler generated dependencies file for dmfstream.
# This may be replaced when dependencies are built.
