// JSON serialization of engine artifacts, for downstream tooling (lab
// controllers, visualizers, notebooks).
#pragma once

#include "engine/mdst.h"
#include "engine/multi_target.h"
#include "engine/pass_cache.h"
#include "engine/recovery.h"
#include "engine/streaming.h"
#include "report/json.h"
#include "sched/schedule.h"

namespace dmf::engine {

/// Metrics of one MDST run.
[[nodiscard]] report::Json toJson(const MdstResult& result);

/// A full schedule: per-task cycle/mixer placement plus droplet routing
/// facts (operands, fates), enough to drive an external chip controller.
[[nodiscard]] report::Json toJson(const forest::TaskForest& forest,
                                  const sched::Schedule& schedule);

/// A streaming plan (pass list and totals).
[[nodiscard]] report::Json toJson(const StreamingPlan& plan);

/// A multi-target run: shared-forest metrics side by side with the
/// separate-preparation baseline.
[[nodiscard]] report::Json toJson(const MultiTargetResult& result);

/// Pass-cache counters (hit/miss accounting plus per-stage wall times of the
/// misses). Timings are wall-clock and therefore run-to-run nondeterministic;
/// keep them out of outputs that must be byte-stable.
[[nodiscard]] report::Json toJson(const PassCacheStats& stats);

/// A recovery run: demand coverage, fault trace, and repair-round costs.
/// Deterministic for a fixed seed/options, so safe in byte-stable outputs.
[[nodiscard]] report::Json toJson(const RecoveryReport& report);

/// Rebuilds a StreamingPlan from toJson(StreamingPlan) output. Lossless:
/// toJson(streamingPlanFromJson(j)) dumps byte-identically to j for any j
/// produced by toJson — the property the execution journal's resume path
/// relies on. Throws std::invalid_argument on a malformed document.
[[nodiscard]] StreamingPlan streamingPlanFromJson(const report::Json& json);

/// Rebuilds a RecoveryReport from toJson(RecoveryReport) output. Lossless
/// for every serialized field (FaultEvent::task is not serialized and
/// restores to its sentinel; re-serialization is still byte-identical).
/// Throws std::invalid_argument on a malformed document.
[[nodiscard]] RecoveryReport recoveryReportFromJson(const report::Json& json);

}  // namespace dmf::engine
