// Checked-in shrunken reproducers for the edge-case bugs the differential
// fuzzing work flushed out (DESIGN.md §12). Each test documents the pre-fix
// failure mode and fails (or hangs) when the fix regresses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "check/oracles.h"
#include "dmf/errors.h"
#include "engine/mdst.h"
#include "engine/streaming.h"
#include "mixgraph/builders.h"
#include "sched/schedulers.h"
#include "workload/random_ratios.h"

namespace dmf {
namespace {

using forest::TaskForest;
using mixgraph::Algorithm;

// --- RandomRatioGenerator coupon-collector stall -------------------------
// Pre-fix, next() drew stars-and-bars cut points by rejection sampling into
// a std::set; as parts approached sum the accept probability collapsed and
// parts == sum never terminated in reasonable time. The partial
// Fisher-Yates rewrite makes every draw O(parts).

TEST(CheckRegression, RandomRatioFullPartsReturnsInstantly) {
  // parts == sum: the only composition is all ones. Pre-fix this was a
  // multi-hour coupon-collector walk; now it must come back immediately.
  constexpr std::uint64_t kSum = std::uint64_t{1} << 20;
  workload::RandomRatioGenerator gen(kSum, kSum, 7);
  const Ratio ratio = gen.next();
  EXPECT_EQ(ratio.fluidCount(), kSum);
  EXPECT_TRUE(std::all_of(ratio.parts().begin(), ratio.parts().end(),
                          [](std::uint64_t p) { return p == 1; }));
}

TEST(CheckRegression, RandomRatioNearFullPartsReturnsInstantly) {
  constexpr std::uint64_t kSum = std::uint64_t{1} << 16;
  workload::RandomRatioGenerator gen(kSum, kSum - 1, 11);
  const Ratio ratio = gen.next();
  EXPECT_EQ(ratio.fluidCount(), kSum - 1);
  EXPECT_EQ(std::count(ratio.parts().begin(), ratio.parts().end(), 2), 1);
}

TEST(CheckRegression, RandomRatioGoldenValuesForSeed42) {
  // Pins the post-fix draw stream: seeded sweeps (property tests, fuzz CI)
  // must stay reproducible across refactors of the sampler.
  workload::RandomRatioGenerator gen(32, 5, 42);
  EXPECT_EQ(gen.next().toString(), "1:6:14:3:8");
  EXPECT_EQ(gen.next().toString(), "4:10:5:10:3");
  EXPECT_EQ(gen.next().toString(), "3:6:4:5:14");
}

// --- tryStorageCapped unsigned-underflow hazards -------------------------
// Pre-fix, the per-cycle admission loop tracked carried/consumed/budget in
// unsigned arithmetic with subtractions like `carried - consumedNow` whose
// operands came from two different admission passes; a bookkeeping slip
// would wrap to ~2^32 and admit everything. The fix computes in int64 and
// asserts the consumed <= carried invariant outright.

TEST(CheckRegression, StorageCappedLadderNeverWrapsOrOverflowsCap) {
  const Ratio ratio{2, 1, 1, 1, 1, 1, 9};
  const engine::MdstEngine engine(ratio);
  for (Algorithm algo : {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
    const TaskForest f = engine.buildForest(algo, 26);
    for (unsigned mixers : {1u, 2u, 4u}) {
      for (unsigned cap = 1; cap <= 10; ++cap) {
        try {
          const sched::Schedule s =
              sched::scheduleStorageCapped(f, mixers, cap);
          // A wrap would admit every task at once: the storage oracle (an
          // independent event-pair recount) must stay within the cap.
          check::CheckResult out;
          check::checkScheduledForest(f, s, cap, out);
          EXPECT_TRUE(out.ok()) << "algo " << mixgraph::algorithmName(algo)
                                << " M=" << mixers << " cap=" << cap << "\n"
                                << out.summary();
        } catch (const InfeasibleError&) {
          // A cap too tight for progress is the documented answer.
        }
      }
    }
  }
}

TEST(CheckRegression, StorageCappedThrowsTypedInfeasibleError) {
  const mixgraph::MixingGraph g =
      mixgraph::buildMM(Ratio{2, 1, 1, 1, 1, 1, 9});
  const TaskForest f(g, 8);
  // Cap 0 with one mixer cannot park the droplets a lone Type-A chain
  // needs. The throw must be the typed InfeasibleError (CLI exit 2), not a
  // generic runtime_error (which would now map to exit 3, "internal").
  EXPECT_THROW((void)sched::scheduleStorageCapped(f, 1, 0), InfeasibleError);
}

TEST(CheckRegression, PlanStreamingThrowsTypedInfeasibleError) {
  // Eight equal fluids build a balanced depth-3 tree: even a two-droplet
  // pass on one mixer must park two intermediates, so cap 1 is infeasible.
  const engine::MdstEngine engine(Ratio{1, 1, 1, 1, 1, 1, 1, 1});
  engine::StreamingRequest request;
  request.demand = 32;
  request.storageCap = 1;
  request.mixers = 1;
  EXPECT_THROW((void)engine::planStreaming(engine, request), InfeasibleError);
  EXPECT_THROW((void)engine::planStreamingOptimized(engine, request),
               InfeasibleError);
}

// --- minimumMixers runaway scan ------------------------------------------
// Pre-fix, the scan started at M=1 (wasting a full OMS schedule per mixer
// count below the width bound ceil(n/cp)) and only checked the runaway
// guard *after* scheduling. The fix starts at the width lower bound and
// guards before scheduling.

TEST(CheckRegression, MinimumMixersIsExactlyMinimal) {
  const Ratio ratio{2, 1, 1, 1, 1, 1, 9};
  const engine::MdstEngine engine(ratio);
  for (Algorithm algo : {Algorithm::MM, Algorithm::MTCS}) {
    for (std::uint64_t demand : {1u, 2u, 9u, 16u, 40u}) {
      const TaskForest f = engine.buildForest(algo, demand);
      const unsigned cp = sched::criticalPathLength(f);
      const unsigned m = sched::minimumMixers(f);
      EXPECT_EQ(sched::scheduleOMS(f, m).completionTime, cp)
          << "demand " << demand;
      if (m > 1) {
        EXPECT_GT(sched::scheduleOMS(f, m - 1).completionTime, cp)
            << "demand " << demand;
      }
      // The width bound the fixed scan starts from can never exceed the
      // answer.
      EXPECT_GE(m, std::max<std::uint64_t>(1, (f.taskCount() + cp - 1) / cp))
          << "demand " << demand;
    }
  }
}

TEST(CheckRegression, MinimumMixersLargeWideForestStaysFast) {
  // 512 droplets of a 7-fluid ratio: hundreds of tasks over a short
  // critical path. The pre-fix scan from M=1 re-scheduled the forest for
  // every mixer count below the width bound; post-fix the first probe is
  // already at the bound, so this completes in milliseconds.
  const engine::MdstEngine engine(Ratio{2, 1, 1, 1, 1, 1, 9});
  const TaskForest f = engine.buildForest(Algorithm::MM, 512);
  const unsigned m = sched::minimumMixers(f);
  EXPECT_EQ(sched::scheduleOMS(f, m).completionTime,
            sched::criticalPathLength(f));
}

}  // namespace
}  // namespace dmf
