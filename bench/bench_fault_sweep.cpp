// Fault sweep: demand-driven recovery on the paper's PCR mixture under
// injected faults. For a grid of droplet-loss and split-imbalance rates the
// harness replays the SRS schedule through the RecoveryEngine (8 seeds per
// cell) and reports delivery rate, repair rounds, extra mix-splits and the
// completion-time overhead of recovery — the robustness counterpart of the
// fault-free tables.
#include <cstdint>
#include <iostream>

#include "engine/mdst.h"
#include "engine/recovery.h"
#include "fault/fault_injector.h"
#include "forest/task_forest.h"
#include "protocols/protocols.h"
#include "report/table.h"
#include "sched/schedulers.h"

#include "bench_obs.h"

namespace {

struct CellStats {
  double delivered = 0.0;
  double rounds = 0.0;
  double extraMixSplits = 0.0;
  double overhead = 0.0;  // completion / baseCompletion
  unsigned degraded = 0;
};

constexpr std::uint64_t kSeeds = 8;

CellStats sweepCell(const dmf::forest::TaskForest& forest,
                    const dmf::sched::Schedule& schedule,
                    const dmf::engine::RecoveryOptions& base) {
  CellStats cell;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    dmf::engine::RecoveryOptions opts = base;
    opts.seed = seed;
    const dmf::engine::RecoveryReport r =
        dmf::engine::RecoveryEngine(opts).run(forest, schedule);
    cell.delivered += static_cast<double>(r.delivered);
    cell.rounds += static_cast<double>(r.roundsUsed);
    cell.extraMixSplits += static_cast<double>(r.extraMixSplits);
    cell.overhead += static_cast<double>(r.completionCycle) /
                     static_cast<double>(r.baseCompletion);
    if (r.degraded) ++cell.degraded;
  }
  const double n = static_cast<double>(kSeeds);
  cell.delivered /= n;
  cell.rounds /= n;
  cell.extraMixSplits /= n;
  cell.overhead /= n;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const dmf::bench::BenchSession benchObs("fault_sweep", argc, argv);
  using namespace dmf;

  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const std::uint64_t demand = 32;
  const unsigned mixers = 3;
  const forest::TaskForest forest =
      engine.buildForest(mixgraph::Algorithm::MM, demand);
  const sched::Schedule schedule = sched::scheduleSRS(forest, mixers);

  std::cout << "# Fault sweep — PCR master mix, demand " << demand << ", SRS/"
            << mixers << " mixers, base Tc " << schedule.completionTime
            << ", " << kSeeds << " seeds per cell\n\n";

  std::cout << "## Droplet loss x split imbalance (eps 0.4, retry budget 4)"
            << "\n\n";
  report::Table grid({"loss", "split", "delivered/" + std::to_string(demand),
                      "rounds", "extra M/S", "Tc ratio", "degraded"});
  for (double loss : {0.0, 0.05, 0.10, 0.20}) {
    for (double split : {0.0, 0.25, 0.50}) {
      engine::RecoveryOptions opts;
      opts.faults.lossRate = loss;
      opts.faults.splitRate = split;
      opts.faults.splitEps = 0.4;
      opts.retryBudget = 4;
      const CellStats cell = sweepCell(forest, schedule, opts);
      grid.addRow({report::fixed(loss, 2), report::fixed(split, 2),
                   report::fixed(cell.delivered, 1),
                   report::fixed(cell.rounds, 1),
                   report::fixed(cell.extraMixSplits, 1),
                   report::fixed(cell.overhead, 2),
                   std::to_string(cell.degraded) + "/" +
                       std::to_string(kSeeds)});
    }
  }
  std::cout << grid.render() << "\n";

  std::cout << "## Retry budget at loss 0.15 (eps 0.4, split 0.3)\n\n";
  report::Table budget({"budget", "delivered/" + std::to_string(demand),
                        "rounds", "extra M/S", "Tc ratio", "degraded"});
  for (unsigned retries : {0u, 1u, 2u, 4u, 8u}) {
    engine::RecoveryOptions opts;
    opts.faults.lossRate = 0.15;
    opts.faults.splitRate = 0.3;
    opts.faults.splitEps = 0.4;
    opts.retryBudget = retries;
    const CellStats cell = sweepCell(forest, schedule, opts);
    budget.addRow({std::to_string(retries),
                   report::fixed(cell.delivered, 1),
                   report::fixed(cell.rounds, 1),
                   report::fixed(cell.extraMixSplits, 1),
                   report::fixed(cell.overhead, 2),
                   std::to_string(cell.degraded) + "/" +
                       std::to_string(kSeeds)});
  }
  std::cout << budget.render()
            << "\nReading: each repair round re-propagates demand only at "
               "failed nodes, so the\nextra mix-split count tracks the fault "
               "count rather than the full forest size;\na small retry "
               "budget already recovers most targets, and the degraded "
               "column\nshows where the budget (not the chip) becomes the "
               "binding constraint.\n";
  return 0;
}
