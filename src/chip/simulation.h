// Full space-time simulation of an executed schedule: every droplet
// transport of every cycle is routed concurrently under fluidic constraints,
// yielding a physically consistent actuation count (the BFS-priced trace is
// a lower bound; this is the realizable figure).
#pragma once

#include <cstdint>
#include <vector>

#include "chip/executor.h"
#include "chip/timed_router.h"

namespace dmf::chip {

/// One simulated transport phase (the inter-cycle window before `cycle`).
struct SimulatedPhase {
  unsigned cycle = 0;
  PhaseResult routing;
};

/// Aggregate result of simulating a whole trace.
struct SimulationResult {
  std::vector<SimulatedPhase> phases;
  /// Electrodes actuated over all phases (>= the trace's BFS total).
  std::uint64_t totalActuations = 0;
  /// Longest single phase in routing steps.
  unsigned maxPhaseMakespan = 0;
  /// Sum of phase makespans — the transport time budget of the schedule.
  std::uint64_t totalSteps = 0;
};

/// Routes every move of `trace` concurrently, one phase per cycle.
/// Throws chip::ChipError (a std::runtime_error carrying phase "simulate"
/// and the failing mix cycle) when some phase is unroutable under the
/// options — including when options.deadCells sever a required path.
[[nodiscard]] SimulationResult simulateTrace(const Layout& layout,
                                             const ExecutionTrace& trace,
                                             TimedRouterOptions options = {});

}  // namespace dmf::chip
