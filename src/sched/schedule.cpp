#include "sched/schedule.h"

#include <algorithm>
#include <stdexcept>

#include "obs/scope.h"

namespace dmf::sched {

using forest::DropletFate;
using forest::kNoTask;
using forest::TaskForest;
using forest::TaskId;

void validateOrThrow(const TaskForest& forest, const Schedule& s) {
  const std::size_t n = forest.taskCount();
  if (s.size() != n || s.mixers.size() != n) {
    throw std::logic_error("Schedule: assignment count mismatch");
  }
  if (s.mixerCount == 0 && n > 0) {
    throw std::logic_error("Schedule: zero mixers");
  }
  const std::vector<TaskId>& depLeft = forest.depLefts();
  const std::vector<TaskId>& depRight = forest.depRights();
  unsigned last = 0;
  for (TaskId id = 0; id < n; ++id) {
    const unsigned cycle = s.cycles[id];
    if (cycle == 0) {
      throw std::logic_error("Schedule: task " + std::to_string(id) +
                             " unscheduled");
    }
    if (s.mixers[id] >= s.mixerCount) {
      throw std::logic_error("Schedule: mixer index out of range");
    }
    for (TaskId dep : {depLeft[id], depRight[id]}) {
      if (dep != kNoTask && s.cycles[dep] >= cycle) {
        throw std::logic_error("Schedule: precedence violated at task " +
                               std::to_string(id));
      }
    }
    last = std::max(last, cycle);
  }
  // (cycle, mixer) slot uniqueness via one sort over packed keys instead of
  // a std::set — validation runs after every scheduling attempt.
  thread_local std::vector<std::uint64_t> slots;
  slots.resize(n);
  for (TaskId id = 0; id < n; ++id) {
    slots[id] = (std::uint64_t{s.cycles[id]} << 32) | s.mixers[id];
  }
  std::sort(slots.begin(), slots.end());
  const auto dup = std::adjacent_find(slots.begin(), slots.end());
  if (dup != slots.end()) {
    throw std::logic_error(
        "Schedule: two mix-splits share cycle " +
        std::to_string(static_cast<unsigned>(*dup >> 32)) + " mixer " +
        std::to_string(static_cast<unsigned>(*dup & 0xFFFFFFFFu)));
  }
  if (last != s.completionTime) {
    throw std::logic_error("Schedule: completionTime " +
                           std::to_string(s.completionTime) +
                           " != last busy cycle " + std::to_string(last));
  }
}

namespace {

/// Fills `delta` with the storage occupancy difference array: +1 the cycle
/// after a consumed droplet is produced, -1 the cycle it is consumed. The
/// prefix sum at cycle t is the droplet count parked in storage during t,
/// identical to the old per-gap increment loop but O(n + T) instead of
/// O(sum of gap lengths).
void storageDeltas(const TaskForest& forest, const Schedule& s,
                   std::vector<std::int32_t>& delta) {
  delta.assign(s.completionTime + 2, 0);
  const std::vector<TaskId>& consumers = forest.outConsumers();
  const std::size_t n = forest.taskCount();
  for (std::size_t id = 0; id < n; ++id) {
    const unsigned produced = s.cycles[id];
    for (unsigned slot = 0; slot < 2; ++slot) {
      const TaskId consumer = consumers[2 * id + slot];
      if (consumer == kNoTask) continue;
      const unsigned consumed = s.cycles[consumer];
      if (consumed > produced + 1) {
        ++delta[produced + 1];
        --delta[consumed];
      }
    }
  }
}

}  // namespace

std::vector<unsigned> storageProfile(const TaskForest& forest,
                                     const Schedule& s) {
  thread_local std::vector<std::int32_t> delta;
  storageDeltas(forest, s, delta);
  std::vector<unsigned> storage(s.completionTime + 1, 0);
  std::int32_t occupancy = 0;
  for (unsigned t = 0; t <= s.completionTime; ++t) {
    occupancy += delta[t];
    storage[t] = static_cast<unsigned>(occupancy);
  }
  return storage;
}

unsigned countStorage(const TaskForest& forest, const Schedule& s) {
  thread_local std::vector<std::int32_t> delta;
  storageDeltas(forest, s, delta);
  std::int32_t occupancy = 0;
  std::int32_t peak = 0;
  for (unsigned t = 0; t <= s.completionTime; ++t) {
    occupancy += delta[t];
    peak = std::max(peak, occupancy);
  }
  obs::gaugeMax("sched.storage_high_water", static_cast<unsigned>(peak));
  return static_cast<unsigned>(peak);
}

std::vector<unsigned> emissionCycles(const TaskForest& forest,
                                     const Schedule& s) {
  std::vector<unsigned> cycles;
  const std::vector<std::uint8_t>& fates = forest.outFates();
  const std::size_t n = forest.taskCount();
  for (std::size_t id = 0; id < n; ++id) {
    for (unsigned slot = 0; slot < 2; ++slot) {
      if (fates[2 * id + slot] ==
          static_cast<std::uint8_t>(DropletFate::kTarget)) {
        cycles.push_back(s.cycles[id]);
      }
    }
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

}  // namespace dmf::sched
