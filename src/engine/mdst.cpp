#include "engine/mdst.h"

#include <optional>
#include <stdexcept>

namespace dmf::engine {

using forest::TaskForest;
using mixgraph::Algorithm;
using mixgraph::MixingGraph;

std::string_view schemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kMMS:
      return "MMS";
    case Scheme::kSRS:
      return "SRS";
    case Scheme::kOMS:
      return "OMS";
  }
  throw std::invalid_argument("schemeName: unknown scheme");
}

sched::Schedule schedule(const TaskForest& forest, Scheme scheme,
                         unsigned mixers) {
  switch (scheme) {
    case Scheme::kMMS:
      return sched::scheduleMMS(forest, mixers);
    case Scheme::kSRS:
      return sched::scheduleSRS(forest, mixers);
    case Scheme::kOMS:
      return sched::scheduleOMS(forest, mixers);
  }
  throw std::invalid_argument("schedule: unknown scheme");
}

MdstEngine::MdstEngine(Ratio ratio) : ratio_(std::move(ratio)), graphs_(4) {}

const MixingGraph& MdstEngine::baseGraph(Algorithm algorithm) const {
  const std::lock_guard<std::mutex> lock(lazyMutex_);
  auto& slot = graphs_.at(static_cast<std::size_t>(algorithm));
  if (!slot.has_value()) {
    slot.emplace(mixgraph::buildGraph(ratio_, algorithm));
  }
  // The reference stays valid after unlock: graphs_ never resizes and an
  // engaged slot is never re-assigned.
  return *slot;
}

unsigned MdstEngine::defaultMixers() const {
  const MixingGraph& base = baseGraph(Algorithm::MM);
  const std::lock_guard<std::mutex> lock(lazyMutex_);
  if (!defaultMixers_.has_value()) {
    const TaskForest basePass(base, 2);
    defaultMixers_ = sched::minimumMixers(basePass);
  }
  return *defaultMixers_;
}

TaskForest MdstEngine::buildForest(Algorithm algorithm,
                                   std::uint64_t demand) const {
  return TaskForest(baseGraph(algorithm), demand);
}

MdstResult MdstEngine::run(const MdstRequest& request) const {
  const unsigned mixers =
      request.mixers == 0 ? defaultMixers() : request.mixers;
  const TaskForest forest = buildForest(request.algorithm, request.demand);
  const sched::Schedule s = schedule(forest, request.scheme, mixers);

  MdstResult result;
  result.completionTime = s.completionTime;
  result.storageUnits = sched::countStorage(forest, s);
  result.mixSplits = forest.stats().mixSplits;
  result.waste = forest.stats().waste;
  result.inputDroplets = forest.stats().inputTotal;
  result.inputPerFluid = forest.stats().inputPerFluid;
  result.componentTrees = forest.stats().componentTrees;
  result.mixers = mixers;
  return result;
}

}  // namespace dmf::engine
