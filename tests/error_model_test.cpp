#include "analysis/error_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mixgraph/builders.h"
#include "workload/ratio_corpus.h"

namespace dmf::analysis {
namespace {

using mixgraph::Algorithm;
using mixgraph::buildGraph;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

TEST(ErrorModel, PerfectSplitsGiveZeroError) {
  const MixingGraph g = buildMM(pcr());
  const NodeError e = targetError(g, ErrorOptions{0.0, 0.0});
  EXPECT_DOUBLE_EQ(e.volume, 0.0);
  EXPECT_DOUBLE_EQ(e.worstConcentration, 0.0);
}

TEST(ErrorModel, LeavesCarryOnlyDispenseError) {
  const MixingGraph g = buildMM(pcr());
  const auto errors = analyzeErrors(g, ErrorOptions{0.05, 0.02});
  for (mixgraph::NodeId id = 0; id < g.nodeCount(); ++id) {
    if (g.node(id).isLeaf()) {
      EXPECT_DOUBLE_EQ(errors[id].volume, 0.02);
      EXPECT_DOUBLE_EQ(errors[id].worstConcentration, 0.0);
    }
  }
}

TEST(ErrorModel, VolumeErrorGrowsAtMostLinearlyWithDepth) {
  // w(v) = avg(children) + eps adds eps per level, so w <= depth * eps.
  const MixingGraph g = buildMM(Ratio({26, 21, 2, 2, 3, 3, 199}));
  const double eps = 0.05;
  const auto errors = analyzeErrors(g, ErrorOptions{eps, 0.0});
  for (mixgraph::NodeId id = 0; id < g.nodeCount(); ++id) {
    EXPECT_LE(errors[id].volume,
              static_cast<double>(g.depth()) * eps + 1e-12);
    if (!g.node(id).isLeaf()) {
      EXPECT_GE(errors[id].volume, eps - 1e-12);
    }
  }
}

TEST(ErrorModel, ErrorGrowsMonotonicallyWithImbalance) {
  const MixingGraph g = buildMM(pcr());
  double previous = -1.0;
  for (double eps : {0.01, 0.02, 0.05, 0.10}) {
    const NodeError e = targetError(g, ErrorOptions{eps, 0.0});
    EXPECT_GT(e.worstConcentration, previous);
    previous = e.worstConcentration;
  }
}

TEST(ErrorModel, ErrorScalesLinearlyInFirstOrder) {
  const MixingGraph g = buildMM(pcr());
  const double e1 =
      targetError(g, ErrorOptions{0.01, 0.0}).worstConcentration;
  const double e2 =
      targetError(g, ErrorOptions{0.02, 0.0}).worstConcentration;
  EXPECT_NEAR(e2, 2.0 * e1, 1e-12);  // the model is linear in eps
}

TEST(ErrorModel, QuantizationErrorMatchesAccuracy) {
  EXPECT_DOUBLE_EQ(quantizationError(buildMM(pcr())), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(
      quantizationError(buildMM(Ratio({26, 21, 2, 2, 3, 3, 199}))),
      1.0 / 512.0);
}

TEST(ErrorModel, RejectsBadInput) {
  const MixingGraph g = buildMM(pcr());
  EXPECT_THROW(analyzeErrors(g, ErrorOptions{-0.1, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(analyzeErrors(g, ErrorOptions{0.1, -0.1}),
               std::invalid_argument);
  MixingGraph unfinished(pcr());
  EXPECT_THROW(analyzeErrors(unfinished, ErrorOptions{}),
               std::invalid_argument);
}

TEST(ErrorModel, DeeperTreesAccumulateMoreError) {
  // A nearby concentration with more set bits needs a deeper mixing chain
  // and thus picks up more split error (80/256 reduces to the 5/16 chain, so
  // 85/256 = 0b01010101 is the deep counterpart).
  const MixingGraph shallow = mixgraph::buildDilution(5, 4);  // 5/16
  const MixingGraph deep = mixgraph::buildDilution(85, 8);    // 85/256
  const double eShallow =
      targetError(shallow, ErrorOptions{0.05, 0.0}).worstConcentration;
  const double eDeep =
      targetError(deep, ErrorOptions{0.05, 0.0}).worstConcentration;
  EXPECT_GT(eDeep, eShallow);
}

TEST(ErrorModel, AllBuildersStayWithinFirstOrderEnvelope) {
  // Coarse envelope: CF gaps are at most 1 and operand volume error at most
  // depth * eps, halved per level on the way up — the worst concentration
  // deviation is below depth^2 * eps / 2.
  const auto& corpus = workload::evaluationCorpus();
  for (std::size_t i = 0; i < corpus.size(); i += 211) {
    for (Algorithm algo : {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
      const MixingGraph g = buildGraph(corpus[i], algo);
      const double d = static_cast<double>(g.depth());
      const NodeError e = targetError(g, ErrorOptions{0.05, 0.0});
      EXPECT_LE(e.worstConcentration, d * d * 0.05 / 2.0 + 1e-9)
          << corpus[i].toString();
      EXPECT_GE(e.worstConcentration, 0.0);
    }
  }
}

}  // namespace
}  // namespace dmf::analysis
