#include "sched/ga_scheduler.h"

#include <algorithm>
#include <random>
#include <set>
#include <stdexcept>
#include <vector>

#include "sched/schedulers.h"

namespace dmf::sched {

using forest::DropletFate;
using forest::kNoTask;
using forest::Task;
using forest::TaskForest;
using forest::TaskId;

namespace {

// Decodes a random-key chromosome into a schedule: ready tasks run in
// ascending key order, at most `mixers` per cycle.
Schedule decode(const TaskForest& forest, unsigned mixers,
                const std::vector<double>& keys) {
  Schedule s;
  s.mixerCount = mixers;
  s.scheme = "GA";
  s.assignments.assign(forest.taskCount(), Assignment{});

  std::vector<unsigned> pending(forest.taskCount(), 0);
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const Task& t = forest.task(id);
    pending[id] = (t.depLeft != kNoTask ? 1u : 0u) +
                  (t.depRight != kNoTask ? 1u : 0u);
  }
  std::set<std::pair<double, TaskId>> ready;
  std::vector<std::vector<TaskId>> arrivals(2);
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }
  std::size_t remaining = forest.taskCount();
  for (unsigned t = 1; remaining > 0; ++t) {
    if (t < arrivals.size()) {
      for (TaskId id : arrivals[t]) ready.insert({keys[id], id});
      arrivals[t].clear();
    }
    for (unsigned k = 0; k < mixers && !ready.empty(); ++k) {
      const TaskId id = ready.begin()->second;
      ready.erase(ready.begin());
      s.assignments[id] = Assignment{t, k};
      s.completionTime = t;
      --remaining;
      for (const auto& drop : forest.task(id).out) {
        if (drop.fate != DropletFate::kConsumed) continue;
        if (--pending[drop.consumer] == 0) {
          if (arrivals.size() <= t + 1) arrivals.resize(t + 2);
          arrivals[t + 1].push_back(drop.consumer);
        }
      }
    }
  }
  return s;
}

// Lexicographic fitness: completion time, then storage. Smaller is better.
std::pair<unsigned, unsigned> fitness(const TaskForest& forest,
                                      const Schedule& s) {
  return {s.completionTime, countStorage(forest, s)};
}

}  // namespace

Schedule scheduleGA(const TaskForest& forest, unsigned mixers,
                    const GaOptions& options) {
  if (mixers == 0) {
    throw std::invalid_argument("scheduleGA: at least one mixer required");
  }
  if (options.population == 0 || options.elites >= options.population ||
      options.tournament == 0) {
    throw std::invalid_argument("scheduleGA: degenerate GA options");
  }
  const std::size_t n = forest.taskCount();
  if (n == 0) {
    Schedule s;
    s.mixerCount = mixers;
    s.scheme = "GA";
    return s;
  }

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  struct Individual {
    std::vector<double> keys;
    std::pair<unsigned, unsigned> score;
  };

  auto evaluate = [&](const std::vector<double>& keys) {
    return fitness(forest, decode(forest, mixers, keys));
  };

  std::vector<Individual> population;
  population.reserve(options.population);

  // Seed with a critical-path individual (keys = -colevel via the OMS
  // schedule's cycle order) so the GA never starts worse than plain list
  // scheduling.
  {
    const Schedule oms = scheduleOMS(forest, mixers);
    std::vector<double> keys(n);
    for (TaskId id = 0; id < n; ++id) {
      keys[id] = static_cast<double>(oms.assignments[id].cycle) +
                 1e-6 * static_cast<double>(id);
    }
    population.push_back({keys, evaluate(keys)});
  }
  while (population.size() < options.population) {
    std::vector<double> keys(n);
    for (double& key : keys) key = uniform(rng);
    population.push_back({keys, evaluate(keys)});
  }

  auto better = [](const Individual& a, const Individual& b) {
    return a.score < b.score;
  };

  for (unsigned gen = 0; gen < options.generations; ++gen) {
    std::sort(population.begin(), population.end(), better);
    std::vector<Individual> next(population.begin(),
                                 population.begin() + options.elites);
    auto tournamentPick = [&]() -> const Individual& {
      std::size_t best = rng() % population.size();
      for (unsigned t = 1; t < options.tournament; ++t) {
        const std::size_t challenger = rng() % population.size();
        if (population[challenger].score < population[best].score) {
          best = challenger;
        }
      }
      return population[best];
    };
    while (next.size() < options.population) {
      const Individual& a = tournamentPick();
      const Individual& b = tournamentPick();
      std::vector<double> child(n);
      for (std::size_t g = 0; g < n; ++g) {
        child[g] = (rng() & 1u) ? a.keys[g] : b.keys[g];
        if (uniform(rng) < options.mutationRate) {
          child[g] = uniform(rng);
        }
      }
      next.push_back({child, evaluate(child)});
    }
    population = std::move(next);
  }

  std::sort(population.begin(), population.end(), better);
  Schedule best = decode(forest, mixers, population.front().keys);
  return best;
}

}  // namespace dmf::sched
