file(REMOVE_RECURSE
  "libdmf_workload.a"
)
