// The fleet dispatcher (DESIGN.md §17): shards M users' protocol streams
// across N simulated chips behind a pluggable arbitration policy.
//
// Split follows the ytsaurus scheduler / controller-agent pattern:
//
//  * the DISPATCHER decides *what runs where* — it plans every user's
//    stream (engine/streaming, fanned out over the shared worker pool with
//    one result slot per user, so planning is byte-identical across
//    --jobs), admits every pass as a WorkItem, and runs a serial
//    virtual-time loop: policy picks the user, the dispatcher places the
//    pass on the earliest-free alive chip that satisfies its mixer/storage
//    needs (ties to the lowest chip id);
//  * per-chip EXECUTORS reuse the engine/journal stack to *run it* — every
//    completed pass is appended to the owning user's CRC32-framed journal
//    (a real journal::RecordLog when a journal directory is given, the
//    same framed byte format in memory otherwise).
//
// Chip failure mid-pass migrates the stream: the victim pass is aborted,
// the user's journal checkpoint is REPLAYED (frame + CRC validation via
// journal::replayRecords) to establish exactly which passes survive, and
// only the aborted pass re-enters the policy queue with a bumped attempt
// counter. Because per-user plans are computed before placement, the final
// plans are byte-identical with and without a kill — only the placement
// log differs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/streaming.h"
#include "fleet/policy.h"
#include "report/json.h"

namespace dmf::fleet {

/// One simulated chip in the fleet.
struct ChipSpec {
  /// Total mixer modules on the chip.
  unsigned mixers = 4;
  /// On-chip storage units (the streaming cap a hosted pass must fit).
  unsigned storageCap = 8;
  /// Mixers lost to the dead-cell mask (heterogeneous degradation).
  unsigned deadMixers = 0;

  /// Mixers actually usable: mixers - deadMixers (0 when fully masked).
  [[nodiscard]] unsigned effectiveMixers() const {
    return mixers > deadMixers ? mixers - deadMixers : 0;
  }
};

/// Parses "mixers=4,storage=8[,dead=1];mixers=2,storage=4" into chip specs.
/// Throws std::invalid_argument on malformed entries.
[[nodiscard]] std::vector<ChipSpec> parseChips(const std::string& spec);

/// Deterministic heterogeneous defaults for `--fleet N`: mixer counts,
/// storage caps and dead-cell masks cycle over small primes so every fleet
/// size reproduces exactly. Throws std::invalid_argument on count == 0.
[[nodiscard]] std::vector<ChipSpec> defaultFleet(unsigned count);

/// One user's protocol stream plus its scheduling weight.
struct UserStream {
  Ratio ratio{std::vector<std::uint64_t>{1, 3}};
  /// Streaming request (request.jobs is ignored — the dispatcher owns the
  /// worker pool).
  engine::StreamingRequest request;
  /// Plan with planStreamingOptimized instead of planStreaming.
  bool optimize = false;
  /// Weight for weighted-fair arbitration (> 0).
  double weight = 1.0;
};

/// Parses ";"- or "|"-separated user specs:
///   "ratio=1:3,demand=32,storage=3[,mixers=2][,weight=8][,algo=mm]
///    [,scheme=srs][,optimize]"
/// Throws std::invalid_argument on malformed entries.
[[nodiscard]] std::vector<UserStream> parseUsers(const std::string& spec);

/// A scripted chip failure: `chip` dies at virtual cycle `cycle`.
struct KillSpec {
  bool active = false;
  unsigned chip = 0;
  std::uint64_t cycle = 0;
};

/// Parses "chip=1,cycle=120". Throws std::invalid_argument when malformed.
[[nodiscard]] KillSpec parseKill(const std::string& spec);

struct DispatcherOptions {
  std::vector<ChipSpec> chips;
  /// "fifo" | "rr" | "wfq" (makePolicy names).
  std::string policy = "fifo";
  /// Overrides the per-user weights when non-empty (size must match the
  /// user count).
  std::vector<double> weights;
  /// wfq service quantum in cycles; 0 disables batching.
  double quantum = 0.0;
  /// Worker threads for the planning fan-out (0 = hardware concurrency).
  /// The dispatch loop itself is serial; results are identical for every
  /// value.
  unsigned jobs = 1;
  KillSpec kill;
  /// When non-empty, per-user journals are written as real RecordLogs
  /// under this directory (created if needed); empty keeps the same framed
  /// byte format in memory.
  std::string journalDir;
};

/// One placement decision, in dispatch order.
struct PassRecord {
  unsigned user = 0;
  std::uint64_t passIndex = 0;
  unsigned chip = 0;
  std::uint64_t startCycle = 0;
  std::uint64_t endCycle = 0;
  unsigned attempt = 1;
  /// False for a pass aborted by a chip failure (it re-runs elsewhere).
  bool completed = true;
};

struct ChipReport {
  ChipSpec spec;
  std::uint64_t busyCycles = 0;
  std::uint64_t passesCompleted = 0;
  /// Cycles burned on passes aborted by this chip's failure.
  std::uint64_t abortedCycles = 0;
  bool failed = false;
  std::uint64_t failedAtCycle = 0;
};

struct UserReport {
  engine::StreamingPlan plan;
  double weight = 1.0;
  /// Cycles of completed service.
  std::uint64_t serviceCycles = 0;
  std::uint64_t passesExecuted = 0;
  std::uint64_t migratedPasses = 0;
  /// Passes dropped because no alive chip could host them (degraded run).
  std::uint64_t unplacedPasses = 0;
};

struct FleetResult {
  std::string policy;
  std::vector<UserReport> users;
  std::vector<ChipReport> chips;
  /// Placement log in dispatch order (deterministic across --jobs).
  std::vector<PassRecord> log;
  std::uint64_t makespan = 0;
  std::uint64_t migrations = 0;
  /// True when passes were dropped for lack of a capable alive chip.
  bool degraded = false;
  std::string degradationReason;

  /// Jain's fairness index over weight-normalized service
  /// (sum x)^2 / (n * sum x^2) with x_u = serviceCycles_u / weight_u;
  /// 1.0 = perfectly weight-proportional, 1/n = maximally skewed. 1.0 when
  /// no service was delivered.
  [[nodiscard]] double jainIndex() const;

  /// Per-user fraction of chip time attempted in [0, upToCycle), computed
  /// from the placement log (aborted spans count — they consumed the
  /// chip). Sums to 1 when any service was attempted.
  [[nodiscard]] std::vector<double> serviceShares(
      std::uint64_t upToCycle) const;

  /// Deterministic JSON of the whole result; the placement log is included
  /// only when `includePlacement` (it is kill-dependent).
  [[nodiscard]] report::Json toJson(bool includePlacement) const;

  /// Only the per-user plans — the kill-invariant subset, byte-identical
  /// with and without a mid-run chip failure.
  [[nodiscard]] report::Json plansJson() const;
};

/// Plans and dispatches the whole fleet. Throws std::invalid_argument on an
/// empty user/chip list or inconsistent weights, dmf::InfeasibleError when
/// some user's stream cannot run on any chip of the initial fleet, and
/// journal::CorruptJournalError when a migration replay contradicts the
/// in-memory checkpoint.
[[nodiscard]] FleetResult dispatchFleet(const std::vector<UserStream>& users,
                                        const DispatcherOptions& options);

}  // namespace dmf::fleet
