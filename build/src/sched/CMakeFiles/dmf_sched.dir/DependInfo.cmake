
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/ga_scheduler.cpp" "src/sched/CMakeFiles/dmf_sched.dir/ga_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dmf_sched.dir/ga_scheduler.cpp.o.d"
  "/root/repo/src/sched/gantt.cpp" "src/sched/CMakeFiles/dmf_sched.dir/gantt.cpp.o" "gcc" "src/sched/CMakeFiles/dmf_sched.dir/gantt.cpp.o.d"
  "/root/repo/src/sched/heterogeneous.cpp" "src/sched/CMakeFiles/dmf_sched.dir/heterogeneous.cpp.o" "gcc" "src/sched/CMakeFiles/dmf_sched.dir/heterogeneous.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/dmf_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/dmf_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/schedulers.cpp" "src/sched/CMakeFiles/dmf_sched.dir/schedulers.cpp.o" "gcc" "src/sched/CMakeFiles/dmf_sched.dir/schedulers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forest/CMakeFiles/dmf_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/mixgraph/CMakeFiles/dmf_mixgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/dmf/CMakeFiles/dmf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
