#include "server/service.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "dmf/errors.h"
#include "engine/serialize.h"
#include "engine/streaming.h"
#include "journal/server_journal.h"
#include "obs/log.h"
#include "obs/scope.h"
#include "report/json.h"

namespace dmf::server {

using report::Json;

// ---------------------------------------------------------------------------
// AdmissionQueue

AdmissionQueue::AdmissionQueue(runtime::ThreadPool& pool,
                               FleetArbitration fleet)
    : pool_(pool), fleet_(std::move(fleet)) {
  if (fleet_.lanes > 0) {
    if (fleet_.weights.empty()) fleet_.weights.assign(16, 1.0);
    policy_ = dmf::fleet::makePolicy(fleet_.policy);
    policy_->setUsers(static_cast<unsigned>(fleet_.weights.size()));
    policy_->setWeights(fleet_.weights);
    policy_->setQuantum(fleet_.quantum);
    userService_.assign(fleet_.weights.size(), 0);
    laneBusy_.assign(fleet_.lanes, 0);
  }
  dispatcher_ = std::thread([this] { drainLoop(); });
}

AdmissionQueue::~AdmissionQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  dispatcher_.join();
}

void AdmissionQueue::submit(unsigned user, std::uint64_t cost,
                            std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(
        PendingJob{user, std::max<std::uint64_t>(1, cost), std::move(job)});
    obs::gaugeMax("server.queue.depth", pending_.size());
  }
  wake_.notify_one();
}

FleetQueueStats AdmissionQueue::fleetStats() const {
  FleetQueueStats stats;
  stats.lanes = fleet_.lanes;
  stats.policy = fleet_.policy;
  std::lock_guard<std::mutex> lock(mutex_);
  stats.userService = userService_;
  stats.laneBusy = laneBusy_;
  if (fleet_.lanes > 0) {
    double sum = 0.0;
    double sumSquares = 0.0;
    for (std::size_t u = 0; u < userService_.size(); ++u) {
      const double x =
          static_cast<double>(userService_[u]) / fleet_.weights[u];
      sum += x;
      sumSquares += x * x;
    }
    if (sumSquares > 0.0) {
      stats.jainPermille = static_cast<std::uint64_t>(
          (sum * sum) /
              (static_cast<double>(userService_.size()) * sumSquares) *
              1000.0 +
          0.5);
    }
  }
  return stats;
}

std::vector<AdmissionQueue::PendingJob> AdmissionQueue::arbitrate(
    std::vector<PendingJob> batch) {
  // Policy-order the batch. The policy instance lives across batches, so
  // wfq virtual time and round-robin cursors carry over — arbitration is
  // about the stream of admissions, not any one batch.
  const auto slots = static_cast<unsigned>(fleet_.weights.size());
  for (const PendingJob& pending : batch) {
    dmf::fleet::WorkItem item;
    item.user = pending.user % slots;
    item.admission = admission_++;
    item.cost = pending.cost;
    policy_->enqueue(item);
  }
  std::vector<PendingJob> ordered;
  ordered.reserve(batch.size());
  std::vector<std::uint64_t> laneBusy;
  std::vector<std::uint64_t> userService;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    laneBusy = laneBusy_;
    userService = userService_;
  }
  while (!policy_->empty()) {
    const std::optional<unsigned> user = policy_->pickUser(0.0);
    if (!user.has_value()) break;
    const std::optional<dmf::fleet::WorkItem> item = policy_->pop(*user);
    if (!item.has_value()) continue;
    // admission numbers are batch-local positions, so this maps back to
    // the submitted job; the ordered list is the policy's service order.
    const std::uint64_t index =
        item->admission - (admission_ - batch.size());
    ordered.push_back(std::move(batch[index]));
    userService[*user] += item->cost;
    // Virtual lane placement: least-loaded lane first (ties to the lowest
    // lane id) — the utilization picture a real fleet of chips would show.
    std::size_t lane = 0;
    for (std::size_t l = 1; l < laneBusy.size(); ++l) {
      if (laneBusy[l] < laneBusy[lane]) lane = l;
    }
    laneBusy[lane] += item->cost;
    obs::count("server.fleet.dispatched");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    laneBusy_ = laneBusy;
    userService_ = userService;
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    for (std::size_t l = 0; l < laneBusy.size(); ++l) {
      m->gauge("server.fleet.lane." + std::to_string(l) + ".busy_cost")
          .set(laneBusy[l]);
    }
  }
  obs::gaugeSet("server.fleet.jain_permille", fleetStats().jainPermille);
  return ordered;
}

void AdmissionQueue::drainLoop() {
  for (;;) {
    std::vector<PendingJob> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping with nothing left to run
      batch.swap(pending_);
    }
    obs::count("server.queue.batches");
    obs::LogLine(obs::LogLevel::kDebug, "server.admission.batch")
        .num("jobs", batch.size());
    if (policy_ != nullptr) batch = arbitrate(std::move(batch));
    // One batch = one forEach over the shared pool: everything admitted
    // together fans out together; arrivals during the batch form the next.
    pool_.forEach(batch.size(),
                  [&batch](std::uint64_t i) { batch[i].job(); });
  }
}

// ---------------------------------------------------------------------------
// PlanService

PlanService::PlanService(const ServiceOptions& options)
    : options_(options),
      cache_(PlanCache::Options{options.cacheSize, options.cacheDir}),
      journal_(options.journalDir.empty()
                   ? nullptr
                   : std::make_unique<journal::ServerJournal>(
                         options.journalDir)),
      pool_(runtime::ThreadPool::resolveJobs(options.jobs)),
      queue_(pool_,
             FleetArbitration{options.fleet, options.fleetPolicy,
                              options.fleetWeights, options.fleetQuantum}) {}

PlanService::~PlanService() = default;

std::size_t PlanService::replayJournal() {
  if (journal_ == nullptr) return 0;
  const std::vector<std::string> pending = journal_->recoverPending();
  for (const std::string& line : pending) {
    // Replay through the front door: the request re-journals itself, and
    // its result is discarded — the original client is gone; what matters
    // is that the plan lands in the cache for their retry.
    (void)handle(line);
  }
  if (!pending.empty()) {
    obs::LogLine(obs::LogLevel::kInfo, "server.journal.replayed")
        .num("requests", pending.size());
  }
  return pending.size();
}

std::string PlanService::handle(const std::string& line, bool* shutdown,
                                unsigned user) {
  // The root span of this request's trace: everything downstream — cache
  // probe, coalesce wait, the queued computation (via ContextGuard), engine
  // and pool-worker spans — shares its trace id.
  obs::Span span("server.request", "server");
  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  std::string response;
  try {
    response = dispatch(line, shutdown, span, user);
  } catch (const std::exception& e) {
    // dispatch() already maps every expected failure; this is the backstop
    // that keeps the socket loop alive no matter what.
    response = errorResponse("internal", e.what());
  } catch (...) {
    response = errorResponse("internal", "unknown error");
  }
  if (obs::metrics() != nullptr ||
      obs::logEnabled(obs::LogLevel::kDebug)) {
    const auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->histogram("server.request_nanos",
                   {1'000, 10'000, 100'000, 1'000'000, 10'000'000,
                    100'000'000, 1'000'000'000})
          .observe(nanos);
    }
    obs::LogLine(obs::LogLevel::kDebug, "server.request")
        .num("bytes_in", line.size())
        .num("bytes_out", response.size())
        .num("nanos", nanos);
  }
  obs::count("server.requests");
  return response;
}

std::string PlanService::dispatch(const std::string& line, bool* shutdown,
                                  obs::Span& span, unsigned user) {
  Json request = Json::object();
  try {
    request = Json::parse(line);
  } catch (const std::invalid_argument& e) {
    return errorResponse("parse", e.what());
  }
  if (!request.isObject()) {
    return errorResponse("parse", "request must be a JSON object");
  }
  std::string op = "plan";
  if (request.contains("op")) {
    try {
      op = request.at("op").asString();
    } catch (const std::logic_error&) {
      return errorResponse("request", "\"op\" must be a string");
    }
  }
  if (obs::tracer() != nullptr) span.arg("op", op);
  if (op == "ping") {
    return "{\"ok\":true,\"op\":\"ping\"}";
  }
  if (op == "shutdown") {
    if (shutdown != nullptr) *shutdown = true;
    logShutdown();
    return "{\"ok\":true,\"op\":\"shutdown\"}";
  }
  if (op == "stats") {
    const PlanCache::Stats stats = cache_.stats();
    Json out = Json::object();
    out.set("ok", Json::boolean(true)).set("op", std::string("stats"));
    Json cacheJson = Json::object();
    cacheJson.set("hits", stats.hits)
        .set("diskHits", stats.diskHits)
        .set("misses", stats.misses)
        .set("evictions", stats.evictions)
        .set("size", std::uint64_t{stats.size})
        .set("capacity", std::uint64_t{cache_.capacity()});
    out.set("cache", std::move(cacheJson))
        .set("requests", requests())
        .set("planned", planned())
        .set("coalesced", coalesced())
        .set("modelCycles", modelCycles());
    // With an observability session installed the full instrument snapshot
    // rides along, so `dmfstream stats --port P` can render Prometheus text
    // from a live daemon.
    // Fleet arbitration accounting, when enabled: per-user-slot service,
    // lane utilization and the Jain fairness index the obs gauges track.
    const FleetQueueStats fleet = queue_.fleetStats();
    if (fleet.lanes > 0) {
      Json fleetJson = Json::object();
      fleetJson.set("lanes", std::uint64_t{fleet.lanes})
          .set("policy", fleet.policy)
          .set("jainPermille", fleet.jainPermille);
      Json service = Json::array();
      for (const std::uint64_t cost : fleet.userService) {
        service.push(Json::number(cost));
      }
      fleetJson.set("userService", std::move(service));
      Json lanes = Json::array();
      for (const std::uint64_t busy : fleet.laneBusy) {
        lanes.push(Json::number(busy));
      }
      fleetJson.set("laneBusy", std::move(lanes));
      out.set("fleet", std::move(fleetJson));
    }
    if (obs::MetricsRegistry* m = obs::metrics()) {
      out.set("metrics", m->snapshot());
    }
    return out.dump();
  }
  if (op == "plan") {
    return handlePlan(request, line, span, user);
  }
  return errorResponse("request", "unknown op \"" + op +
                                      "\" (plan|ping|stats|shutdown)");
}

std::string PlanService::handlePlan(const Json& request,
                                    const std::string& line, obs::Span& span,
                                    unsigned user) {
  PlanRequest parsed;
  try {
    parsed = PlanRequest::fromJson(request);
  } catch (const std::invalid_argument& e) {
    return errorResponse("request", e.what());
  }
  // An explicit "user" field overrides the connection identity (scripted
  // multi-tenant tests drive several users over one connection). It never
  // reaches the canonical key: user identity must not fragment the cache.
  if (request.contains("user")) {
    try {
      user = static_cast<unsigned>(request.at("user").asUint());
    } catch (const std::logic_error&) {
      return errorResponse("request",
                           "request field \"user\" must be a number");
    }
  }
  const CanonicalRequest canonical = canonicalize(parsed);
  const std::string key = canonical.key();

  {
    const char* tier = "miss";
    obs::Span probe("server.cache.probe", "server");
    const auto hit = cache_.get(key, &tier);
    if (obs::tracer() != nullptr) probe.arg("tier", tier);
    if (hit) {
      return planResponse("cache", key, *hit);
    }
  }

  // Coalesce: exactly one leader per key computes; everyone else arriving
  // while it is in flight waits on the same future.
  std::shared_future<Outcome> future;
  obs::SpanContext leaderContext;
  std::promise<Outcome> promise;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflightMutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      future = promise.get_future().share();
      inflight_.emplace(key, Inflight{future, span.context()});
      leader = true;
    } else {
      future = it->second.future;
      leaderContext = it->second.leader;
    }
  }
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::count("server.coalesce");
    // The follower's wait is a span of its own trace, annotated with the
    // identity of the leader span it piggybacks on — the trace viewer can
    // join the two requests on these ids.
    obs::Span wait("server.coalesce.wait", "server");
    if (obs::tracer() != nullptr) {
      wait.arg("leader_trace", std::to_string(leaderContext.traceId));
      wait.arg("leader_span", std::to_string(leaderContext.spanId));
    }
    return outcomeResponse("coalesced", key, future.get());
  }

  // Write-ahead: the leader journals the admitted request *before* its
  // computation is queued, so a daemon killed mid-compute finds the line
  // unacknowledged on restart and replays it.
  std::uint64_t walId = 0;
  if (journal_ != nullptr) walId = journal_->logRequest(line);

  // The leader publishes through the cache *before* retiring the in-flight
  // entry, so a request arriving between the two sees one or the other,
  // never a re-plan.
  auto task = std::make_shared<std::promise<Outcome>>(std::move(promise));
  const obs::SpanContext requestContext = span.context();
  // The policy arbitrates on the request demand — the best cost proxy
  // available before the plan is computed.
  queue_.submit(user, canonical.demand, [this, canonical, key, task,
                                         requestContext, walId] {
    // Adopt the leader request's context: the computation runs on a pool
    // worker, but its spans (engine, scheduler, router) splice into the
    // request's trace.
    const obs::ContextGuard adopt(requestContext);
    Outcome outcome;
    {
      const obs::Span computeSpan("server.compute", "server");
      outcome = compute(canonical);
    }
    if (outcome.ok) cache_.put(key, outcome.plan);
    // Ack after the cache put (and even for failed outcomes — a replay
    // would fail identically). Pool jobs must not throw, so a WAL I/O
    // failure here degrades to a warning: the worst case is one spurious
    // replay on the next restart.
    if (walId != 0) {
      try {
        journal_->ack(walId);
      } catch (const std::exception& e) {
        obs::LogLine(obs::LogLevel::kWarn, "server.journal.ack_failed")
            .str("error", e.what());
      }
    }
    // Fulfil the shared future *before* the in-flight entry is retired.
    // With the old order (erase, then set_value) a request arriving in
    // between saw neither the in-flight entry nor — when a concurrent put
    // had already evicted this key from a small cache — the cached bytes,
    // and became a duplicate leader: a second compute and a second WAL
    // append for one logical request. With this order every arrival finds
    // the cache entry, a pending future, or a ready future.
    task->set_value(std::move(outcome));
  });
  const std::string response = outcomeResponse("planned", key, future.get());
  // The *leader* retires its entry, strictly after set_value and after the
  // cache put: a failed (uncacheable) outcome must not linger as a ready
  // future once the leader has answered — the next request for the key is
  // a fresh leader that recomputes (InfeasibleOutcomesAreNotCached).
  {
    std::lock_guard<std::mutex> lock(inflightMutex_);
    inflight_.erase(key);
  }
  return response;
}

PlanService::Outcome PlanService::compute(const CanonicalRequest& request) {
  planned_.fetch_add(1, std::memory_order_relaxed);
  obs::count("server.planned");
  if (options_.computeDelayNanosForTest > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.computeDelayNanosForTest));
  }
  Outcome outcome;
  try {
    const engine::MdstEngine engine(request.ratio);
    engine::StreamingRequest streaming;
    streaming.algorithm = request.algorithm;
    streaming.scheme = request.scheme;
    streaming.demand = request.demand;
    streaming.storageCap = request.storageCap;
    streaming.mixers = request.mixers;
    // Serial inside one computation: the admission queue already fans
    // distinct requests over the pool, and nesting the same pool would be
    // rejected by ThreadPool.
    streaming.jobs = 1;
    const engine::StreamingPlan plan =
        request.optimize ? engine::planStreamingOptimized(engine, streaming)
                         : engine::planStreaming(engine, streaming);
    outcome.ok = true;
    outcome.plan = engine::toJson(plan).dump();
    modelCycles_.fetch_add(plan.totalCycles, std::memory_order_relaxed);
  } catch (const InfeasibleError& e) {
    outcome.kind = "infeasible";
    outcome.error = e.what();
  } catch (const std::invalid_argument& e) {
    outcome.kind = "request";
    outcome.error = e.what();
  } catch (const std::exception& e) {
    outcome.kind = "internal";
    outcome.error = e.what();
  }
  return outcome;
}

std::string PlanService::planResponse(const char* source,
                                      const std::string& key,
                                      const std::string& plan) {
  // The plan bytes are spliced in verbatim — what the cache stores is
  // exactly what every response carries, so hits are byte-identical to the
  // cold computation by construction.
  std::string out = "{\"ok\":true,\"source\":\"";
  out += source;
  out += "\",\"key\":\"";
  out += report::jsonEscape(key);
  out += "\",\"plan\":";
  out += plan;
  out += "}";
  return out;
}

std::string PlanService::errorResponse(const std::string& kind,
                                       const std::string& error) {
  Json out = Json::object();
  out.set("ok", Json::boolean(false))
      .set("kind", kind)
      .set("error", error);
  return out.dump();
}

void PlanService::logShutdown() const {
  if (!obs::logEnabled(obs::LogLevel::kInfo)) return;
  const PlanCache::Stats stats = cache_.stats();
  const std::uint64_t lookups = stats.hits + stats.diskHits + stats.misses;
  const double hitRatio =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.hits + stats.diskHits) /
                         static_cast<double>(lookups);
  const auto uptime = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
  obs::LogLine(obs::LogLevel::kInfo, "server.shutdown")
      .num("requests", requests())
      .num("planned", planned())
      .num("coalesced", coalesced())
      .num("cache_mem_hits", stats.hits)
      .num("cache_disk_hits", stats.diskHits)
      .num("cache_misses", stats.misses)
      .real("hit_ratio", hitRatio)
      .num("model_cycles", modelCycles())
      .num("uptime_nanos", uptime);
}

std::string PlanService::outcomeResponse(const char* source,
                                         const std::string& key,
                                         const Outcome& outcome) {
  if (outcome.ok) return planResponse(source, key, outcome.plan);
  return errorResponse(outcome.kind, outcome.error);
}

}  // namespace dmf::server
