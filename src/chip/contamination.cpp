#include "chip/contamination.h"

#include <algorithm>

#include "obs/scope.h"

namespace dmf::chip {

namespace {

// Distinct-droplet visit counts per free cell, and per-phase dirty-reuse
// flags. Droplet identity is (phase index, trajectory index): trajectories
// in different phases are different droplets by construction.
std::vector<std::vector<unsigned>> visitCounts(
    const Layout& layout, const SimulationResult& simulation,
    std::vector<bool>* phaseReusesDirtyCell) {
  const auto w = static_cast<std::size_t>(layout.width());
  const auto h = static_cast<std::size_t>(layout.height());
  std::vector<std::vector<unsigned>> counts(
      h, std::vector<unsigned>(w, 0));
  if (phaseReusesDirtyCell != nullptr) {
    phaseReusesDirtyCell->assign(simulation.phases.size(), false);
  }
  for (std::size_t p = 0; p < simulation.phases.size(); ++p) {
    const SimulatedPhase& phase = simulation.phases[p];
    for (const Trajectory& traj : phase.routing.trajectories) {
      // A droplet touches each distinct cell of its route once.
      std::vector<Cell> cells = traj.positions;
      std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
        return a.y != b.y ? a.y < b.y : a.x < b.x;
      });
      cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
      for (const Cell& c : cells) {
        if (layout.moduleAt(c).has_value()) continue;
        unsigned& count =
            counts[static_cast<std::size_t>(c.y)][static_cast<std::size_t>(c.x)];
        if (count > 0 && phaseReusesDirtyCell != nullptr) {
          (*phaseReusesDirtyCell)[p] = true;
        }
        ++count;
      }
    }
  }
  return counts;
}

}  // namespace

ContaminationReport analyzeContamination(const Layout& layout,
                                         const SimulationResult& simulation) {
  std::vector<bool> dirtyPhases;
  const auto counts = visitCounts(layout, simulation, &dirtyPhases);
  ContaminationReport report;
  for (const auto& row : counts) {
    for (unsigned count : row) {
      if (count == 0) continue;
      ++report.visitedCells;
      if (count > 1) {
        ++report.sharedCells;
        report.contaminatedReuses += count - 1;
      }
    }
  }
  for (bool dirty : dirtyPhases) {
    report.washDroplets += dirty ? 1 : 0;
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("chip.contamination.visited_cells").add(report.visitedCells);
    m->counter("chip.contamination.shared_cells").add(report.sharedCells);
    m->counter("chip.contamination.dirty_reuses")
        .add(report.contaminatedReuses);
    m->counter("chip.wash.droplets").add(report.washDroplets);
  }
  return report;
}

std::string renderContamination(const Layout& layout,
                                const SimulationResult& simulation) {
  const auto counts = visitCounts(layout, simulation, nullptr);
  std::string out;
  for (const auto& row : counts) {
    for (unsigned count : row) {
      if (count == 0) {
        out += '.';
      } else if (count == 1) {
        out += 'o';
      } else {
        out += static_cast<char>('0' + std::min(count, 9u));
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace dmf::chip
