// Pin-constrained electrode addressing (reliability-oriented broadcast,
// after Huang/Ho/Chakrabarty ICCAD'11 — the paper's reference [10]).
//
// Direct addressing drives every electrode from its own control pin, which
// does not scale. Broadcast addressing shares one pin among electrodes whose
// actuation sequences never conflict: at each time slot an electrode needs
// '1' (a droplet moves onto it), '0' (it borders a droplet and must stay
// grounded), or don't-care. Electrodes are grouped greedily so that the
// merged sequence of every group stays conflict-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/simulation.h"

namespace dmf::chip {

/// Per-electrode control signal over the simulation's time slots.
enum class Signal : std::uint8_t {
  kDontCare,  ///< no constraint this slot
  kActuate,   ///< must be high (droplet enters the electrode)
  kGround,    ///< must be low (droplet on a neighbouring electrode)
};

/// The actuation matrix extracted from a simulation: signal per electrode
/// (row-major cell index) per time slot.
class ActuationMatrix {
 public:
  /// Builds the matrix from a simulated run on `layout`.
  ActuationMatrix(const Layout& layout, const SimulationResult& simulation);

  [[nodiscard]] std::size_t electrodeCount() const {
    return signals_.size();
  }
  [[nodiscard]] std::size_t slotCount() const { return slots_; }
  [[nodiscard]] const std::vector<Signal>& signalsOf(
      std::size_t electrode) const {
    return signals_[electrode];
  }

  /// True when the two electrodes can share a pin (no slot where one needs
  /// actuation and the other ground).
  [[nodiscard]] bool compatible(std::size_t a, std::size_t b) const;

 private:
  std::size_t slots_ = 0;
  std::vector<std::vector<Signal>> signals_;
};

/// One pin driving a set of electrodes.
struct PinGroup {
  std::vector<std::size_t> electrodes;
};

/// Result of pin assignment.
struct PinAssignment {
  std::vector<PinGroup> pins;
  /// Electrodes that are never constrained (fully don't-care); they share a
  /// single always-ground pin and are excluded from `pins`.
  std::size_t idleElectrodes = 0;

  [[nodiscard]] std::size_t pinCount() const { return pins.size(); }
};

/// Greedy broadcast grouping: electrodes in descending constraint order each
/// join the first pin whose merged signal they do not conflict with.
[[nodiscard]] PinAssignment assignPins(const ActuationMatrix& matrix);

/// Verifies that every group of `assignment` is pairwise conflict-free;
/// throws std::logic_error otherwise (test support).
void validatePins(const ActuationMatrix& matrix,
                  const PinAssignment& assignment);

}  // namespace dmf::chip
