// Unit tests for the crash-recovery journal (DESIGN.md §16): CRC framing,
// torn-tail repair, atomic snapshots, journaled stream runs that resume
// byte-identically, and the server's request WAL.
#include "journal/journal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/mdst.h"
#include "engine/pass_cache.h"
#include "engine/serialize.h"
#include "fault/fault_injector.h"
#include "journal/server_journal.h"
#include "journal/stream_runner.h"
#include "protocols/protocols.h"
#include "report/json.h"

namespace dmf::journal {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test scratch directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("dmf_journal_test_" + tag + "_" +
              std::to_string(static_cast<unsigned long>(::getpid()))))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string readAll(const std::string& path) {
  return readFileIfExists(path).value_or(std::string());
}

void writeRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --------------------------------------------------------------------------
// CRC32 and record framing.

TEST(JournalCrc, MatchesIeeeReferenceVectors) {
  // CRC-32/ISO-HDLC check values (the classic zlib polynomial).
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("a")), 0xE8B7BE43u);
}

TEST(JournalFraming, RoundTripsRecords) {
  const std::string bytes = frameRecord("alpha") + frameRecord("") +
                            frameRecord(std::string("\x00\xff\n", 3));
  const ReplayResult replay = replayRecords(bytes, "test");
  EXPECT_FALSE(replay.tornTail);
  EXPECT_EQ(replay.validBytes, bytes.size());
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0], "alpha");
  EXPECT_EQ(replay.records[1], "");
  EXPECT_EQ(replay.records[2], std::string("\x00\xff\n", 3));
}

TEST(JournalFraming, EveryTruncationIsATornTailNeverAnError) {
  const std::string bytes = frameRecord("one") + frameRecord("twotwo");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const ReplayResult replay = replayRecords(bytes.substr(0, cut), "test");
    // A prefix either ends exactly on a frame boundary (no tail) or mid
    // frame (torn tail) — and only whole frames are ever returned.
    const std::size_t frameOne = frameRecord("one").size();
    if (cut == 0) {
      EXPECT_FALSE(replay.tornTail);
      EXPECT_TRUE(replay.records.empty());
    } else if (cut < frameOne) {
      EXPECT_TRUE(replay.tornTail);
      EXPECT_TRUE(replay.records.empty());
    } else if (cut == frameOne) {
      EXPECT_FALSE(replay.tornTail);
      EXPECT_EQ(replay.records.size(), 1u);
    } else {
      EXPECT_TRUE(replay.tornTail);
      EXPECT_EQ(replay.records.size(), 1u);
      EXPECT_EQ(replay.validBytes, frameOne);
    }
  }
}

TEST(JournalFraming, CompleteFrameWithBadCrcThrowsTyped) {
  std::string bytes = frameRecord("payload");
  bytes[bytes.size() - 2] ^= 0x10;  // damage the payload, length intact
  EXPECT_THROW(replayRecords(bytes, "test"), CorruptJournalError);
  try {
    (void)replayRecords(bytes, "unit");
    FAIL() << "expected CorruptJournalError";
  } catch (const CorruptJournalError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unit"), std::string::npos);
  }
}

// --------------------------------------------------------------------------
// RecordLog durability.

TEST(JournalRecordLog, AppendsSurviveReopen) {
  TempDir dir("log_reopen");
  const std::string path = dir.path() + "/log";
  {
    RecordLog log(path);
    log.append("r1");
    log.append("r2");
  }
  RecordLog reborn(path);
  const ReplayResult replay = reborn.replayAndRepair();
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], "r1");
  EXPECT_EQ(replay.records[1], "r2");
}

TEST(JournalRecordLog, TornTailIsPhysicallyTruncated) {
  TempDir dir("log_torn");
  const std::string path = dir.path() + "/log";
  {
    RecordLog log(path);
    log.append("keep");
    log.append("casualty");
  }
  const std::string bytes = readAll(path);
  writeRaw(path, bytes.substr(0, bytes.size() - 3));  // tear the last frame
  RecordLog reborn(path);
  const ReplayResult replay = reborn.replayAndRepair();
  EXPECT_TRUE(replay.tornTail);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0], "keep");
  // The tail is gone on disk too: the next append extends the valid prefix.
  reborn.append("next");
  const ReplayResult after = reborn.replayAndRepair();
  EXPECT_FALSE(after.tornTail);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[1], "next");
}

TEST(JournalRecordLog, ResetEmptiesTheLog) {
  TempDir dir("log_reset");
  RecordLog log(dir.path() + "/log");
  log.append("gone");
  log.reset();
  EXPECT_TRUE(log.replayAndRepair().records.empty());
  EXPECT_EQ(fs::file_size(dir.path() + "/log"), 0u);
}

// --------------------------------------------------------------------------
// Atomic snapshot I/O.

TEST(JournalAtomicWrite, PublishesContentAndLeavesNoTmp) {
  TempDir dir("atomic");
  const std::string path = dir.path() + "/snap";
  writeFileAtomic(path, "first");
  EXPECT_EQ(readAll(path), "first");
  writeFileAtomic(path, "second");
  EXPECT_EQ(readAll(path), "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(JournalAtomicWrite, ReadFileIfExistsDistinguishesMissing) {
  TempDir dir("read_missing");
  EXPECT_FALSE(readFileIfExists(dir.path() + "/absent").has_value());
}

TEST(JournalDir, RequiresAnExistingParent) {
  TempDir dir("ensure");
  ensureJournalDir(dir.path() + "/sub");  // one new level is fine
  EXPECT_TRUE(fs::is_directory(dir.path() + "/sub"));
  EXPECT_THROW(ensureJournalDir(dir.path() + "/no/such/parent"),
               std::invalid_argument);
  EXPECT_THROW(ensureJournalDir(""), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Journaled stream runs.

StreamRunRequest faultyRequest() {
  StreamRunRequest run;
  run.streaming.demand = 32;
  run.streaming.storageCap = 3;
  run.streaming.mixers = 2;
  run.inject = true;
  run.faults = fault::FaultSpec::parse("loss=0.2");
  run.faultSeed = 3;
  return run;
}

std::string outputBytes(const StreamRunResult& result) {
  std::string out = engine::toJson(result.plan).dump();
  for (const engine::RecoveryReport& report : result.recovery) {
    out += '\n';
    out += engine::toJson(report).dump();
  }
  return out;
}

TEST(JournalStream, CrashThenResumeIsByteIdentical) {
  const engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const StreamRunRequest run = faultyRequest();
  engine::PassCache refCache;
  const std::string reference =
      outputBytes(runStream(engine, run, refCache));

  TempDir dir("crash_resume");
  StreamRunOptions crashOptions;
  crashOptions.journalDir = dir.path() + "/j";
  crashOptions.snapshotEvery = 2;
  crashOptions.stopAfterPass = 3;
  engine::PassCache cache;
  const StreamRunResult crashed = runStream(engine, run, cache, crashOptions);
  EXPECT_TRUE(crashed.partial);

  StreamRunOptions resumeOptions;
  resumeOptions.journalDir = crashOptions.journalDir;
  resumeOptions.resume = true;
  engine::PassCache resumeCache;
  const StreamRunResult resumed =
      runStream(engine, run, resumeCache, resumeOptions);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.journaledPasses, 3u);
  EXPECT_EQ(outputBytes(resumed), reference);
  // The finished journal holds a done snapshot and an empty log.
  EXPECT_EQ(fs::file_size(crashOptions.journalDir + "/journal.log"), 0u);
}

TEST(JournalStream, ResumingAFinishedRunReturnsTheSameBytes) {
  const engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const StreamRunRequest run = faultyRequest();
  TempDir dir("resume_done");
  StreamRunOptions options;
  options.journalDir = dir.path() + "/j";
  engine::PassCache cache;
  const std::string reference =
      outputBytes(runStream(engine, run, cache, options));
  StreamRunOptions resumeOptions = options;
  resumeOptions.resume = true;
  engine::PassCache resumeCache;
  const StreamRunResult again =
      runStream(engine, run, resumeCache, resumeOptions);
  EXPECT_EQ(outputBytes(again), reference);
}

TEST(JournalStream, ResumeWithoutAJournalIsAUsageError) {
  const engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const StreamRunRequest run = faultyRequest();
  engine::PassCache cache;
  StreamRunOptions options;
  options.resume = true;
  EXPECT_THROW((void)runStream(engine, run, cache, options),
               std::invalid_argument);
  TempDir dir("resume_empty");
  options.journalDir = dir.path() + "/never_written";
  EXPECT_THROW((void)runStream(engine, run, cache, options),
               std::invalid_argument);
}

TEST(JournalStream, FingerprintMismatchIsRejectedNotResumed) {
  const engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  StreamRunRequest run = faultyRequest();
  TempDir dir("fingerprint");
  StreamRunOptions crashOptions;
  crashOptions.journalDir = dir.path() + "/j";
  crashOptions.stopAfterPass = 1;
  engine::PassCache cache;
  (void)runStream(engine, run, cache, crashOptions);
  run.streaming.demand = 64;  // a different request
  StreamRunOptions resumeOptions;
  resumeOptions.journalDir = crashOptions.journalDir;
  resumeOptions.resume = true;
  try {
    (void)runStream(engine, run, cache, resumeOptions);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("different request"),
              std::string::npos);
  }
}

TEST(JournalStream, FingerprintCoversOutputsButNotJobs) {
  const Ratio ratio = protocols::pcrMasterMixRatio();
  StreamRunRequest a = faultyRequest();
  StreamRunRequest b = a;
  b.streaming.jobs = 8;
  EXPECT_EQ(fingerprint(ratio, a), fingerprint(ratio, b));
  b.streaming.jobs = a.streaming.jobs;
  b.faultSeed = a.faultSeed + 1;
  EXPECT_NE(fingerprint(ratio, a), fingerprint(ratio, b));
  b = a;
  b.streaming.storageCap = a.streaming.storageCap + 1;
  EXPECT_NE(fingerprint(ratio, a), fingerprint(ratio, b));
}

TEST(JournalStream, BitFlippedSnapshotIsDetectedAsCorruption) {
  const engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const StreamRunRequest run = faultyRequest();
  TempDir dir("bitflip");
  StreamRunOptions crashOptions;
  crashOptions.journalDir = dir.path() + "/j";
  crashOptions.stopAfterPass = 2;
  engine::PassCache cache;
  (void)runStream(engine, run, cache, crashOptions);
  const std::string snapPath = crashOptions.journalDir + "/snapshot.json";
  std::string snap = readAll(snapPath);
  snap[snap.size() / 2] ^= 0x01;
  writeRaw(snapPath, snap);
  StreamRunOptions resumeOptions;
  resumeOptions.journalDir = crashOptions.journalDir;
  resumeOptions.resume = true;
  EXPECT_THROW((void)runStream(engine, run, cache, resumeOptions),
               CorruptJournalError);
}

TEST(JournalStream, TornLogTailIsRepairedAndResumeStaysIdentical) {
  const engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const StreamRunRequest run = faultyRequest();
  engine::PassCache refCache;
  const std::string reference =
      outputBytes(runStream(engine, run, refCache));
  TempDir dir("torn_resume");
  StreamRunOptions crashOptions;
  crashOptions.journalDir = dir.path() + "/j";
  crashOptions.snapshotEvery = 100;  // keep every pass record in the log
  crashOptions.stopAfterPass = 3;
  engine::PassCache cache;
  (void)runStream(engine, run, cache, crashOptions);
  const std::string logPath = crashOptions.journalDir + "/journal.log";
  const std::string log = readAll(logPath);
  ASSERT_GT(log.size(), 4u);
  writeRaw(logPath, log.substr(0, log.size() - 4));
  StreamRunOptions resumeOptions;
  resumeOptions.journalDir = crashOptions.journalDir;
  resumeOptions.resume = true;
  engine::PassCache resumeCache;
  const StreamRunResult resumed =
      runStream(engine, run, resumeCache, resumeOptions);
  EXPECT_EQ(outputBytes(resumed), reference);
  EXPECT_EQ(resumed.journaledPasses, 2u);  // the torn third pass was redone
}

TEST(JournalStream, FreshJournalRunSupersedesAPreviousOne) {
  const engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const StreamRunRequest run = faultyRequest();
  TempDir dir("supersede");
  StreamRunOptions options;
  options.journalDir = dir.path() + "/j";
  options.stopAfterPass = 1;
  engine::PassCache cache;
  (void)runStream(engine, run, cache, options);  // crashed run #1
  options.stopAfterPass = 0;
  const std::string reference =
      outputBytes(runStream(engine, run, cache, options));  // fresh run #2
  StreamRunOptions resumeOptions;
  resumeOptions.journalDir = options.journalDir;
  resumeOptions.resume = true;
  EXPECT_EQ(outputBytes(runStream(engine, run, cache, resumeOptions)),
            reference);
}

// --------------------------------------------------------------------------
// Server request WAL.

TEST(JournalWal, UnackedRequestsReplayInAdmissionOrder) {
  TempDir dir("wal_order");
  std::vector<std::string> pending;
  {
    ServerJournal wal(dir.path() + "/j");
    const std::uint64_t a = wal.logRequest("req-a");
    (void)wal.logRequest("req-b");
    const std::uint64_t c = wal.logRequest("req-c");
    wal.ack(a);
    wal.ack(c);
  }
  ServerJournal reborn(dir.path() + "/j");
  pending = reborn.recoverPending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], "req-b");
  // Recovery truncates the log; a second recovery finds nothing.
  EXPECT_TRUE(reborn.recoverPending().empty());
}

TEST(JournalWal, IdsStayMonotonicAcrossRecovery) {
  TempDir dir("wal_ids");
  {
    ServerJournal wal(dir.path() + "/j");
    (void)wal.logRequest("one");
    (void)wal.logRequest("two");
  }
  ServerJournal reborn(dir.path() + "/j");
  (void)reborn.recoverPending();
  // New ids must not collide with replayed ones, or a stale ack could
  // retire the wrong request.
  EXPECT_GE(reborn.logRequest("three"), 2u);
}

TEST(JournalWal, TornTailDropsOnlyTheInterruptedRecord) {
  TempDir dir("wal_torn");
  {
    ServerJournal wal(dir.path() + "/j");
    (void)wal.logRequest("committed");
    (void)wal.logRequest("interrupted");
  }
  const std::string logPath = dir.path() + "/j/wal.log";
  const std::string bytes = readAll(logPath);
  writeRaw(logPath, bytes.substr(0, bytes.size() - 2));
  ServerJournal reborn(dir.path() + "/j");
  const std::vector<std::string> pending = reborn.recoverPending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], "committed");
}

TEST(JournalWal, DamagedRecordIsDetectedAsCorruption) {
  TempDir dir("wal_corrupt");
  {
    ServerJournal wal(dir.path() + "/j");
    (void)wal.logRequest("victim");
    (void)wal.logRequest("padding");  // keep the damaged frame complete
  }
  const std::string logPath = dir.path() + "/j/wal.log";
  std::string bytes = readAll(logPath);
  bytes[10] ^= 0x20;  // inside the first record's payload
  writeRaw(logPath, bytes);
  ServerJournal reborn(dir.path() + "/j");
  EXPECT_THROW((void)reborn.recoverPending(), CorruptJournalError);
}

}  // namespace
}  // namespace dmf::journal
