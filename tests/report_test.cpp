#include "report/chart.h"
#include "report/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dmf::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"Ratio", "Tc", "q"});
  t.addRow({"2:1:1:1:1:1:9", "11", "5"});
  t.addRow({"1:1", "1", "0"});
  const std::string text = t.render();
  EXPECT_NE(text.find("Ratio"), std::string::npos);
  EXPECT_NE(text.find("2:1:1:1:1:1:9"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.addRow({"plain", "1"});
  t.addRow({"with,comma", "quote\"inside"});
  const std::string csv = t.toCsv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Fixed, FormatsDigits) {
  EXPECT_EQ(fixed(72.456, 1), "72.5");
  EXPECT_EQ(fixed(3.0, 0), "3");
}

TEST(Chart, PlotsAllSeries) {
  Series a{"ours", {{1, 1}, {2, 2}, {3, 3}}};
  Series b{"baseline", {{1, 2}, {2, 4}, {3, 6}}};
  const std::string chart = renderChart({a, b}, 32, 8);
  EXPECT_NE(chart.find('A'), std::string::npos);
  EXPECT_NE(chart.find('B'), std::string::npos);
  EXPECT_NE(chart.find("ours"), std::string::npos);
  EXPECT_NE(chart.find("baseline"), std::string::npos);
}

TEST(Chart, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(renderChart({}).empty());
  EXPECT_TRUE(renderChart({Series{"empty", {}}}).empty());
}

}  // namespace
}  // namespace dmf::report
