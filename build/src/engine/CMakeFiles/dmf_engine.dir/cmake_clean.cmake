file(REMOVE_RECURSE
  "CMakeFiles/dmf_engine.dir/baseline.cpp.o"
  "CMakeFiles/dmf_engine.dir/baseline.cpp.o.d"
  "CMakeFiles/dmf_engine.dir/mdst.cpp.o"
  "CMakeFiles/dmf_engine.dir/mdst.cpp.o.d"
  "CMakeFiles/dmf_engine.dir/multi_target.cpp.o"
  "CMakeFiles/dmf_engine.dir/multi_target.cpp.o.d"
  "CMakeFiles/dmf_engine.dir/serialize.cpp.o"
  "CMakeFiles/dmf_engine.dir/serialize.cpp.o.d"
  "CMakeFiles/dmf_engine.dir/streaming.cpp.o"
  "CMakeFiles/dmf_engine.dir/streaming.cpp.o.d"
  "libdmf_engine.a"
  "libdmf_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
