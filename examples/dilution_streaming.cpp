// Dilution streaming (the N = 2 special case; cf. the paper's reference
// [20], a high-throughput dilution engine): produce a stream of sample
// droplets at concentration 5/16 against buffer, compare the forest engine
// with repeated two-way mixing, and show the exponential-accuracy trade.
#include <iostream>

#include "engine/baseline.h"
#include "engine/mdst.h"
#include "mixgraph/builders.h"
#include "report/table.h"

int main() {
  using namespace dmf;

  std::cout << "=== Dilution streaming: sample CF 5/16 against buffer ===\n\n";

  const mixgraph::MixingGraph graph = mixgraph::buildDilution(5, 4);
  engine::MdstEngine engine(graph.ratio());

  report::Table table({"demand D", "Tc forest", "Tc repeated", "I forest",
                       "I repeated", "W forest", "W repeated"});
  for (std::uint64_t demand : {2u, 8u, 16u, 32u}) {
    engine::MdstRequest request;
    request.scheme = engine::Scheme::kSRS;
    request.demand = demand;
    const engine::MdstResult ours = engine.run(request);
    const engine::BaselineResult rep =
        engine::runRepeatedBaseline(engine, mixgraph::Algorithm::MM, demand);
    table.addRow({std::to_string(demand),
                  std::to_string(ours.completionTime),
                  std::to_string(rep.completionTime),
                  std::to_string(ours.inputDroplets),
                  std::to_string(rep.inputDroplets),
                  std::to_string(ours.waste), std::to_string(rep.waste)});
  }
  std::cout << table.render();

  std::cout << "\nAccuracy sweep: the same target CF refined to deeper "
               "scales (D = 16):\n\n";
  report::Table acc({"accuracy d", "CF", "Tc", "I", "W"});
  for (unsigned d = 4; d <= 8; ++d) {
    // 5/16 expressed at scale 2^d.
    const std::uint64_t numerator = 5ull << (d - 4);
    const mixgraph::MixingGraph g = mixgraph::buildDilution(numerator + 1, d);
    engine::MdstEngine e(g.ratio());
    engine::MdstRequest request;
    request.scheme = engine::Scheme::kSRS;
    request.demand = 16;
    const engine::MdstResult r = e.run(request);
    acc.addRow({std::to_string(d),
                std::to_string(numerator + 1) + "/2^" + std::to_string(d),
                std::to_string(r.completionTime),
                std::to_string(r.inputDroplets), std::to_string(r.waste)});
  }
  std::cout << acc.render()
            << "\nEach extra accuracy bit deepens the mixing tree by one "
               "level; the forest\nreuses intermediates either way.\n";
  return 0;
}
