// Micro-benchmarks (google-benchmark): construction and scheduling
// throughput of the library's hot paths. After the google-benchmark run,
// main() takes wall-clock measurements of the parallel GA and the timed
// router and emits them through the BENCH_<name>.json harness
// (bench_obs.h), so speedups are diffable across commits.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/error_model.h"
#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/router.h"
#include "chip/simulation.h"
#include "chip/timed_router.h"
#include "engine/mdst.h"
#include "engine/pass_cache.h"
#include "engine/streaming.h"
#include "forest/task_forest.h"
#include "journal/journal.h"
#include "mixgraph/builders.h"
#include "obs/log.h"
#include "obs/scope.h"
#include "protocols/protocols.h"
#include "server/service.h"
#include "runtime/arena.h"
#include "runtime/thread_pool.h"
#include "sched/ga_scheduler.h"
#include "sched/heterogeneous.h"
#include "sched/schedulers.h"
#include "workload/ratio_corpus.h"

#include "bench_obs.h"

namespace {

using namespace dmf;

const Ratio& pcrRatio() {
  static const Ratio ratio = protocols::pcrMasterMixRatio();
  return ratio;
}

const Ratio& bigRatio() {
  static const Ratio ratio = protocols::publishedProtocols()[2].ratio;
  return ratio;
}

void BM_BuildMM(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixgraph::buildMM(bigRatio()));
  }
}
BENCHMARK(BM_BuildMM);

void BM_BuildRMA(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixgraph::buildRMA(bigRatio()));
  }
}
BENCHMARK(BM_BuildRMA);

void BM_BuildMTCS(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixgraph::buildMTCS(bigRatio()));
  }
}
BENCHMARK(BM_BuildMTCS);

void BM_ForestConstruction(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const auto demand = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest::TaskForest(graph, demand));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForestConstruction)->Range(2, 512)->Complexity();

void BM_ScheduleMMS(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleMMS(f, 4));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScheduleMMS)->Range(2, 512)->Complexity();

void BM_ScheduleSRS(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleSRS(f, 4));
  }
}
BENCHMARK(BM_ScheduleSRS)->Range(2, 128);

void BM_ScheduleOMS(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleOMS(f, 4));
  }
}
BENCHMARK(BM_ScheduleOMS)->Range(2, 512);

void BM_StorageCount(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, 64);
  const sched::Schedule s = sched::scheduleMMS(f, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::countStorage(f, s));
  }
}
BENCHMARK(BM_StorageCount);

void BM_EndToEndEngine(benchmark::State& state) {
  for (auto _ : state) {
    engine::MdstEngine engine(pcrRatio());
    engine::MdstRequest request;
    request.scheme = engine::Scheme::kMMS;
    request.demand = 32;
    benchmark::DoNotOptimize(engine.run(request));
  }
}
BENCHMARK(BM_EndToEndEngine);

// One memoizable pass evaluation (forest -> schedule -> storage count), the
// unit of work every streaming-planner sweep repeats per candidate demand.
void BM_EvaluatePass(benchmark::State& state) {
  const engine::MdstEngine engine(pcrRatio());
  const auto demand = static_cast<std::uint64_t>(state.range(0));
  (void)engine.baseGraph(mixgraph::Algorithm::MM);  // lazy build up front
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::evaluatePass(
        engine, mixgraph::Algorithm::MM, engine::Scheme::kSRS, 3, demand));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluatePass)->Range(8, 128)->Complexity();

// A full cold demand ladder [1, N] through the batched path — the optimized
// streaming planner's dominant cost. The cache is fresh every iteration, so
// every rung computes.
void BM_DemandLadder(benchmark::State& state) {
  const engine::MdstEngine engine(pcrRatio());
  const auto top = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::uint64_t> demands;
  for (std::uint64_t d = 1; d <= top; ++d) demands.push_back(d);
  for (auto _ : state) {
    engine::PassCache cache;
    benchmark::DoNotOptimize(cache.evaluateLadder(
        engine, mixgraph::Algorithm::MM, engine::Scheme::kSRS, 3, demands));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DemandLadder)->Range(32, 128)->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_RouterCostMatrix(benchmark::State& state) {
  const chip::Layout layout = chip::makePcrLayout();
  for (auto _ : state) {
    chip::Router router(layout);
    benchmark::DoNotOptimize(router.costMatrix());
  }
}
BENCHMARK(BM_RouterCostMatrix);

void BM_ChipExecution(benchmark::State& state) {
  const chip::Layout layout = chip::makePcrLayout();
  chip::Router router(layout);
  chip::ChipExecutor executor(layout, router);
  const mixgraph::MixingGraph graph = mixgraph::buildMM(pcrRatio());
  const forest::TaskForest f(graph, 20);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.run(f, s));
  }
}
BENCHMARK(BM_ChipExecution);

void BM_ScheduleGA(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(pcrRatio());
  const forest::TaskForest f(graph, 32);
  sched::GaOptions options;
  options.population = 16;
  options.generations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleGA(f, 3, options));
  }
}
BENCHMARK(BM_ScheduleGA);

// GA fitness evaluation fanned out over N pool workers; the schedule is
// byte-identical for every N, only the wall clock moves.
void BM_ScheduleGAJobs(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, 64);
  sched::GaOptions options;
  options.population = 32;
  options.generations = 20;
  runtime::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleGA(f, 4, options, pool));
  }
}
BENCHMARK(BM_ScheduleGAJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One concurrent transport phase on an open 20x20 array: six droplets
// crossing through the centre, so the occupancy index does real work.
// range(0) toggles the O(n^2 * makespan) post-routing verification sweep.
void BM_RoutePhase(benchmark::State& state) {
  const chip::Layout layout(20, 20);
  chip::TimedRouterOptions options;
  options.verifyInterference = state.range(0) != 0;
  const chip::TimedRouter router(layout, options);
  // Three droplets travel top-to-bottom, three left-to-right; every
  // vertical lane crosses every horizontal one, so droplets time-slip
  // around each other at nine intersections.
  std::vector<chip::PhaseMove> moves;
  for (int d = 0; d < 3; ++d) {
    moves.push_back({{5 * d + 2, 0}, {5 * d + 2, 19},
                     static_cast<std::uint32_t>(d)});
    moves.push_back({{0, 5 * d + 2}, {19, 5 * d + 2},
                     static_cast<std::uint32_t>(d + 3)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.routePhase(moves));
  }
}
BENCHMARK(BM_RoutePhase)->Arg(0)->Arg(1);

void BM_ScheduleHeterogeneous(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(pcrRatio());
  const forest::TaskForest f(graph, 32);
  const sched::MixerBank bank{{1, 2, 4}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleHeterogeneous(f, bank));
  }
}
BENCHMARK(BM_ScheduleHeterogeneous);

void BM_MultiTargetGraph(benchmark::State& state) {
  const std::vector<Ratio> targets = {Ratio({2, 1, 1, 1, 1, 1, 9}),
                                      Ratio({2, 1, 1, 1, 1, 9, 1}),
                                      Ratio({4, 4, 2, 2, 1, 1, 2})};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixgraph::buildMultiTarget(targets));
  }
}
BENCHMARK(BM_MultiTargetGraph);

void BM_ErrorAnalysis(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeErrors(graph, {0.05, 0.0}));
  }
}
BENCHMARK(BM_ErrorAnalysis);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::partitionCorpus(32, 2, 12));
  }
}
BENCHMARK(BM_CorpusGeneration);

// --- crash-recovery journal ------------------------------------------------
// One journal append = frame (length + CRC32) + write + fsync; the fsync
// dominates, so this measures the real durability tax a journaled stream
// run pays per pass (DESIGN.md §16).

void BM_JournalAppend(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("dmf_bench_journal_" + std::to_string(::getpid())))
          .string();
  fs::create_directories(dir);
  const std::string payload(256, 'p');  // a typical pass-record size
  {
    journal::RecordLog log(dir + "/log");
    for (auto _ : state) {
      log.append(payload);
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_JournalAppend);

// --- observability overhead -----------------------------------------------
// The disabled path must be near-free: each helper is one relaxed atomic
// load plus a branch, so these two benchmarks should report low-nanosecond
// times. BM_ObsDisabledScheduling vs BM_ScheduleMMS quantifies the
// whole-pipeline cost of the instrumentation hooks when no session exists.

void BM_ObsDisabledCount(benchmark::State& state) {
  for (auto _ : state) {
    obs::count("bench.disabled.counter");
    benchmark::DoNotOptimize(obs::enabled());
  }
}
BENCHMARK(BM_ObsDisabledCount);

void BM_ObsDisabledSpan(benchmark::State& state) {
  for (auto _ : state) {
    const obs::Span span("bench.disabled.span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsDisabledSpan);

void BM_ObsEnabledCount(benchmark::State& state) {
  obs::Session session;
  const obs::Scope scope(session);
  for (auto _ : state) {
    obs::count("bench.enabled.counter");
  }
}
BENCHMARK(BM_ObsEnabledCount);

void BM_ObsEnabledSpan(benchmark::State& state) {
  obs::Session session;
  const obs::Scope scope(session);
  for (auto _ : state) {
    const obs::Span span("bench.enabled.span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsEnabledSpan);

void BM_ObsDisabledScheduling(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleMMS(f, 4));
    benchmark::DoNotOptimize(sched::countStorage(f, sched::scheduleMMS(f, 4)));
  }
}
BENCHMARK(BM_ObsDisabledScheduling);

void BM_ObsEnabledScheduling(benchmark::State& state) {
  const mixgraph::MixingGraph graph = mixgraph::buildMM(bigRatio());
  const forest::TaskForest f(graph, 64);
  obs::Session session;
  const obs::Scope scope(session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::scheduleMMS(f, 4));
    benchmark::DoNotOptimize(sched::countStorage(f, sched::scheduleMMS(f, 4)));
  }
}
BENCHMARK(BM_ObsEnabledScheduling);

std::uint64_t nanosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// --- obs overhead budget (DESIGN.md §14) ----------------------------------
// With no session and no logger installed, the instrumentation a cache hit
// passes through (request + probe spans, counters, the request-latency
// histogram check, a debug log line) must cost < 2% of the hit p50. This
// runs BEFORE BenchSession installs its scope — it measures the true
// disabled path — and the bound is asserted: a regression fails bench_micro
// with a nonzero exit, not just a slower number in a JSON nobody reads.

struct ObsOverheadResult {
  double hookBundleNanos = 0.0;  ///< disabled-path cost of one hit's hooks
  std::uint64_t hitP50Nanos = 0;
  double overheadPct = 0.0;
};

ObsOverheadResult measureObsOverhead() {
  using clock = std::chrono::steady_clock;
  ObsOverheadResult result;

  // One iteration is a superset of the hooks on the real hit path: two
  // spans, three counters, the metrics/log-level checks, one log line.
  constexpr std::uint64_t kIters = 1'000'000;
  const auto hookStart = clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    const obs::Span request("bench.request", "server");
    const obs::Span probe("bench.probe", "server");
    obs::count("bench.requests");
    obs::count("bench.cache.mem_hit");
    obs::count("bench.extra");
    benchmark::DoNotOptimize(obs::metrics());
    benchmark::DoNotOptimize(obs::logEnabled(obs::LogLevel::kDebug));
    obs::LogLine(obs::LogLevel::kDebug, "bench.request");
  }
  result.hookBundleNanos =
      static_cast<double>(nanosSince(hookStart)) / kIters;

  // Hit p50 of a real in-process PlanService, observability fully off.
  server::PlanService service{server::ServiceOptions{}};
  const std::string line =
      "{\"op\":\"plan\",\"ratio\":\"2:1:1:1:1:1:9\",\"demand\":20,"
      "\"storage\":3}";
  (void)service.handle(line);  // fill the cache
  std::vector<std::uint64_t> samples;
  samples.reserve(3000);
  for (int i = 0; i < 3000; ++i) {
    const auto start = clock::now();
    (void)service.handle(line);
    samples.push_back(nanosSince(start));
  }
  std::sort(samples.begin(), samples.end());
  result.hitP50Nanos = samples[samples.size() / 2];
  result.overheadPct = result.hitP50Nanos == 0
                           ? 0.0
                           : result.hookBundleNanos /
                                 static_cast<double>(result.hitP50Nanos) *
                                 100.0;
  return result;
}

// --- measured speedups, emitted as BENCH_bench_micro.json ----------------
// Wall-clock gauges for the two hot paths this library parallelized /
// de-allocated, over the Table-2/3 workloads (the five published protocol
// forests). Speedup gauges are scaled x1000 (gauges are integers).

void recordMeasuredSpeedups() {
  using clock = std::chrono::steady_clock;
  obs::MetricsRegistry* metrics = obs::metrics();
  if (metrics == nullptr) return;

  // GA scheduling across the Table-2/3 forests (five published ratios,
  // D = 32 and 64) at --jobs 1 vs --jobs 8.
  std::vector<forest::TaskForest> forests;
  for (const auto& protocol : protocols::publishedProtocols()) {
    const mixgraph::MixingGraph graph = mixgraph::buildMM(protocol.ratio);
    forests.emplace_back(graph, 32);
    forests.emplace_back(graph, 64);
  }
  sched::GaOptions options;  // default pop 32 / gens 60
  std::uint64_t serialNanos = 0;
  std::uint64_t parallelNanos = 0;
  for (const unsigned jobs : {1u, 8u}) {
    runtime::ThreadPool pool(jobs);
    const auto start = clock::now();
    for (const forest::TaskForest& f : forests) {
      benchmark::DoNotOptimize(sched::scheduleGA(f, 4, options, pool));
    }
    const std::uint64_t nanos = nanosSince(start);
    (jobs == 1 ? serialNanos : parallelNanos) = nanos;
    metrics->gauge(jobs == 1 ? "bench.ga.table23_jobs1_nanos"
                             : "bench.ga.table23_jobs8_nanos")
        .set(nanos);
  }
  if (parallelNanos > 0) {
    metrics->gauge("bench.ga.table23_speedup_x1000")
        .set(serialNanos * 1000 / parallelNanos);
  }

  // Demand-ladder sweep (the optimized streaming planner's hot loop): the
  // full candidate range [1, 128] on the PCR ratio, scalar per-demand
  // evaluation vs one batched sweep, plus the end-to-end optimized plan.
  {
    const engine::MdstEngine engine(pcrRatio());
    std::vector<std::uint64_t> demands;
    for (std::uint64_t d = 1; d <= 128; ++d) demands.push_back(d);
    {
      engine::PassCache cache;
      const auto start = clock::now();
      for (const std::uint64_t d : demands) {
        benchmark::DoNotOptimize(cache.evaluate(
            engine, mixgraph::Algorithm::MM, engine::Scheme::kSRS, 3, d));
      }
      metrics->gauge("bench.ladder.demand128_scalar_nanos")
          .set(nanosSince(start));
    }
    {
      engine::PassCache cache;
      const auto start = clock::now();
      benchmark::DoNotOptimize(cache.evaluateLadder(
          engine, mixgraph::Algorithm::MM, engine::Scheme::kSRS, 3, demands));
      metrics->gauge("bench.ladder.demand128_nanos").set(nanosSince(start));
    }
    {
      engine::StreamingRequest request;
      request.scheme = engine::Scheme::kSRS;
      request.demand = 128;
      request.storageCap = 4;
      request.jobs = 1;
      const auto start = clock::now();
      benchmark::DoNotOptimize(engine::planStreamingOptimized(engine,
                                                              request));
      metrics->gauge("bench.ladder.plan128_nanos").set(nanosSince(start));
    }
    // Allocation-count gauge: after one warm-up sweep the thread's scratch
    // arena (and every thread_local scheduler buffer) is sized for the
    // ladder, so a second full sweep must add ZERO fresh chunks. The pinned
    // baseline is 0 with no tolerance — any steady-state allocation on the
    // hot path trips the perf gate.
    {
      engine::PassCache warm;
      benchmark::DoNotOptimize(warm.evaluateLadder(
          engine, mixgraph::Algorithm::MM, engine::Scheme::kSRS, 3, demands));
      const std::uint64_t before = runtime::scratchArena().chunkAllocations();
      engine::PassCache cold;
      benchmark::DoNotOptimize(cold.evaluateLadder(
          engine, mixgraph::Algorithm::MM, engine::Scheme::kSRS, 3, demands));
      metrics->gauge("bench.arena.ladder_chunk_delta")
          .set(runtime::scratchArena().chunkAllocations() - before);
      metrics->gauge("bench.arena.bytes_reserved")
          .set(runtime::scratchArena().bytesReserved());
    }
  }

  // Durable journal append (frame + write + fsync), per record — the
  // per-pass overhead `stream --journal` adds to a run.
  {
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() /
         ("dmf_bench_journal_gauge_" + std::to_string(::getpid())))
            .string();
    fs::create_directories(dir);
    const std::string payload(256, 'p');
    constexpr std::uint64_t kAppends = 64;
    {
      journal::RecordLog log(dir + "/log");
      log.append(payload);  // warm up: first append pays file creation
      const auto start = clock::now();
      for (std::uint64_t i = 0; i < kAppends; ++i) log.append(payload);
      metrics->gauge("bench.journal.append_nanos")
          .set(nanosSince(start) / kAppends);
    }
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  // Per-phase router time, with and without the post-routing verification
  // sweep, on the PCR case study trace.
  const chip::Layout layout = chip::makePcrLayout();
  chip::Router router(layout);
  chip::ChipExecutor executor(layout, router);
  const mixgraph::MixingGraph graph =
      mixgraph::buildMM(protocols::pcrMasterMixRatio());
  const forest::TaskForest f(graph, 20);
  const sched::Schedule s = sched::scheduleSRS(f, 3);
  const chip::ExecutionTrace trace = executor.run(f, s);
  for (const bool verify : {true, false}) {
    chip::TimedRouterOptions routerOptions;
    routerOptions.verifyInterference = verify;
    std::uint64_t phases = 0;
    const auto start = clock::now();
    for (int rep = 0; rep < 20; ++rep) {
      const chip::SimulationResult sim =
          chip::simulateTrace(layout, trace, routerOptions);
      phases += sim.phases.size();
    }
    const std::uint64_t nanos = nanosSince(start);
    metrics->gauge(verify ? "bench.router.phase_nanos_verified"
                          : "bench.router.phase_nanos")
        .set(nanos / phases);
  }
}

}  // namespace

// Custom main (instead of benchmark_main): the obs scope must NOT be active
// while the BM_Obs* benchmarks run — they measure the disabled path — so the
// BenchSession is installed only for the measured-speedup section afterwards.
int main(int argc, char** argv) {
  // No ReportUnrecognizedArguments: --metrics FILE belongs to BenchSession.
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Disabled-path overhead: measured while no session/logger exists, then
  // asserted. The gauges land in the JSON afterwards (x1000: integers).
  const ObsOverheadResult overhead = measureObsOverhead();
  std::cout << "obs overhead: hook bundle " << overhead.hookBundleNanos
            << " ns, hit p50 " << overhead.hitP50Nanos << " ns -> "
            << overhead.overheadPct << "% (budget 2%)\n";
  int rc = 0;
  if (overhead.overheadPct >= 2.0) {
    std::cerr << "FAIL: disabled-path obs overhead " << overhead.overheadPct
              << "% exceeds the 2% budget\n";
    rc = 1;
  }
  {
    const dmf::bench::BenchSession benchObs("bench_micro", argc, argv);
    recordMeasuredSpeedups();
    if (dmf::obs::MetricsRegistry* m = dmf::obs::metrics()) {
      m->gauge("bench.obs.hook_bundle_nanos_x1000")
          .set(static_cast<std::uint64_t>(overhead.hookBundleNanos * 1000.0));
      m->gauge("bench.obs.hit_p50_nanos").set(overhead.hitP50Nanos);
      m->gauge("bench.obs.hit_overhead_pct_x1000")
          .set(static_cast<std::uint64_t>(overhead.overheadPct * 1000.0));
    }
  }
  return rc;
}
