#include "sched/heterogeneous.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace dmf::sched {

using forest::DropletFate;
using forest::kNoTask;
using forest::Task;
using forest::TaskForest;
using forest::TaskId;

MixerBank uniformBank(unsigned mixers, unsigned cycles) {
  return MixerBank{std::vector<unsigned>(mixers, cycles)};
}

Schedule scheduleHeterogeneous(const TaskForest& forest,
                               const MixerBank& bank) {
  if (bank.size() == 0) {
    throw std::invalid_argument("scheduleHeterogeneous: empty mixer bank");
  }
  for (unsigned cycles : bank.cyclesPerMix) {
    if (cycles == 0) {
      throw std::invalid_argument(
          "scheduleHeterogeneous: zero-cycle mixer duration");
    }
  }
  Schedule s;
  s.mixerCount = static_cast<unsigned>(bank.size());
  s.scheme = "HET";
  s.assignments.assign(forest.taskCount(), Assignment{});
  if (forest.taskCount() == 0) return s;
  const std::size_t n = forest.taskCount();

  // Longest remaining dependency chain first (Hu priority).
  std::vector<unsigned> colevel(n, 1);
  for (TaskId id = static_cast<TaskId>(n); id-- > 0;) {
    for (const auto& drop : forest.task(id).out) {
      if (drop.fate == DropletFate::kConsumed) {
        colevel[id] = std::max(colevel[id], colevel[drop.consumer] + 1);
      }
    }
  }

  std::vector<unsigned> pending(n, 0);
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = forest.task(id);
    pending[id] = (t.depLeft != kNoTask ? 1u : 0u) +
                  (t.depRight != kNoTask ? 1u : 0u);
  }
  std::map<unsigned, std::vector<TaskId>> arrivals;
  // Earliest cycle a task may start: one past the latest operand finish
  // (operands can finish out of scheduling order on a mixed bank).
  std::vector<unsigned> readyAt(n, 1);
  for (TaskId id = 0; id < n; ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }

  // Mixers ordered fastest-first; freeAt[m] = first idle cycle.
  std::vector<unsigned> order(bank.size());
  for (unsigned m = 0; m < bank.size(); ++m) order[m] = m;
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return bank.cyclesPerMix[a] < bank.cyclesPerMix[b];
  });
  std::vector<unsigned> freeAt(bank.size(), 1);

  std::set<std::pair<int, TaskId>> ready;
  std::size_t remaining = n;
  for (unsigned t = 1; remaining > 0; ++t) {
    const auto it = arrivals.find(t);
    if (it != arrivals.end()) {
      for (TaskId id : it->second) {
        ready.insert({-static_cast<int>(colevel[id]), id});
      }
      arrivals.erase(it);
    }
    for (unsigned m : order) {
      if (ready.empty()) break;
      if (freeAt[m] > t) continue;
      const TaskId id = ready.begin()->second;
      ready.erase(ready.begin());
      s.assignments[id] = Assignment{t, m};
      const unsigned finish = t + bank.cyclesPerMix[m] - 1;
      freeAt[m] = finish + 1;
      s.completionTime = std::max(s.completionTime, finish);
      --remaining;
      for (const auto& drop : forest.task(id).out) {
        if (drop.fate != DropletFate::kConsumed) continue;
        readyAt[drop.consumer] = std::max(readyAt[drop.consumer], finish + 1);
        if (--pending[drop.consumer] == 0) {
          arrivals[readyAt[drop.consumer]].push_back(drop.consumer);
        }
      }
    }
    if (ready.empty() && remaining > 0 && arrivals.empty()) {
      throw std::logic_error("scheduleHeterogeneous: stalled");
    }
  }
  return s;
}

unsigned finishCycle(const Schedule& s, const MixerBank& bank, TaskId id) {
  const Assignment& a = s.assignments[id];
  return a.cycle + bank.cyclesPerMix[a.mixer] - 1;
}

void validateHeterogeneous(const TaskForest& forest, const Schedule& s,
                           const MixerBank& bank) {
  if (s.assignments.size() != forest.taskCount()) {
    throw std::logic_error("validateHeterogeneous: assignment count mismatch");
  }
  // Per-mixer occupancy intervals must be disjoint.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> busy(bank.size());
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const Assignment& a = s.assignments[id];
    if (a.cycle == 0) {
      throw std::logic_error("validateHeterogeneous: unscheduled task");
    }
    if (a.mixer >= bank.size()) {
      throw std::logic_error("validateHeterogeneous: mixer out of range");
    }
    busy[a.mixer].push_back({a.cycle, finishCycle(s, bank, id)});
    const Task& t = forest.task(id);
    for (TaskId dep : {t.depLeft, t.depRight}) {
      if (dep != kNoTask && finishCycle(s, bank, dep) >= a.cycle) {
        throw std::logic_error(
            "validateHeterogeneous: operand not ready at task " +
            std::to_string(id));
      }
    }
  }
  for (auto& intervals : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first <= intervals[i - 1].second) {
        throw std::logic_error(
            "validateHeterogeneous: overlapping mixes on one mixer");
      }
    }
  }
}

unsigned countStorageHeterogeneous(const TaskForest& forest,
                                   const Schedule& s, const MixerBank& bank) {
  std::vector<unsigned> storage(s.completionTime + 2, 0);
  unsigned peak = 0;
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const unsigned produced = finishCycle(s, bank, id);
    for (const auto& drop : forest.task(id).out) {
      if (drop.fate != DropletFate::kConsumed) continue;
      const unsigned consumed = s.assignments[drop.consumer].cycle;
      for (unsigned i = produced + 1; i < consumed; ++i) {
        peak = std::max(peak, ++storage[i]);
      }
    }
  }
  return peak;
}

}  // namespace dmf::sched
