#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace dmf::runtime {

/// Chunked bump allocator for per-plan scratch. Allocation is a pointer
/// bump; freeing is wholesale via `release(mark())` or `reset()`. Chunks
/// are retained across resets, so steady-state reuse performs zero system
/// allocations — the property the `runtime.arena.*` obs counters and the
/// bench allocation gauge pin down.
///
/// Not thread-safe; use one arena per thread (see `scratchArena()`).
class Arena {
 public:
  /// Rewind token. Valid only for the arena that produced it, and only
  /// while every later marker has already been released (stack order).
  struct Marker {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  explicit Arena(std::size_t firstChunkBytes = kDefaultFirstChunk);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two). The
  /// memory is uninitialized and lives until the enclosing marker is
  /// released or the arena is reset.
  void* allocateBytes(std::size_t bytes, std::size_t align);

  /// Typed convenience: uninitialized storage for `count` objects of T.
  template <typename T>
  T* allocate(std::size_t count) {
    return static_cast<T*>(allocateBytes(count * sizeof(T), alignof(T)));
  }

  [[nodiscard]] Marker mark() const { return {current_, used_}; }

  /// Rewinds to `m`, keeping every chunk for reuse.
  void release(const Marker& m) {
    current_ = m.chunk;
    used_ = m.used;
  }

  /// Rewinds to empty, keeping every chunk for reuse.
  void reset() {
    current_ = 0;
    used_ = 0;
  }

  /// Chunks currently owned (never shrinks).
  [[nodiscard]] std::size_t chunkCount() const { return chunks_.size(); }
  /// Total bytes reserved from the system over the arena's lifetime.
  [[nodiscard]] std::size_t bytesReserved() const { return bytesReserved_; }
  /// Number of fresh system allocations ever performed. A warm arena that
  /// stops growing holds this constant — the bench gauge asserts exactly
  /// that on the demand-ladder sweep.
  [[nodiscard]] std::uint64_t chunkAllocations() const {
    return chunkAllocations_;
  }

  static constexpr std::size_t kDefaultFirstChunk = 64 * 1024;
  static constexpr std::size_t kMaxChunk = 4 * 1024 * 1024;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void addChunk(std::size_t atLeast);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  ///< Index of the chunk being bumped.
  std::size_t used_ = 0;     ///< Bytes consumed in chunks_[current_].
  std::size_t firstChunkBytes_;
  std::size_t bytesReserved_ = 0;
  std::uint64_t chunkAllocations_ = 0;
};

/// RAII marker: everything allocated from `arena` inside the scope is
/// released (wholesale, no destructors) when the scope ends. Scopes must
/// nest in stack order.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), marker_(arena.mark()) {}
  ~ArenaScope() { arena_.release(marker_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Marker marker_;
};

/// std::allocator adapter so standard containers can live in an arena.
/// `deallocate` is a no-op: storage is reclaimed by the enclosing
/// ArenaScope, so only use for containers that die inside one scope.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena_) {}

  T* allocate(std::size_t n) { return arena_->allocate<T>(n); }
  void deallocate(T*, std::size_t) noexcept {}

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena_;
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena_;
  }

  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Per-thread scratch arena shared by forest construction and scheduler
/// scratch. Thread-local, so pool workers never contend; callers bracket
/// their usage with ArenaScope and leak nothing to the next caller.
Arena& scratchArena();

}  // namespace dmf::runtime
