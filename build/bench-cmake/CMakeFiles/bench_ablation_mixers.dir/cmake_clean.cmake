file(REMOVE_RECURSE
  "../bench/bench_ablation_mixers"
  "../bench/bench_ablation_mixers.pdb"
  "CMakeFiles/bench_ablation_mixers.dir/bench_ablation_mixers.cpp.o"
  "CMakeFiles/bench_ablation_mixers.dir/bench_ablation_mixers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mixers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
