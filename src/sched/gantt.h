// ASCII rendering of a schedule as a modified Gantt chart (paper Fig. 4):
// one row per mixer, one column per time-cycle, plus the storage-occupancy
// profile and the target-droplet emission sequence.
#pragma once

#include <string>

#include "sched/schedule.h"

namespace dmf::sched {

/// Renders the schedule. Cells show the component tree and base-graph node of
/// each mix-split ("m<tree>.<node>"); the footer rows show per-cycle storage
/// occupancy and the number of target droplets emitted per cycle.
[[nodiscard]] std::string renderGantt(const forest::TaskForest& forest,
                                      const Schedule& s);

}  // namespace dmf::sched
