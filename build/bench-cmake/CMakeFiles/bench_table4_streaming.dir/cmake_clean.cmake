file(REMOVE_RECURSE
  "../bench/bench_table4_streaming"
  "../bench/bench_table4_streaming.pdb"
  "CMakeFiles/bench_table4_streaming.dir/bench_table4_streaming.cpp.o"
  "CMakeFiles/bench_table4_streaming.dir/bench_table4_streaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
