// Reproduces Fig. 1 and Fig. 2: mixing-forest construction for the PCR
// master-mix ratio 2:1:1:1:1:1:9 (d = 4) at demands 16 and 20.
//
// Paper values: D=16 -> |F| = 8,  Tms = 19, W = 0, I = [2,1,1,1,1,1,9] (16)
//               D=20 -> |F| = 10, Tms = 27, W = 5, I = [3,2,2,2,2,2,12] (25)
#include <iostream>

#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "protocols/protocols.h"
#include "report/table.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("fig1_fig2_forest");
  using namespace dmf;

  const Ratio ratio = protocols::pcrMasterMixRatio();
  const mixgraph::MixingGraph graph = mixgraph::buildMM(ratio);

  std::cout << "# Fig. 1 / Fig. 2 — mixing forest for " << ratio.toString()
            << " (MM base tree, d = " << ratio.accuracy() << ")\n\n";

  report::Table table({"demand D", "|F|", "Tms", "W", "I", "I[] per fluid",
                       "paper (|F|, Tms, W, I)"});
  struct Reference {
    std::uint64_t demand;
    std::string paper;
  };
  for (const Reference& ref :
       {Reference{16, "8, 19, 0, 16"}, Reference{20, "10, 27, 5, 25"}}) {
    const forest::TaskForest forest(graph, ref.demand);
    const auto& s = forest.stats();
    std::string perFluid;
    for (std::size_t i = 0; i < s.inputPerFluid.size(); ++i) {
      perFluid += (i ? "," : "") + std::to_string(s.inputPerFluid[i]);
    }
    table.addRow({std::to_string(ref.demand),
                  std::to_string(s.componentTrees),
                  std::to_string(s.mixSplits), std::to_string(s.waste),
                  std::to_string(s.inputTotal), perFluid, ref.paper});
  }
  std::cout << table.render();

  std::cout << "\n# Waste-free demands (D = p * 2^d):\n\n";
  report::Table zeros({"demand D", "W", "I"});
  for (std::uint64_t p = 1; p <= 4; ++p) {
    const forest::TaskForest forest(graph, p * 16);
    zeros.addRow({std::to_string(p * 16),
                  std::to_string(forest.stats().waste),
                  std::to_string(forest.stats().inputTotal)});
  }
  std::cout << zeros.render();
  return 0;
}
