// Exact dyadic fractions (n / 2^k) — the only concentrations reachable with
// (1:1) mix-split operations on a digital microfluidic biochip.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace dmf {

/// A non-negative dyadic rational `num / 2^exp`, kept in canonical form:
/// either `num` is odd, or `num == 0 && exp == 0`.
///
/// Every droplet concentration produced by a sequence of (1:1) mix-split
/// steps from 100%-CF inputs is such a fraction, so the whole library can use
/// exact arithmetic — no floating-point rounding anywhere in the mix model.
class DyadicFraction {
 public:
  /// Zero.
  constexpr DyadicFraction() = default;

  /// Constructs `num / 2^exp` and canonicalizes it.
  /// Throws std::invalid_argument if exp > kMaxExponent.
  DyadicFraction(std::uint64_t num, unsigned exp);

  /// The whole number `n` (i.e. `n / 2^0`).
  static DyadicFraction whole(std::uint64_t n) { return DyadicFraction(n, 0); }

  /// Numerator in canonical form.
  [[nodiscard]] std::uint64_t numerator() const { return num_; }
  /// log2 of the denominator in canonical form.
  [[nodiscard]] unsigned exponent() const { return exp_; }

  [[nodiscard]] bool isZero() const { return num_ == 0; }
  [[nodiscard]] bool isOne() const { return num_ == 1 && exp_ == 0; }

  /// Exact value as double (exact for exponents within double's range).
  [[nodiscard]] double toDouble() const;

  /// Numerator when expressed over denominator 2^exp.
  /// Throws std::invalid_argument if the fraction is not representable at
  /// that scale (exp smaller than the canonical exponent).
  [[nodiscard]] std::uint64_t numeratorAtScale(unsigned exp) const;

  /// Exact sum. Throws std::overflow_error on 64-bit overflow.
  [[nodiscard]] DyadicFraction operator+(const DyadicFraction& o) const;
  /// Exact halving: value / 2.
  [[nodiscard]] DyadicFraction half() const;
  /// The (1:1) mix of two droplet concentrations: (a + b) / 2.
  [[nodiscard]] static DyadicFraction mix(const DyadicFraction& a,
                                          const DyadicFraction& b);

  friend bool operator==(const DyadicFraction&, const DyadicFraction&) = default;
  /// Exact value ordering.
  [[nodiscard]] std::strong_ordering operator<=>(const DyadicFraction& o) const;

  /// "num/2^exp" (or "num" when exp == 0).
  [[nodiscard]] std::string toString() const;

  /// Largest supported exponent; beyond this, mixing depth is unrealistic for
  /// any biochip and the arithmetic would overflow.
  static constexpr unsigned kMaxExponent = 62;

 private:
  std::uint64_t num_ = 0;
  unsigned exp_ = 0;
};

}  // namespace dmf
