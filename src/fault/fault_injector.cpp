#include "fault/fault_injector.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "obs/scope.h"

namespace dmf::fault {
namespace {

// Parses one "key=value" token of a fault spec. Returns false when the key
// is unknown (the caller composes the error message).
double parseRate(const std::string& token, const std::string& value) {
  double out = 0.0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last) {
    throw std::invalid_argument("fault spec: bad number in \"" + token + "\"");
  }
  return out;
}

}  // namespace

std::string_view faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSplitImbalance: return "split";
    case FaultKind::kDropletLoss: return "loss";
    case FaultKind::kDispenseFail: return "dispense";
    case FaultKind::kElectrodeDead: return "electrode";
  }
  return "unknown";
}

bool FaultSpec::any() const {
  return splitRate > 0.0 || lossRate > 0.0 || dispenseRate > 0.0 ||
         electrodeRate > 0.0;
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault spec: expected key=value, got \"" +
                                  token + "\"");
    }
    const std::string key = token.substr(0, eq);
    const double value = parseRate(token, token.substr(eq + 1));
    const bool isEps = key == "eps";
    if (value < 0.0 || value > 1.0 || (isEps && value == 0.0)) {
      throw std::invalid_argument("fault spec: \"" + key + "\" must be in " +
                                  (isEps ? "(0, 1]" : "[0, 1]"));
    }
    if (key == "split") {
      spec.splitRate = value;
    } else if (key == "eps") {
      spec.splitEps = value;
    } else if (key == "loss") {
      spec.lossRate = value;
    } else if (key == "dispense") {
      spec.dispenseRate = value;
    } else if (key == "electrode") {
      spec.electrodeRate = value;
    } else {
      throw std::invalid_argument(
          "fault spec: unknown key \"" + key +
          "\" (expected split, eps, loss, dispense, electrode)");
    }
  }
  return spec;
}

std::string FaultSpec::toString() const {
  std::ostringstream out;
  const char* sep = "";
  auto emit = [&](const char* key, double value) {
    out << sep << key << '=' << value;
    sep = ",";
  };
  if (splitRate > 0.0) {
    emit("split", splitRate);
    emit("eps", splitEps);
  }
  if (lossRate > 0.0) emit("loss", lossRate);
  if (dispenseRate > 0.0) emit("dispense", dispenseRate);
  if (electrodeRate > 0.0) emit("electrode", electrodeRate);
  return out.str();
}

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), seed_(seed), rng_(seed) {}

double FaultInjector::draw() {
  // 53 uniform mantissa bits -> [0, 1); identical on every standard library.
  return static_cast<double>(rng_() >> 11) * 0x1.0p-53;
}

bool FaultInjector::splitErrs(double& epsOut) {
  if (draw() >= spec_.splitRate) return false;
  // Second draw picks the magnitude; (0, splitEps] so a fired fault is
  // never a no-op.
  epsOut = (1.0 - draw()) * spec_.splitEps;
  return true;
}

bool FaultInjector::dropletLost() { return draw() < spec_.lossRate; }

bool FaultInjector::dispenseFails() { return draw() < spec_.dispenseRate; }

bool FaultInjector::electrodeDies() { return draw() < spec_.electrodeRate; }

chip::Cell FaultInjector::pickCell(int width, int height) {
  const auto cells = static_cast<std::uint64_t>(width) *
                     static_cast<std::uint64_t>(height);
  const auto index = static_cast<std::int64_t>(
      draw() * static_cast<double>(cells));
  return chip::Cell{static_cast<int>(index % width),
                    static_cast<int>(index / width)};
}

void FaultInjector::record(FaultEvent event) {
  if (obs::enabled()) {
    const std::string name =
        "fault.injected." + std::string(faultKindName(event.kind));
    obs::count(name.c_str());
  }
  events_.push_back(std::move(event));
}

std::uint64_t FaultInjector::count(FaultKind kind) const {
  std::uint64_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

}  // namespace dmf::fault
