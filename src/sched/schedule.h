// Schedules of mixing forests on a bank of identical on-chip mixers.
//
// Model (paper section 2.2): every (1:1) mix-split takes one time-cycle in
// one mixer; a mix-split scheduled at cycle t needs both operand droplets
// produced at cycles <= t-1 (or dispensed from reservoirs, which is free).
// A droplet produced at cycle t and consumed at cycle t' occupies one on-chip
// storage unit during cycles t+1 .. t'-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "forest/task_forest.h"

namespace dmf::sched {

/// A complete schedule of a TaskForest, stored structure-of-arrays: the two
/// per-task attributes live in parallel flat vectors indexed by
/// forest::TaskId. Most hot sweeps (storage recount, ready-queue release,
/// validation) only read cycles, so splitting halves their memory traffic
/// compared to the previous vector-of-{cycle, mixer} layout.
struct Schedule {
  /// Time-cycle per task, 1-based (paper convention); 0 = unscheduled.
  std::vector<unsigned> cycles;
  /// Mixer index per task, 0-based (reported as M1..Mk).
  std::vector<unsigned> mixers;
  /// Time of completion Tc — the last busy cycle.
  unsigned completionTime = 0;
  /// Number of mixers the scheduler was given (Mc).
  unsigned mixerCount = 0;
  /// Scheme name for reporting ("MMS", "SRS", "OMS").
  std::string scheme;

  [[nodiscard]] std::size_t size() const { return cycles.size(); }

  /// Resets to `n` unscheduled tasks.
  void reset(std::size_t n) {
    cycles.assign(n, 0);
    mixers.assign(n, 0);
  }

  void place(forest::TaskId id, unsigned cycle, unsigned mixer) {
    cycles[id] = cycle;
    mixers[id] = mixer;
  }
};

/// Verifies a schedule against its forest: every task placed exactly once in
/// cycle range, precedence respected (operands strictly earlier), at most one
/// task per (cycle, mixer), mixer ids within range, completionTime correct.
/// Throws std::logic_error naming the violated property.
void validateOrThrow(const forest::TaskForest& forest, const Schedule& s);

/// Algorithm 3 (Counting_Storage_Units): the peak number of droplets parked
/// between production and consumption, i.e. the number of on-chip storage
/// units q the schedule needs.
[[nodiscard]] unsigned countStorage(const forest::TaskForest& forest,
                                    const Schedule& s);

/// Per-cycle storage occupancy (index 1..completionTime; index 0 unused).
[[nodiscard]] std::vector<unsigned> storageProfile(
    const forest::TaskForest& forest, const Schedule& s);

/// Cycles (1-based) at which target droplets are emitted, one entry per
/// target droplet, sorted ascending — the droplet emission sequence of Fig 4.
[[nodiscard]] std::vector<unsigned> emissionCycles(
    const forest::TaskForest& forest, const Schedule& s);

}  // namespace dmf::sched
