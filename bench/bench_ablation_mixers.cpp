// Ablation: mixer-bank composition. The paper's unit-time mixers are one
// point in the module-library space; this harness schedules the PCR forest
// on banks mixing fast (large-footprint) and slow (small-footprint) mixers,
// quantifying how much a single fast module buys.
#include <iostream>

#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "protocols/protocols.h"
#include "report/table.h"
#include "sched/heterogeneous.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("ablation_mixers");
  using namespace dmf;

  const Ratio ratio = protocols::pcrMasterMixRatio();
  const mixgraph::MixingGraph graph = mixgraph::buildMM(ratio);
  const forest::TaskForest forest(graph, 32);

  std::cout << "# Ablation — mixer-bank composition (PCR forest, D = 32)\n"
            << "# duration = cycles one mix-split occupies the mixer\n\n";

  struct BankSpec {
    const char* name;
    sched::MixerBank bank;
  };
  const BankSpec banks[] = {
      {"3 x fast (1 cycle)          [paper model]", sched::uniformBank(3, 1)},
      {"3 x medium (2 cycles)", sched::uniformBank(3, 2)},
      {"3 x slow (4 cycles)", sched::uniformBank(3, 4)},
      {"1 fast + 2 slow", {{1, 4, 4}}},
      {"2 fast + 1 slow", {{1, 1, 4}}},
      {"1 fast + 4 slow", {{1, 4, 4, 4, 4}}},
      {"6 x medium", sched::uniformBank(6, 2)},
  };

  report::Table table({"bank", "Tc (cycles)", "storage q", "mixer-cycles"});
  for (const BankSpec& spec : banks) {
    const sched::Schedule s =
        sched::scheduleHeterogeneous(forest, spec.bank);
    sched::validateHeterogeneous(forest, s, spec.bank);
    std::uint64_t busy = 0;
    for (forest::TaskId id = 0; id < forest.taskCount(); ++id) {
      busy += spec.bank.cyclesPerMix[s.mixers[id]];
    }
    table.addRow({spec.name, std::to_string(s.completionTime),
                  std::to_string(
                      sched::countStorageHeterogeneous(forest, s, spec.bank)),
                  std::to_string(busy)});
  }
  std::cout << table.render()
            << "\nReading: one large mixer recovers most of the loss from "
               "shrinking the rest of\nthe bank — footprint can be traded "
               "for speed module by module.\n";
  return 0;
}
