#include "chip/executor.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "chip/error.h"
#include "obs/scope.h"

namespace dmf::chip {

using forest::DropletFate;
using forest::kNoTask;
using forest::TaskForest;
using forest::TaskId;

std::string_view moveKindTag(MoveKind kind) {
  switch (kind) {
    case MoveKind::kDispense:
      return "disp";
    case MoveKind::kHandOff:
      return "hand";
    case MoveKind::kPark:
      return "park";
    case MoveKind::kUnpark:
      return "fetch";
    case MoveKind::kToWaste:
      return "waste";
    case MoveKind::kToOutput:
      return "out";
  }
  throw std::invalid_argument("moveKindTag: unknown kind");
}

std::uint64_t ExecutionTrace::costOf(MoveKind kind) const {
  std::uint64_t total = 0;
  for (const Move& m : moves) {
    if (m.kind == kind) total += m.cost;
  }
  return total;
}

ChipExecutor::ChipExecutor(const Layout& layout, Router& router)
    : layout_(&layout), router_(&router) {
  mixers_ = layout.byKind(ModuleKind::kMixer);
  storage_ = layout.byKind(ModuleKind::kStorage);
  waste_ = layout.byKind(ModuleKind::kWaste);
  output_ = layout.byKind(ModuleKind::kOutput);
  if (mixers_.empty()) {
    throw std::invalid_argument("ChipExecutor: layout has no mixer");
  }
  if (waste_.empty()) {
    throw std::invalid_argument("ChipExecutor: layout has no waste module");
  }
  if (output_.empty()) {
    throw std::invalid_argument("ChipExecutor: layout has no output port");
  }
}

ExecutionTrace ChipExecutor::run(const TaskForest& forest,
                                 const sched::Schedule& schedule) const {
  if (schedule.mixerCount > mixers_.size()) {
    throw std::invalid_argument(
        "ChipExecutor: schedule uses " + std::to_string(schedule.mixerCount) +
        " mixers but the layout has " + std::to_string(mixers_.size()));
  }
  sched::validateOrThrow(forest, schedule);

  const obs::Span runSpan("chip.execute", "chip");
  ExecutionTrace trace;
  // Storage occupancy intervals [begin, end) per storage module.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> occupied(
      storage_.size());

  auto mixerOf = [&](TaskId id) {
    return mixers_[schedule.mixers[id]];
  };
  auto cycleOf = [&](TaskId id) { return schedule.cycles[id]; };

  auto nearest = [&](ModuleId from, const std::vector<ModuleId>& pool) {
    ModuleId best = pool.front();
    unsigned bestCost = std::numeric_limits<unsigned>::max();
    for (ModuleId candidate : pool) {
      const unsigned c = router_->cost(from, candidate);
      if (c < bestCost) {
        bestCost = c;
        best = candidate;
      }
    }
    return best;
  };

  // --- operand arrivals (dispensing) --------------------------------------
  {
    const obs::Span dispenseSpan("chip.dispense_batch", "chip");
    for (TaskId id = 0; id < forest.taskCount(); ++id) {
      const forest::Task& t = forest.task(id);
      const auto& node = forest.graph().node(t.node);
      const unsigned cycle = cycleOf(id);
      for (const auto& [dep, child] : {std::pair{t.depLeft, node.left},
                                       std::pair{t.depRight, node.right}}) {
        if (dep != kNoTask) continue;  // handled by the producer's droplet
        const std::size_t fluid = forest.graph().node(child).value.pureFluid();
        trace.moves.push_back(Move{MoveKind::kDispense, cycle,
                                   layout_->reservoirFor(fluid), mixerOf(id),
                                   0});
      }
    }
  }

  // --- output droplets -----------------------------------------------------
  obs::TraceRecorder* recorder = obs::tracer();
  std::uint64_t phaseStart = recorder != nullptr ? recorder->nowNanos() : 0;
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const unsigned produced = cycleOf(id);
    const ModuleId from = mixerOf(id);
    for (const auto& drop : forest.task(id).out) {
      switch (drop.fate) {
        case DropletFate::kTarget:
          trace.moves.push_back(Move{MoveKind::kToOutput, produced + 1, from,
                                     nearest(from, output_), 0});
          break;
        case DropletFate::kWaste:
          trace.moves.push_back(Move{MoveKind::kToWaste, produced + 1, from,
                                     nearest(from, waste_), 0});
          break;
        case DropletFate::kConsumed: {
          const unsigned consumed = cycleOf(drop.consumer);
          const ModuleId to = mixerOf(drop.consumer);
          if (consumed == produced + 1) {
            trace.moves.push_back(
                Move{MoveKind::kHandOff, consumed, from, to, 0});
            break;
          }
          // Park in the free storage module with the smallest detour.
          const unsigned begin = produced + 1;
          const unsigned end = consumed;  // leaves storage at `consumed`
          std::size_t best = storage_.size();
          unsigned bestDetour = std::numeric_limits<unsigned>::max();
          for (std::size_t si = 0; si < storage_.size(); ++si) {
            const bool free = std::all_of(
                occupied[si].begin(), occupied[si].end(),
                [&](const std::pair<unsigned, unsigned>& iv) {
                  return end <= iv.first || iv.second <= begin;
                });
            if (!free) continue;
            const unsigned detour = router_->cost(from, storage_[si]) +
                                    router_->cost(storage_[si], to);
            if (detour < bestDetour) {
              bestDetour = detour;
              best = si;
            }
          }
          if (best == storage_.size()) {
            throw ChipError(
                "park", begin,
                "not enough storage modules to park a droplet (cycles " +
                    std::to_string(begin) + ".." + std::to_string(end - 1) +
                    ")",
                id);
          }
          occupied[best].push_back({begin, end});
          trace.moves.push_back(
              Move{MoveKind::kPark, begin, from, storage_[best], 0});
          trace.moves.push_back(
              Move{MoveKind::kUnpark, consumed, storage_[best], to, 0});
          break;
        }
      }
    }
  }

  if (recorder != nullptr) {
    recorder->completeEvent("chip.emit_batch", "chip", phaseStart,
                            recorder->nowNanos() - phaseStart);
    phaseStart = recorder->nowNanos();
  }

  // --- route every move, accumulate costs and the actuation heat-map ------
  trace.actuations.assign(
      static_cast<std::size_t>(layout_->height()),
      std::vector<unsigned>(static_cast<std::size_t>(layout_->width()), 0));
  for (Move& move : trace.moves) {
    const Route route = router_->route(move.from, move.to);
    move.cost = route.cost();
    trace.totalCost += move.cost;
    for (std::size_t i = 1; i < route.cells.size(); ++i) {
      const Cell& c = route.cells[i];
      unsigned& count =
          trace.actuations[static_cast<std::size_t>(c.y)]
                          [static_cast<std::size_t>(c.x)];
      ++count;
      trace.peakActuations = std::max(trace.peakActuations, count);
    }
  }
  std::sort(trace.moves.begin(), trace.moves.end(),
            [](const Move& a, const Move& b) { return a.cycle < b.cycle; });
  if (recorder != nullptr) {
    recorder->completeEvent("chip.route_batch", "chip", phaseStart,
                            recorder->nowNanos() - phaseStart);
  }

  // --- peak storage occupancy ---------------------------------------------
  unsigned horizon = schedule.completionTime + 2;
  std::vector<unsigned> used(horizon + 1, 0);
  for (const auto& intervals : occupied) {
    for (const auto& [begin, end] : intervals) {
      for (unsigned t = begin; t < end && t <= horizon; ++t) {
        ++used[t];
        trace.peakStorageUsed = std::max(trace.peakStorageUsed, used[t]);
      }
    }
  }

  if (obs::MetricsRegistry* m = obs::metrics()) {
    for (const Move& move : trace.moves) {
      m->counter(std::string("chip.moves.") +
                 std::string(moveKindTag(move.kind)))
          .add(1);
    }
    m->counter("chip.actuations").add(trace.totalCost);
    m->gauge("chip.storage_peak").accumulateMax(trace.peakStorageUsed);
    m->gauge("chip.peak_electrode_actuations")
        .accumulateMax(trace.peakActuations);
  }
  return trace;
}

}  // namespace dmf::chip
