// Runs all five published bioprotocol mixtures (paper Table 2) through every
// base mixing algorithm and both forest schedulers at demand 32.
#include <iostream>

#include "engine/baseline.h"
#include "engine/mdst.h"
#include "protocols/protocols.h"
#include "report/table.h"

int main() {
  using namespace dmf;
  using mixgraph::Algorithm;

  std::cout << "=== Published protocols, demand D = 32 ===\n\n";
  for (const protocols::Protocol& protocol : protocols::publishedProtocols()) {
    std::cout << protocol.id << "  " << protocol.ratio.toString() << "\n  "
              << protocol.description << "\n";
    engine::MdstEngine engine(protocol.ratio);

    report::Table table(
        {"scheme", "Tc (cycles)", "q (storage)", "I (droplets)", "W (waste)"});
    for (Algorithm algo :
         {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
      const engine::BaselineResult rep =
          engine::runRepeatedBaseline(engine, algo, 32);
      table.addRow({"Repeated-" + std::string(mixgraph::algorithmName(algo)),
                    std::to_string(rep.completionTime),
                    std::to_string(rep.storageUnits),
                    std::to_string(rep.inputDroplets),
                    std::to_string(rep.waste)});
      for (engine::Scheme scheme :
           {engine::Scheme::kMMS, engine::Scheme::kSRS}) {
        engine::MdstRequest request;
        request.algorithm = algo;
        request.scheme = scheme;
        request.demand = 32;
        const engine::MdstResult r = engine.run(request);
        table.addRow({std::string(mixgraph::algorithmName(algo)) + "+" +
                          std::string(engine::schemeName(scheme)),
                      std::to_string(r.completionTime),
                      std::to_string(r.storageUnits),
                      std::to_string(r.inputDroplets),
                      std::to_string(r.waste)});
      }
    }
    std::cout << table.render() << "\n";
  }
  return 0;
}
