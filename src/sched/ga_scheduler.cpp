#include "sched/ga_scheduler.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/scope.h"
#include "runtime/thread_pool.h"
#include "sched/fitness_memo.h"
#include "sched/schedulers.h"

namespace dmf::sched {

using forest::DropletFate;
using forest::kNoTask;
using forest::Task;
using forest::TaskForest;
using forest::TaskId;

namespace {

// Lexicographic fitness: completion time, then storage. Smaller is better.
using Score = std::pair<unsigned, unsigned>;

// Reusable per-worker decode state: one allocation set per worker for the
// whole GA run instead of one per fitness evaluation. The ready queue is a
// keyed binary min-heap over (key, task) pairs — same pop order as the
// std::set it replaces (ties broken by TaskId) without the per-node
// rebalancing cost.
struct DecodeScratch {
  std::vector<unsigned> pending;
  std::vector<std::vector<TaskId>> arrivals;
  std::vector<std::pair<double, TaskId>> ready;
  Schedule schedule;
};

// Decodes a random-key chromosome into scratch.schedule: ready tasks run in
// ascending key order, at most `mixers` per cycle.
void decodeInto(const TaskForest& forest, unsigned mixers,
                const std::vector<double>& keys, DecodeScratch& scratch) {
  Schedule& s = scratch.schedule;
  s.mixerCount = mixers;
  s.scheme = "GA";
  s.completionTime = 0;
  const std::size_t n = forest.taskCount();
  s.reset(n);

  const std::vector<std::uint8_t>& initialPending = forest.initialPending();
  scratch.pending.assign(initialPending.begin(), initialPending.end());
  // Every arrivals bucket is consumed (and cleared) by the loop below, so
  // the buffers stay empty-but-allocated between decodes.
  if (scratch.arrivals.size() < 2) scratch.arrivals.resize(2);
  scratch.ready.clear();
  auto& ready = scratch.ready;
  const auto heapGreater = std::greater<std::pair<double, TaskId>>{};
  for (TaskId id = 0; id < n; ++id) {
    if (scratch.pending[id] == 0) scratch.arrivals[1].push_back(id);
  }
  const std::vector<TaskId>& consumers = forest.outConsumers();
  std::size_t remaining = n;
  for (unsigned t = 1; remaining > 0; ++t) {
    if (t < scratch.arrivals.size()) {
      for (TaskId id : scratch.arrivals[t]) {
        ready.emplace_back(keys[id], id);
        std::push_heap(ready.begin(), ready.end(), heapGreater);
      }
      scratch.arrivals[t].clear();
    }
    for (unsigned k = 0; k < mixers && !ready.empty(); ++k) {
      std::pop_heap(ready.begin(), ready.end(), heapGreater);
      const TaskId id = ready.back().second;
      ready.pop_back();
      s.place(id, t, k);
      s.completionTime = t;
      --remaining;
      for (unsigned slot = 0; slot < 2; ++slot) {
        const TaskId consumer = consumers[2 * id + slot];
        if (consumer == kNoTask) continue;
        if (--scratch.pending[consumer] == 0) {
          if (scratch.arrivals.size() <= t + 1) {
            scratch.arrivals.resize(t + 2);
          }
          scratch.arrivals[t + 1].push_back(consumer);
        }
      }
    }
  }
}

Score evaluateWith(const TaskForest& forest, unsigned mixers,
                   const std::vector<double>& keys, DecodeScratch& scratch) {
  decodeInto(forest, mixers, keys, scratch);
  return {scratch.schedule.completionTime,
          countStorage(forest, scratch.schedule)};
}

struct Individual {
  std::vector<double> keys;
  Score score;
};

// Scores every individual in [first, population.size()): memo lookups and
// insertions run serially on the master thread (in index order, so the memo
// contents are deterministic), only the missed decodes fan out over the
// pool. Each pool participant reuses its own DecodeScratch.
class FitnessEvaluator {
 public:
  FitnessEvaluator(const TaskForest& forest, unsigned mixers,
                   runtime::ThreadPool& pool)
      : forest_(forest), mixers_(mixers), pool_(pool),
        scratch_(pool.jobs()) {}

  void scoreTail(std::vector<Individual>& population, std::size_t first) {
    misses_.clear();
    const std::uint64_t collisionsBefore = memo_.collisions();
    for (std::size_t i = first; i < population.size(); ++i) {
      // The memo compares the full key vector on a hash hit — a colliding
      // chromosome re-scores instead of inheriting the wrong fitness.
      if (const Score* hit = memo_.find(population[i].keys)) {
        population[i].score = *hit;
        obs::count("sched.ga.memo_hits");
      } else {
        misses_.push_back(i);
        obs::count("sched.ga.memo_misses");
      }
    }
    if (const std::uint64_t c = memo_.collisions() - collisionsBefore) {
      obs::count("sched.ga.memo_collisions", c);
    }
    if (misses_.empty()) return;
    pool_.forEachWorker(
        misses_.size(), [this, &population](std::uint64_t m, unsigned worker) {
          Individual& ind = population[misses_[m]];
          ind.score = evaluateWith(forest_, mixers_, ind.keys,
                                   scratch_[worker]);
        });
    // Insertions stay serial and in index order on the master thread, so
    // the memo contents are deterministic for every job count.
    for (const std::size_t index : misses_) {
      memo_.insert(population[index].keys, population[index].score);
    }
  }

 private:
  const TaskForest& forest_;
  unsigned mixers_;
  runtime::ThreadPool& pool_;
  std::vector<DecodeScratch> scratch_;
  FitnessMemo<Score> memo_;
  std::vector<std::size_t> misses_;
};

}  // namespace

Schedule scheduleGA(const TaskForest& forest, unsigned mixers,
                    const GaOptions& options) {
  runtime::ThreadPool pool(runtime::ThreadPool::resolveJobs(options.jobs));
  return scheduleGA(forest, mixers, options, pool);
}

Schedule scheduleGA(const TaskForest& forest, unsigned mixers,
                    const GaOptions& options, runtime::ThreadPool& pool) {
  if (mixers == 0) {
    throw std::invalid_argument("scheduleGA: at least one mixer required");
  }
  if (options.population == 0 || options.elites >= options.population ||
      options.tournament == 0) {
    throw std::invalid_argument("scheduleGA: degenerate GA options");
  }
  const std::size_t n = forest.taskCount();
  if (n == 0) {
    Schedule s;
    s.mixerCount = mixers;
    s.scheme = "GA";
    return s;
  }
  const obs::Span span("sched.ga", "sched");

  // All randomness is drawn here, on the calling thread, in breeding order —
  // the pool never touches the RNG, which is what keeps the run identical
  // for every job count.
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  // Unbiased parent index draw (rng() % size would favour small indices).
  std::uniform_int_distribution<std::size_t> pickParent(
      0, options.population - 1);

  FitnessEvaluator evaluator(forest, mixers, pool);

  std::vector<Individual> population;
  population.reserve(options.population);

  // Seed with a critical-path individual (keys = -colevel via the OMS
  // schedule's cycle order) so the GA never starts worse than plain list
  // scheduling.
  {
    const Schedule oms = scheduleOMS(forest, mixers);
    std::vector<double> keys(n);
    for (TaskId id = 0; id < n; ++id) {
      keys[id] = static_cast<double>(oms.cycles[id]) +
                 1e-6 * static_cast<double>(id);
    }
    population.push_back({std::move(keys), Score{}});
  }
  while (population.size() < options.population) {
    std::vector<double> keys(n);
    for (double& key : keys) key = uniform(rng);
    population.push_back({std::move(keys), Score{}});
  }
  evaluator.scoreTail(population, 0);

  auto better = [](const Individual& a, const Individual& b) {
    return a.score < b.score;
  };

  for (unsigned gen = 0; gen < options.generations; ++gen) {
    std::sort(population.begin(), population.end(), better);
    std::vector<Individual> next(population.begin(),
                                 population.begin() + options.elites);
    auto tournamentPick = [&]() -> const Individual& {
      std::size_t best = pickParent(rng);
      for (unsigned t = 1; t < options.tournament; ++t) {
        const std::size_t challenger = pickParent(rng);
        if (population[challenger].score < population[best].score) {
          best = challenger;
        }
      }
      return population[best];
    };
    while (next.size() < options.population) {
      const Individual& a = tournamentPick();
      const Individual& b = tournamentPick();
      std::vector<double> child(n);
      for (std::size_t g = 0; g < n; ++g) {
        child[g] = (rng() & 1u) ? a.keys[g] : b.keys[g];
        if (uniform(rng) < options.mutationRate) {
          child[g] = uniform(rng);
        }
      }
      next.push_back({std::move(child), Score{}});
    }
    evaluator.scoreTail(next, options.elites);
    population = std::move(next);
  }

  std::sort(population.begin(), population.end(), better);
  DecodeScratch scratch;
  decodeInto(forest, mixers, population.front().keys, scratch);
  return std::move(scratch.schedule);
}

}  // namespace dmf::sched
