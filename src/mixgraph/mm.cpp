// Min-Mix (MM) builder: exact binary bit-decomposition of the target ratio.
#include <stdexcept>
#include <vector>

#include "mixgraph/builders.h"

namespace dmf::mixgraph {

MixingGraph buildMM(const Ratio& ratio) {
  MixingGraph graph(ratio);
  const unsigned d = ratio.accuracy();

  // `carry` holds the nodes alive at the current construction level.
  // At level j we first keep the mixes built from level j-1 (in creation
  // order), then append one leaf for every fluid whose amount has bit j set,
  // and pair the sequence left to right. The ratio-sum being 2^d guarantees
  // an even count at every level and exactly one node after level d-1.
  std::vector<NodeId> carry;
  for (unsigned j = 0; j < d; ++j) {
    for (std::size_t fluid = 0; fluid < ratio.fluidCount(); ++fluid) {
      if ((ratio.part(fluid) >> j) & 1u) {
        carry.push_back(graph.addLeaf(fluid));
      }
    }
    if (carry.size() % 2 != 0) {
      throw std::logic_error("buildMM: odd node count at level " +
                             std::to_string(j));
    }
    std::vector<NodeId> next;
    next.reserve(carry.size() / 2);
    for (std::size_t i = 0; i + 1 < carry.size(); i += 2) {
      next.push_back(graph.addMix(carry[i], carry[i + 1]));
    }
    carry = std::move(next);
  }
  if (carry.size() != 1) {
    throw std::logic_error("buildMM: did not converge to a single root");
  }
  graph.finalize(carry.front());
  return graph;
}

}  // namespace dmf::mixgraph
