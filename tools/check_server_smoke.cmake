# ctest helper: end-to-end smoke of `dmfstream serve` over a real socket.
# Drives a request mix through --drive, checks the response stream, and
# pins serve determinism: stdout is byte-identical across runs and across
# --jobs values (the bound ephemeral port goes to stderr, never stdout).
# Run as
#   cmake -DDMFSTREAM=<path-to-binary> -DWORKDIR=<scratch dir> -P check_server_smoke.cmake
if(NOT DEFINED DMFSTREAM)
  message(FATAL_ERROR "pass -DDMFSTREAM=<path to dmfstream>")
endif()
if(NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DWORKDIR=<scratch directory>")
endif()

file(MAKE_DIRECTORY ${WORKDIR})
set(mix ${WORKDIR}/serve_requests.txt)
# The mix covers: ping, a cold plan, its exact repeat (cache hit), the
# 2:4:2 vs 1:2:1 canonicalization pair, a malformed line, an unknown op,
# an infeasible request, stats-free determinism, and shutdown last.
file(WRITE ${mix} "{\"op\":\"ping\"}
{\"op\":\"plan\",\"ratio\":\"2:1:1:1:1:1:9\",\"demand\":32,\"storage\":3}
{\"op\":\"plan\",\"ratio\":\"2:1:1:1:1:1:9\",\"demand\":32,\"storage\":3}
{\"op\":\"plan\",\"ratio\":\"2:4:2\",\"demand\":4,\"storage\":4}
{\"op\":\"plan\",\"ratio\":\"1:2:1\",\"demand\":4,\"storage\":4}
this is not json
{\"op\":\"bogus\"}
{\"op\":\"plan\",\"ratio\":\"1:1:1:1:1:1:1:1\",\"demand\":32,\"storage\":1,\"mixers\":1}
{\"op\":\"shutdown\"}
")

function(run_serve out_var)
  execute_process(
    COMMAND ${DMFSTREAM} serve --port 0 --drive ${mix} ${ARGN}
    OUTPUT_VARIABLE output
    ERROR_VARIABLE errout
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "dmfstream serve exited with ${status}: ${errout}")
  endif()
  if(NOT errout MATCHES "listening on 127.0.0.1:")
    message(FATAL_ERROR "serve did not announce its port on stderr")
  endif()
  if(output MATCHES "listening on")
    message(FATAL_ERROR "the listening line leaked onto stdout")
  endif()
  set(${out_var} "${output}" PARENT_SCOPE)
endfunction()

run_serve(first)

# Response-stream shape.
if(NOT first MATCHES "\"op\":\"ping\"")
  message(FATAL_ERROR "no ping response")
endif()
if(NOT first MATCHES "\"source\":\"planned\"")
  message(FATAL_ERROR "no cold (planned) response")
endif()
if(NOT first MATCHES "\"source\":\"cache\"")
  message(FATAL_ERROR "repeat request was not served from the cache")
endif()
if(NOT first MATCHES "ratio=1:2:1")
  message(FATAL_ERROR "2:4:2 was not canonicalized to the 1:2:1 key")
endif()
if(first MATCHES "ratio=2:4:2")
  message(FATAL_ERROR "a non-reduced ratio leaked into a cache key")
endif()
if(NOT first MATCHES "\"kind\":\"parse\"")
  message(FATAL_ERROR "malformed line did not produce a parse error")
endif()
if(NOT first MATCHES "\"kind\":\"request\"")
  message(FATAL_ERROR "unknown op did not produce a request error")
endif()
if(NOT first MATCHES "\"kind\":\"infeasible\"")
  message(FATAL_ERROR "infeasible request did not report as infeasible")
endif()
if(NOT first MATCHES "\"op\":\"shutdown\"")
  message(FATAL_ERROR "no shutdown acknowledgement")
endif()

# One request line in, one response line out: 9 lines total.
string(REGEX MATCHALL "\n" newlines "${first}")
list(LENGTH newlines lines)
if(NOT lines EQUAL 9)
  message(FATAL_ERROR "expected 9 response lines, got ${lines}")
endif()

# Determinism: a second run, and runs under --jobs 4 and with a persistent
# cache tier, must produce byte-identical stdout.
run_serve(second)
if(NOT first STREQUAL second)
  message(FATAL_ERROR "two serve runs differ on stdout")
endif()
run_serve(jobs4 --jobs 4)
if(NOT first STREQUAL jobs4)
  message(FATAL_ERROR "serve stdout differs between --jobs 1 and --jobs 4")
endif()
file(REMOVE_RECURSE ${WORKDIR}/serve_cache)
run_serve(disk1 --cache-dir ${WORKDIR}/serve_cache)
if(NOT first STREQUAL disk1)
  message(FATAL_ERROR "serve stdout differs with a persistent cache tier")
endif()
# The restarted daemon answers every plan from the disk tier: nothing is
# recomputed ("planned" disappears), and the plan payloads are byte-for-byte
# what the cold run produced — only the source tag flips to "cache".
run_serve(disk2 --cache-dir ${WORKDIR}/serve_cache)
if(disk2 MATCHES "\"source\":\"planned\"")
  message(FATAL_ERROR "restarted daemon recomputed a plan the disk tier had")
endif()
string(REPLACE "\"source\":\"planned\"" "\"source\":\"cache\"" first_as_hits "${first}")
if(NOT first_as_hits STREQUAL disk2)
  message(FATAL_ERROR "disk-tier responses are not byte-identical to the cold run's plans")
endif()

message(STATUS "serve smoke: responses correct, stdout byte-identical across runs, --jobs, and cache-tier restarts")
