#include "engine/pass_cache.h"

#include <chrono>
#include <mutex>

namespace dmf::engine {

namespace {

std::uint64_t nanosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

std::size_t PassKeyHash::operator()(const PassKey& key) const noexcept {
  // FNV-1a over the four fields; demand dominates the entropy.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(key.algorithm));
  mix(static_cast<std::uint64_t>(key.scheme));
  mix(key.mixers);
  mix(key.demand);
  return static_cast<std::size_t>(h);
}

StreamingPass evaluatePass(const MdstEngine& engine,
                           mixgraph::Algorithm algorithm, Scheme scheme,
                           unsigned mixers, std::uint64_t demand,
                           PassCacheStats* stageNanos) {
  auto start = std::chrono::steady_clock::now();
  const forest::TaskForest f = engine.buildForest(algorithm, demand);
  const std::uint64_t buildNanos = nanosSince(start);

  start = std::chrono::steady_clock::now();
  const sched::Schedule s = schedule(f, scheme, mixers);
  const std::uint64_t scheduleNanos = nanosSince(start);

  start = std::chrono::steady_clock::now();
  StreamingPass pass;
  pass.demand = demand;
  pass.cycles = s.completionTime;
  pass.storageUnits = sched::countStorage(f, s);
  pass.waste = f.stats().waste;
  pass.inputDroplets = f.stats().inputTotal;
  pass.mixSplits = f.stats().mixSplits;
  const std::uint64_t storageNanos = nanosSince(start);

  if (stageNanos != nullptr) {
    stageNanos->buildNanos = buildNanos;
    stageNanos->scheduleNanos = scheduleNanos;
    stageNanos->storageNanos = storageNanos;
  }
  return pass;
}

StreamingPass PassCache::evaluate(const MdstEngine& engine,
                                  mixgraph::Algorithm algorithm, Scheme scheme,
                                  unsigned mixers, std::uint64_t demand) {
  const PassKey key{algorithm, scheme, mixers, demand};
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  // Compute outside any lock: two threads racing on the same key both pay
  // the evaluation (rare, harmless — the value is a pure function of the
  // key) rather than serializing every miss.
  PassCacheStats stage;
  const StreamingPass pass =
      evaluatePass(engine, algorithm, scheme, mixers, demand, &stage);
  misses_.fetch_add(1, std::memory_order_relaxed);
  buildNanos_.fetch_add(stage.buildNanos, std::memory_order_relaxed);
  scheduleNanos_.fetch_add(stage.scheduleNanos, std::memory_order_relaxed);
  storageNanos_.fetch_add(stage.storageNanos, std::memory_order_relaxed);

  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    entries_.emplace(key, pass);
  }
  return pass;
}

std::optional<StreamingPass> PassCache::lookup(const PassKey& key) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::size_t PassCache::size() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

PassCacheStats PassCache::stats() const {
  PassCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.buildNanos = buildNanos_.load(std::memory_order_relaxed);
  s.scheduleNanos = scheduleNanos_.load(std::memory_order_relaxed);
  s.storageNanos = storageNanos_.load(std::memory_order_relaxed);
  return s;
}

void PassCache::clear() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  buildNanos_.store(0, std::memory_order_relaxed);
  scheduleNanos_.store(0, std::memory_order_relaxed);
  storageNanos_.store(0, std::memory_order_relaxed);
}

}  // namespace dmf::engine
