file(REMOVE_RECURSE
  "libdmf_base.a"
)
