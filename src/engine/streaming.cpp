#include "engine/streaming.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "dmf/errors.h"
#include "engine/pass_cache.h"
#include "engine/pass_pool.h"
#include "obs/scope.h"

namespace dmf::engine {

namespace {

// Publishes the chosen plan to the active obs session (no-op when disabled):
// summary gauges plus one model-time span per pass on the virtual "plan
// timeline" track, so Perfetto shows the pass sequence as a Gantt chart in
// schedule cycles. Observation only — the plan itself is never altered.
void recordPlanObservability(const StreamingPlan& plan) {
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->gauge("engine.plan.passes").set(plan.passes.size());
    m->gauge("engine.plan.per_pass_demand").set(plan.perPassDemand);
    m->gauge("engine.plan.total_cycles").set(plan.totalCycles);
    m->gauge("engine.plan.total_waste").set(plan.totalWaste);
    m->gauge("engine.plan.storage_high_water")
        .accumulateMax(plan.storageUnits);
  }
  if (obs::TraceRecorder* t = obs::tracer()) {
    std::uint64_t cursor = 0;
    for (std::size_t p = 0; p < plan.passes.size(); ++p) {
      const StreamingPass& pass = plan.passes[p];
      t->modelEvent(
          "pass " + std::to_string(p + 1), "plan", cursor, pass.cycles, 1,
          {{"demand", std::to_string(pass.demand)},
           {"storage", std::to_string(pass.storageUnits)},
           {"waste", std::to_string(pass.waste)}});
      cursor += pass.cycles;
    }
  }
}

// Assembles the plan for a fixed per-pass demand from already-evaluated
// passes.
StreamingPlan assemblePlan(std::uint64_t perPass, unsigned mixers,
                           const StreamingPass& full,
                           const std::optional<StreamingPass>& remainder,
                           std::uint64_t fullPasses) {
  StreamingPlan plan;
  plan.perPassDemand = perPass;
  plan.mixers = mixers;
  plan.passes.reserve(fullPasses + (remainder.has_value() ? 1 : 0));
  for (std::uint64_t i = 0; i < fullPasses; ++i) {
    plan.passes.push_back(full);
  }
  if (remainder.has_value()) {
    plan.passes.push_back(*remainder);
  }
  for (const StreamingPass& pass : plan.passes) {
    plan.totalCycles += pass.cycles;
    plan.totalWaste += pass.waste;
    plan.totalInput += pass.inputDroplets;
    plan.storageUnits = std::max(plan.storageUnits, pass.storageUnits);
  }
  return plan;
}

// Shared candidate-evaluation context of one planning call.
struct PlanContext {
  const MdstEngine& engine;
  const StreamingRequest& request;
  unsigned mixers;
  PassCache& cache;
  PassPool& pool;

  [[nodiscard]] StreamingPass eval(std::uint64_t demand) const {
    return cache.evaluate(engine, request.algorithm, request.scheme, mixers,
                          demand);
  }
  [[nodiscard]] bool feasible(std::uint64_t demand) const {
    return eval(demand).storageUnits <= request.storageCap;
  }
  /// Warms the cache for a batch of candidate demands in one ladder sweep.
  /// Purely a wall-time optimization: every decision below re-reads through
  /// eval(), whose results are a function of the key alone, so plans are
  /// identical with any job count. Gated on a real pool because a serial
  /// prefetch would evaluate candidates the descending scan may never reach.
  void prefetch(const std::vector<std::uint64_t>& demands) const {
    if (pool.jobs() <= 1 || demands.size() <= 1) return;
    (void)cache.evaluateLadder(engine, request.algorithm, request.scheme,
                               mixers, demands, &pool);
  }
  /// Warms the cache for the full candidate range [1, demand] — the
  /// optimized planner's reduction visits every candidate, so a serial warm
  /// does no extra work and the batched sweep does it with one lock
  /// round-trip and one base-graph resolution per chunk instead of per
  /// demand. Chunked to bound the index buffer on astronomical demands.
  void warmRange(std::uint64_t demand) const {
    constexpr std::uint64_t kChunk = 4096;
    std::vector<std::uint64_t> batch;
    for (std::uint64_t base = 1; base <= demand; base += kChunk) {
      const std::uint64_t count = std::min(kChunk, demand - base + 1);
      batch.resize(count);
      for (std::uint64_t i = 0; i < count; ++i) batch[i] = base + i;
      (void)cache.evaluateLadder(engine, request.algorithm, request.scheme,
                                 mixers, batch, &pool);
    }
  }
};

// Largest feasible demand in [floor, upper], scanning downward; evaluates
// chunks of candidates in parallel, then inspects them in descending order
// so the answer is deterministic. Returns nullopt when none is feasible.
std::optional<std::uint64_t> largestFeasibleDescending(const PlanContext& ctx,
                                                       std::uint64_t floor,
                                                       std::uint64_t upper) {
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, std::uint64_t{ctx.pool.jobs()} * 4);
  std::uint64_t high = upper;
  while (high >= floor) {
    const std::uint64_t low =
        (high - floor + 1 > chunk) ? high - chunk + 1 : floor;
    std::vector<std::uint64_t> batch;
    batch.reserve(high - low + 1);
    for (std::uint64_t d = high;; --d) {
      batch.push_back(d);
      if (d == low) break;
    }
    ctx.prefetch(batch);
    for (const std::uint64_t d : batch) {
      if (ctx.feasible(d)) return d;
    }
    if (low == floor) break;
    high = low - 1;
  }
  return std::nullopt;
}

// The paper's rule with a verified search: largest feasible per-pass demand,
// bisection first, descending scan when the monotonicity probe fails.
std::uint64_t largestFeasiblePerPass(const PlanContext& ctx,
                                     std::uint64_t minPass,
                                     std::uint64_t demand) {
  if (ctx.feasible(demand)) return demand;  // single pass serves everything
  if (minPass >= demand) return minPass;

  // Warm the cache along the bisection's likely path.
  if (ctx.pool.jobs() > 1) {
    const std::uint64_t span = demand - minPass;
    const std::uint64_t samples =
        std::min<std::uint64_t>(std::uint64_t{ctx.pool.jobs()} * 4, span);
    std::vector<std::uint64_t> grid;
    for (std::uint64_t i = 0; i < samples; ++i) {
      grid.push_back(minPass + span * (i + 1) / (samples + 1));
    }
    ctx.prefetch(grid);
  }

  // Bisection assuming storage grows with demand.
  std::uint64_t lo = minPass;
  std::uint64_t hi = demand - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (ctx.feasible(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const std::uint64_t candidate = lo;

  // Monotonicity probe: the SRS storage curve can dip as the forest
  // recomposes, in which case feasible demands exist above the bisection
  // result. Sample a few points there; any hit falls back to an exact
  // descending scan.
  bool monotone = true;
  for (const std::uint64_t probe :
       {candidate + 1, candidate + (demand - candidate) / 2, demand - 1}) {
    if (probe > candidate && probe < demand && ctx.feasible(probe)) {
      monotone = false;
      break;
    }
  }
  if (monotone) return candidate;
  return largestFeasibleDescending(ctx, candidate, demand - 1)
      .value_or(candidate);
}

StreamingPlan planStreamingImpl(const MdstEngine& engine,
                                const StreamingRequest& request,
                                PassCache& cache, PassPool& pool) {
  const obs::Span span("engine.plan_streaming");
  if (request.demand == 0) {
    throw std::invalid_argument("planStreaming: demand must be positive");
  }
  const unsigned mixers =
      request.mixers == 0 ? engine.defaultMixers() : request.mixers;
  const std::uint64_t demand = request.demand;
  const PlanContext ctx{engine, request, mixers, cache, pool};

  const std::uint64_t minPass = std::min<std::uint64_t>(demand, 2);
  if (!ctx.feasible(minPass)) {
    throw InfeasibleError(
        "planStreaming: even a two-droplet pass exceeds the storage cap of " +
        std::to_string(request.storageCap));
  }

  std::uint64_t perPass = largestFeasiblePerPass(ctx, minPass, demand);

  // The remainder pass must fit the cap as well: storage is not monotone in
  // demand, so a feasible D' can leave an infeasible tail of D mod D'
  // droplets. Shrink D' to the next feasible size until the tail fits.
  while (true) {
    const std::uint64_t remainder = demand % perPass;
    if (remainder == 0 || ctx.feasible(remainder)) break;
    const std::optional<std::uint64_t> smaller =
        perPass > 1 ? largestFeasibleDescending(ctx, 1, perPass - 1)
                    : std::nullopt;
    if (!smaller.has_value()) {
      throw InfeasibleError(
          "planStreaming: no per-pass split fits the storage cap of " +
          std::to_string(request.storageCap));
    }
    perPass = *smaller;
  }

  const StreamingPass full = ctx.eval(perPass);
  const std::uint64_t remainder = demand % perPass;
  std::optional<StreamingPass> last;
  if (remainder > 0) {
    last = ctx.eval(remainder);
  }
  StreamingPlan plan =
      assemblePlan(perPass, mixers, full, last, demand / perPass);
  recordPlanObservability(plan);
  return plan;
}

StreamingPlan planStreamingOptimizedImpl(const MdstEngine& engine,
                                         const StreamingRequest& request,
                                         PassCache& cache, PassPool& pool) {
  const obs::Span span("engine.plan_streaming_optimized");
  if (request.demand == 0) {
    throw std::invalid_argument(
        "planStreamingOptimized: demand must be positive");
  }
  if (request.demand == std::numeric_limits<std::uint64_t>::max()) {
    // The candidate range [1, demand] is inclusive; a demand of UINT64_MAX
    // would overflow the loop counter (and is far beyond any real assay).
    throw std::invalid_argument(
        "planStreamingOptimized: demand overflows the candidate range");
  }
  const unsigned mixers =
      request.mixers == 0 ? engine.defaultMixers() : request.mixers;
  const std::uint64_t demand = request.demand;
  const PlanContext ctx{engine, request, mixers, cache, pool};

  // Every candidate D' in [1, D] gets evaluated (and every remainder demand
  // D mod D' < D is one of them), so warm the whole range with batched
  // ladder sweeps before the serial reduction — worthwhile even serially,
  // since the sweep amortizes the cache lock and base-graph lookup that the
  // reduction below would otherwise pay once per candidate.
  ctx.warmRange(demand);

  std::optional<StreamingPlan> best;
  for (std::uint64_t perPass = 1;; ++perPass) {
    const StreamingPass full = ctx.eval(perPass);
    if (full.storageUnits <= request.storageCap) {
      const std::uint64_t remainder = demand % perPass;
      std::optional<StreamingPass> last;
      bool remainderFits = true;
      if (remainder > 0) {
        last = ctx.eval(remainder);
        remainderFits = last->storageUnits <= request.storageCap;
      }
      if (remainderFits) {
        StreamingPlan plan =
            assemblePlan(perPass, mixers, full, last, demand / perPass);
        const auto better = [](const StreamingPlan& a,
                               const StreamingPlan& b) {
          if (a.totalCycles != b.totalCycles) {
            return a.totalCycles < b.totalCycles;
          }
          if (a.totalWaste != b.totalWaste) return a.totalWaste < b.totalWaste;
          return a.passes.size() < b.passes.size();
        };
        if (!best.has_value() || better(plan, *best)) {
          best = std::move(plan);
        }
      }
    }
    if (perPass == demand) break;
  }
  if (!best.has_value()) {
    throw InfeasibleError(
        "planStreamingOptimized: no pass size fits the storage cap of " +
        std::to_string(request.storageCap));
  }
  recordPlanObservability(*best);
  return *best;
}

}  // namespace

StreamingPlan planStreaming(const MdstEngine& engine,
                            const StreamingRequest& request) {
  PassCache cache;
  return planStreaming(engine, request, cache);
}

StreamingPlan planStreaming(const MdstEngine& engine,
                            const StreamingRequest& request,
                            PassCache& cache) {
  PassPool pool(PassPool::resolveJobs(request.jobs));
  return planStreamingImpl(engine, request, cache, pool);
}

StreamingPlan planStreaming(const MdstEngine& engine,
                            const StreamingRequest& request, PassCache& cache,
                            PassPool& pool) {
  return planStreamingImpl(engine, request, cache, pool);
}

StreamingPlan planStreamingOptimized(const MdstEngine& engine,
                                     const StreamingRequest& request) {
  PassCache cache;
  return planStreamingOptimized(engine, request, cache);
}

StreamingPlan planStreamingOptimized(const MdstEngine& engine,
                                     const StreamingRequest& request,
                                     PassCache& cache) {
  PassPool pool(PassPool::resolveJobs(request.jobs));
  return planStreamingOptimizedImpl(engine, request, cache, pool);
}

StreamingPlan planStreamingOptimized(const MdstEngine& engine,
                                     const StreamingRequest& request,
                                     PassCache& cache, PassPool& pool) {
  return planStreamingOptimizedImpl(engine, request, cache, pool);
}

}  // namespace dmf::engine
