// perf_gate — the enforced perf-regression gate (DESIGN.md §14).
//
//   perf_gate --bench BENCH_x.json --baseline bench/baselines/x.json
//             [--inflate PCT] [--refresh]
//
// The baseline file pins expectations for gauges a bench binary emitted
// through bench_obs.h:
//
//   {"bench": "bench_micro",
//    "entries": [{"gauge": "bench.obs.hit_overhead_pct_x1000",
//                 "baseline": 600, "tolerance_pct": 100,
//                 "direction": "below"}, ...]}
//
// direction "below" (latencies, overheads): measured must stay under
// baseline * (1 + tolerance_pct/100). direction "above" (throughputs):
// measured must stay over baseline * (1 - tolerance_pct/100).
// tolerance_pct defaults to 15.
//
// --inflate PCT degrades every measured value by PCT percent (raises
// "below" gauges, lowers "above" gauges) before comparing — the self-test
// hook proving the gate actually trips on a synthetic regression.
// --refresh rewrites the baseline file's values from the measured gauges
// (tolerances and directions are kept) — the documented workflow after an
// intentional perf change; commit the diff.
//
// Exit codes follow the repo taxonomy: 0 within tolerance, 1 usage /
// unreadable input, 4 regression findings.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "report/json.h"

namespace {

using dmf::report::Json;

struct Options {
  std::string benchPath;
  std::string baselinePath;
  double inflatePct = 0.0;
  bool refresh = false;
};

int usage() {
  std::cerr << "usage: perf_gate --bench BENCH.json --baseline BASELINE.json"
               " [--inflate PCT] [--refresh]\n";
  return 1;
}

Json loadJson(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::parse(buffer.str());
}

/// A gauge (or counter — the sections share a namespace) from a bench
/// metrics snapshot.
std::optional<std::uint64_t> lookup(const Json& snapshot,
                                    const std::string& name) {
  for (const char* section : {"gauges", "counters"}) {
    if (snapshot.contains(section) && snapshot.at(section).contains(name)) {
      return snapshot.at(section).at(name).asUint();
    }
  }
  return std::nullopt;
}

std::string formatRow(const std::string& gauge, double baseline,
                      double measured, double limit, const char* verdict) {
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s baseline %14.0f  measured %14.0f"
                "  limit %14.0f  %s",
                gauge.c_str(), baseline, measured, limit, verdict);
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + ": missing value");
      return argv[++i];
    };
    try {
      if (arg == "--bench") {
        options.benchPath = value();
      } else if (arg == "--baseline") {
        options.baselinePath = value();
      } else if (arg == "--inflate") {
        options.inflatePct = std::stod(value());
      } else if (arg == "--refresh") {
        options.refresh = true;
      } else {
        std::cerr << "error: unknown argument '" << arg << "'\n";
        return usage();
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return usage();
    }
  }
  if (options.benchPath.empty() || options.baselinePath.empty()) {
    return usage();
  }

  try {
    const Json bench = loadJson(options.benchPath);
    Json baseline = loadJson(options.baselinePath);
    if (!baseline.isObject() || !baseline.contains("entries") ||
        !baseline.at("entries").isArray()) {
      throw std::invalid_argument("baseline '" + options.baselinePath +
                                  "': expected {\"entries\": [...]}");
    }

    const Json& entries = baseline.at("entries");
    unsigned failures = 0;
    Json refreshed = Json::array();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Json& entry = entries.at(i);
      const std::string gauge = entry.at("gauge").asString();
      const double base = entry.at("baseline").asDouble();
      const double tolerance = entry.contains("tolerance_pct")
                                   ? entry.at("tolerance_pct").asDouble()
                                   : 15.0;
      const std::string direction = entry.contains("direction")
                                        ? entry.at("direction").asString()
                                        : "below";
      if (direction != "below" && direction != "above") {
        throw std::invalid_argument("baseline entry '" + gauge +
                                    "': direction must be below|above");
      }

      const auto found = lookup(bench, gauge);
      if (!found.has_value()) {
        std::cout << gauge << ": MISSING from " << options.benchPath << "\n";
        ++failures;
        continue;
      }
      double measured = static_cast<double>(*found);
      // The self-test hook: degrade in whichever direction is "worse".
      measured *= direction == "below" ? 1.0 + options.inflatePct / 100.0
                                       : 1.0 - options.inflatePct / 100.0;

      if (options.refresh) {
        Json updated = Json::object();
        updated.set("gauge", gauge)
            .set("baseline", static_cast<std::uint64_t>(measured))
            .set("tolerance_pct", tolerance)
            .set("direction", direction);
        refreshed.push(std::move(updated));
        continue;
      }

      const bool below = direction == "below";
      const double limit = below ? base * (1.0 + tolerance / 100.0)
                                 : base * (1.0 - tolerance / 100.0);
      const bool ok = below ? measured <= limit : measured >= limit;
      std::cout << formatRow(gauge, base, measured, limit,
                             ok ? "ok" : "REGRESSION")
                << "\n";
      if (!ok) ++failures;
    }

    if (options.refresh) {
      Json out = Json::object();
      if (baseline.contains("bench")) {
        out.set("bench", baseline.at("bench").asString());
      }
      out.set("entries", std::move(refreshed));
      std::ofstream file(options.baselinePath,
                         std::ios::binary | std::ios::trunc);
      file << out.dump(2) << "\n";
      if (!file) {
        throw std::invalid_argument("cannot write '" + options.baselinePath +
                                    "'");
      }
      std::cout << "baselines refreshed from " << options.benchPath
                << " -> " << options.baselinePath << " (commit the diff)\n";
      return 0;
    }

    if (failures > 0) {
      std::cerr << failures << " gauge(s) regressed beyond tolerance; if "
                   "intentional, refresh with:\n  perf_gate --bench "
                << options.benchPath << " --baseline " << options.baselinePath
                << " --refresh\n";
      return 4;
    }
    std::cout << "perf gate: " << entries.size()
              << " gauge(s) within tolerance\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
