file(REMOVE_RECURSE
  "CMakeFiles/dmf_base.dir/fraction.cpp.o"
  "CMakeFiles/dmf_base.dir/fraction.cpp.o.d"
  "CMakeFiles/dmf_base.dir/mixture_value.cpp.o"
  "CMakeFiles/dmf_base.dir/mixture_value.cpp.o.d"
  "CMakeFiles/dmf_base.dir/ratio.cpp.o"
  "CMakeFiles/dmf_base.dir/ratio.cpp.o.d"
  "libdmf_base.a"
  "libdmf_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
