file(REMOVE_RECURSE
  "CMakeFiles/dmf_mixgraph.dir/builders.cpp.o"
  "CMakeFiles/dmf_mixgraph.dir/builders.cpp.o.d"
  "CMakeFiles/dmf_mixgraph.dir/dilution.cpp.o"
  "CMakeFiles/dmf_mixgraph.dir/dilution.cpp.o.d"
  "CMakeFiles/dmf_mixgraph.dir/graph.cpp.o"
  "CMakeFiles/dmf_mixgraph.dir/graph.cpp.o.d"
  "CMakeFiles/dmf_mixgraph.dir/mm.cpp.o"
  "CMakeFiles/dmf_mixgraph.dir/mm.cpp.o.d"
  "CMakeFiles/dmf_mixgraph.dir/mtcs.cpp.o"
  "CMakeFiles/dmf_mixgraph.dir/mtcs.cpp.o.d"
  "CMakeFiles/dmf_mixgraph.dir/multi_target.cpp.o"
  "CMakeFiles/dmf_mixgraph.dir/multi_target.cpp.o.d"
  "CMakeFiles/dmf_mixgraph.dir/rma.cpp.o"
  "CMakeFiles/dmf_mixgraph.dir/rma.cpp.o.d"
  "CMakeFiles/dmf_mixgraph.dir/rsm.cpp.o"
  "CMakeFiles/dmf_mixgraph.dir/rsm.cpp.o.d"
  "libdmf_mixgraph.a"
  "libdmf_mixgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmf_mixgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
