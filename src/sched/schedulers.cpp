#include "sched/schedulers.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dmf/errors.h"

namespace dmf::sched {

using forest::kNoTask;
using forest::OperandClass;
using forest::TaskForest;
using forest::TaskId;

namespace {

// The ready queues below are binary min-heaps over packed 64-bit keys
// (priority in the high half, TaskId in the low half). Every key is unique,
// so the pop sequence is identical to iterating the std::set the previous
// implementation used — same schedules, no per-node allocation.
constexpr std::uint64_t kIdMask = 0xFFFFFFFFull;

inline void heapPush(std::vector<std::uint64_t>& heap, std::uint64_t key) {
  heap.push_back(key);
  std::push_heap(heap.begin(), heap.end(), std::greater<>());
}

inline std::uint64_t heapPop(std::vector<std::uint64_t>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>());
  const std::uint64_t key = heap.back();
  heap.pop_back();
  return key;
}

/// Resets a reusable arrivals table (cycle -> tasks becoming schedulable)
/// without giving back the inner vectors' capacity.
void resetArrivals(std::vector<std::vector<TaskId>>& arrivals) {
  for (auto& slot : arrivals) slot.clear();
  if (arrivals.size() < 2) arrivals.resize(2);
}

// Shared list-scheduling driver. A Policy receives the tasks that become
// schedulable at the current cycle (add) and yields at most `capacity` tasks
// to run this cycle (take). The driver handles readiness bookkeeping: a task
// becomes schedulable the cycle after its last operand is produced.
template <typename Policy>
Schedule runListScheduler(const TaskForest& forest, unsigned mixers,
                          Policy policy, std::string name) {
  if (mixers == 0) {
    throw std::invalid_argument(name + ": at least one mixer required");
  }
  Schedule s;
  s.mixerCount = mixers;
  s.scheme = std::move(name);
  const std::size_t n = forest.taskCount();
  s.reset(n);
  if (n == 0) return s;

  struct Scratch {
    std::vector<unsigned> pending;
    std::vector<std::vector<TaskId>> arrivals;
    std::vector<TaskId> batch;
  };
  static thread_local Scratch scratch;
  std::vector<unsigned>& pending = scratch.pending;
  std::vector<std::vector<TaskId>>& arrivals = scratch.arrivals;
  std::vector<TaskId>& batch = scratch.batch;

  const std::vector<std::uint8_t>& initialPending = forest.initialPending();
  pending.assign(initialPending.begin(), initialPending.end());

  // arrivals[t] = tasks that become schedulable at cycle t (1-based).
  resetArrivals(arrivals);
  for (TaskId id = 0; id < n; ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }

  const std::vector<TaskId>& consumers = forest.outConsumers();
  std::size_t remaining = n;
  for (unsigned t = 1; remaining > 0; ++t) {
    if (t < arrivals.size()) {
      policy.add(arrivals[t]);
      arrivals[t].clear();
    }
    batch.clear();
    policy.take(mixers, batch);
    // Mixers are assigned in increasing index order (paper Algorithms 1/2).
    for (unsigned k = 0; k < batch.size(); ++k) {
      const TaskId id = batch[k];
      s.place(id, t, k);
      --remaining;
      for (unsigned slot = 0; slot < 2; ++slot) {
        const TaskId consumer = consumers[2 * id + slot];
        if (consumer == kNoTask) continue;
        if (--pending[consumer] == 0) {
          if (arrivals.size() <= t + 1) arrivals.resize(t + 2);
          arrivals[t + 1].push_back(consumer);
        }
      }
    }
    s.completionTime = batch.empty() ? s.completionTime : t;
    if (batch.empty() && remaining > 0 && t >= arrivals.size()) {
      throw std::logic_error(s.scheme + ": scheduler stalled");
    }
  }
  return s;
}

// Algorithm 1 policy: plain FIFO; same-cycle arrivals enter ordered by level
// ascending ("from level l upwards"), ties by task id.
class MmsPolicy {
 public:
  explicit MmsPolicy(const TaskForest& forest)
      : levels_(&forest.taskLevels()) {}

  void add(std::vector<TaskId>& arrivals) {
    std::sort(arrivals.begin(), arrivals.end(), [this](TaskId a, TaskId b) {
      const unsigned la = (*levels_)[a];
      const unsigned lb = (*levels_)[b];
      return la != lb ? la < lb : a < b;
    });
    queue_.insert(queue_.end(), arrivals.begin(), arrivals.end());
  }

  void take(unsigned capacity, std::vector<TaskId>& out) {
    while (capacity-- > 0 && head_ < queue_.size()) {
      out.push_back(queue_[head_++]);
    }
  }

 private:
  const std::vector<unsigned>* levels_;
  // FIFO as a flat vector with a read cursor instead of a deque: every task
  // enters exactly once, so the backlog is bounded by the task count.
  std::vector<TaskId> queue_;
  std::size_t head_ = 0;
};

// Literal Algorithm 2 policy: Q_int (Type-A/B, highest level first) is served
// before Q_leaf (Type-C, lowest level first); when |Q_int| >= Mc no Type-C
// node runs this cycle, matching the paper's dequeue formula
// max(0, min(Mc - |Q_int|, |Q_leaf|)).
class SrsGreedyPolicy {
 public:
  explicit SrsGreedyPolicy(const TaskForest& forest) : forest_(&forest) {}

  void add(std::vector<TaskId>& arrivals) {
    const std::vector<unsigned>& levels = forest_->taskLevels();
    for (TaskId id : arrivals) {
      const auto level = std::uint64_t{levels[id]};
      if (forest_->task(id).operandClass == OperandClass::kTypeC) {
        heapPush(qLeaf_, (level << 32) | id);  // lowest level first
      } else {
        heapPush(qInt_, ((kIdMask - level) << 32) | id);  // highest first
      }
    }
  }

  void take(unsigned capacity, std::vector<TaskId>& out) {
    const std::size_t intNodes = qInt_.size();
    for (unsigned k = 0; k < capacity && !qInt_.empty(); ++k) {
      out.push_back(static_cast<TaskId>(heapPop(qInt_) & kIdMask));
    }
    if (capacity > intNodes) {
      unsigned leafBudget = capacity - static_cast<unsigned>(intNodes);
      while (leafBudget-- > 0 && !qLeaf_.empty()) {
        out.push_back(static_cast<TaskId>(heapPop(qLeaf_) & kIdMask));
      }
    }
  }

 private:
  const TaskForest* forest_;
  std::vector<std::uint64_t> qInt_;
  std::vector<std::uint64_t> qLeaf_;
};

// Hu / critical-path policy: longest path to an emitted droplet first.
class OmsPolicy {
 public:
  explicit OmsPolicy(std::vector<unsigned> colevel)
      : colevel_(std::move(colevel)) {}

  void add(std::vector<TaskId>& arrivals) {
    for (TaskId id : arrivals) {
      heapPush(queue_, ((kIdMask - std::uint64_t{colevel_[id]}) << 32) | id);
    }
  }

  void take(unsigned capacity, std::vector<TaskId>& out) {
    while (capacity-- > 0 && !queue_.empty()) {
      out.push_back(static_cast<TaskId>(heapPop(queue_) & kIdMask));
    }
  }

 private:
  std::vector<unsigned> colevel_;
  std::vector<std::uint64_t> queue_;
};

// colevel(v) = length of the longest dependency chain starting at v
// (inclusive). Task ids are level-ascending, so consumers always have larger
// ids and one descending sweep suffices.
std::vector<unsigned> computeColevels(const TaskForest& forest) {
  std::vector<unsigned> colevel(forest.taskCount(), 1);
  const std::vector<TaskId>& consumers = forest.outConsumers();
  for (TaskId id = static_cast<TaskId>(forest.taskCount()); id-- > 0;) {
    for (unsigned slot = 0; slot < 2; ++slot) {
      const TaskId consumer = consumers[2 * id + slot];
      if (consumer != kNoTask) {
        colevel[id] = std::max(colevel[id], colevel[consumer] + 1);
      }
    }
  }
  return colevel;
}

}  // namespace

Schedule scheduleMMS(const TaskForest& forest, unsigned mixers) {
  return runListScheduler(forest, mixers, MmsPolicy(forest), "MMS");
}

Schedule scheduleSRSGreedy(const TaskForest& forest, unsigned mixers) {
  return runListScheduler(forest, mixers, SrsGreedyPolicy(forest),
                          "SRS-greedy");
}

namespace {

// Latest-feasible (just-in-time) schedule: list-schedule the reversed
// precedence DAG, then mirror the result in time, so droplets are produced
// as late as the mixer bank allows.
Schedule scheduleJustInTime(const TaskForest& forest, unsigned mixers) {
  Schedule s;
  s.mixerCount = mixers;
  s.scheme = "SRS";
  const std::size_t n = forest.taskCount();
  s.reset(n);
  if (n == 0) return s;

  // Storage shrinks when droplets are produced just before they are
  // consumed. SRS therefore schedules every mix-split as LATE as the mixer
  // bank allows: list-schedule the reversed precedence DAG (consumers release
  // their producers), then mirror the result in time. Stalling a mix-split
  // never parks extra droplets beyond its own operands, and Type-C nodes —
  // whose stall is free (section 4.2.2) — end up deferred the most: they sit
  // at the reversed DAG's deepest positions. Mixers idle rather than dispense
  // early, the behaviour the paper attributes to SRS.
  struct Scratch {
    std::vector<unsigned> revColevel;
    std::vector<unsigned> pending;
    std::vector<std::vector<TaskId>> arrivals;
    std::vector<std::uint64_t> ready;
    std::vector<unsigned> revCycle;
    std::vector<unsigned> used;
  };
  static thread_local Scratch scratch;

  const std::vector<TaskId>& depLeft = forest.depLefts();
  const std::vector<TaskId>& depRight = forest.depRights();

  // Reverse chain length: longest path from a task back through its operand
  // producers (its successors in the reversed DAG).
  std::vector<unsigned>& revColevel = scratch.revColevel;
  revColevel.assign(n, 1);
  for (TaskId id = 0; id < n; ++id) {
    for (TaskId dep : {depLeft[id], depRight[id]}) {
      if (dep != kNoTask) {
        revColevel[id] = std::max(revColevel[id], revColevel[dep] + 1);
      }
    }
  }

  // Reverse readiness: a task is reverse-ready once every consumer of its
  // droplets is reverse-scheduled. Root instances (no consumers) seed it.
  const std::vector<std::uint8_t>& consumedOuts = forest.consumedOutCounts();
  std::vector<unsigned>& pending = scratch.pending;
  pending.assign(consumedOuts.begin(), consumedOuts.end());

  std::vector<std::vector<TaskId>>& arrivals = scratch.arrivals;
  resetArrivals(arrivals);
  for (TaskId id = 0; id < n; ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }

  // Priority: longest reverse chain first (Hu on the reversed DAG), breaking
  // ties in favour of Type-C nodes (defer them furthest in forward time),
  // then by task id. Packed as (revColevel desc, typeC-first bit, id).
  auto key = [&](TaskId id) {
    const bool typeC =
        forest.task(id).operandClass == OperandClass::kTypeC;
    return ((0x7FFFFFFFull - revColevel[id]) << 33) |
           (std::uint64_t{typeC ? 0u : 1u} << 32) | id;
  };
  std::vector<std::uint64_t>& ready = scratch.ready;
  ready.clear();

  std::vector<unsigned>& revCycle = scratch.revCycle;
  revCycle.assign(n, 0);
  std::size_t remaining = n;
  unsigned span = 0;
  for (unsigned t = 1; remaining > 0; ++t) {
    if (t < arrivals.size()) {
      for (TaskId id : arrivals[t]) heapPush(ready, key(id));
      arrivals[t].clear();
    }
    for (unsigned k = 0; k < mixers && !ready.empty(); ++k) {
      const auto id = static_cast<TaskId>(heapPop(ready) & kIdMask);
      revCycle[id] = t;
      span = std::max(span, t);
      --remaining;
      for (TaskId dep : {depLeft[id], depRight[id]}) {
        if (dep == kNoTask) continue;
        if (--pending[dep] == 0) {
          if (arrivals.size() <= t + 1) arrivals.resize(t + 2);
          arrivals[t + 1].push_back(dep);
        }
      }
    }
    if (ready.empty() && remaining > 0 && t >= arrivals.size()) {
      throw std::logic_error("SRS: reverse pass stalled");
    }
  }

  // Mirror into forward time and hand out mixer indices per cycle.
  std::vector<unsigned>& used = scratch.used;
  used.assign(span + 2, 0);
  for (TaskId id = 0; id < n; ++id) {
    const unsigned cycle = span + 1 - revCycle[id];
    s.place(id, cycle, used[cycle]++);
  }
  s.completionTime = span;
  return s;
}

}  // namespace

namespace {

/// Reusable workspace for tryStorageCapped: one SRS refinement scans dozens
/// of (cap, window) attempts over the same forest, so every attempt bumps
/// warm vectors instead of re-allocating its bookkeeping.
struct CappedScratch {
  std::vector<unsigned> pending;
  std::vector<std::vector<TaskId>> arrivals;
  std::vector<std::uint64_t> ready;       // sorted ascending by packed key
  std::vector<std::uint64_t> arrivalKeys;
  std::vector<std::uint64_t> merged;
  std::vector<TaskId> batch;
  Schedule out;  // the attempt's result; copied out on adoption
};

CappedScratch& cappedScratch() {
  static thread_local CappedScratch scratch;
  return scratch;
}

// One storage-capped attempt with a fixed production-lookahead window.
// Fills `scratch.out` with a schedule respecting the cap and returns true,
// or returns false when this window stalls. `jitCycles` is the cycle array
// of a just-in-time schedule supplying the service order.
bool tryStorageCapped(const TaskForest& forest, unsigned mixers,
                      unsigned storageCap, unsigned window,
                      const std::vector<unsigned>& jitCycles,
                      CappedScratch& scratch) {
  Schedule& s = scratch.out;
  s.mixerCount = mixers;
  s.scheme = "capped";
  s.completionTime = 0;
  const std::size_t n = forest.taskCount();
  s.reset(n);
  if (n == 0) return true;

  // Per-task inventory delta: +1 for every output droplet that some other
  // mix-split will consume (consumedOuts), -1 for every operand taken out of
  // storage (storedOperands == the initial pending count).
  const std::vector<std::uint8_t>& consumedOuts = forest.consumedOutCounts();
  const std::vector<std::uint8_t>& storedOperands = forest.initialPending();
  const std::vector<TaskId>& consumers = forest.outConsumers();

  std::vector<unsigned>& pending = scratch.pending;
  pending.assign(storedOperands.begin(), storedOperands.end());

  std::vector<std::vector<TaskId>>& arrivals = scratch.arrivals;
  resetArrivals(arrivals);
  for (TaskId id = 0; id < n; ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }

  // Ready tasks in just-in-time order: the latest-feasible schedule's cycle
  // assignment pipelines production right before consumption, so following
  // it under the cap keeps partner droplets adjacent. Producers must go in
  // strictly this order — letting a later dispense mix jump a stalled one
  // fills the storage with droplets whose partners can then never be made
  // (the classic storage deadlock). The queue is a flat vector sorted
  // ascending by (jit cycle, id): arrivals merge in, and the two service
  // passes below compact the survivors in place — iteration order matches
  // the std::set this replaced, with zero node allocations.
  auto key = [&](TaskId id) {
    return (std::uint64_t{jitCycles[id]} << 32) | id;
  };
  std::vector<std::uint64_t>& ready = scratch.ready;
  ready.clear();
  std::vector<std::uint64_t>& arrivalKeys = scratch.arrivalKeys;
  std::vector<std::uint64_t>& merged = scratch.merged;

  // `carried` counts consumable droplets produced in earlier cycles and not
  // yet consumed. The droplets this cycle's batch does not consume are
  // exactly the ones parked in storage during the cycle (Algorithm 3), so
  // the hard constraint per cycle is: carried - consumedNow <= cap. Fresh
  // production only becomes storage next cycle; it is admitted up to an
  // optimism window of what the mixer bank could consume back in one cycle.
  //
  // All pressure tests below run in signed 64-bit arithmetic: the inventory
  // invariant (a cycle never consumes more droplets than it carried in) is
  // expected to hold for every forest the TaskForest constructors can build,
  // but an unsigned wrap here would not fail loudly — it would silently turn
  // the test into always-true/always-false and admit cap-violating batches.
  // The invariant itself is checked at the end of every cycle.
  std::int64_t carried = 0;
  const std::int64_t budget =
      static_cast<std::int64_t>(storageCap) + window;
  std::size_t remaining = n;
  std::vector<TaskId>& batch = scratch.batch;
  for (unsigned t = 1; remaining > 0; ++t) {
    if (t < arrivals.size() && !arrivals[t].empty()) {
      arrivalKeys.clear();
      for (TaskId id : arrivals[t]) arrivalKeys.push_back(key(id));
      arrivals[t].clear();
      std::sort(arrivalKeys.begin(), arrivalKeys.end());
      merged.clear();
      std::merge(ready.begin(), ready.end(), arrivalKeys.begin(),
                 arrivalKeys.end(), std::back_inserter(merged));
      ready.swap(merged);
    }

    batch.clear();
    std::int64_t consumedNow = 0;
    std::int64_t producedNow = 0;
    // Pass 1 — consumers of stored droplets (the Q_int of Algorithm 2), in
    // just-in-time order. Emptying storage takes precedence over everything.
    std::size_t w = 0;
    std::size_t i = 0;
    for (; i < ready.size(); ++i) {
      if (batch.size() >= mixers) break;
      const auto id = static_cast<TaskId>(ready[i] & kIdMask);
      const std::int64_t cons = storedOperands[id];
      if (cons == 0) {
        ready[w++] = ready[i];
        continue;
      }
      const std::int64_t prod = consumedOuts[id];
      if (prod > cons &&
          carried - consumedNow - cons + producedNow + prod > budget) {
        ready[w++] = ready[i];  // net-producing consumer under pressure
        continue;
      }
      consumedNow += cons;
      producedNow += prod;
      batch.push_back(id);
    }
    for (; i < ready.size(); ++i) ready[w++] = ready[i];
    ready.resize(w);
    // Pass 2 — fresh dispense mixes (Q_leaf), strictly in just-in-time
    // order: letting a later dispense mix jump a stalled one fills the
    // storage with droplets whose partners can then never be made (the
    // classic storage deadlock).
    w = 0;
    i = 0;
    for (; i < ready.size(); ++i) {
      if (batch.size() >= mixers) break;
      const auto id = static_cast<TaskId>(ready[i] & kIdMask);
      if (storedOperands[id] != 0) {
        ready[w++] = ready[i];
        continue;
      }
      const std::int64_t prod = consumedOuts[id];
      if (carried - consumedNow + producedNow + prod > budget) {
        break;  // strict order among producers
      }
      producedNow += prod;
      batch.push_back(id);
    }
    for (; i < ready.size(); ++i) ready[w++] = ready[i];
    ready.resize(w);

    if (consumedNow > carried) {
      // A cycle consumed more droplets than it carried in — the readiness
      // bookkeeping above must make this impossible; wrapping silently in
      // unsigned arithmetic was the pre-signed failure mode.
      throw std::logic_error(
          "tryStorageCapped: cycle consumed more droplets than carried (" +
          std::to_string(consumedNow) + " > " + std::to_string(carried) +
          ")");
    }
    if (carried - consumedNow > static_cast<std::int64_t>(storageCap)) {
      return false;
    }

    for (unsigned k = 0; k < batch.size(); ++k) {
      const TaskId id = batch[k];
      s.place(id, t, k);
      --remaining;
      for (unsigned slot = 0; slot < 2; ++slot) {
        const TaskId consumer = consumers[2 * id + slot];
        if (consumer == kNoTask) continue;
        if (--pending[consumer] == 0) {
          if (arrivals.size() <= t + 1) arrivals.resize(t + 2);
          arrivals[t + 1].push_back(consumer);
        }
      }
    }
    carried = carried - consumedNow + producedNow;
    s.completionTime = batch.empty() ? s.completionTime : t;
    if (batch.empty() && remaining > 0 && t >= arrivals.size()) {
      return false;
    }
  }
  return true;
}

/// The production-lookahead window ladder. Small mixer banks make the ladder
/// collide (e.g. mixers == 2 duplicates both 2 and 4); an identical window
/// is an identical attempt, and adoption below is strictly-improving, so
/// skipping duplicates cannot change which schedule wins — it only removes
/// redundant work.
template <typename Fn>
void forEachWindow(unsigned mixers, Fn fn) {
  const unsigned ladder[] = {0u, 1u, 2u, 3u, mixers, 2 * mixers};
  for (std::size_t i = 0; i < std::size(ladder); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      seen = seen || ladder[j] == ladder[i];
    }
    if (!seen) fn(ladder[i]);
  }
}

}  // namespace

Schedule scheduleStorageCapped(const TaskForest& forest, unsigned mixers,
                               unsigned storageCap) {
  if (mixers == 0) {
    throw std::invalid_argument(
        "scheduleStorageCapped: at least one mixer required");
  }
  if (forest.taskCount() == 0) {
    Schedule s;
    s.mixerCount = mixers;
    s.scheme = "capped";
    return s;
  }
  // The production-lookahead window trades deadlock safety against mixer
  // utilization and no single value dominates, so a small deterministic
  // ladder is tried and the fastest completing schedule wins.
  const Schedule jit = scheduleJustInTime(forest, mixers);
  CappedScratch& scratch = cappedScratch();
  std::optional<Schedule> best;
  forEachWindow(mixers, [&](unsigned window) {
    if (tryStorageCapped(forest, mixers, storageCap, window, jit.cycles,
                         scratch) &&
        (!best.has_value() ||
         scratch.out.completionTime < best->completionTime)) {
      best = scratch.out;
    }
  });
  if (!best.has_value()) {
    throw InfeasibleError(
        "scheduleStorageCapped: storage cap of " +
        std::to_string(storageCap) + " units is too tight to make progress");
  }
  return *best;
}

Schedule scheduleSRS(const TaskForest& forest, unsigned mixers) {
  if (mixers == 0) {
    throw std::invalid_argument("SRS: at least one mixer required");
  }
  Schedule best = scheduleJustInTime(forest, mixers);
  best.scheme = "SRS";
  if (forest.taskCount() == 0) return best;
  unsigned bestStorage = countStorage(forest, best);

  // The time budget: a bounded slowdown over the fastest candidate (the
  // paper reports SRS costs ~5% completion time on average).
  unsigned fastest = best.completionTime;
  auto adopt = [&](Schedule candidate) {
    fastest = std::min(fastest, candidate.completionTime);
    const unsigned budget = fastest + std::max(3u, fastest / 4);
    if (candidate.completionTime > budget) return;
    const unsigned storage = countStorage(forest, candidate);
    if (storage < bestStorage ||
        (storage == bestStorage &&
         candidate.completionTime < best.completionTime)) {
      candidate.scheme = "SRS";
      best = std::move(candidate);
      bestStorage = storage;
    }
  };

  // Candidate pool: MMS (SRS must never store more than it, section 4.2.2)
  // and the verbatim two-queue Algorithm 2, which is strong on wide forests.
  adopt(scheduleMMS(forest, mixers));
  adopt(scheduleSRSGreedy(forest, mixers));

  // Refinement: storage-capped scheduling seeded with the current best
  // schedule's order, scanning every cap below it (feasibility is not
  // monotone in the cap, so no bisection).
  const unsigned budget = fastest + std::max(3u, fastest / 4);
  const std::vector<unsigned> seedCycles = best.cycles;
  CappedScratch& scratch = cappedScratch();
  for (unsigned cap = bestStorage; cap-- > 0;) {
    std::optional<Schedule> candidate;
    forEachWindow(mixers, [&](unsigned window) {
      if (tryStorageCapped(forest, mixers, cap, window, seedCycles,
                           scratch) &&
          scratch.out.completionTime <= budget &&
          (!candidate.has_value() ||
           scratch.out.completionTime < candidate->completionTime)) {
        candidate = scratch.out;
      }
    });
    if (candidate.has_value()) {
      adopt(std::move(*candidate));
    }
  }
  return best;
}

Schedule scheduleOMS(const TaskForest& forest, unsigned mixers) {
  return runListScheduler(forest, mixers, OmsPolicy(computeColevels(forest)),
                          "OMS");
}

unsigned criticalPathLength(const TaskForest& forest) {
  const std::vector<unsigned> colevel = computeColevels(forest);
  return colevel.empty() ? 0
                         : *std::max_element(colevel.begin(), colevel.end());
}

unsigned minimumMixers(const TaskForest& forest) {
  const unsigned cp = criticalPathLength(forest);
  if (cp == 0) return 1;  // empty forest: any bank completes instantly
  // No bank smaller than ceil(taskCount / cp) can reach the critical path
  // (completion >= ceil(taskCount / mixers) > cp below it), so the scan
  // starts at the width lower bound instead of 1.
  const auto n = static_cast<unsigned>(forest.taskCount());
  for (unsigned m = std::max(1u, (n + cp - 1) / cp);; ++m) {
    // Runaway check first: a failure throws instead of paying one extra
    // wasted O(n log n) scheduling pass beyond the taskCount ceiling.
    if (m > n) {
      throw std::logic_error("minimumMixers: failed to reach critical path");
    }
    if (scheduleOMS(forest, m).completionTime == cp) {
      return m;
    }
  }
}

}  // namespace dmf::sched
