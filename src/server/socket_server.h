// Line-delimited JSON over a local TCP socket — the wire face of
// `dmfstream serve` (DESIGN.md §13).
//
// The server binds 127.0.0.1 only (plan serving is a local sidecar, not an
// internet endpoint), accepts any number of connections, and answers one
// response line per request line. All request handling goes through
// PlanService::handle, which never throws — a malformed line gets an error
// response and the connection stays up.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dmf::server {

class PlanService;

struct SocketServerOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral (read the bound port back with
  /// port()).
  unsigned short port = 0;
};

class SocketServer {
 public:
  /// Binds and listens immediately. Throws std::runtime_error when the
  /// socket cannot be created or bound (port in use, no permission).
  SocketServer(PlanService& service, const SocketServerOptions& options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] unsigned short port() const { return port_; }

  /// Accept loop: blocks until stop() is called or a {"op":"shutdown"}
  /// request arrives. Joins every connection thread before returning.
  void run();

  /// Thread-safe: wakes the accept loop and begins draining.
  void stop();

 private:
  /// `user` is the connection's identity for fleet arbitration: the accept
  /// order index, stable for a connection's whole lifetime.
  void serveConnection(int fd, unsigned user);

  PlanService& service_;
  int listenFd_ = -1;
  unsigned short port_ = 0;
  std::atomic<unsigned> nextUser_{0};
  std::atomic<bool> stopping_{false};
  std::mutex threadsMutex_;
  std::vector<std::thread> threads_;
};

/// Test/CI driver: connects to 127.0.0.1:port, sends every line of `in` as
/// one request, and writes each response line to `out`. Returns false on
/// connect/IO failure. Stops early (successfully) after a shutdown
/// response, mirroring what the server does.
bool driveLines(unsigned short port, std::istream& in, std::ostream& out);

}  // namespace dmf::server
