// Leveled, structured JSON-lines logging (DESIGN.md §14).
//
// One log record is one JSON object on one line, written atomically to the
// sink (a file or stderr). Field order is deterministic: the fixed head
// ("ts" when stamping is on, "level", "event"), then caller fields in call
// order, then trace correlation ("trace_id"/"span_id") when the calling
// thread has an open span — so a log line joins the Chrome trace of the
// request that emitted it.
//
// The disabled path follows the same contract as obs::Scope: no logger
// installed (or a record below the threshold) costs one relaxed atomic load
// and a branch — no clock read, no allocation, no lock. Call sites build a
// LogLine unconditionally; every field call no-ops when it is inert.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace dmf::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< threshold value only — no record carries this level
};

/// "debug" / "info" / "warn" / "error" / "off".
[[nodiscard]] const char* logLevelName(LogLevel level) noexcept;

/// Parses a level name (as accepted by --log-level). Throws
/// std::invalid_argument on anything else.
[[nodiscard]] LogLevel parseLogLevel(const std::string& name);

/// A JSON-lines sink. Writes are mutex-serialized whole lines, flushed per
/// record, so concurrent threads never interleave fields.
class Logger {
 public:
  struct Options {
    LogLevel level = LogLevel::kInfo;
    /// Sink path; empty = stderr. The parent directory must exist.
    std::string path;
    /// Stamp each record with "ts" (nanoseconds since logger creation).
    /// Off makes output byte-deterministic for tests and goldens.
    bool timestamps = true;
  };

  /// Throws std::invalid_argument when the sink cannot be opened.
  explicit Logger(const Options& options);
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  [[nodiscard]] LogLevel level() const noexcept { return options_.level; }
  [[nodiscard]] bool timestamps() const noexcept {
    return options_.timestamps;
  }
  /// Nanoseconds since this logger was constructed.
  [[nodiscard]] std::uint64_t nowNanos() const;
  [[nodiscard]] std::uint64_t linesWritten() const noexcept {
    return lines_.load(std::memory_order_relaxed);
  }

  /// Writes one complete record line (no trailing newline in `line`).
  void write(const std::string& line);

 private:
  struct Impl;
  Options options_;
  Impl* impl_;
  std::atomic<std::uint64_t> lines_{0};
};

namespace detail {
/// Threshold of the installed logger; kOff when none. One relaxed load
/// decides the disabled path.
extern std::atomic<int> g_logThreshold;
extern std::atomic<Logger*> g_logger;
}  // namespace detail

/// True when a record at `level` would be written.
[[nodiscard]] inline bool logEnabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         detail::g_logThreshold.load(std::memory_order_relaxed);
}

/// The installed logger if `level` passes its threshold, else nullptr.
[[nodiscard]] inline Logger* loggerFor(LogLevel level) noexcept {
  if (!logEnabled(level)) return nullptr;
  return detail::g_logger.load(std::memory_order_acquire);
}

/// RAII installer, mirroring obs::Scope: the logger is globally visible
/// between construction and destruction. Throws std::logic_error when a
/// logger is already installed.
class LogScope {
 public:
  explicit LogScope(Logger& logger);
  ~LogScope();

  LogScope(const LogScope&) = delete;
  LogScope& operator=(const LogScope&) = delete;
};

/// One structured record, emitted on destruction. Inert (single relaxed
/// load, no allocation) when no logger accepts the level.
///
///   obs::LogLine(obs::LogLevel::kInfo, "server.request")
///       .str("op", op).num("nanos", nanos);
class LogLine {
 public:
  LogLine(LogLevel level, const char* event);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  LogLine& str(const char* key, std::string_view value);
  LogLine& num(const char* key, std::uint64_t value);
  LogLine& real(const char* key, double value);
  LogLine& boolean(const char* key, bool value);

 private:
  Logger* logger_;
  std::string buffer_;
};

}  // namespace dmf::obs
