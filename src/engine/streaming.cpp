#include "engine/streaming.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

namespace dmf::engine {

namespace {

// Assembles the plan for a fixed per-pass demand from already-evaluated
// passes.
StreamingPlan assemblePlan(std::uint64_t perPass, unsigned mixers,
                           const StreamingPass& full,
                           const std::optional<StreamingPass>& remainder,
                           std::uint64_t fullPasses) {
  StreamingPlan plan;
  plan.perPassDemand = perPass;
  plan.mixers = mixers;
  for (std::uint64_t i = 0; i < fullPasses; ++i) {
    plan.passes.push_back(full);
  }
  if (remainder.has_value()) {
    plan.passes.push_back(*remainder);
  }
  for (const StreamingPass& pass : plan.passes) {
    plan.totalCycles += pass.cycles;
    plan.totalWaste += pass.waste;
    plan.totalInput += pass.inputDroplets;
    plan.storageUnits = std::max(plan.storageUnits, pass.storageUnits);
  }
  return plan;
}

StreamingPass evaluatePass(const MdstEngine& engine,
                           const StreamingRequest& request, unsigned mixers,
                           std::uint64_t demand) {
  const forest::TaskForest f = engine.buildForest(request.algorithm, demand);
  const sched::Schedule s = schedule(f, request.scheme, mixers);
  StreamingPass pass;
  pass.demand = demand;
  pass.cycles = s.completionTime;
  pass.storageUnits = sched::countStorage(f, s);
  pass.waste = f.stats().waste;
  pass.inputDroplets = f.stats().inputTotal;
  return pass;
}

}  // namespace

StreamingPlan planStreaming(const MdstEngine& engine,
                            const StreamingRequest& request) {
  if (request.demand == 0) {
    throw std::invalid_argument("planStreaming: demand must be positive");
  }
  const unsigned mixers =
      request.mixers == 0 ? engine.defaultMixers() : request.mixers;

  const std::uint64_t demand = request.demand;
  auto feasible = [&](std::uint64_t d) {
    return evaluatePass(engine, request, mixers, d).storageUnits <=
           request.storageCap;
  };

  const std::uint64_t minPass = std::min<std::uint64_t>(demand, 2);
  if (!feasible(minPass)) {
    throw std::runtime_error(
        "planStreaming: even a two-droplet pass exceeds the storage cap of " +
        std::to_string(request.storageCap));
  }

  // Largest feasible per-pass demand D' by bisection (storage requirement
  // grows with the forest, monotonically in practice).
  std::uint64_t lo = minPass;
  std::uint64_t hi = demand;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const std::uint64_t perPass = lo;

  const StreamingPass full = evaluatePass(engine, request, mixers, perPass);
  const std::uint64_t remainder = demand % perPass;
  std::optional<StreamingPass> last;
  if (remainder > 0) {
    last = evaluatePass(engine, request, mixers, remainder);
  }
  return assemblePlan(perPass, mixers, full, last, demand / perPass);
}

StreamingPlan planStreamingOptimized(const MdstEngine& engine,
                                     const StreamingRequest& request) {
  if (request.demand == 0) {
    throw std::invalid_argument(
        "planStreamingOptimized: demand must be positive");
  }
  const unsigned mixers =
      request.mixers == 0 ? engine.defaultMixers() : request.mixers;
  const std::uint64_t demand = request.demand;

  std::optional<StreamingPlan> best;
  // Pass evaluations are reused across candidate D' values (the remainder
  // demand of one candidate is the full demand of another).
  std::vector<std::optional<StreamingPass>> cache(demand + 1);
  auto pass = [&](std::uint64_t d) -> const StreamingPass& {
    if (!cache[d].has_value()) {
      cache[d] = evaluatePass(engine, request, mixers, d);
    }
    return *cache[d];
  };

  for (std::uint64_t perPass = 1; perPass <= demand; ++perPass) {
    const StreamingPass& full = pass(perPass);
    if (full.storageUnits > request.storageCap) continue;
    const std::uint64_t remainder = demand % perPass;
    std::optional<StreamingPass> last;
    if (remainder > 0) {
      last = pass(remainder);
      if (last->storageUnits > request.storageCap) continue;
    }
    StreamingPlan plan =
        assemblePlan(perPass, mixers, full, last, demand / perPass);
    const auto better = [&](const StreamingPlan& a, const StreamingPlan& b) {
      if (a.totalCycles != b.totalCycles) {
        return a.totalCycles < b.totalCycles;
      }
      if (a.totalWaste != b.totalWaste) return a.totalWaste < b.totalWaste;
      return a.passes.size() < b.passes.size();
    };
    if (!best.has_value() || better(plan, *best)) {
      best = std::move(plan);
    }
  }
  if (!best.has_value()) {
    throw std::runtime_error(
        "planStreamingOptimized: no pass size fits the storage cap of " +
        std::to_string(request.storageCap));
  }
  return *best;
}

}  // namespace dmf::engine
