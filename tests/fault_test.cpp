#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fault/checkpoint.h"

namespace dmf::fault {
namespace {

TEST(FaultSpec, ParsesFullSpec) {
  const FaultSpec spec =
      FaultSpec::parse("split=0.02,loss=0.01,dispense=0.005,electrode=0.001");
  EXPECT_DOUBLE_EQ(spec.splitRate, 0.02);
  EXPECT_DOUBLE_EQ(spec.lossRate, 0.01);
  EXPECT_DOUBLE_EQ(spec.dispenseRate, 0.005);
  EXPECT_DOUBLE_EQ(spec.electrodeRate, 0.001);
  EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, ParsesPartialSpecInAnyOrder) {
  const FaultSpec spec = FaultSpec::parse("eps=0.2,split=0.5");
  EXPECT_DOUBLE_EQ(spec.splitRate, 0.5);
  EXPECT_DOUBLE_EQ(spec.splitEps, 0.2);
  EXPECT_DOUBLE_EQ(spec.lossRate, 0.0);
}

TEST(FaultSpec, EmptySpecIsFaultFree) {
  const FaultSpec spec = FaultSpec::parse("");
  EXPECT_FALSE(spec.any());
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW((void)FaultSpec::parse("split"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("split=abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("split=0.5x"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("bogus=0.1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("split=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("split=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("eps=0"), std::invalid_argument);
}

TEST(FaultSpec, ToStringRoundTrips) {
  const FaultSpec spec = FaultSpec::parse("split=0.25,eps=0.5,loss=0.125");
  const FaultSpec again = FaultSpec::parse(spec.toString());
  EXPECT_DOUBLE_EQ(again.splitRate, spec.splitRate);
  EXPECT_DOUBLE_EQ(again.splitEps, spec.splitEps);
  EXPECT_DOUBLE_EQ(again.lossRate, spec.lossRate);
}

TEST(FaultInjector, DeterministicForSeed) {
  FaultSpec spec;
  spec.splitRate = 0.5;
  spec.lossRate = 0.5;
  auto sample = [&](std::uint64_t seed) {
    FaultInjector injector(spec, seed);
    std::vector<bool> draws;
    double eps = 0.0;
    for (int i = 0; i < 256; ++i) {
      draws.push_back(injector.splitErrs(eps));
      draws.push_back(injector.dropletLost());
    }
    return draws;
  };
  EXPECT_EQ(sample(42), sample(42));
  EXPECT_NE(sample(42), sample(43));
}

TEST(FaultInjector, SplitMagnitudeWithinEps) {
  FaultSpec spec;
  spec.splitRate = 1.0;
  spec.splitEps = 0.15;
  FaultInjector injector(spec, 7);
  for (int i = 0; i < 512; ++i) {
    double eps = 0.0;
    ASSERT_TRUE(injector.splitErrs(eps));
    EXPECT_GT(eps, 0.0);
    EXPECT_LE(eps, 0.15);
  }
}

TEST(FaultInjector, ZeroRatesNeverFire) {
  FaultInjector injector(FaultSpec{}, 1);
  double eps = 0.0;
  for (int i = 0; i < 128; ++i) {
    EXPECT_FALSE(injector.splitErrs(eps));
    EXPECT_FALSE(injector.dropletLost());
    EXPECT_FALSE(injector.dispenseFails());
    EXPECT_FALSE(injector.electrodeDies());
  }
}

TEST(FaultInjector, PickCellStaysOnArray) {
  FaultSpec spec;
  spec.electrodeRate = 1.0;
  FaultInjector injector(spec, 3);
  for (int i = 0; i < 256; ++i) {
    const chip::Cell c = injector.pickCell(15, 11);
    EXPECT_GE(c.x, 0);
    EXPECT_LT(c.x, 15);
    EXPECT_GE(c.y, 0);
    EXPECT_LT(c.y, 11);
  }
}

TEST(FaultInjector, RecordKeepsTraceAndCounts) {
  FaultInjector injector(FaultSpec{}, 1);
  injector.record(FaultEvent{FaultKind::kDropletLoss, 3, 0, 0.0, "a"});
  injector.record(FaultEvent{FaultKind::kDropletLoss, 5, 1, 0.0, "b"});
  injector.record(FaultEvent{FaultKind::kDispenseFail, 5, 2, 0.0, "c"});
  EXPECT_EQ(injector.events().size(), 3u);
  EXPECT_EQ(injector.count(FaultKind::kDropletLoss), 2u);
  EXPECT_EQ(injector.count(FaultKind::kDispenseFail), 1u);
  EXPECT_EQ(injector.count(FaultKind::kSplitImbalance), 0u);
}

TEST(FaultKindNames, AreStable) {
  EXPECT_EQ(faultKindName(FaultKind::kSplitImbalance), "split");
  EXPECT_EQ(faultKindName(FaultKind::kDropletLoss), "loss");
  EXPECT_EQ(faultKindName(FaultKind::kDispenseFail), "dispense");
  EXPECT_EQ(faultKindName(FaultKind::kElectrodeDead), "electrode");
}

TEST(Checkpoint, GranularityAndBackoff) {
  CheckpointOptions opts;
  opts.everyLevels = 2;
  EXPECT_FALSE(isCheckpoint(1, opts, 1));
  EXPECT_TRUE(isCheckpoint(2, opts, 1));
  EXPECT_TRUE(isCheckpoint(4, opts, 1));
  // Backoff 2x doubles the interval to 4.
  EXPECT_FALSE(isCheckpoint(2, opts, 2));
  EXPECT_TRUE(isCheckpoint(4, opts, 2));
  EXPECT_TRUE(isCheckpoint(8, opts, 2));
}

TEST(Checkpoint, DetectionLatencyDelaysVisibility) {
  CheckpointOptions opts;
  opts.detectionLatency = 3;
  EXPECT_FALSE(detectable(10, 10, opts));
  EXPECT_FALSE(detectable(10, 12, opts));
  EXPECT_TRUE(detectable(10, 13, opts));
  opts.detectionLatency = 0;
  EXPECT_TRUE(detectable(10, 10, opts));
}

}  // namespace
}  // namespace dmf::fault
