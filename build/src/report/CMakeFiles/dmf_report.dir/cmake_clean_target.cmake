file(REMOVE_RECURSE
  "libdmf_report.a"
)
