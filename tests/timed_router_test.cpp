#include "chip/timed_router.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/pin_mapper.h"
#include "chip/reliability.h"
#include "chip/router.h"
#include "chip/simulation.h"
#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "sched/schedulers.h"

namespace dmf::chip {
namespace {

using forest::TaskForest;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Layout openField() {
  // A bare array with two 1x1 mixers far apart for endpoints.
  Layout layout(12, 12);
  layout.add(Module{ModuleKind::kMixer, Cell{0, 0}, 1, 1, 0, "A"});
  layout.add(Module{ModuleKind::kMixer, Cell{11, 11}, 1, 1, 0, "B"});
  layout.add(Module{ModuleKind::kMixer, Cell{11, 0}, 1, 1, 0, "C"});
  layout.add(Module{ModuleKind::kMixer, Cell{0, 11}, 1, 1, 0, "D"});
  return layout;
}

TEST(TimedRouter, SingleDropletTakesShortestPath) {
  const Layout layout = openField();
  TimedRouter router(layout);
  const PhaseResult result =
      router.routePhase({PhaseMove{Cell{0, 0}, Cell{11, 11}, 7}});
  ASSERT_EQ(result.trajectories.size(), 1u);
  EXPECT_EQ(result.trajectories[0].tag, 7u);
  EXPECT_EQ(result.makespan, 22u);  // manhattan distance
  EXPECT_EQ(result.totalActuations, 22u);
  EXPECT_EQ(result.trajectories[0].positions.front(), (Cell{0, 0}));
  EXPECT_EQ(result.trajectories[0].positions.back(), (Cell{11, 11}));
}

TEST(TimedRouter, CrossingDropletsAvoidEachOther) {
  const Layout layout = openField();
  TimedRouter router(layout);
  // Two droplets swap corners; their straight-line paths cross in the
  // middle of the array.
  const PhaseResult result = router.routePhase(
      {PhaseMove{Cell{0, 0}, Cell{11, 11}, 0},
       PhaseMove{Cell{11, 11}, Cell{0, 0}, 1},
       PhaseMove{Cell{11, 0}, Cell{0, 11}, 2}});
  EXPECT_EQ(result.trajectories.size(), 3u);
  router.checkInterference(result.trajectories);  // must not throw
  // Detours and waits allowed, but bounded.
  EXPECT_LE(result.makespan, 40u);
}

TEST(TimedRouter, ZeroLengthMoveIsTrivial) {
  const Layout layout = openField();
  TimedRouter router(layout);
  const PhaseResult result =
      router.routePhase({PhaseMove{Cell{0, 0}, Cell{0, 0}, 0}});
  EXPECT_EQ(result.makespan, 0u);
  EXPECT_EQ(result.totalActuations, 0u);
}

TEST(TimedRouter, RejectsOffArrayEndpoints) {
  const Layout layout = openField();
  TimedRouter router(layout);
  EXPECT_THROW((void)router.routePhase({PhaseMove{Cell{-1, 0}, Cell{2, 2}, 0}}),
               std::invalid_argument);
}

TEST(TimedRouter, ImpossiblePhaseThrows) {
  // The droplet cannot leave a fully walled-in corner.
  Layout layout(8, 8);
  layout.add(Module{ModuleKind::kMixer, Cell{0, 0}, 1, 1, 0, "A"});
  layout.add(Module{ModuleKind::kWaste, Cell{1, 0}, 1, 2, 0, "w1"});
  layout.add(Module{ModuleKind::kWaste, Cell{0, 1}, 1, 1, 0, "w2"});
  layout.add(Module{ModuleKind::kMixer, Cell{6, 6}, 1, 1, 0, "B"});
  TimedRouter router(layout, TimedRouterOptions{32, 2});
  EXPECT_THROW((void)router.routePhase({PhaseMove{Cell{0, 0}, Cell{6, 6}, 0}}),
               std::runtime_error);
}

TEST(TimedRouter, VerifyToggleDoesNotChangeRoutes) {
  // verifyInterference only switches the post-route audit on or off; the
  // occupancy index drives the search either way, so routes are identical.
  const Layout layout = openField();
  TimedRouter audited(layout);
  TimedRouterOptions fast;
  fast.verifyInterference = false;
  TimedRouter unaudited(layout, fast);
  const std::vector<PhaseMove> moves{PhaseMove{Cell{0, 0}, Cell{11, 11}, 0},
                                     PhaseMove{Cell{11, 11}, Cell{0, 0}, 1},
                                     PhaseMove{Cell{11, 0}, Cell{0, 11}, 2}};
  const PhaseResult a = audited.routePhase(moves);
  const PhaseResult b = unaudited.routePhase(moves);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.totalActuations, b.totalActuations);
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    EXPECT_EQ(a.trajectories[i].tag, b.trajectories[i].tag);
    EXPECT_EQ(a.trajectories[i].positions, b.trajectories[i].positions);
  }
  // The unaudited result still passes the audit when run explicitly.
  audited.checkInterference(b.trajectories);
}

TEST(TimedRouter, CheckInterferenceDetectsViolations) {
  const Layout layout = openField();
  TimedRouter router(layout);
  // Hand-crafted colliding trajectories on open cells.
  Trajectory a{0, {Cell{5, 5}, Cell{5, 6}}};
  Trajectory b{1, {Cell{6, 5}, Cell{6, 6}}};
  EXPECT_THROW(router.checkInterference({a, b}), std::logic_error);
}

TEST(TimedRouter, RenderPhaseShowsDroplets) {
  const Layout layout = openField();
  TimedRouter router(layout);
  const PhaseResult result =
      router.routePhase({PhaseMove{Cell{0, 0}, Cell{5, 0}, 0}});
  const std::string frames = renderPhase(layout, result);
  EXPECT_NE(frames.find("step 0:"), std::string::npos);
  EXPECT_NE(frames.find('A'), std::string::npos);
}

TEST(Simulation, Fig5WorkloadIsFullyRoutable) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({2, 1, 1, 1, 1, 1, 9}));
  const TaskForest forest(graph, 20);
  const sched::Schedule schedule = sched::scheduleSRS(forest, 3);
  const ExecutionTrace trace = executor.run(forest, schedule);

  const SimulationResult sim = simulateTrace(layout, trace);
  EXPECT_FALSE(sim.phases.empty());
  // The concurrent simulation can only add detours over the BFS pricing.
  EXPECT_GE(sim.totalActuations, trace.totalCost);
  EXPECT_LE(sim.totalActuations, 2 * trace.totalCost);
  EXPECT_GT(sim.maxPhaseMakespan, 0u);
}

TEST(Simulation, EveryPhaseObeysFluidicConstraints) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({2, 1, 1, 1, 1, 1, 9}));
  const TaskForest forest(graph, 8);
  const ExecutionTrace trace =
      executor.run(forest, sched::scheduleSRS(forest, 3));
  const SimulationResult sim = simulateTrace(layout, trace);
  TimedRouter timed(layout);
  for (const SimulatedPhase& phase : sim.phases) {
    EXPECT_NO_THROW(timed.checkInterference(phase.routing.trajectories));
  }
}

TEST(PinMapper, BroadcastNeedsFarFewerPinsThanDirect) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({2, 1, 1, 1, 1, 1, 9}));
  const TaskForest forest(graph, 20);
  const ExecutionTrace trace =
      executor.run(forest, sched::scheduleSRS(forest, 3));
  const SimulationResult sim = simulateTrace(layout, trace);

  const ActuationMatrix matrix(layout, sim);
  const PinAssignment pins = assignPins(matrix);
  validatePins(matrix, pins);  // every group conflict-free

  const std::size_t direct =
      matrix.electrodeCount() - pins.idleElectrodes;
  EXPECT_GT(pins.pinCount(), 0u);
  EXPECT_LT(pins.pinCount(), direct);
  // Every constrained electrode is in exactly one group.
  std::size_t grouped = 0;
  for (const PinGroup& g : pins.pins) grouped += g.electrodes.size();
  EXPECT_EQ(grouped, direct);
}

TEST(PinMapper, CompatibilityIsSymmetric) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({2, 1, 1, 1, 1, 1, 9}));
  const TaskForest forest(graph, 4);
  const ExecutionTrace trace =
      executor.run(forest, sched::scheduleSRS(forest, 3));
  const ActuationMatrix matrix(layout, simulateTrace(layout, trace));
  for (std::size_t a = 0; a < matrix.electrodeCount(); a += 17) {
    for (std::size_t b = 0; b < matrix.electrodeCount(); b += 13) {
      EXPECT_EQ(matrix.compatible(a, b), matrix.compatible(b, a));
    }
  }
}

TEST(Reliability, WearReportBasics) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({2, 1, 1, 1, 1, 1, 9}));
  const TaskForest forest(graph, 20);
  const ExecutionTrace trace =
      executor.run(forest, sched::scheduleSRS(forest, 3));

  const WearReport report = analyzeWear(trace);
  EXPECT_EQ(report.total, trace.totalCost);
  EXPECT_EQ(report.peak, trace.peakActuations);
  EXPECT_GT(report.activeElectrodes, 0u);
  EXPECT_GE(report.imbalance, 0.0);
  EXPECT_LE(report.imbalance, 1.0);
  EXPECT_EQ(report.workloadsToBudget, 100'000u / report.peak);
}

TEST(Reliability, StreamingWearsLessThanRepeatedBaseline) {
  // The paper's reliability argument: fewer actuations -> longer chip life.
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({2, 1, 1, 1, 1, 1, 9}));

  const TaskForest forest(graph, 20);
  const WearReport ours =
      analyzeWear(executor.run(forest, sched::scheduleSRS(forest, 3)));

  const TaskForest pass(graph, 2);
  const ExecutionTrace perPass =
      executor.run(pass, sched::scheduleOMS(pass, 3));
  ExecutionTrace repeated = perPass;  // 10 sequential passes wear x10
  for (auto& row : repeated.actuations) {
    for (auto& count : row) count *= 10;
  }
  repeated.totalCost *= 10;
  repeated.peakActuations *= 10;
  const WearReport baseline = analyzeWear(repeated);

  EXPECT_LT(ours.total, baseline.total);
  EXPECT_GT(ours.workloadsToBudget, baseline.workloadsToBudget);
}

TEST(Reliability, RejectsBadInput) {
  ExecutionTrace empty;
  EXPECT_THROW((void)analyzeWear(empty), std::invalid_argument);
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({1, 1}));
  const TaskForest forest(graph, 2);
  const ExecutionTrace trace =
      executor.run(forest, sched::scheduleOMS(forest, 1));
  EXPECT_THROW((void)analyzeWear(trace, 0), std::invalid_argument);
}

TEST(Reliability, HeatMapRendering) {
  const Layout layout = makePcrLayout();
  Router router(layout);
  ChipExecutor executor(layout, router);
  const MixingGraph graph = buildMM(Ratio({2, 1, 1, 1, 1, 1, 9}));
  const TaskForest forest(graph, 8);
  const ExecutionTrace trace =
      executor.run(forest, sched::scheduleSRS(forest, 3));
  const std::string art = renderHeatMap(trace);
  EXPECT_NE(art.find('.'), std::string::npos);
  EXPECT_NE(art.find_first_of("123456789"), std::string::npos);
}

}  // namespace
}  // namespace dmf::chip
