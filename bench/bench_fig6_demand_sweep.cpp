// Reproduces Fig. 6: average completion time Tc and average input-droplet
// count I as the demand D grows, over the synthetic ratio corpus (L = 32,
// 2 <= N <= 12), comparing repeated baselines (RMM, RMTCS) against the
// forest engine (MM+MMS, MTCS+MMS).
//
// Paper shape: the repeated baselines grow linearly in D; the forest engine
// grows far slower — at D = 32 it uses roughly a quarter of the inputs.
#include <iostream>

#include "engine/baseline.h"
#include "engine/mdst.h"
#include "report/chart.h"
#include "report/table.h"
#include "workload/ratio_corpus.h"

int main() {
  using namespace dmf;
  using mixgraph::Algorithm;

  const auto& corpus = workload::evaluationCorpus();
  std::cout << "# Fig. 6 — average Tc and I vs demand D over "
            << corpus.size() << " ratios (L = 32)\n\n";

  std::vector<std::uint64_t> demands;
  for (std::uint64_t d = 2; d <= 32; d += 2) demands.push_back(d);

  report::Series tcSeries[4] = {{"RMM", {}},
                                {"RMTCS", {}},
                                {"MM+MMS", {}},
                                {"MTCS+MMS", {}}};
  report::Series inSeries[4] = {{"RMM", {}},
                                {"RMTCS", {}},
                                {"MM+MMS", {}},
                                {"MTCS+MMS", {}}};

  report::Table table({"D", "Tc RMM", "Tc RMTCS", "Tc MM+MMS", "Tc MTCS+MMS",
                       "I RMM", "I RMTCS", "I MM+MMS", "I MTCS+MMS"});

  for (std::uint64_t demand : demands) {
    double tc[4] = {0, 0, 0, 0};
    double in[4] = {0, 0, 0, 0};
    for (const Ratio& ratio : corpus) {
      engine::MdstEngine engine(ratio);
      const Algorithm algos[2] = {Algorithm::MM, Algorithm::MTCS};
      for (int a = 0; a < 2; ++a) {
        const engine::BaselineResult rep =
            engine::runRepeatedBaseline(engine, algos[a], demand);
        tc[a] += static_cast<double>(rep.completionTime);
        in[a] += static_cast<double>(rep.inputDroplets);

        engine::MdstRequest request;
        request.algorithm = algos[a];
        request.scheme = engine::Scheme::kMMS;
        request.demand = demand;
        const engine::MdstResult r = engine.run(request);
        tc[2 + a] += static_cast<double>(r.completionTime);
        in[2 + a] += static_cast<double>(r.inputDroplets);
      }
    }
    std::vector<std::string> row{std::to_string(demand)};
    for (int s = 0; s < 4; ++s) {
      tc[s] /= static_cast<double>(corpus.size());
      tcSeries[s].points.push_back({static_cast<double>(demand), tc[s]});
    }
    for (int s = 0; s < 4; ++s) {
      in[s] /= static_cast<double>(corpus.size());
      inSeries[s].points.push_back({static_cast<double>(demand), in[s]});
    }
    for (int s = 0; s < 4; ++s) row.push_back(report::fixed(tc[s], 1));
    for (int s = 0; s < 4; ++s) row.push_back(report::fixed(in[s], 1));
    table.addRow(std::move(row));
  }

  std::cout << table.render() << "\n";
  std::cout << "(a) average time of completion Tc vs demand D:\n"
            << report::renderChart({tcSeries[0], tcSeries[1], tcSeries[2],
                                    tcSeries[3]})
            << "\n(b) average input reactant droplets I vs demand D:\n"
            << report::renderChart({inSeries[0], inSeries[1], inSeries[2],
                                    inSeries[3]});
  return 0;
}
