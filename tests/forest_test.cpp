#include "forest/task_forest.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mixgraph/builders.h"
#include "workload/ratio_corpus.h"

namespace dmf::forest {
namespace {

using mixgraph::Algorithm;
using mixgraph::buildGraph;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

TEST(TaskForest, Figure1Demand16) {
  // Paper Fig. 1: ratio 2:1:1:1:1:1:9 (d=4), D=16 with the MM base tree:
  // |F| = 8 component trees, Tms = 19, W = 0, I[] = [2,1,1,1,1,1,9], I = 16.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 16);
  EXPECT_EQ(f.stats().componentTrees, 8u);
  EXPECT_EQ(f.stats().mixSplits, 19u);
  EXPECT_EQ(f.stats().waste, 0u);
  EXPECT_EQ(f.stats().inputTotal, 16u);
  EXPECT_EQ(f.stats().inputPerFluid,
            (std::vector<std::uint64_t>{2, 1, 1, 1, 1, 1, 9}));
}

TEST(TaskForest, Figure2Demand20) {
  // Paper Fig. 2: same ratio, D=20: |F| = 10, Tms = 27, W = 5,
  // I[] = [3,2,2,2,2,2,12], I = 25.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  EXPECT_EQ(f.stats().componentTrees, 10u);
  EXPECT_EQ(f.stats().mixSplits, 27u);
  EXPECT_EQ(f.stats().waste, 5u);
  EXPECT_EQ(f.stats().inputTotal, 25u);
  EXPECT_EQ(f.stats().inputPerFluid,
            (std::vector<std::uint64_t>{3, 2, 2, 2, 2, 2, 12}));
}

TEST(TaskForest, DemandTwoIsTheBaseTree) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 2);
  EXPECT_EQ(f.stats().componentTrees, 1u);
  EXPECT_EQ(f.stats().mixSplits, g.internalCount());
  // One pass wastes one droplet per non-root mix-split.
  EXPECT_EQ(f.stats().waste, g.internalCount() - 1);
  EXPECT_EQ(f.stats().inputTotal, g.leafCount());
}

TEST(TaskForest, FullMultipleOfScaleWastesNothing) {
  MixingGraph g = buildMM(pcr());
  for (std::uint64_t p = 1; p <= 4; ++p) {
    TaskForest f(g, p * 16);
    EXPECT_EQ(f.stats().waste, 0u) << "p=" << p;
    EXPECT_EQ(f.stats().inputTotal, p * 16) << "p=" << p;
  }
}

TEST(TaskForest, OddDemandWastesOneSurplusTarget) {
  MixingGraph g = buildMM(pcr());
  TaskForest even(g, 16);
  TaskForest odd(g, 15);
  EXPECT_EQ(odd.stats().componentTrees, 8u);
  EXPECT_EQ(odd.stats().waste, even.stats().waste + 1);
}

TEST(TaskForest, RejectsZeroDemand) {
  MixingGraph g = buildMM(pcr());
  EXPECT_THROW(TaskForest(g, 0), std::invalid_argument);
}

TEST(TaskForest, RejectsUnfinalizedGraph) {
  MixingGraph g(pcr());
  EXPECT_THROW(TaskForest(g, 2), std::invalid_argument);
}

TEST(TaskForest, LevelsMatchBaseGraph) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  for (TaskId id = 0; id < f.taskCount(); ++id) {
    EXPECT_EQ(f.task(id).level, g.node(f.task(id).node).level);
  }
  EXPECT_EQ(f.depth(), 4u);
}

TEST(TaskForest, TreeIdsAreContiguousFromOne) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  std::vector<bool> seen(f.stats().componentTrees + 1, false);
  for (TaskId id = 0; id < f.taskCount(); ++id) {
    const std::uint32_t tree = f.task(id).tree;
    ASSERT_GE(tree, 1u);
    ASSERT_LE(tree, f.stats().componentTrees);
    seen[tree] = true;
  }
  for (std::size_t t = 1; t < seen.size(); ++t) {
    EXPECT_TRUE(seen[t]) << "empty component tree " << t;
  }
}

TEST(TaskForest, InitialReadyAreExactlyTypeCTasks) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const std::vector<TaskId> ready = f.initialReady();
  EXPECT_FALSE(ready.empty());
  for (TaskId id : ready) {
    EXPECT_EQ(f.task(id).operandClass, OperandClass::kTypeC);
  }
}

TEST(TaskForest, WasteReuseLinksComponentTrees) {
  // In the D=20 forest some droplet produced inside one component tree is
  // consumed by a task of a different tree — the paper's brown nodes.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  bool crossTree = false;
  for (TaskId id = 0; id < f.taskCount(); ++id) {
    for (const auto& drop : f.task(id).out) {
      if (drop.fate == DropletFate::kConsumed &&
          f.task(drop.consumer).tree != f.task(id).tree) {
        crossTree = true;
      }
    }
  }
  EXPECT_TRUE(crossTree);
}

TEST(TaskForest, NodeDemandAtRootMatchesClassicForest) {
  MixingGraph g = buildMM(pcr());
  TaskForest classic(g, 16);
  TaskForest injected(g, {NodeDemand{g.root(), 16}});
  EXPECT_EQ(injected.demand(), classic.demand());
  EXPECT_EQ(injected.stats().mixSplits, classic.stats().mixSplits);
  EXPECT_EQ(injected.stats().inputPerFluid, classic.stats().inputPerFluid);
  EXPECT_EQ(injected.taskCount(), classic.taskCount());
}

TEST(TaskForest, InteriorNodeDemandBuildsOnlyTheSubgraph) {
  // A repair forest rooted at an interior node must cost strictly less than
  // the full forest: demand never propagates above the injected node.
  MixingGraph g = buildMM(pcr());
  TaskForest full(g, 2);
  mixgraph::NodeId interior = mixgraph::kNoNode;
  for (mixgraph::NodeId v = 0; v < g.nodeCount(); ++v) {
    if (!g.node(v).isLeaf() && v != g.root()) interior = v;
  }
  ASSERT_NE(interior, mixgraph::kNoNode);
  TaskForest repair(g, {NodeDemand{interior, 2}});
  EXPECT_EQ(repair.demand(), 2u);
  EXPECT_EQ(repair.demandNodes(), std::vector<mixgraph::NodeId>{interior});
  EXPECT_LT(repair.stats().mixSplits, full.stats().mixSplits);
  EXPECT_LT(repair.stats().inputTotal, full.stats().inputTotal);
  EXPECT_EQ(repair.stats().inputTotal,
            repair.stats().targets + repair.stats().waste);
}

TEST(TaskForest, DuplicateNodeDemandsMergeAtFirstOccurrence) {
  MixingGraph g = buildMM(pcr());
  const mixgraph::NodeId root = g.root();
  TaskForest merged(g, {NodeDemand{root, 3}, NodeDemand{root, 5}});
  TaskForest direct(g, {NodeDemand{root, 8}});
  EXPECT_EQ(merged.demand(), 8u);
  EXPECT_EQ(merged.taskCount(), direct.taskCount());
  EXPECT_EQ(merged.demandNodes().size(), 1u);
}

TEST(TaskForest, NodeDemandRejectsBadInjectionPoints) {
  MixingGraph g = buildMM(pcr());
  mixgraph::NodeId leaf = mixgraph::kNoNode;
  for (mixgraph::NodeId v = 0; v < g.nodeCount(); ++v) {
    if (g.node(v).isLeaf()) leaf = v;
  }
  ASSERT_NE(leaf, mixgraph::kNoNode);
  EXPECT_THROW(TaskForest(g, std::vector<NodeDemand>{}),
               std::invalid_argument);
  EXPECT_THROW(TaskForest(g, {NodeDemand{g.root(), 0}}),
               std::invalid_argument);
  EXPECT_THROW(TaskForest(g, {NodeDemand{leaf, 1}}), std::invalid_argument);
  EXPECT_THROW(TaskForest(
                   g, {NodeDemand{static_cast<mixgraph::NodeId>(
                                      g.nodeCount()),
                                  1}}),
               std::invalid_argument);
}

TEST(TaskForest, MtcsDagForestConservesDroplets) {
  MixingGraph g = buildGraph(Ratio({25, 5, 5, 5, 5, 13, 13, 25, 1, 159}),
                             Algorithm::MTCS);
  TaskForest f(g, 32);
  EXPECT_EQ(f.stats().inputTotal, f.stats().targets + f.stats().waste);
}

// Property sweep over the corpus: droplet conservation I = D + W and
// demand-monotone input usage for every algorithm.
struct ForestSweepParam {
  Algorithm algorithm;
  std::uint64_t demand;
};

class ForestCorpusTest
    : public ::testing::TestWithParam<ForestSweepParam> {};

TEST_P(ForestCorpusTest, ConservationAndSanity) {
  const auto& corpus = workload::evaluationCorpus();
  for (std::size_t i = 0; i < corpus.size(); i += 13) {
    const Ratio& r = corpus[i];
    MixingGraph g = buildGraph(r, GetParam().algorithm);
    TaskForest f(g, GetParam().demand);
    const ForestStats& s = f.stats();
    EXPECT_EQ(s.inputTotal, s.targets + s.waste) << r.toString();
    EXPECT_EQ(s.componentTrees, (GetParam().demand + 1) / 2) << r.toString();
    EXPECT_GE(s.mixSplits, s.componentTrees) << r.toString();
    std::uint64_t perFluid = 0;
    for (std::uint64_t n : s.inputPerFluid) perFluid += n;
    EXPECT_EQ(perFluid, s.inputTotal) << r.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForestCorpusTest,
    ::testing::Values(ForestSweepParam{Algorithm::MM, 2},
                      ForestSweepParam{Algorithm::MM, 7},
                      ForestSweepParam{Algorithm::MM, 32},
                      ForestSweepParam{Algorithm::RMA, 32},
                      ForestSweepParam{Algorithm::MTCS, 32},
                      ForestSweepParam{Algorithm::RSM, 32}),
    [](const auto& paramInfo) {
      return std::string(mixgraph::algorithmName(paramInfo.param.algorithm)) +
             "_D" + std::to_string(paramInfo.param.demand);
    });

}  // namespace
}  // namespace dmf::forest
