// RSM builder (reconstruction): MM bit-decomposition with a leaf-first
// pairing order, combining fresh reagent droplets with each other as early
// as possible at every level.
#include <stdexcept>
#include <vector>

#include "mixgraph/builders.h"

namespace dmf::mixgraph {

MixingGraph buildRSM(const Ratio& ratio) {
  MixingGraph graph(ratio);
  const unsigned d = ratio.accuracy();

  std::vector<NodeId> carry;
  for (unsigned j = 0; j < d; ++j) {
    // Unlike MM (mixes first, then leaves), put this level's fresh reagent
    // leaves at the front of the pairing sequence.
    std::vector<NodeId> order;
    for (std::size_t fluid = 0; fluid < ratio.fluidCount(); ++fluid) {
      if ((ratio.part(fluid) >> j) & 1u) {
        order.push_back(graph.addLeaf(fluid));
      }
    }
    order.insert(order.end(), carry.begin(), carry.end());
    if (order.size() % 2 != 0) {
      throw std::logic_error("buildRSM: odd node count at level " +
                             std::to_string(j));
    }
    std::vector<NodeId> next;
    next.reserve(order.size() / 2);
    for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
      next.push_back(graph.addMix(order[i], order[i + 1]));
    }
    carry = std::move(next);
  }
  if (carry.size() != 1) {
    throw std::logic_error("buildRSM: did not converge to a single root");
  }
  graph.finalize(carry.front());
  return graph;
}

}  // namespace dmf::mixgraph
