// Fixed-width text tables and CSV emission for the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dmf::report {

/// A simple column-aligned table builder.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers
  /// (throws std::invalid_argument otherwise).
  void addRow(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

  /// Renders with padded columns and a header separator.
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (no escaping needed for the numeric content we emit;
  /// cells containing commas or quotes are quoted defensively anyway).
  [[nodiscard]] std::string toCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fixed(double value, int digits = 1);

}  // namespace dmf::report
