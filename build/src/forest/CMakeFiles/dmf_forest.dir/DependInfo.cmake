
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forest/task_forest.cpp" "src/forest/CMakeFiles/dmf_forest.dir/task_forest.cpp.o" "gcc" "src/forest/CMakeFiles/dmf_forest.dir/task_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mixgraph/CMakeFiles/dmf_mixgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/dmf/CMakeFiles/dmf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
