// Electrode-wear analysis. Excessive actuation degrades the dielectric and
// shortens chip lifetime (the paper's section 5 motivation for minimizing
// actuations); this module turns an actuation heat-map into wear statistics
// and a relative lifetime estimate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/executor.h"

namespace dmf::chip {

/// Wear statistics of one executed workload.
struct WearReport {
  /// Total electrode actuations.
  std::uint64_t total = 0;
  /// Electrodes actuated at least once.
  std::size_t activeElectrodes = 0;
  /// Heaviest single electrode.
  unsigned peak = 0;
  /// Mean actuations over active electrodes.
  double meanActive = 0.0;
  /// Normalized wear imbalance in [0, 1]: 0 = perfectly levelled across
  /// active electrodes, values near 1 = one electrode takes all the wear
  /// (computed as the Gini coefficient of active-electrode actuations).
  double imbalance = 0.0;
  /// Workloads of this kind the chip survives before the heaviest electrode
  /// reaches `budget` actuations (see estimateLifetime).
  std::uint64_t workloadsToBudget = 0;
};

/// Analyzes a trace's heat-map. `actuationBudget` is the per-electrode
/// actuation count the dielectric tolerates (device-dependent; defaults to a
/// conservative 10^5). Throws std::invalid_argument on an empty heat-map or
/// a zero budget.
[[nodiscard]] WearReport analyzeWear(const ExecutionTrace& trace,
                                     std::uint64_t actuationBudget = 100'000);

/// Renders the heat-map as ASCII art (digits = actuation decile, '.' = never
/// actuated).
[[nodiscard]] std::string renderHeatMap(const ExecutionTrace& trace);

}  // namespace dmf::chip
