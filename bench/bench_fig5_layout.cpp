// Reproduces Fig. 5: the PCR master-mix chip — layout, droplet-transport
// cost matrix, and total electrode actuations of the streaming engine versus
// repeated single-pass mixing (paper: 386 vs 980 for D = 20).
#include <iostream>

#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/placer.h"
#include "chip/router.h"
#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "protocols/protocols.h"
#include "report/table.h"
#include "sched/schedulers.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("fig5_layout");
  using namespace dmf;

  const Ratio ratio = protocols::pcrMasterMixRatio();
  const mixgraph::MixingGraph graph = mixgraph::buildMM(ratio);

  chip::Layout layout = chip::makePcrLayout();
  std::cout << "# Fig. 5 — PCR master-mix chip (7 reservoirs, 3 mixers, "
               "5 storage, 2 waste)\n\n"
            << layout.render() << "\n";

  chip::Router router(layout);
  std::cout << "Droplet-transportation cost matrix (electrodes):\n"
            << router.renderCostMatrix() << "\n";

  chip::ChipExecutor executor(layout, router);

  const forest::TaskForest forest(graph, 20);
  const sched::Schedule srs = sched::scheduleSRS(forest, 3);
  const chip::ExecutionTrace ours = executor.run(forest, srs);

  const forest::TaskForest pass(graph, 2);
  const sched::Schedule oms = sched::scheduleOMS(pass, 3);
  const chip::ExecutionTrace perPass = executor.run(pass, oms);

  // Annealed placement driven by the forest's droplet traffic.
  const chip::FlowMatrix flow =
      chip::flowFromTrace(ours, layout.moduleCount());
  chip::AnnealOptions options;
  options.iterations = 30000;
  const chip::Layout annealed = chip::annealPlacement(layout, flow, options);
  chip::Router annealedRouter(annealed);
  chip::ChipExecutor annealedExecutor(annealed, annealedRouter);
  const chip::ExecutionTrace oursAnnealed = annealedExecutor.run(forest, srs);

  report::Table table({"configuration", "electrode actuations",
                       "peak per-electrode", "paper"});
  table.addRow({"forest + SRS (D=20)", std::to_string(ours.totalCost),
                std::to_string(ours.peakActuations), "386"});
  table.addRow({"forest + SRS, annealed placement",
                std::to_string(oursAnnealed.totalCost),
                std::to_string(oursAnnealed.peakActuations), "-"});
  table.addRow({"repeated MM x 10 passes",
                std::to_string(perPass.totalCost * 10),
                std::to_string(perPass.peakActuations * 10), "980"});
  std::cout << table.render() << "\n";

  const double factor = static_cast<double>(perPass.totalCost * 10) /
                        static_cast<double>(ours.totalCost);
  std::cout << "Streaming engine needs " << report::fixed(factor, 2)
            << "x fewer actuations than the repeated baseline (paper: "
            << report::fixed(980.0 / 386.0, 2) << "x).\n";
  return 0;
}
