file(REMOVE_RECURSE
  "libdmf_protocols.a"
)
