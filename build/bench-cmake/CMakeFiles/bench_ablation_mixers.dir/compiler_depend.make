# Empty compiler generated dependencies file for bench_ablation_mixers.
# This may be replaced when dependencies are built.
