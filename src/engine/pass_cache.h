// Memoized, thread-safe pass evaluation for the streaming planners.
//
// Evaluating one candidate per-pass demand D' means building the D'-droplet
// mixing forest, scheduling it and counting storage — the hottest path of a
// demand sweep, and one that both planners used to repeat for the same D'
// over and over. PassCache memoizes those results behind a shared lock,
// keyed on (algorithm, scheme, mixers, demand), and keeps hit/miss plus
// per-stage timing counters for reporting.
//
// A PassCache holds results for ONE target ratio: callers key caches per
// MdstEngine (the key does not include the ratio). Sharing a cache between
// engines with different ratios silently returns wrong passes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "engine/streaming.h"
#include "obs/metrics.h"

namespace dmf::engine {

/// Cache key: everything evaluatePass depends on besides the engine's ratio.
struct PassKey {
  mixgraph::Algorithm algorithm = mixgraph::Algorithm::MM;
  Scheme scheme = Scheme::kSRS;
  unsigned mixers = 0;
  std::uint64_t demand = 0;

  [[nodiscard]] bool operator==(const PassKey&) const = default;
};

struct PassKeyHash {
  [[nodiscard]] std::size_t operator()(const PassKey& key) const noexcept;
};

/// Counters a cache accumulates over its lifetime. Hit/miss counts are
/// deterministic under serial use; under concurrent use two threads racing on
/// the same key may both record a miss (both compute, the value is identical).
struct PassCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Per-stage wall time of all cache misses, in nanoseconds.
  std::uint64_t buildNanos = 0;     ///< TaskForest construction
  std::uint64_t scheduleNanos = 0;  ///< scheduler run
  std::uint64_t storageNanos = 0;   ///< Algorithm 3 storage counting

  [[nodiscard]] std::uint64_t evaluations() const { return hits + misses; }
  [[nodiscard]] std::uint64_t totalNanos() const {
    return buildNanos + scheduleNanos + storageNanos;
  }
};

/// Thread-safe sparse memo of StreamingPass results for one engine/ratio.
class PassCache {
 public:
  /// Evaluates one pass of `demand` droplets (forest -> schedule -> storage),
  /// memoized. Safe to call concurrently; `engine` must outlive the call and
  /// be the same engine for every call on this cache.
  [[nodiscard]] StreamingPass evaluate(const MdstEngine& engine,
                                       mixgraph::Algorithm algorithm,
                                       Scheme scheme, unsigned mixers,
                                       std::uint64_t demand);

  /// Batched evaluation of a whole demand ladder in one sweep. Results are
  /// returned in `demands` order and are element-wise identical to calling
  /// evaluate() once per demand; only the cost profile differs:
  ///
  ///  * one shared-lock lookup prepass resolves every hit (the scalar path
  ///    takes one lock round-trip per demand);
  ///  * the base mixing graph is resolved once for all misses, hoisting the
  ///    engine's lazy-cache mutex out of the per-demand loop;
  ///  * misses fan out over `pool` when it has workers to spare, and all
  ///    freshly computed entries publish under a single exclusive section,
  ///    in ascending ladder order.
  ///
  /// Duplicate demands in the ladder are computed at most twice (once per
  /// duplicate miss, same value) — harmless, like the racing-miss case of
  /// evaluate(). `pool` may be null (serial). Must not be called from inside
  /// a task already running on `pool`.
  [[nodiscard]] std::vector<StreamingPass> evaluateLadder(
      const MdstEngine& engine, mixgraph::Algorithm algorithm, Scheme scheme,
      unsigned mixers, const std::vector<std::uint64_t>& demands,
      PassPool* pool = nullptr);

  /// Non-computing lookup.
  [[nodiscard]] std::optional<StreamingPass> lookup(const PassKey& key) const;

  /// Entries currently memoized.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of the counters.
  [[nodiscard]] PassCacheStats stats() const;

  /// Drops all entries and zeroes the counters.
  void clear();

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<PassKey, StreamingPass, PassKeyHash> entries_;
  // obs instruments used standalone; stats() is the thin adapter that
  // snapshots them into the legacy PassCacheStats shape. When a global
  // obs::Scope is active, evaluate() additionally mirrors these counts into
  // the session registry (engine.pass_cache.*).
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter buildNanos_;
  obs::Counter scheduleNanos_;
  obs::Counter storageNanos_;
};

/// Uncached single-pass evaluation (what the cache runs on a miss): builds
/// the demand-droplet forest, schedules it with `scheme`, counts storage.
/// `stats`, when non-null, receives the per-stage wall times of this call.
[[nodiscard]] StreamingPass evaluatePass(const MdstEngine& engine,
                                         mixgraph::Algorithm algorithm,
                                         Scheme scheme, unsigned mixers,
                                         std::uint64_t demand,
                                         PassCacheStats* stageNanos = nullptr);

/// As evaluatePass, but on an already-resolved base graph — the inner loop of
/// the batched ladder path, where the graph is fetched once per sweep instead
/// of once per demand. evaluatePass(engine, alg, ...) is exactly
/// evaluatePassOnGraph(engine.baseGraph(alg), ...).
[[nodiscard]] StreamingPass evaluatePassOnGraph(
    const mixgraph::MixingGraph& graph, Scheme scheme, unsigned mixers,
    std::uint64_t demand, PassCacheStats* stageNanos = nullptr);

/// Convenience wrapper over PassCache::evaluateLadder.
[[nodiscard]] std::vector<StreamingPass> evaluatePassLadder(
    const MdstEngine& engine, mixgraph::Algorithm algorithm, Scheme scheme,
    unsigned mixers, const std::vector<std::uint64_t>& demands,
    PassCache& cache, PassPool* pool = nullptr);

}  // namespace dmf::engine
