#include "sched/schedulers.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "dmf/errors.h"

namespace dmf::sched {

using forest::DropletFate;
using forest::kNoTask;
using forest::OperandClass;
using forest::Task;
using forest::TaskForest;
using forest::TaskId;

namespace {

// Shared list-scheduling driver. A Policy receives the tasks that become
// schedulable at the current cycle (add) and yields at most `capacity` tasks
// to run this cycle (take). The driver handles readiness bookkeeping: a task
// becomes schedulable the cycle after its last operand is produced.
template <typename Policy>
Schedule runListScheduler(const TaskForest& forest, unsigned mixers,
                          Policy policy, std::string name) {
  if (mixers == 0) {
    throw std::invalid_argument(name + ": at least one mixer required");
  }
  Schedule s;
  s.mixerCount = mixers;
  s.scheme = std::move(name);
  s.assignments.assign(forest.taskCount(), Assignment{});
  if (forest.taskCount() == 0) return s;

  std::vector<unsigned> pending(forest.taskCount(), 0);
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const Task& t = forest.task(id);
    pending[id] = (t.depLeft != kNoTask ? 1u : 0u) +
                  (t.depRight != kNoTask ? 1u : 0u);
  }

  // arrivals[t] = tasks that become schedulable at cycle t (1-based).
  std::vector<std::vector<TaskId>> arrivals(2);
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }

  std::size_t remaining = forest.taskCount();
  std::vector<TaskId> batch;
  for (unsigned t = 1; remaining > 0; ++t) {
    if (t < arrivals.size()) {
      policy.add(arrivals[t]);
      arrivals[t].clear();
    }
    batch.clear();
    policy.take(mixers, batch);
    // Mixers are assigned in increasing index order (paper Algorithms 1/2).
    for (unsigned k = 0; k < batch.size(); ++k) {
      const TaskId id = batch[k];
      s.assignments[id] = Assignment{t, k};
      --remaining;
      for (const auto& drop : forest.task(id).out) {
        if (drop.fate != DropletFate::kConsumed) continue;
        if (--pending[drop.consumer] == 0) {
          if (arrivals.size() <= t + 1) arrivals.resize(t + 2);
          arrivals[t + 1].push_back(drop.consumer);
        }
      }
    }
    s.completionTime = batch.empty() ? s.completionTime : t;
    if (batch.empty() && remaining > 0 && t >= arrivals.size()) {
      throw std::logic_error(s.scheme + ": scheduler stalled");
    }
  }
  return s;
}

// Algorithm 1 policy: plain FIFO; same-cycle arrivals enter ordered by level
// ascending ("from level l upwards"), ties by task id.
class MmsPolicy {
 public:
  explicit MmsPolicy(const TaskForest& forest) : forest_(&forest) {}

  void add(std::vector<TaskId>& arrivals) {
    std::sort(arrivals.begin(), arrivals.end(), [this](TaskId a, TaskId b) {
      const unsigned la = forest_->task(a).level;
      const unsigned lb = forest_->task(b).level;
      return la != lb ? la < lb : a < b;
    });
    queue_.insert(queue_.end(), arrivals.begin(), arrivals.end());
  }

  void take(unsigned capacity, std::vector<TaskId>& out) {
    while (capacity-- > 0 && !queue_.empty()) {
      out.push_back(queue_.front());
      queue_.pop_front();
    }
  }

 private:
  const TaskForest* forest_;
  std::deque<TaskId> queue_;
};

// Literal Algorithm 2 policy: Q_int (Type-A/B, highest level first) is served
// before Q_leaf (Type-C, lowest level first); when |Q_int| >= Mc no Type-C
// node runs this cycle, matching the paper's dequeue formula
// max(0, min(Mc - |Q_int|, |Q_leaf|)).
class SrsGreedyPolicy {
 public:
  explicit SrsGreedyPolicy(const TaskForest& forest) : forest_(&forest) {}

  void add(std::vector<TaskId>& arrivals) {
    for (TaskId id : arrivals) {
      const Task& t = forest_->task(id);
      if (t.operandClass == OperandClass::kTypeC) {
        qLeaf_.insert({static_cast<int>(t.level), id});
      } else {
        qInt_.insert({-static_cast<int>(t.level), id});
      }
    }
  }

  void take(unsigned capacity, std::vector<TaskId>& out) {
    const std::size_t intNodes = qInt_.size();
    for (unsigned k = 0; k < capacity && !qInt_.empty(); ++k) {
      out.push_back(qInt_.begin()->second);
      qInt_.erase(qInt_.begin());
    }
    if (capacity > intNodes) {
      unsigned leafBudget = capacity - static_cast<unsigned>(intNodes);
      while (leafBudget-- > 0 && !qLeaf_.empty()) {
        out.push_back(qLeaf_.begin()->second);
        qLeaf_.erase(qLeaf_.begin());
      }
    }
  }

 private:
  const TaskForest* forest_;
  std::set<std::pair<int, TaskId>> qInt_;
  std::set<std::pair<int, TaskId>> qLeaf_;
};

// Hu / critical-path policy: longest path to an emitted droplet first.
class OmsPolicy {
 public:
  explicit OmsPolicy(std::vector<unsigned> colevel)
      : colevel_(std::move(colevel)) {}

  void add(std::vector<TaskId>& arrivals) {
    for (TaskId id : arrivals) {
      queue_.insert({-static_cast<int>(colevel_[id]), id});
    }
  }

  void take(unsigned capacity, std::vector<TaskId>& out) {
    while (capacity-- > 0 && !queue_.empty()) {
      out.push_back(queue_.begin()->second);
      queue_.erase(queue_.begin());
    }
  }

 private:
  std::vector<unsigned> colevel_;
  std::set<std::pair<int, TaskId>> queue_;
};

// colevel(v) = length of the longest dependency chain starting at v
// (inclusive). Task ids are level-ascending, so consumers always have larger
// ids and one descending sweep suffices.
std::vector<unsigned> computeColevels(const TaskForest& forest) {
  std::vector<unsigned> colevel(forest.taskCount(), 1);
  for (TaskId id = static_cast<TaskId>(forest.taskCount()); id-- > 0;) {
    for (const auto& drop : forest.task(id).out) {
      if (drop.fate == DropletFate::kConsumed) {
        colevel[id] = std::max(colevel[id], colevel[drop.consumer] + 1);
      }
    }
  }
  return colevel;
}

}  // namespace

Schedule scheduleMMS(const TaskForest& forest, unsigned mixers) {
  return runListScheduler(forest, mixers, MmsPolicy(forest), "MMS");
}

Schedule scheduleSRSGreedy(const TaskForest& forest, unsigned mixers) {
  return runListScheduler(forest, mixers, SrsGreedyPolicy(forest),
                          "SRS-greedy");
}

namespace {

// Latest-feasible (just-in-time) schedule: list-schedule the reversed
// precedence DAG, then mirror the result in time, so droplets are produced
// as late as the mixer bank allows.
Schedule scheduleJustInTime(const TaskForest& forest, unsigned mixers) {
  Schedule s;
  s.mixerCount = mixers;
  s.scheme = "SRS";
  s.assignments.assign(forest.taskCount(), Assignment{});
  if (forest.taskCount() == 0) return s;

  // Storage shrinks when droplets are produced just before they are
  // consumed. SRS therefore schedules every mix-split as LATE as the mixer
  // bank allows: list-schedule the reversed precedence DAG (consumers release
  // their producers), then mirror the result in time. Stalling a mix-split
  // never parks extra droplets beyond its own operands, and Type-C nodes —
  // whose stall is free (section 4.2.2) — end up deferred the most: they sit
  // at the reversed DAG's deepest positions. Mixers idle rather than dispense
  // early, the behaviour the paper attributes to SRS.
  const std::size_t n = forest.taskCount();

  // Reverse chain length: longest path from a task back through its operand
  // producers (its successors in the reversed DAG).
  std::vector<unsigned> revColevel(n, 1);
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = forest.task(id);
    for (TaskId dep : {t.depLeft, t.depRight}) {
      if (dep != kNoTask) {
        revColevel[id] = std::max(revColevel[id], revColevel[dep] + 1);
      }
    }
  }

  // Reverse readiness: a task is reverse-ready once every consumer of its
  // droplets is reverse-scheduled. Root instances (no consumers) seed it.
  std::vector<unsigned> pending(n, 0);
  for (TaskId id = 0; id < n; ++id) {
    for (const auto& drop : forest.task(id).out) {
      if (drop.fate == DropletFate::kConsumed) ++pending[id];
    }
  }

  std::vector<std::vector<TaskId>> arrivals(2);
  for (TaskId id = 0; id < n; ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }

  // Priority: longest reverse chain first (Hu on the reversed DAG), breaking
  // ties in favour of Type-C nodes (defer them furthest in forward time),
  // then by task id for determinism.
  auto key = [&](TaskId id) {
    const bool typeC =
        forest.task(id).operandClass == OperandClass::kTypeC;
    return std::tuple<int, int, TaskId>(-static_cast<int>(revColevel[id]),
                                        typeC ? 0 : 1, id);
  };
  std::set<std::tuple<int, int, TaskId>> ready;

  std::vector<unsigned> revCycle(n, 0);
  std::size_t remaining = n;
  unsigned span = 0;
  for (unsigned t = 1; remaining > 0; ++t) {
    if (t < arrivals.size()) {
      for (TaskId id : arrivals[t]) ready.insert(key(id));
      arrivals[t].clear();
    }
    for (unsigned k = 0; k < mixers && !ready.empty(); ++k) {
      const TaskId id = std::get<2>(*ready.begin());
      ready.erase(ready.begin());
      revCycle[id] = t;
      span = std::max(span, t);
      --remaining;
      const Task& task = forest.task(id);
      for (TaskId dep : {task.depLeft, task.depRight}) {
        if (dep == kNoTask) continue;
        if (--pending[dep] == 0) {
          if (arrivals.size() <= t + 1) arrivals.resize(t + 2);
          arrivals[t + 1].push_back(dep);
        }
      }
    }
    if (ready.empty() && remaining > 0 && t >= arrivals.size()) {
      throw std::logic_error("SRS: reverse pass stalled");
    }
  }

  // Mirror into forward time and hand out mixer indices per cycle.
  std::vector<unsigned> used(span + 2, 0);
  for (TaskId id = 0; id < n; ++id) {
    const unsigned cycle = span + 1 - revCycle[id];
    s.assignments[id] = Assignment{cycle, used[cycle]++};
  }
  s.completionTime = span;
  return s;
}

}  // namespace

namespace {

// One storage-capped attempt with a fixed production-lookahead window.
// Returns a schedule respecting the cap, or nullopt when this window stalls.
std::optional<Schedule> tryStorageCapped(const TaskForest& forest,
                                         unsigned mixers, unsigned storageCap,
                                         unsigned window,
                                         const Schedule& jit) {
  Schedule s;
  s.mixerCount = mixers;
  s.scheme = "capped";
  s.assignments.assign(forest.taskCount(), Assignment{});
  if (forest.taskCount() == 0) return s;
  const std::size_t n = forest.taskCount();

  // Per-task inventory delta: +1 for every output droplet that some other
  // mix-split will consume, -1 for every operand taken out of storage.
  auto consumableOuts = [&](TaskId id) {
    unsigned c = 0;
    for (const auto& drop : forest.task(id).out) {
      c += drop.fate == DropletFate::kConsumed ? 1u : 0u;
    }
    return c;
  };
  auto storedOperands = [&](TaskId id) {
    const Task& t = forest.task(id);
    return (t.depLeft != kNoTask ? 1u : 0u) +
           (t.depRight != kNoTask ? 1u : 0u);
  };

  std::vector<unsigned> pending(n, 0);
  for (TaskId id = 0; id < n; ++id) pending[id] = storedOperands(id);

  std::vector<std::vector<TaskId>> arrivals(2);
  for (TaskId id = 0; id < n; ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }

  // Ready tasks in just-in-time order: the latest-feasible schedule's cycle
  // assignment pipelines production right before consumption, so following
  // it under the cap keeps partner droplets adjacent. Producers must go in
  // strictly this order — letting a later dispense mix jump a stalled one
  // fills the storage with droplets whose partners can then never be made
  // (the classic storage deadlock).
  auto key = [&](TaskId id) {
    return std::pair<unsigned, TaskId>(jit.assignments[id].cycle, id);
  };
  std::set<std::pair<unsigned, TaskId>> ready;

  // `carried` counts consumable droplets produced in earlier cycles and not
  // yet consumed. The droplets this cycle's batch does not consume are
  // exactly the ones parked in storage during the cycle (Algorithm 3), so
  // the hard constraint per cycle is: carried - consumedNow <= cap. Fresh
  // production only becomes storage next cycle; it is admitted up to an
  // optimism window of what the mixer bank could consume back in one cycle.
  //
  // All pressure tests below run in signed 64-bit arithmetic: the inventory
  // invariant (a cycle never consumes more droplets than it carried in) is
  // expected to hold for every forest the TaskForest constructors can build,
  // but an unsigned wrap here would not fail loudly — it would silently turn
  // the test into always-true/always-false and admit cap-violating batches.
  // The invariant itself is checked at the end of every cycle.
  std::int64_t carried = 0;
  const std::int64_t budget =
      static_cast<std::int64_t>(storageCap) + window;
  std::size_t remaining = n;
  std::vector<TaskId> batch;
  for (unsigned t = 1; remaining > 0; ++t) {
    if (t < arrivals.size()) {
      for (TaskId id : arrivals[t]) ready.insert(key(id));
      arrivals[t].clear();
    }

    batch.clear();
    std::int64_t consumedNow = 0;
    std::int64_t producedNow = 0;
    // Pass 1 — consumers of stored droplets (the Q_int of Algorithm 2), in
    // just-in-time order. Emptying storage takes precedence over everything.
    for (auto it = ready.begin();
         it != ready.end() && batch.size() < mixers;) {
      const TaskId id = it->second;
      const std::int64_t cons = storedOperands(id);
      if (cons == 0) {
        ++it;
        continue;
      }
      const std::int64_t prod = consumableOuts(id);
      if (prod > cons &&
          carried - consumedNow - cons + producedNow + prod > budget) {
        ++it;  // net-producing consumer under pressure: stall it
        continue;
      }
      consumedNow += cons;
      producedNow += prod;
      batch.push_back(id);
      it = ready.erase(it);
    }
    // Pass 2 — fresh dispense mixes (Q_leaf), strictly in just-in-time
    // order: letting a later dispense mix jump a stalled one fills the
    // storage with droplets whose partners can then never be made (the
    // classic storage deadlock).
    for (auto it = ready.begin();
         it != ready.end() && batch.size() < mixers;) {
      const TaskId id = it->second;
      if (storedOperands(id) != 0) {
        ++it;
        continue;
      }
      const std::int64_t prod = consumableOuts(id);
      if (carried - consumedNow + producedNow + prod > budget) {
        break;  // strict order among producers
      }
      producedNow += prod;
      batch.push_back(id);
      it = ready.erase(it);
    }

    if (consumedNow > carried) {
      // A cycle consumed more droplets than it carried in — the readiness
      // bookkeeping above must make this impossible; wrapping silently in
      // unsigned arithmetic was the pre-signed failure mode.
      throw std::logic_error(
          "tryStorageCapped: cycle consumed more droplets than carried (" +
          std::to_string(consumedNow) + " > " + std::to_string(carried) +
          ")");
    }
    if (carried - consumedNow > static_cast<std::int64_t>(storageCap)) {
      return std::nullopt;
    }

    for (unsigned k = 0; k < batch.size(); ++k) {
      const TaskId id = batch[k];
      s.assignments[id] = Assignment{t, k};
      --remaining;
      for (const auto& drop : forest.task(id).out) {
        if (drop.fate != DropletFate::kConsumed) continue;
        if (--pending[drop.consumer] == 0) {
          if (arrivals.size() <= t + 1) arrivals.resize(t + 2);
          arrivals[t + 1].push_back(drop.consumer);
        }
      }
    }
    carried = carried - consumedNow + producedNow;
    s.completionTime = batch.empty() ? s.completionTime : t;
    if (batch.empty() && remaining > 0 && t >= arrivals.size()) {
      return std::nullopt;
    }
  }
  return s;
}

}  // namespace

Schedule scheduleStorageCapped(const TaskForest& forest, unsigned mixers,
                               unsigned storageCap) {
  if (mixers == 0) {
    throw std::invalid_argument(
        "scheduleStorageCapped: at least one mixer required");
  }
  if (forest.taskCount() == 0) {
    Schedule s;
    s.mixerCount = mixers;
    s.scheme = "capped";
    return s;
  }
  // The production-lookahead window trades deadlock safety against mixer
  // utilization and no single value dominates, so a small deterministic
  // ladder is tried and the fastest completing schedule wins.
  const Schedule jit = scheduleJustInTime(forest, mixers);
  std::optional<Schedule> best;
  for (unsigned window : {0u, 1u, 2u, 3u, mixers, 2 * mixers}) {
    std::optional<Schedule> attempt =
        tryStorageCapped(forest, mixers, storageCap, window, jit);
    if (attempt.has_value() &&
        (!best.has_value() ||
         attempt->completionTime < best->completionTime)) {
      best = std::move(attempt);
    }
  }
  if (!best.has_value()) {
    throw InfeasibleError(
        "scheduleStorageCapped: storage cap of " +
        std::to_string(storageCap) + " units is too tight to make progress");
  }
  return *best;
}

Schedule scheduleSRS(const TaskForest& forest, unsigned mixers) {
  if (mixers == 0) {
    throw std::invalid_argument("SRS: at least one mixer required");
  }
  Schedule best = scheduleJustInTime(forest, mixers);
  best.scheme = "SRS";
  if (forest.taskCount() == 0) return best;
  unsigned bestStorage = countStorage(forest, best);

  // The time budget: a bounded slowdown over the fastest candidate (the
  // paper reports SRS costs ~5% completion time on average).
  unsigned fastest = best.completionTime;
  auto adopt = [&](Schedule candidate) {
    fastest = std::min(fastest, candidate.completionTime);
    const unsigned budget = fastest + std::max(3u, fastest / 4);
    if (candidate.completionTime > budget) return;
    const unsigned storage = countStorage(forest, candidate);
    if (storage < bestStorage ||
        (storage == bestStorage &&
         candidate.completionTime < best.completionTime)) {
      candidate.scheme = "SRS";
      best = std::move(candidate);
      bestStorage = storage;
    }
  };

  // Candidate pool: MMS (SRS must never store more than it, section 4.2.2)
  // and the verbatim two-queue Algorithm 2, which is strong on wide forests.
  adopt(scheduleMMS(forest, mixers));
  adopt(scheduleSRSGreedy(forest, mixers));

  // Refinement: storage-capped scheduling seeded with the current best
  // schedule's order, scanning every cap below it (feasibility is not
  // monotone in the cap, so no bisection).
  const unsigned budget = fastest + std::max(3u, fastest / 4);
  const Schedule seed = best;
  for (unsigned cap = bestStorage; cap-- > 0;) {
    std::optional<Schedule> candidate;
    for (unsigned window : {0u, 1u, 2u, 3u, mixers, 2 * mixers}) {
      std::optional<Schedule> attempt =
          tryStorageCapped(forest, mixers, cap, window, seed);
      if (attempt.has_value() && attempt->completionTime <= budget &&
          (!candidate.has_value() ||
           attempt->completionTime < candidate->completionTime)) {
        candidate = std::move(attempt);
      }
    }
    if (candidate.has_value()) {
      adopt(std::move(*candidate));
    }
  }
  return best;
}

Schedule scheduleOMS(const TaskForest& forest, unsigned mixers) {
  return runListScheduler(forest, mixers, OmsPolicy(computeColevels(forest)),
                          "OMS");
}

unsigned criticalPathLength(const TaskForest& forest) {
  const std::vector<unsigned> colevel = computeColevels(forest);
  return colevel.empty() ? 0
                         : *std::max_element(colevel.begin(), colevel.end());
}

unsigned minimumMixers(const TaskForest& forest) {
  const unsigned cp = criticalPathLength(forest);
  if (cp == 0) return 1;  // empty forest: any bank completes instantly
  // No bank smaller than ceil(taskCount / cp) can reach the critical path
  // (completion >= ceil(taskCount / mixers) > cp below it), so the scan
  // starts at the width lower bound instead of 1.
  const auto n = static_cast<unsigned>(forest.taskCount());
  for (unsigned m = std::max(1u, (n + cp - 1) / cp);; ++m) {
    // Runaway check first: a failure throws instead of paying one extra
    // wasted O(n log n) scheduling pass beyond the taskCount ceiling.
    if (m > n) {
      throw std::logic_error("minimumMixers: failed to reach critical path");
    }
    if (scheduleOMS(forest, m).completionTime == cp) {
      return m;
    }
  }
}

}  // namespace dmf::sched
