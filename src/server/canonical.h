// Canonicalized plan requests — the cache key of the plan-as-a-service
// daemon (DESIGN.md §13).
//
// Two wire requests that describe the same preparation must hit one cache
// entry: ratios are reduced to normal form through dmf::DyadicFraction
// (2:4:2 and 1:2:1 are the same mixture), every defaulted field is made
// explicit, and the canonical key is a versioned, human-readable string of
// the full request tuple (ratio normal form, algorithm, scheme, mixers Mc,
// storage cap, demand, optimize). The key is the *entire* identity: caches
// compare keys, never bare hashes of them.
#pragma once

#include <cstdint>
#include <string>

#include "dmf/ratio.h"
#include "engine/mdst.h"
#include "mixgraph/builders.h"
#include "report/json.h"

namespace dmf::server {

/// A plan request as received on the wire (one line-delimited JSON object).
///
/// Required fields: "ratio" ("a1:a2:...:aN") and "demand" (>= 1).
/// Optional: "storage" (cap, default 4), "algo" (MM|RMA|MTCS|RSM, default
/// MM), "scheme" (MMS|SRS|OMS, default SRS), "mixers" (0 = engine default),
/// "optimize" (bool, default false — exhaustive pass-size search).
struct PlanRequest {
  Ratio ratio{1, 1};
  mixgraph::Algorithm algorithm = mixgraph::Algorithm::MM;
  engine::Scheme scheme = engine::Scheme::kSRS;
  std::uint64_t demand = 2;
  unsigned storageCap = 4;
  unsigned mixers = 0;
  bool optimize = false;

  /// Parses and validates a request object. Throws std::invalid_argument
  /// with a pointed message on any missing, mistyped, or out-of-range
  /// field (the service turns that into an error response, never a crash).
  [[nodiscard]] static PlanRequest fromJson(const report::Json& json);
};

/// The same request with the ratio in reduced normal form. Planning always
/// runs on the canonical form, so every equivalent wire request receives a
/// byte-identical response.
struct CanonicalRequest {
  Ratio ratio{1, 1};
  mixgraph::Algorithm algorithm = mixgraph::Algorithm::MM;
  engine::Scheme scheme = engine::Scheme::kSRS;
  std::uint64_t demand = 2;
  unsigned storageCap = 4;
  unsigned mixers = 0;
  bool optimize = false;

  /// The cache key: "v1|ratio=...|algo=...|scheme=...|d=...|cap=...|mc=...
  /// |opt=...". Equal keys iff equal canonical requests.
  [[nodiscard]] std::string key() const;
};

/// Reduces the ratio (via its DyadicFraction concentrations) and fixes the
/// field tuple — the only path from a wire request to a cache key.
[[nodiscard]] CanonicalRequest canonicalize(const PlanRequest& request);

/// "MM"/"RMA"/"MTCS"/"RSM" -> Algorithm. Throws std::invalid_argument.
[[nodiscard]] mixgraph::Algorithm parseAlgorithm(const std::string& name);

/// "MMS"/"SRS"/"OMS" -> Scheme. Throws std::invalid_argument.
[[nodiscard]] engine::Scheme parseScheme(const std::string& name);

}  // namespace dmf::server
