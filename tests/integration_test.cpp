// End-to-end integration: every published protocol through the full
// pipeline — ratio -> graph -> forest -> schedule -> chip execution ->
// timed simulation -> wear/pin analysis — with cross-layer consistency
// checks at each hand-off.
#include <gtest/gtest.h>

#include "analysis/error_model.h"
#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/pin_mapper.h"
#include "chip/reliability.h"
#include "chip/router.h"
#include "chip/simulation.h"
#include "engine/baseline.h"
#include "engine/mdst.h"
#include "engine/streaming.h"
#include "protocols/protocols.h"
#include "sched/gantt.h"
#include "sched/schedulers.h"

namespace dmf {
namespace {

class ProtocolPipelineTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProtocolPipelineTest, FullPipelineIsConsistent) {
  const protocols::Protocol& protocol =
      protocols::publishedProtocols()[GetParam()];
  engine::MdstEngine engine(protocol.ratio);

  // Layer 1: forest.
  const forest::TaskForest forest =
      engine.buildForest(mixgraph::Algorithm::MM, 12);
  EXPECT_EQ(forest.stats().inputTotal,
            forest.stats().targets + forest.stats().waste);

  // Layer 2: schedule.
  const unsigned mixers = engine.defaultMixers();
  const sched::Schedule schedule = sched::scheduleSRS(forest, mixers);
  sched::validateOrThrow(forest, schedule);
  const unsigned storage = sched::countStorage(forest, schedule);

  // Layer 3: chip execution on a synthesized layout sized for the run.
  const chip::Layout layout = chip::synthesizeLayout(
      protocol.ratio.fluidCount(), mixers, std::max(storage, 1u));
  chip::Router router(layout);
  chip::ChipExecutor executor(layout, router);
  const chip::ExecutionTrace trace = executor.run(forest, schedule);
  EXPECT_EQ(trace.peakStorageUsed, storage);

  // Layer 4: timed simulation respects fluidic constraints and can only add
  // detours over the BFS lower bound.
  const chip::SimulationResult sim = chip::simulateTrace(layout, trace);
  EXPECT_GE(sim.totalActuations, trace.totalCost);

  // Layer 5: analyses agree with the raw trace.
  const chip::WearReport wear = chip::analyzeWear(trace);
  EXPECT_EQ(wear.total, trace.totalCost);
  const chip::ActuationMatrix matrix(layout, sim);
  const chip::PinAssignment pins = chip::assignPins(matrix);
  chip::validatePins(matrix, pins);
  EXPECT_LT(pins.pinCount(),
            matrix.electrodeCount() - pins.idleElectrodes);
}

TEST_P(ProtocolPipelineTest, ForestDominatesRepeatedBaseline) {
  const protocols::Protocol& protocol =
      protocols::publishedProtocols()[GetParam()];
  engine::MdstEngine engine(protocol.ratio);
  engine::MdstRequest request;
  request.scheme = engine::Scheme::kMMS;
  request.demand = 32;
  const engine::MdstResult ours = engine.run(request);
  const engine::BaselineResult rep =
      engine::runRepeatedBaseline(engine, mixgraph::Algorithm::MM, 32);
  EXPECT_LT(ours.completionTime, rep.completionTime);
  EXPECT_LT(ours.inputDroplets, rep.inputDroplets);
  EXPECT_LT(ours.waste, rep.waste);
}

TEST_P(ProtocolPipelineTest, ErrorBoundsAreFiniteAndOrdered) {
  const protocols::Protocol& protocol =
      protocols::publishedProtocols()[GetParam()];
  const mixgraph::MixingGraph graph = mixgraph::buildMM(protocol.ratio);
  const analysis::NodeError tight =
      analysis::targetError(graph, {0.01, 0.0});
  const analysis::NodeError loose =
      analysis::targetError(graph, {0.10, 0.0});
  EXPECT_LT(tight.worstConcentration, loose.worstConcentration);
  EXPECT_GT(analysis::quantizationError(graph), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolPipelineTest,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const auto& paramInfo) {
                           return "Ex" +
                                  std::to_string(paramInfo.param + 1);
                         });

TEST(Integration, GanttAndDotExportsAgreeOnTaskCount) {
  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const forest::TaskForest forest =
      engine.buildForest(mixgraph::Algorithm::MM, 20);
  const sched::Schedule schedule = sched::scheduleSRS(forest, 3);
  const std::string gantt = sched::renderGantt(forest, schedule);
  const std::string dot = forest.toDot();
  // Every task label appears in both renderings.
  for (forest::TaskId id = 0; id < forest.taskCount(); ++id) {
    EXPECT_NE(gantt.find(forest.taskLabel(id)), std::string::npos);
    EXPECT_NE(dot.find("t" + std::to_string(id) + " ["), std::string::npos);
  }
  // The dot export shows cross-tree waste reuse (the paper's brown edges).
  EXPECT_NE(dot.find("brown"), std::string::npos);
  EXPECT_NE(dot.find("cluster_T10"), std::string::npos);
}

TEST(Integration, StreamingPlanExecutesOnChipPassByPass) {
  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  engine::StreamingRequest request;
  request.demand = 32;
  request.storageCap = 5;
  request.mixers = 3;
  const engine::StreamingPlan plan = planStreaming(engine, request);

  const chip::Layout layout = chip::synthesizeLayout(7, 3, 5);
  chip::Router router(layout);
  chip::ChipExecutor executor(layout, router);
  std::uint64_t totalCost = 0;
  for (const engine::StreamingPass& pass : plan.passes) {
    const forest::TaskForest forest =
        engine.buildForest(mixgraph::Algorithm::MM, pass.demand);
    const sched::Schedule schedule = sched::scheduleSRS(forest, 3);
    const chip::ExecutionTrace trace = executor.run(forest, schedule);
    EXPECT_LE(trace.peakStorageUsed, 5u);
    totalCost += trace.totalCost;
  }
  EXPECT_GT(totalCost, 0u);
}

}  // namespace
}  // namespace dmf
