// Seeded, deterministic fault model for chip execution (DESIGN.md §11).
//
// Real DMF biochips fail in well-catalogued ways: electrowetting splits come
// out volumetrically unbalanced, droplets get stuck on degraded electrodes,
// dispensers misfire, and dielectric breakdown kills electrodes outright.
// FaultInjector draws those events from per-fault-class rates with a seeded
// generator, so an injected run is exactly reproducible: the same spec and
// seed always yield the same fault sequence, independent of thread count
// (every draw happens on the caller's serial execution path).
//
// The uniform draw is implemented by hand ((x >> 11) * 2^-53) instead of
// std::bernoulli_distribution so the sequence is identical across standard
// libraries, the same guarantee style the GA scheduler gives.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "chip/layout.h"

namespace dmf::fault {

/// The fault classes the injector models.
enum class FaultKind : std::uint8_t {
  kSplitImbalance,  ///< volumetric (1:1) split error beyond the ideal
  kDropletLoss,     ///< droplet stuck in transport (never arrives)
  kDispenseFail,    ///< reservoir misfire (no droplet emitted this cycle)
  kElectrodeDead,   ///< electrode killed for the rest of the run
};

/// Short name ("split", "loss", "dispense", "electrode").
[[nodiscard]] std::string_view faultKindName(FaultKind kind);

/// Per-fault-class rates. All rates are probabilities per opportunity:
/// per mix-split executed, per droplet transported, per dispense attempt,
/// per execution cycle respectively.
struct FaultSpec {
  /// P(a mix-split's volume split errs) per mix-split.
  double splitRate = 0.0;
  /// Worst-case imbalance magnitude when a split errs, as a fraction of the
  /// unit droplet volume; the drawn imbalance is uniform in (0, splitEps].
  double splitEps = 0.1;
  /// P(a transported droplet gets stuck) per non-waste transport.
  double lossRate = 0.0;
  /// P(a reservoir dispense misfires) per dispense attempt.
  double dispenseRate = 0.0;
  /// P(one electrode dies) per execution cycle.
  double electrodeRate = 0.0;

  /// True when any rate is positive — the injector can fire at all.
  [[nodiscard]] bool any() const;

  /// Parses "split=0.02,loss=0.01,dispense=0.005,electrode=0.001,eps=0.15".
  /// Keys are optional and may come in any order; every rate must be a
  /// number in [0, 1] (eps in (0, 1]). Throws std::invalid_argument with
  /// the offending token on malformed input.
  [[nodiscard]] static FaultSpec parse(const std::string& text);

  /// Renders back to the parse format (only non-default fields).
  [[nodiscard]] std::string toString() const;
};

/// One injected fault, as logged in the fault trace.
struct FaultEvent {
  FaultKind kind = FaultKind::kSplitImbalance;
  /// Execution cycle the fault fired at.
  unsigned cycle = 0;
  /// Forest task id involved (kNoTask-style sentinel 0xFFFFFFFF if none).
  std::uint32_t task = 0xFFFFFFFFu;
  /// Drawn magnitude (imbalance fraction for splits, 0 otherwise).
  double magnitude = 0.0;
  /// Human-readable context ("m3.17 split err 0.041", "cell (4,7) died").
  std::string detail;
};

/// Deterministic fault source: one instance drives one execution run.
class FaultInjector {
 public:
  FaultInjector(FaultSpec spec, std::uint64_t seed);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Draws a split-imbalance fault for one mix-split. On fire, `epsOut`
  /// receives the drawn imbalance in (0, splitEps].
  [[nodiscard]] bool splitErrs(double& epsOut);
  /// Draws a stuck-droplet fault for one transported droplet.
  [[nodiscard]] bool dropletLost();
  /// Draws a dispenser misfire for one dispense attempt.
  [[nodiscard]] bool dispenseFails();
  /// Draws an electrode death for one execution cycle.
  [[nodiscard]] bool electrodeDies();

  /// Picks a uniform cell of a `width` x `height` array (the victim of an
  /// electrode death).
  [[nodiscard]] chip::Cell pickCell(int width, int height);

  /// Appends to the fault trace and bumps the obs counter
  /// fault.injected.<kind> when a session is active.
  void record(FaultEvent event);

  /// The fault trace, in injection order.
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  /// Events of one class.
  [[nodiscard]] std::uint64_t count(FaultKind kind) const;

 private:
  [[nodiscard]] double draw();  // uniform in [0, 1)

  FaultSpec spec_;
  std::uint64_t seed_;
  std::mt19937_64 rng_;
  std::vector<FaultEvent> events_;
};

}  // namespace dmf::fault
