// A small fixed-size thread pool shared by every parallel hot loop in the
// library (streaming-pass evaluation, GA fitness batches, multi-target
// planning). Deterministic by construction: forEach hands out indices
// through an atomic counter and every index writes only its own result slot,
// so callers that reduce in index order get bit-identical output for any job
// count (including 1, which runs inline without spawning threads).
//
// Grown out of engine::PassPool (PR 1); engine/pass_pool.h keeps that name
// alive as an alias.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace dmf::runtime {

/// Fixed-size worker pool. `jobs` counts the calling thread: a pool with
/// jobs == N spawns N-1 workers and the caller participates in forEach, so
/// jobs <= 1 is pure serial execution with no threads at all.
///
/// Nested use of the *same* pool (calling forEach from inside a task it is
/// running) deadlocks by construction, so it is rejected with
/// std::logic_error — on the inline path too, to keep behaviour identical
/// for every job count. Nesting *different* pools is allowed.
class ThreadPool {
 public:
  /// `jobs == 0` resolves to the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned jobs = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, calling thread included.
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Runs fn(i) for every i in [0, count), spread over the workers; blocks
  /// until all indices finish. Exceptions thrown by fn are captured and the
  /// one raised at the lowest index is rethrown after completion, so error
  /// behaviour is deterministic too.
  void forEach(std::uint64_t count,
               const std::function<void(std::uint64_t)>& fn);

  /// As forEach, but fn also receives the id (in [0, jobs())) of the
  /// participant running the index — the calling thread is participant 0.
  /// Index-to-participant assignment is dynamic (work stealing), so the id
  /// is only good for picking per-thread scratch, never for output slots.
  void forEachWorker(
      std::uint64_t count,
      const std::function<void(std::uint64_t, unsigned)>& fn);

  /// Resolves a user-facing jobs request: 0 means hardware concurrency.
  [[nodiscard]] static unsigned resolveJobs(unsigned requested) noexcept;

 private:
  struct Batch;
  struct State;

  void workerLoop(unsigned worker);

  unsigned jobs_;
  std::vector<std::thread> workers_;
  std::unique_ptr<State> state_;
};

}  // namespace dmf::runtime
