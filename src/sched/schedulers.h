// The paper's schedulers: MMS (Algorithm 1), SRS (Algorithm 2), and the
// OMS baseline realized as critical-path (Hu) list scheduling.
#pragma once

#include "forest/task_forest.h"
#include "sched/schedule.h"

namespace dmf::sched {

/// M_Mixers_Schedule (Algorithm 1): list scheduling with a FIFO ready queue;
/// tasks becoming schedulable in the same cycle enqueue ordered by level
/// ascending ("from level l upwards"). Throws std::invalid_argument if
/// mixers == 0.
[[nodiscard]] Schedule scheduleMMS(const forest::TaskForest& forest,
                                   unsigned mixers);

/// Storage_Reduced_Scheduling (Algorithm 2): every mix-split runs as late as
/// the mixer bank allows (list scheduling of the reversed precedence DAG,
/// mirrored in time), so droplets are produced just before they are consumed
/// and Type-C nodes — whose stalling parks no droplets — are deferred the
/// most. Mixers idle rather than dispense early; completion can be slightly
/// later than MMS while the storage requirement drops, the trade-off the
/// paper reports. Throws std::invalid_argument if mixers == 0.
[[nodiscard]] Schedule scheduleSRS(const forest::TaskForest& forest,
                                   unsigned mixers);

/// The verbatim two-queue pseudo-code of Algorithm 2 (Q_int Type-A/B highest
/// level first, then Q_leaf Type-C lowest level first, greedily every cycle).
/// Exposed for comparison; scheduleSRS dominates it on storage.
[[nodiscard]] Schedule scheduleSRSGreedy(const forest::TaskForest& forest,
                                         unsigned mixers);

/// List scheduling under a hard storage budget: a mix-split is admitted into
/// a cycle only if the droplets parked on chip never exceed `storageCap`
/// units. Consumers of stored droplets (Type-A/B, highest level first) are
/// served before fresh dispense mixes (Type-C); mixers idle when admitting
/// more work would overflow the storage. Throws dmf::InfeasibleError when the
/// cap is too tight to make progress, std::invalid_argument if mixers == 0.
[[nodiscard]] Schedule scheduleStorageCapped(const forest::TaskForest& forest,
                                             unsigned mixers,
                                             unsigned storageCap);

/// Optimal Mix Scheduling stand-in: Hu's algorithm — list scheduling with
/// longest-path-to-emission priority. Optimal for unit-time in-tree
/// precedence (every single-pass mixing tree); a strong heuristic on forest
/// DAGs. Throws std::invalid_argument if mixers == 0.
[[nodiscard]] Schedule scheduleOMS(const forest::TaskForest& forest,
                                   unsigned mixers);

/// Length of the longest dependency chain — the makespan with unbounded
/// mixers.
[[nodiscard]] unsigned criticalPathLength(const forest::TaskForest& forest);

/// The paper's Mlb: the smallest mixer count whose OMS makespan equals the
/// critical path length (fastest possible completion).
[[nodiscard]] unsigned minimumMixers(const forest::TaskForest& forest);

}  // namespace dmf::sched
