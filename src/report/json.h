// Minimal JSON writer + reader for machine-readable exports (no external
// dependencies; emits UTF-8 with escaped strings). The reader exists so the
// test suite can load what the writers emit — trace files, metrics
// snapshots, plans — and assert on structure instead of substrings.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dmf::report {

/// A JSON value (object/array/string/number/bool/null). Build with the
/// static factories or `parse`, then render with dump() or inspect with the
/// accessors.
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  static Json string(std::string value);
  static Json number(double value);
  static Json number(std::uint64_t value);
  static Json boolean(bool value);
  static Json null() { return Json(Kind::kNull); }

  /// Parses a JSON document (the grammar this writer emits: objects, arrays,
  /// strings with the standard escapes, numbers, true/false/null). Throws
  /// std::invalid_argument with an offset on malformed input.
  [[nodiscard]] static Json parse(const std::string& text);

  /// Object field insertion (fields render in insertion order).
  /// Throws std::logic_error when called on a non-object.
  Json& set(const std::string& key, Json value);
  /// Scalar conveniences: set("n", 3) instead of set("n", Json::number(3)).
  Json& set(const std::string& key, std::uint64_t value);
  Json& set(const std::string& key, double value);
  Json& set(const std::string& key, std::string value);
  /// Array append. Throws std::logic_error when called on a non-array.
  Json& push(Json value);

  // --- inspection ---------------------------------------------------------
  [[nodiscard]] bool isObject() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool isNumber() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kUnsigned;
  }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::kNull; }

  /// Object/array element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const;
  /// True when an object has the key. False on non-objects.
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Object member access; throws std::out_of_range when absent,
  /// std::logic_error on non-objects.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Array element access; throws std::out_of_range / std::logic_error.
  [[nodiscard]] const Json& at(std::size_t index) const;
  /// Object keys in insertion order (parse preserves document order).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Scalar extraction; each throws std::logic_error on a kind mismatch.
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] double asDouble() const;
  /// Exact for kUnsigned; kNumber values convert when integral and in range.
  [[nodiscard]] std::uint64_t asUint() const;
  [[nodiscard]] bool asBool() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(unsigned indent = 0) const;

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kUnsigned, kBool, kNull };
  explicit Json(Kind kind) : kind_(kind) {}

  void dumpTo(std::string& out, unsigned indent, unsigned depth) const;

  Kind kind_;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> items_;
  std::string text_;
  double num_ = 0.0;
  std::uint64_t unsigned_ = 0;
  bool bool_ = false;
};

/// Escapes a string for JSON embedding.
[[nodiscard]] std::string jsonEscape(const std::string& text);

}  // namespace dmf::report
