// Simulated-annealing placement: optimizes module positions against a
// droplet-flow profile, standing in for the routing-aware resource
// allocation of the paper's reference [21] (used to produce Fig. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "chip/executor.h"
#include "chip/layout.h"

namespace dmf::chip {

/// Pairwise droplet-flow weights between modules: flow[a][b] = number of
/// droplet transports between modules a and b in a reference execution.
using FlowMatrix = std::vector<std::vector<double>>;

/// Builds the flow matrix of an execution trace (symmetric, one count per
/// move).
[[nodiscard]] FlowMatrix flowFromTrace(const ExecutionTrace& trace,
                                       std::size_t moduleCount);

/// Configuration of the annealer.
struct AnnealOptions {
  std::uint64_t seed = 1;
  /// Proposed relocations.
  unsigned iterations = 20000;
  /// Initial temperature as a fraction of the initial cost.
  double initialTemperature = 0.2;
  /// Geometric cooling factor applied every `iterations / 100` steps.
  double cooling = 0.95;
};

/// Deterministic simulated annealing over module origins. The objective is
/// sum(flow[a][b] * manhattan(port_a, port_b)); legality (in-array,
/// non-overlap) is preserved by construction. Returns the best layout found
/// (never worse than the input under the objective).
[[nodiscard]] Layout annealPlacement(const Layout& initial,
                                     const FlowMatrix& flow,
                                     const AnnealOptions& options = {});

/// The annealer's objective on a layout (exposed for tests and reporting).
[[nodiscard]] double placementCost(const Layout& layout,
                                   const FlowMatrix& flow);

}  // namespace dmf::chip
