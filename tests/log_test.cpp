// Structured JSON-lines logging (DESIGN.md §14): level parsing and
// filtering, byte-deterministic field order, trace correlation with the
// span context of the emitting thread, the single-installation contract,
// and the near-free disabled path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/scope.h"
#include "report/json.h"

namespace dmf::obs {
namespace {

namespace fs = std::filesystem;

/// A scratch log file path, removed on destruction.
class TempLog {
 public:
  explicit TempLog(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("dmf_log_test_" + tag + "_" +
              std::to_string(static_cast<unsigned long>(::getpid())) +
              ".jsonl"))
                .string();
    fs::remove(path_);
  }
  ~TempLog() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

  [[nodiscard]] std::vector<std::string> lines() const {
    std::ifstream in(path_);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }

 private:
  std::string path_;
};

TEST(LogLevelTest, ParseRoundTripsEveryName) {
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    EXPECT_EQ(parseLogLevel(logLevelName(level)), level);
  }
  EXPECT_THROW(parseLogLevel("chatty"), std::invalid_argument);
  EXPECT_THROW(parseLogLevel(""), std::invalid_argument);
  EXPECT_THROW(parseLogLevel("INFO"), std::invalid_argument);
}

TEST(LogTest, DisabledPathEmitsNothing) {
  EXPECT_FALSE(logEnabled(LogLevel::kError));
  EXPECT_EQ(loggerFor(LogLevel::kError), nullptr);
  // Building a LogLine with no logger installed is inert and must not crash.
  LogLine(LogLevel::kError, "ignored").str("k", "v").num("n", 1);
}

TEST(LogTest, ThresholdFiltersRecords) {
  TempLog file("threshold");
  Logger::Options options;
  options.level = LogLevel::kWarn;
  options.path = file.path();
  Logger logger(options);
  {
    const LogScope scope(logger);
    EXPECT_FALSE(logEnabled(LogLevel::kDebug));
    EXPECT_FALSE(logEnabled(LogLevel::kInfo));
    EXPECT_TRUE(logEnabled(LogLevel::kWarn));
    EXPECT_TRUE(logEnabled(LogLevel::kError));
    LogLine(LogLevel::kDebug, "dropped.debug");
    LogLine(LogLevel::kInfo, "dropped.info");
    LogLine(LogLevel::kWarn, "kept.warn");
    LogLine(LogLevel::kError, "kept.error");
  }
  EXPECT_EQ(logger.linesWritten(), 2u);
  const std::vector<std::string> lines = file.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(report::Json::parse(lines[0]).at("event").asString(),
            "kept.warn");
  EXPECT_EQ(report::Json::parse(lines[1]).at("event").asString(),
            "kept.error");
}

// Field order is part of the contract: fixed head, then caller fields in
// call order. With timestamps off the bytes are fully deterministic.
TEST(LogTest, FieldOrderIsDeterministicWithoutTimestamps) {
  TempLog file("order");
  Logger::Options options;
  options.level = LogLevel::kDebug;
  options.path = file.path();
  options.timestamps = false;
  Logger logger(options);
  {
    const LogScope scope(logger);
    LogLine(LogLevel::kInfo, "demo")
        .str("text", "a \"quoted\" value")
        .num("count", 42)
        .real("ratio", 0.25)
        .boolean("flag", true);
  }
  const std::vector<std::string> lines = file.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "{\"level\":\"info\",\"event\":\"demo\","
            "\"text\":\"a \\\"quoted\\\" value\",\"count\":42,"
            "\"ratio\":0.25,\"flag\":true}");
}

TEST(LogTest, TimestampsAreMonotonicNanos) {
  TempLog file("ts");
  Logger::Options options;
  options.level = LogLevel::kInfo;
  options.path = file.path();
  Logger logger(options);
  {
    const LogScope scope(logger);
    LogLine(LogLevel::kInfo, "first");
    LogLine(LogLevel::kInfo, "second");
  }
  const std::vector<std::string> lines = file.lines();
  ASSERT_EQ(lines.size(), 2u);
  const std::uint64_t first =
      report::Json::parse(lines[0]).at("ts").asUint();
  const std::uint64_t second =
      report::Json::parse(lines[1]).at("ts").asUint();
  EXPECT_LE(first, second);
}

// A record emitted inside an open span carries that span's identity, so log
// lines join the Chrome trace of the request that emitted them.
TEST(LogTest, RecordsCarryTraceCorrelationInsideASpan) {
  TempLog file("trace");
  Logger::Options options;
  options.level = LogLevel::kInfo;
  options.path = file.path();
  options.timestamps = false;
  Logger logger(options);
  Session session;
  SpanContext expected;
  {
    const LogScope logScope(logger);
    const Scope scope(session);
    LogLine(LogLevel::kInfo, "outside");
    {
      const Span span("request", "test");
      expected = span.context();
      LogLine(LogLevel::kInfo, "inside");
    }
    LogLine(LogLevel::kInfo, "after");
  }
  const std::vector<std::string> lines = file.lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("trace_id"), std::string::npos);
  EXPECT_EQ(lines[2].find("trace_id"), std::string::npos);
  const report::Json inside = report::Json::parse(lines[1]);
  EXPECT_EQ(inside.at("trace_id").asUint(), expected.traceId);
  EXPECT_EQ(inside.at("span_id").asUint(), expected.spanId);
}

TEST(LogTest, NestedInstallationThrows) {
  Logger::Options options;
  options.level = LogLevel::kInfo;
  options.timestamps = false;
  Logger a(options);
  Logger b(options);
  const LogScope scope(a);
  EXPECT_THROW(LogScope{b}, std::logic_error);
}

TEST(LogTest, UnopenableSinkThrows) {
  Logger::Options options;
  options.path = "/nonexistent-dir-for-test/log.jsonl";
  EXPECT_THROW(Logger{options}, std::invalid_argument);
}

}  // namespace
}  // namespace dmf::obs
