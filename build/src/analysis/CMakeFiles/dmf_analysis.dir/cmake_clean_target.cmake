file(REMOVE_RECURSE
  "libdmf_analysis.a"
)
