# Empty dependencies file for dmf_analysis.
# This may be replaced when dependencies are built.
