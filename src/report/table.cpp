#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dmf::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row has " +
                                std::to_string(cells.size()) + " cells, want " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emitRow = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      line.append(width[c] - row[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = emitRow(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) sep += "  ";
    sep.append(width[c], '-');
  }
  out += sep + "\n";
  for (const auto& row : rows_) {
    out += emitRow(row);
  }
  return out;
}

std::string Table::toCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    return quoted + "\"";
  };
  std::string out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  emitRow(headers_);
  for (const auto& row : rows_) emitRow(row);
  return out;
}

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace dmf::report
