#include "chip/pin_mapper.h"

#include <algorithm>
#include <stdexcept>

namespace dmf::chip {

namespace {

const Cell& positionAt(const Trajectory& traj, unsigned step) {
  const std::size_t index =
      std::min<std::size_t>(step, traj.positions.size() - 1);
  return traj.positions[index];
}

}  // namespace

ActuationMatrix::ActuationMatrix(const Layout& layout,
                                 const SimulationResult& simulation) {
  const auto w = static_cast<std::size_t>(layout.width());
  const auto h = static_cast<std::size_t>(layout.height());

  // Global slots: phases back to back, one slot per routing step (step 0 is
  // the departure position — no new actuation, but it grounds neighbours).
  slots_ = 0;
  for (const SimulatedPhase& phase : simulation.phases) {
    slots_ += phase.routing.makespan + 1;
  }
  signals_.assign(w * h, std::vector<Signal>(slots_, Signal::kDontCare));

  auto cellIndex = [w](const Cell& c) {
    return static_cast<std::size_t>(c.y) * w + static_cast<std::size_t>(c.x);
  };

  std::size_t base = 0;
  for (const SimulatedPhase& phase : simulation.phases) {
    for (unsigned step = 0; step <= phase.routing.makespan; ++step) {
      const std::size_t slot = base + step;
      for (const Trajectory& traj : phase.routing.trajectories) {
        const Cell& c = positionAt(traj, step);
        signals_[cellIndex(c)][slot] = Signal::kActuate;
        // Neighbouring electrodes must stay grounded or the droplet would
        // split toward them.
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const Cell n{c.x + dx, c.y + dy};
            if (n.x < 0 || n.y < 0 || n.x >= layout.width() ||
                n.y >= layout.height()) {
              continue;
            }
            Signal& sig = signals_[cellIndex(n)][slot];
            if (sig == Signal::kDontCare) sig = Signal::kGround;
          }
        }
      }
    }
    base += phase.routing.makespan + 1;
  }
}

bool ActuationMatrix::compatible(std::size_t a, std::size_t b) const {
  const auto& sa = signals_[a];
  const auto& sb = signals_[b];
  for (std::size_t t = 0; t < slots_; ++t) {
    if ((sa[t] == Signal::kActuate && sb[t] == Signal::kGround) ||
        (sa[t] == Signal::kGround && sb[t] == Signal::kActuate)) {
      return false;
    }
  }
  return true;
}

PinAssignment assignPins(const ActuationMatrix& matrix) {
  const std::size_t n = matrix.electrodeCount();
  const std::size_t slots = matrix.slotCount();

  // Constraint weight = number of non-don't-care slots; heavily constrained
  // electrodes claim pins first.
  std::vector<std::size_t> order;
  std::vector<std::size_t> weight(n, 0);
  for (std::size_t e = 0; e < n; ++e) {
    for (Signal s : matrix.signalsOf(e)) {
      weight[e] += s != Signal::kDontCare ? 1 : 0;
    }
    if (weight[e] > 0) order.push_back(e);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return weight[a] > weight[b];
                   });

  PinAssignment assignment;
  assignment.idleElectrodes = n - order.size();

  // Merged signal per pin; an electrode joins the first pin it fits.
  std::vector<std::vector<Signal>> merged;
  for (std::size_t e : order) {
    const auto& sig = matrix.signalsOf(e);
    bool placed = false;
    for (std::size_t p = 0; p < merged.size() && !placed; ++p) {
      bool ok = true;
      for (std::size_t t = 0; t < slots && ok; ++t) {
        ok = !((merged[p][t] == Signal::kActuate &&
                sig[t] == Signal::kGround) ||
               (merged[p][t] == Signal::kGround &&
                sig[t] == Signal::kActuate));
      }
      if (ok) {
        for (std::size_t t = 0; t < slots; ++t) {
          if (sig[t] != Signal::kDontCare) merged[p][t] = sig[t];
        }
        assignment.pins[p].electrodes.push_back(e);
        placed = true;
      }
    }
    if (!placed) {
      merged.push_back(sig);
      assignment.pins.push_back(PinGroup{{e}});
    }
  }
  return assignment;
}

void validatePins(const ActuationMatrix& matrix,
                  const PinAssignment& assignment) {
  for (const PinGroup& pin : assignment.pins) {
    for (std::size_t i = 0; i < pin.electrodes.size(); ++i) {
      for (std::size_t j = i + 1; j < pin.electrodes.size(); ++j) {
        if (!matrix.compatible(pin.electrodes[i], pin.electrodes[j])) {
          throw std::logic_error(
              "validatePins: electrodes " +
              std::to_string(pin.electrodes[i]) + " and " +
              std::to_string(pin.electrodes[j]) + " conflict in one pin");
        }
      }
    }
  }
}

}  // namespace dmf::chip
