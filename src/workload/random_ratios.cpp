#include "workload/random_ratios.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace dmf::workload {

RandomRatioGenerator::RandomRatioGenerator(std::uint64_t sum,
                                           std::size_t parts,
                                           std::uint64_t seed)
    : sum_(sum), parts_(parts), rng_(seed) {
  if (sum < 2 || !std::has_single_bit(sum)) {
    throw std::invalid_argument(
        "RandomRatioGenerator: sum must be a power of two >= 2");
  }
  if (parts < 2 || parts > sum) {
    throw std::invalid_argument("RandomRatioGenerator: bad part count");
  }
}

namespace {

// k distinct values sampled uniformly from [1, n] by partial Fisher-Yates
// over the virtual identity array [1..n]: draw j uniform in [i, n-1], swap
// slot i with slot j, emit slot i. Only the touched slots live in a hash
// map, so the cost is O(k) regardless of n — rejection sampling (the old
// implementation) degenerates into a coupon-collector stall as k approaches
// n (k == n never terminates in reasonable time for large n).
std::vector<std::uint64_t> sampleSparse(std::uint64_t n, std::uint64_t k,
                                        std::mt19937_64& rng) {
  std::unordered_map<std::uint64_t, std::uint64_t> slot;
  slot.reserve(static_cast<std::size_t>(2 * k));
  const auto read = [&slot](std::uint64_t i) {
    const auto it = slot.find(i);
    return it == slot.end() ? i + 1 : it->second;  // identity is [1..n]
  };
  std::vector<std::uint64_t> picks;
  picks.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<std::uint64_t> dist(i, n - 1);
    const std::uint64_t j = dist(rng);
    const std::uint64_t vi = read(i);
    const std::uint64_t vj = read(j);
    slot[j] = vi;
    slot[i] = vj;
    picks.push_back(vj);
  }
  return picks;
}

// Dense variant for k close to n (then n <= 2k is small enough to
// materialize): a plain partial shuffle of [1..n], taking the first k.
std::vector<std::uint64_t> sampleDense(std::uint64_t n, std::uint64_t k,
                                       std::mt19937_64& rng) {
  std::vector<std::uint64_t> values(static_cast<std::size_t>(n));
  std::iota(values.begin(), values.end(), std::uint64_t{1});
  for (std::uint64_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<std::uint64_t> dist(i, n - 1);
    std::swap(values[static_cast<std::size_t>(i)],
              values[static_cast<std::size_t>(dist(rng))]);
  }
  values.resize(static_cast<std::size_t>(k));
  return values;
}

}  // namespace

Ratio RandomRatioGenerator::next() {
  // Stars and bars: choose parts-1 distinct cut points in [1, sum-1]; the
  // gaps between consecutive cuts are the parts. The cut set is drawn
  // without replacement (partial Fisher-Yates), so every draw costs O(parts)
  // even when parts == sum — the case where the previous rejection sampler
  // stalled on the coupon-collector tail.
  const std::uint64_t n = sum_ - 1;
  const std::uint64_t k = parts_ - 1;
  std::vector<std::uint64_t> cuts =
      2 * k >= n ? sampleDense(n, k, rng_) : sampleSparse(n, k, rng_);
  std::sort(cuts.begin(), cuts.end());
  std::vector<std::uint64_t> partsVec;
  partsVec.reserve(parts_);
  std::uint64_t prev = 0;
  for (std::uint64_t c : cuts) {
    partsVec.push_back(c - prev);
    prev = c;
  }
  partsVec.push_back(sum_ - prev);
  return Ratio(std::move(partsVec));
}

}  // namespace dmf::workload
