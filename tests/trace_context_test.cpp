// Span-context propagation (DESIGN.md §14): parent/child identity on one
// thread, cross-thread adoption via ContextGuard, and the ThreadPool
// guarantee that spans opened inside worker tasks splice into the
// dispatching request's trace — no orphans, for any job count.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/scope.h"
#include "obs/trace.h"
#include "report/json.h"
#include "runtime/thread_pool.h"

namespace dmf::obs {
namespace {

/// One span event's identity, parsed back out of the Chrome trace JSON.
struct ParsedSpan {
  std::string name;
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;
  std::uint64_t parentSpanId = 0;
};

std::vector<ParsedSpan> parseSpans(const TraceRecorder& recorder) {
  const report::Json trace = report::Json::parse(recorder.toJson().dump(2));
  std::vector<ParsedSpan> spans;
  const report::Json& events = trace.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const report::Json& e = events.at(i);
    if (e.at("ph").asString() != "X" || !e.contains("args")) continue;
    const report::Json& args = e.at("args");
    if (!args.contains("span_id")) continue;
    ParsedSpan span;
    span.name = e.at("name").asString();
    span.traceId = args.at("trace_id").asUint();
    span.spanId = args.at("span_id").asUint();
    if (args.contains("parent_span_id")) {
      span.parentSpanId = args.at("parent_span_id").asUint();
    }
    spans.push_back(span);
  }
  return spans;
}

const ParsedSpan& findSpan(const std::vector<ParsedSpan>& spans,
                           const std::string& name) {
  for (const ParsedSpan& span : spans) {
    if (span.name == name) return span;
  }
  throw std::logic_error("span not found: " + name);
}

TEST(TraceContextTest, NestedSpansShareTraceAndLinkParents) {
  Session session;
  {
    const Scope scope(session);
    const Span root("root", "test");
    {
      const Span child("child", "test");
      { const Span grandchild("grandchild", "test"); }
    }
    // Opened after `child` closed: a sibling, not a grandchild.
    { const Span sibling("sibling", "test"); }
  }
  const std::vector<ParsedSpan> spans = parseSpans(session.trace);
  ASSERT_EQ(spans.size(), 4u);
  const ParsedSpan& root = findSpan(spans, "root");
  const ParsedSpan& child = findSpan(spans, "child");
  const ParsedSpan& grandchild = findSpan(spans, "grandchild");
  const ParsedSpan& sibling = findSpan(spans, "sibling");

  EXPECT_EQ(root.parentSpanId, 0u);
  for (const ParsedSpan& span : spans) {
    EXPECT_EQ(span.traceId, root.traceId) << span.name;
  }
  EXPECT_EQ(child.parentSpanId, root.spanId);
  EXPECT_EQ(grandchild.parentSpanId, child.spanId);
  EXPECT_EQ(sibling.parentSpanId, root.spanId);
}

TEST(TraceContextTest, SequentialRootsGetDistinctTraces) {
  Session session;
  {
    const Scope scope(session);
    { const Span first("first", "test"); }
    { const Span second("second", "test"); }
  }
  const std::vector<ParsedSpan> spans = parseSpans(session.trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].traceId, spans[1].traceId);
}

TEST(TraceContextTest, ContextGuardAdoptsAcrossThreads) {
  Session session;
  {
    const Scope scope(session);
    const Span root("root", "test");
    const SpanContext handoff = currentContext();
    std::thread worker([&handoff] {
      const ContextGuard adopt(handoff);
      const Span remote("remote", "test");
    });
    worker.join();
    // The guard's restore is thread-local: this thread still sees root.
    EXPECT_EQ(currentContext().spanId, root.context().spanId);
  }
  const std::vector<ParsedSpan> spans = parseSpans(session.trace);
  const ParsedSpan& root = findSpan(spans, "root");
  const ParsedSpan& remote = findSpan(spans, "remote");
  EXPECT_EQ(remote.traceId, root.traceId);
  EXPECT_EQ(remote.parentSpanId, root.spanId);
}

TEST(TraceContextTest, ContextGuardRestoresPreviousContext) {
  Session session;
  const Scope scope(session);
  const Span outer("outer", "test");
  const SpanContext before = currentContext();
  {
    const ContextGuard adopt(SpanContext{99, 98});
    EXPECT_EQ(currentContext().traceId, 99u);
    EXPECT_EQ(currentContext().spanId, 98u);
  }
  EXPECT_EQ(currentContext().spanId, before.spanId);
}

// The load-bearing concurrency property: a 4-thread pool dispatching many
// tasks, each opening nested spans, must produce one consistent tree — every
// task span a child of the dispatching request span, every inner span a
// child of its task span, all sharing the request's trace id, no orphans.
TEST(TraceContextTest, PoolWorkersSpliceIntoTheDispatchingTrace) {
  constexpr std::uint64_t kTasks = 32;
  Session session;
  {
    const Scope scope(session);
    const Span request("request", "test");
    runtime::ThreadPool pool(4);
    pool.forEach(kTasks, [](std::uint64_t i) {
      Span task("task", "test");
      task.arg("index", std::to_string(i));
      { const Span inner("task.inner", "test"); }
    });
  }

  const std::vector<ParsedSpan> spans = parseSpans(session.trace);
  // One request root, one pool.worker batch span per participant (the
  // 3 workers + the calling thread), two spans per task.
  ASSERT_EQ(spans.size(), 1 + 4 + 2 * kTasks);
  const ParsedSpan& request = findSpan(spans, "request");

  std::map<std::uint64_t, const ParsedSpan*> byId;
  for (const ParsedSpan& span : spans) {
    EXPECT_EQ(span.traceId, request.traceId) << span.name;
    EXPECT_TRUE(byId.emplace(span.spanId, &span).second)
        << "duplicate span id " << span.spanId;
  }

  std::size_t tasks = 0;
  std::size_t inners = 0;
  for (const ParsedSpan& span : spans) {
    if (span.name == "pool.worker") {
      EXPECT_EQ(span.parentSpanId, request.spanId);
    } else if (span.name == "task") {
      ++tasks;
      // Each task runs inside some participant's pool.worker batch span,
      // which in turn hangs off the dispatching request.
      const auto parent = byId.find(span.parentSpanId);
      ASSERT_NE(parent, byId.end()) << "dangling parent id";
      EXPECT_EQ(parent->second->name, "pool.worker");
      EXPECT_EQ(parent->second->parentSpanId, request.spanId);
    } else if (span.name == "task.inner") {
      ++inners;
      ASSERT_NE(span.parentSpanId, 0u) << "orphan inner span";
      const auto parent = byId.find(span.parentSpanId);
      ASSERT_NE(parent, byId.end()) << "dangling parent id";
      EXPECT_EQ(parent->second->name, "task");
    }
  }
  EXPECT_EQ(tasks, kTasks);
  EXPECT_EQ(inners, kTasks);
}

/// Root-to-leaf name path of every span, sorted — a job-count-independent
/// fingerprint of the span tree's shape. "pool.worker" batch spans are
/// thread-placement detail (the inline jobs<=1 path has none), so they are
/// elided from paths, normalizing traces across job counts.
std::multiset<std::string> spanPaths(const TraceRecorder& recorder) {
  const std::vector<ParsedSpan> spans = parseSpans(recorder);
  std::map<std::uint64_t, const ParsedSpan*> byId;
  for (const ParsedSpan& span : spans) byId.emplace(span.spanId, &span);
  std::multiset<std::string> paths;
  for (const ParsedSpan& span : spans) {
    if (span.name == "pool.worker") continue;
    std::string path = span.name;
    std::uint64_t parent = span.parentSpanId;
    while (parent != 0) {
      const auto it = byId.find(parent);
      if (it == byId.end()) {
        path = "<orphan>/" + path;
        break;
      }
      if (it->second->name != "pool.worker") {
        path = it->second->name + "/" + path;
      }
      parent = it->second->parentSpanId;
    }
    paths.insert(path);
  }
  return paths;
}

// The tree's shape must not depend on the job count — only thread placement
// may differ between --jobs 1 and --jobs 4.
TEST(TraceContextTest, SpanTreeShapeIsIdenticalAcrossJobCounts) {
  std::vector<std::multiset<std::string>> shapes;
  for (const unsigned jobs : {1u, 4u}) {
    Session session;
    {
      const Scope scope(session);
      const Span request("request", "test");
      runtime::ThreadPool pool(jobs);
      pool.forEach(16, [](std::uint64_t) {
        const Span task("task", "test");
        const Span inner("task.inner", "test");
      });
    }
    shapes.push_back(spanPaths(session.trace));
  }
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0], shapes[1]);
  EXPECT_EQ(shapes[0].count("request/task/task.inner"), 16u);
}

}  // namespace
}  // namespace dmf::obs
