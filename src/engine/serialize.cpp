#include "engine/serialize.h"

namespace dmf::engine {

using report::Json;

Json toJson(const MdstResult& result) {
  Json out = Json::object();
  out.set("completionTime", Json::number(std::uint64_t{result.completionTime}))
      .set("storageUnits", Json::number(std::uint64_t{result.storageUnits}))
      .set("mixSplits", Json::number(result.mixSplits))
      .set("waste", Json::number(result.waste))
      .set("inputDroplets", Json::number(result.inputDroplets))
      .set("componentTrees", Json::number(result.componentTrees))
      .set("mixers", Json::number(std::uint64_t{result.mixers}));
  Json perFluid = Json::array();
  for (std::uint64_t n : result.inputPerFluid) {
    perFluid.push(Json::number(n));
  }
  out.set("inputPerFluid", std::move(perFluid));
  return out;
}

Json toJson(const forest::TaskForest& forest,
            const sched::Schedule& schedule) {
  Json out = Json::object();
  out.set("ratio", Json::string(forest.graph().ratio().toString()))
      .set("demand", Json::number(forest.demand()))
      .set("scheme", Json::string(schedule.scheme))
      .set("mixers", Json::number(std::uint64_t{schedule.mixerCount}))
      .set("completionTime",
           Json::number(std::uint64_t{schedule.completionTime}));
  Json tasks = Json::array();
  for (forest::TaskId id = 0; id < forest.taskCount(); ++id) {
    const forest::Task& t = forest.task(id);
    Json task = Json::object();
    task.set("id", Json::number(std::uint64_t{id}))
        .set("label", Json::string(forest.taskLabel(id)))
        .set("tree", Json::number(std::uint64_t{t.tree}))
        .set("level", Json::number(std::uint64_t{t.level}))
        .set("cycle", Json::number(std::uint64_t{schedule.cycles[id]}))
        .set("mixer", Json::number(std::uint64_t{schedule.mixers[id]}));
    Json outputs = Json::array();
    for (const forest::OutputDroplet& drop : t.out) {
      Json droplet = Json::object();
      switch (drop.fate) {
        case forest::DropletFate::kConsumed:
          droplet.set("fate", Json::string("consumed"))
              .set("consumer", Json::number(std::uint64_t{drop.consumer}));
          break;
        case forest::DropletFate::kTarget:
          droplet.set("fate", Json::string("target"));
          break;
        case forest::DropletFate::kWaste:
          droplet.set("fate", Json::string("waste"));
          break;
      }
      outputs.push(std::move(droplet));
    }
    task.set("outputs", std::move(outputs));
    tasks.push(std::move(task));
  }
  out.set("tasks", std::move(tasks));
  return out;
}

Json toJson(const StreamingPlan& plan) {
  Json out = Json::object();
  out.set("perPassDemand", Json::number(plan.perPassDemand))
      .set("totalCycles", Json::number(plan.totalCycles))
      .set("totalWaste", Json::number(plan.totalWaste))
      .set("totalInput", Json::number(plan.totalInput))
      .set("peakStorage", Json::number(std::uint64_t{plan.storageUnits}))
      .set("mixers", Json::number(std::uint64_t{plan.mixers}));
  Json passes = Json::array();
  for (const StreamingPass& pass : plan.passes) {
    Json p = Json::object();
    p.set("demand", Json::number(pass.demand))
        .set("cycles", Json::number(std::uint64_t{pass.cycles}))
        .set("storage", Json::number(std::uint64_t{pass.storageUnits}))
        .set("waste", Json::number(pass.waste))
        .set("input", Json::number(pass.inputDroplets))
        .set("mixSplits", Json::number(pass.mixSplits));
    passes.push(std::move(p));
  }
  out.set("passes", std::move(passes));
  return out;
}

Json toJson(const MultiTargetResult& result) {
  Json shared = Json::object();
  shared.set("completionTime",
             Json::number(std::uint64_t{result.completionTime}))
      .set("storageUnits", Json::number(std::uint64_t{result.storageUnits}))
      .set("mixSplits", Json::number(result.mixSplits))
      .set("waste", Json::number(result.waste))
      .set("inputDroplets", Json::number(result.inputDroplets));
  Json separate = Json::object();
  separate
      .set("completionTime",
           Json::number(std::uint64_t{result.separateCompletionTime}))
      .set("storageUnits",
           Json::number(std::uint64_t{result.separateStorageUnits}))
      .set("waste", Json::number(result.separateWaste))
      .set("inputDroplets", Json::number(result.separateInputDroplets));
  Json out = Json::object();
  out.set("mixers", Json::number(std::uint64_t{result.mixers}))
      .set("shared", std::move(shared))
      .set("separate", std::move(separate));
  return out;
}

Json toJson(const PassCacheStats& stats) {
  Json out = Json::object();
  out.set("hits", stats.hits)
      .set("misses", stats.misses)
      .set("evaluations", stats.evaluations());
  Json timings = Json::object();
  timings.set("forestBuildNanos", stats.buildNanos)
      .set("scheduleNanos", stats.scheduleNanos)
      .set("storageCountNanos", stats.storageNanos)
      .set("totalNanos", stats.totalNanos());
  out.set("stageTimings", std::move(timings));
  return out;
}

Json toJson(const RecoveryReport& report) {
  Json out = Json::object();
  out.set("demand", Json::number(report.demand))
      .set("delivered", Json::number(report.delivered))
      .set("shortfall", Json::number(report.shortfall))
      .set("escapedErrors", Json::number(report.escapedErrors))
      .set("discarded", Json::number(report.discarded))
      .set("faultsInjected", Json::number(std::uint64_t{report.faults.size()}))
      .set("baseCompletion", Json::number(std::uint64_t{report.baseCompletion}))
      .set("completionCycle",
           Json::number(std::uint64_t{report.completionCycle}))
      .set("retryBudget", Json::number(std::uint64_t{report.retryBudget}))
      .set("roundsUsed", Json::number(std::uint64_t{report.roundsUsed}))
      .set("extraMixSplits", Json::number(report.extraMixSplits))
      .set("extraInputDroplets", Json::number(report.extraInputDroplets))
      .set("extraActuations", Json::number(report.extraActuations))
      .set("mixersLost", Json::number(std::uint64_t{report.mixersLost}))
      .set("storageLost", Json::number(std::uint64_t{report.storageLost}))
      .set("degraded", Json::boolean(report.degraded))
      .set("degradationReason", Json::string(report.degradationReason));
  Json faults = Json::array();
  for (const fault::FaultEvent& e : report.faults) {
    Json f = Json::object();
    f.set("kind", Json::string(std::string(fault::faultKindName(e.kind))))
        .set("cycle", Json::number(std::uint64_t{e.cycle}))
        .set("detail", Json::string(e.detail));
    if (e.magnitude > 0.0) f.set("magnitude", Json::number(e.magnitude));
    faults.push(std::move(f));
  }
  out.set("faults", std::move(faults));
  Json rounds = Json::array();
  for (const RepairRound& r : report.rounds) {
    Json round = Json::object();
    round.set("cycle", Json::number(std::uint64_t{r.cycle}))
        .set("span", Json::number(std::uint64_t{r.span}))
        .set("mixSplits", Json::number(r.mixSplits))
        .set("inputDroplets", Json::number(r.inputDroplets))
        .set("actuations", Json::number(r.actuations));
    Json needs = Json::array();
    for (const forest::NodeDemand& need : r.needs) {
      Json n = Json::object();
      n.set("node", Json::number(std::uint64_t{need.node}))
          .set("count", Json::number(need.count));
      needs.push(std::move(n));
    }
    round.set("needs", std::move(needs));
    rounds.push(std::move(round));
  }
  out.set("rounds", std::move(rounds));
  Json dead = Json::array();
  for (const chip::Cell& c : report.deadCells) {
    Json cell = Json::array();
    cell.push(Json::number(std::uint64_t{static_cast<unsigned>(c.x)}));
    cell.push(Json::number(std::uint64_t{static_cast<unsigned>(c.y)}));
    dead.push(std::move(cell));
  }
  out.set("deadCells", std::move(dead));
  return out;
}

namespace {

/// at()-style access that reports *which* field is malformed — journal
/// snapshots are hand-inspectable and a precise error beats out_of_range.
const Json& require(const Json& json, const std::string& key) {
  if (!json.isObject() || !json.contains(key)) {
    throw std::invalid_argument("serialize: missing field '" + key + "'");
  }
  return json.at(key);
}

std::uint64_t requireUint(const Json& json, const std::string& key) {
  const Json& value = require(json, key);
  if (!value.isNumber()) {
    throw std::invalid_argument("serialize: field '" + key +
                                "' is not a number");
  }
  return value.asUint();
}

fault::FaultKind faultKindFromName(const std::string& name) {
  if (name == "split") return fault::FaultKind::kSplitImbalance;
  if (name == "loss") return fault::FaultKind::kDropletLoss;
  if (name == "dispense") return fault::FaultKind::kDispenseFail;
  if (name == "electrode") return fault::FaultKind::kElectrodeDead;
  throw std::invalid_argument("serialize: unknown fault kind '" + name + "'");
}

}  // namespace

StreamingPlan streamingPlanFromJson(const Json& json) {
  StreamingPlan plan;
  plan.perPassDemand = requireUint(json, "perPassDemand");
  plan.totalCycles = requireUint(json, "totalCycles");
  plan.totalWaste = requireUint(json, "totalWaste");
  plan.totalInput = requireUint(json, "totalInput");
  plan.storageUnits = static_cast<unsigned>(requireUint(json, "peakStorage"));
  plan.mixers = static_cast<unsigned>(requireUint(json, "mixers"));
  const Json& passes = require(json, "passes");
  if (!passes.isArray()) {
    throw std::invalid_argument("serialize: 'passes' is not an array");
  }
  plan.passes.reserve(passes.size());
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const Json& p = passes.at(i);
    StreamingPass pass;
    pass.demand = requireUint(p, "demand");
    pass.cycles = static_cast<unsigned>(requireUint(p, "cycles"));
    pass.storageUnits = static_cast<unsigned>(requireUint(p, "storage"));
    pass.waste = requireUint(p, "waste");
    pass.inputDroplets = requireUint(p, "input");
    pass.mixSplits = requireUint(p, "mixSplits");
    plan.passes.push_back(pass);
  }
  return plan;
}

RecoveryReport recoveryReportFromJson(const Json& json) {
  RecoveryReport report;
  report.demand = requireUint(json, "demand");
  report.delivered = requireUint(json, "delivered");
  report.shortfall = requireUint(json, "shortfall");
  report.escapedErrors = requireUint(json, "escapedErrors");
  report.discarded = requireUint(json, "discarded");
  report.baseCompletion =
      static_cast<unsigned>(requireUint(json, "baseCompletion"));
  report.completionCycle =
      static_cast<unsigned>(requireUint(json, "completionCycle"));
  report.retryBudget = static_cast<unsigned>(requireUint(json, "retryBudget"));
  report.roundsUsed = static_cast<unsigned>(requireUint(json, "roundsUsed"));
  report.extraMixSplits = requireUint(json, "extraMixSplits");
  report.extraInputDroplets = requireUint(json, "extraInputDroplets");
  report.extraActuations = requireUint(json, "extraActuations");
  report.mixersLost = static_cast<unsigned>(requireUint(json, "mixersLost"));
  report.storageLost = static_cast<unsigned>(requireUint(json, "storageLost"));
  report.degraded = require(json, "degraded").asBool();
  report.degradationReason = require(json, "degradationReason").asString();
  const Json& faults = require(json, "faults");
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Json& f = faults.at(i);
    fault::FaultEvent event;
    event.kind = faultKindFromName(require(f, "kind").asString());
    event.cycle = static_cast<unsigned>(requireUint(f, "cycle"));
    event.detail = require(f, "detail").asString();
    // "magnitude" is emitted only when positive; absence restores the 0.0
    // default, so the omission round-trips too.
    if (f.contains("magnitude")) event.magnitude = f.at("magnitude").asDouble();
    report.faults.push_back(std::move(event));
  }
  const Json& rounds = require(json, "rounds");
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const Json& r = rounds.at(i);
    RepairRound round;
    round.cycle = static_cast<unsigned>(requireUint(r, "cycle"));
    round.span = static_cast<unsigned>(requireUint(r, "span"));
    round.mixSplits = requireUint(r, "mixSplits");
    round.inputDroplets = requireUint(r, "inputDroplets");
    round.actuations = requireUint(r, "actuations");
    const Json& needs = require(r, "needs");
    for (std::size_t j = 0; j < needs.size(); ++j) {
      const Json& n = needs.at(j);
      forest::NodeDemand need;
      need.node = static_cast<mixgraph::NodeId>(requireUint(n, "node"));
      need.count = requireUint(n, "count");
      round.needs.push_back(need);
    }
    report.rounds.push_back(std::move(round));
  }
  const Json& dead = require(json, "deadCells");
  for (std::size_t i = 0; i < dead.size(); ++i) {
    const Json& cell = dead.at(i);
    if (!cell.isArray() || cell.size() != 2) {
      throw std::invalid_argument("serialize: malformed deadCells entry");
    }
    report.deadCells.push_back(
        chip::Cell{static_cast<int>(cell.at(0).asUint()),
                   static_cast<int>(cell.at(1).asUint())});
  }
  return report;
}

}  // namespace dmf::engine
