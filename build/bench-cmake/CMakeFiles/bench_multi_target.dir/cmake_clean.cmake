file(REMOVE_RECURSE
  "../bench/bench_multi_target"
  "../bench/bench_multi_target.pdb"
  "CMakeFiles/bench_multi_target.dir/bench_multi_target.cpp.o"
  "CMakeFiles/bench_multi_target.dir/bench_multi_target.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
