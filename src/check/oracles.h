// Invariant oracles: independent brute-force re-derivations of the paper's
// guarantees, used by the fuzzer and the property tests as a single source
// of truth (DESIGN.md §12).
//
// Every oracle re-derives its answer from first principles — droplet event
// simulation, exact DyadicFraction mixture evaluation, memoized longest-path
// recursion — deliberately NOT by calling the production implementations it
// cross-checks (sched::validateOrThrow, sched::countStorage, ForestStats).
// The implementations here favour obvious correctness over speed; they are
// the referee, not the player.
//
// Oracles never throw on a violated invariant: they append a readable
// description to a CheckResult, so one fuzz case can collect every violation
// it triggers and the shrinker can match failures by oracle name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/streaming.h"
#include "forest/task_forest.h"
#include "sched/schedule.h"

namespace dmf::check {

/// Accumulated oracle verdicts for one subject. Empty failures == all
/// invariants held.
struct CheckResult {
  /// One entry per violated invariant: "<oracle>: <what went wrong>".
  std::vector<std::string> failures;
  /// Total individual assertions evaluated (for throughput accounting).
  std::uint64_t checksRun = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  void fail(const std::string& oracle, const std::string& what) {
    failures.push_back(oracle + ": " + what);
  }
  /// All failures joined, one per line (test/CLI reporting).
  [[nodiscard]] std::string summary() const;
};

// ---- forest oracles ------------------------------------------------------

/// Droplet conservation re-derived from the task list alone: inputs (kNoTask
/// operand slots) equal targets + waste (2 in, 2 out per mix-split), target
/// count equals the demand, per-fluid input tallies match stats(), the
/// component-tree count matches, and — the paper's zero-waste theorem — a
/// single-target demand of p * 2^d wastes nothing.
/// Oracle names: "conservation", "zero-waste".
void checkForestConservation(const forest::TaskForest& forest,
                             CheckResult& out);

/// Dependency wiring re-derived edge by edge: every operand producer emits
/// exactly the consumed droplets its consumers claim, droplet fates are
/// consistent, and the dependency relation is acyclic (explicit DFS).
/// Oracle name: "wiring".
void checkForestWiring(const forest::TaskForest& forest, CheckResult& out);

/// Exact mixture evaluation: every task's composition is recomputed
/// bottom-up with MixtureValue::mix (exact dyadic arithmetic) from pure
/// reservoir fluids, compared against the base graph's claimed node value,
/// and every emitted target droplet must equal the composition of its
/// demand node. Oracle name: "mixture".
void checkMixtureCorrectness(const forest::TaskForest& forest,
                             CheckResult& out);

// ---- schedule oracles ----------------------------------------------------

/// Schedule validity re-derived independently of sched::validateOrThrow:
/// every task placed once at cycle >= 1, mixer indices in range, no two
/// tasks in one (cycle, mixer) slot, operands strictly earlier, and
/// completionTime equal to the last busy cycle. Oracle name: "schedule".
void checkScheduleValidity(const forest::TaskForest& forest,
                           const sched::Schedule& s, CheckResult& out);

/// Brute-force peak storage: one +1/-1 event pair per consumed droplet,
/// prefix-summed over the cycle axis (an independent restatement of
/// Algorithm 3).
[[nodiscard]] unsigned storageOracle(const forest::TaskForest& forest,
                                     const sched::Schedule& s);

/// Cross-checks sched::countStorage against storageOracle.
/// Oracle name: "storage-count".
void checkStorageCount(const forest::TaskForest& forest,
                       const sched::Schedule& s, CheckResult& out);

/// Completion-time lower bounds: the schedule can beat neither the critical
/// path (longest dependency chain, re-derived by memoized recursion) nor the
/// width bound ceil(taskCount / mixers). Oracle name: "lower-bound".
void checkCompletionLowerBounds(const forest::TaskForest& forest,
                                const sched::Schedule& s, CheckResult& out);

/// The SRS contract (paper section 4.2.2): SRS must never need more storage
/// than MMS on the same forest and bank. Storage measured by storageOracle
/// on both sides. Oracle name: "srs-contract".
void checkSrsContract(const forest::TaskForest& forest,
                      const sched::Schedule& srs, const sched::Schedule& mms,
                      CheckResult& out);

/// All schedule oracles at once (validity, storage count, lower bounds) plus
/// an optional hard storage cap (capped schedulers; pass cap = 0 for
/// uncapped). Oracle names as above plus "storage-cap".
void checkScheduledForest(const forest::TaskForest& forest,
                          const sched::Schedule& s, unsigned storageCap,
                          CheckResult& out);

// ---- streaming-plan oracles ----------------------------------------------

/// Re-validates a streaming plan end to end: pass demands sum to the
/// request's demand, every pass re-evaluated from scratch (forest rebuild +
/// scheduler rerun) matches the recorded cycles/storage/waste/input and fits
/// the cap, and the plan totals are the sums of the passes.
/// Oracle name: "stream-plan".
void checkStreamingPlan(const engine::MdstEngine& engine,
                        const engine::StreamingRequest& request,
                        const engine::StreamingPlan& plan, CheckResult& out);

}  // namespace dmf::check
