// Multi-target builder (the SDMT/MDMT generalization of Table 1): one graph
// prepares several target mixtures over the same fluid space, sharing every
// common sub-mixture across targets — including the case where one target is
// an intermediate of another.
#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "mixgraph/builders.h"

namespace dmf::mixgraph {

namespace {

bool valueLess(const MixtureValue& a, const MixtureValue& b) {
  if (a.exponent() != b.exponent()) return a.exponent() < b.exponent();
  return a.numerators() < b.numerators();
}

}  // namespace

MixingGraph buildMultiTarget(const std::vector<Ratio>& targets) {
  MixingGraph graph(targets);  // validates shared space/accuracy, uniqueness
  const unsigned d = targets.front().accuracy();
  const std::size_t fluids = targets.front().fluidCount();

  std::unordered_map<MixtureValue, NodeId, MixtureValueHash> known;
  std::vector<NodeId> leafOf(fluids, kNoNode);
  auto leaf = [&](std::size_t fluid) {
    if (leafOf[fluid] == kNoNode) leafOf[fluid] = graph.addLeaf(fluid);
    return leafOf[fluid];
  };

  // Each target runs the MTCS pairing against the shared `known` map, so a
  // sub-mixture any earlier target prepared is reused instead of rebuilt.
  std::vector<NodeId> roots;
  roots.reserve(targets.size());
  for (const Ratio& target : targets) {
    std::vector<NodeId> carry;
    for (unsigned j = 0; j < d; ++j) {
      for (std::size_t fluid = 0; fluid < fluids; ++fluid) {
        if ((target.part(fluid) >> j) & 1u) {
          carry.push_back(leaf(fluid));
        }
      }
      if (carry.size() % 2 != 0) {
        throw std::logic_error("buildMultiTarget: odd node count at level " +
                               std::to_string(j));
      }
      std::stable_sort(carry.begin(), carry.end(), [&](NodeId a, NodeId b) {
        return valueLess(graph.node(a).value, graph.node(b).value);
      });
      std::vector<NodeId> next;
      next.reserve(carry.size() / 2);
      for (std::size_t i = 0; i + 1 < carry.size(); i += 2) {
        if (graph.node(carry[i]).value == graph.node(carry[i + 1]).value) {
          next.push_back(carry[i]);
          continue;
        }
        const MixtureValue value = MixtureValue::mix(
            graph.node(carry[i]).value, graph.node(carry[i + 1]).value);
        auto [it, inserted] = known.try_emplace(value, kNoNode);
        if (inserted) {
          it->second = graph.addMix(carry[i], carry[i + 1]);
        }
        next.push_back(it->second);
      }
      carry = std::move(next);
    }
    if (carry.size() != 1) {
      throw std::logic_error(
          "buildMultiTarget: did not converge to a single root for " +
          target.toString());
    }
    roots.push_back(carry.front());
  }
  graph.finalize(std::move(roots));
  return graph;
}

}  // namespace dmf::mixgraph
