// Ablation: split-error robustness of the base mixing algorithms. The ideal
// mix model hides a practical difference between MM, RMA and MTCS: deeper /
// wider graphs accumulate different worst-case concentration errors under
// imbalanced splits. This harness reports the first-order bounds against the
// ratio quantization error (deviations below it are invisible anyway).
#include <iostream>

#include "analysis/error_model.h"
#include "mixgraph/builders.h"
#include "protocols/protocols.h"
#include "report/table.h"
#include "workload/ratio_corpus.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("ablation_error");
  using namespace dmf;
  using mixgraph::Algorithm;

  std::cout << "# Ablation — worst-case target CF error under imbalanced "
               "splits\n\n";

  std::cout << "## Published protocols (split imbalance 5%, perfect "
               "dispensing)\n\n";
  report::Table table({"ratio", "quantum", "MM", "RMA", "MTCS"});
  for (const auto& protocol : protocols::publishedProtocols()) {
    std::vector<std::string> row{protocol.id};
    bool first = true;
    for (Algorithm algo : {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
      const mixgraph::MixingGraph g =
          mixgraph::buildGraph(protocol.ratio, algo);
      if (first) {
        row.push_back(report::fixed(analysis::quantizationError(g), 5));
        first = false;
      }
      row.push_back(report::fixed(
          analysis::targetError(g, {0.05, 0.0}).worstConcentration, 5));
    }
    table.addRow(std::move(row));
  }
  std::cout << table.render() << "\n";

  std::cout << "## Corpus average (L = 32) vs split imbalance\n\n";
  report::Table sweep({"imbalance", "MM", "RMA", "MTCS", "quantum"});
  const auto& corpus = workload::evaluationCorpus();
  for (double eps : {0.01, 0.02, 0.05, 0.10}) {
    double avg[3] = {0, 0, 0};
    std::size_t count = 0;
    for (std::size_t i = 0; i < corpus.size(); i += 29) {
      int a = 0;
      for (Algorithm algo :
           {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
        const mixgraph::MixingGraph g = mixgraph::buildGraph(corpus[i], algo);
        avg[a++] += analysis::targetError(g, {eps, 0.0}).worstConcentration;
      }
      ++count;
    }
    sweep.addRow({report::fixed(eps, 2),
                  report::fixed(avg[0] / static_cast<double>(count), 5),
                  report::fixed(avg[1] / static_cast<double>(count), 5),
                  report::fixed(avg[2] / static_cast<double>(count), 5),
                  report::fixed(1.0 / 64.0, 5)});
  }
  std::cout << sweep.render()
            << "\nReading: once the split imbalance pushes the bound past "
               "the quantum, extra\naccuracy bits in the ratio stop paying "
               "off — choose d accordingly.\n";
  return 0;
}
