#include "check/fuzzer.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "dmf/errors.h"
#include "engine/pass_cache.h"
#include "engine/recovery.h"
#include "engine/serialize.h"
#include "engine/streaming.h"
#include "fault/fault_injector.h"
#include "fleet/dispatcher.h"
#include "journal/journal.h"
#include "journal/stream_runner.h"
#include "obs/log.h"
#include "obs/scope.h"
#include "sched/ga_scheduler.h"
#include "sched/heterogeneous.h"
#include "sched/schedulers.h"
#include "server/service.h"
#include "workload/random_ratios.h"

namespace dmf::check {

namespace {

mixgraph::Algorithm parseAlgorithm(const std::string& name) {
  if (name == "MM") return mixgraph::Algorithm::MM;
  if (name == "RMA") return mixgraph::Algorithm::RMA;
  if (name == "MTCS") return mixgraph::Algorithm::MTCS;
  if (name == "RSM") return mixgraph::Algorithm::RSM;
  throw std::invalid_argument("FuzzCase: unknown algorithm \"" + name + "\"");
}

engine::Scheme parseScheme(const std::string& name) {
  if (name == "MMS") return engine::Scheme::kMMS;
  if (name == "SRS") return engine::Scheme::kSRS;
  if (name == "OMS") return engine::Scheme::kOMS;
  throw std::invalid_argument("FuzzCase: unknown scheme \"" + name + "\"");
}

}  // namespace

std::string FuzzCase::ratioString() const {
  std::string out;
  for (std::uint64_t p : ratioParts) {
    if (!out.empty()) out += ':';
    out += std::to_string(p);
  }
  return out;
}

std::string FuzzCase::toCli() const {
  return "dmfstream fuzz --replay '" + toJson().dump() + "'";
}

report::Json FuzzCase::toJson() const {
  report::Json json = report::Json::object();
  json.set("ratio", ratioString());
  json.set("algorithm", std::string(mixgraph::algorithmName(algorithm)));
  json.set("scheme", std::string(engine::schemeName(scheme)));
  json.set("demand", demand);
  json.set("mixers", std::uint64_t{mixers});
  json.set("storageCap", std::uint64_t{storageCap});
  json.set("faultSpec", faultSpec);
  json.set("faultSeed", faultSeed);
  return json;
}

FuzzCase FuzzCase::fromJson(const report::Json& json) {
  if (!json.isObject()) {
    throw std::invalid_argument("FuzzCase: replay seed must be a JSON object");
  }
  FuzzCase c;
  try {
    const auto ratio = Ratio::parse(json.at("ratio").asString());
    if (!ratio.has_value()) {
      throw std::invalid_argument("FuzzCase: malformed ratio string");
    }
    c.ratioParts = ratio->parts();
    c.algorithm = parseAlgorithm(json.at("algorithm").asString());
    c.scheme = parseScheme(json.at("scheme").asString());
    c.demand = json.at("demand").asUint();
    c.mixers = static_cast<unsigned>(json.at("mixers").asUint());
    c.storageCap = static_cast<unsigned>(json.at("storageCap").asUint());
    c.faultSpec = json.at("faultSpec").asString();
    c.faultSeed = json.at("faultSeed").asUint();
  } catch (const std::out_of_range& e) {
    throw std::invalid_argument(std::string("FuzzCase: missing field: ") +
                                e.what());
  } catch (const std::logic_error& e) {
    throw std::invalid_argument(std::string("FuzzCase: bad field type: ") +
                                e.what());
  }
  return c;
}

std::uint64_t FuzzCase::cost() const {
  const std::uint64_t sum =
      std::accumulate(ratioParts.begin(), ratioParts.end(), std::uint64_t{0});
  return demand * (std::uint64_t{1} << 20) + sum * (std::uint64_t{1} << 12) +
         ratioParts.size() * (std::uint64_t{1} << 8) +
         std::uint64_t{mixers} * 16 + std::uint64_t{storageCap} * 4 +
         (faultSpec.empty() ? 0 : 2) +
         (algorithm == mixgraph::Algorithm::MM ? 0 : 1);
}

Fuzzer::Fuzzer(FuzzOptions options) : options_(std::move(options)) {}

FuzzCase Fuzzer::generate(std::mt19937_64& rng) const {
  FuzzCase c;
  const unsigned accuracy = 2 + static_cast<unsigned>(rng() % 5);  // d in 2..6
  const std::uint64_t sum = std::uint64_t{1} << accuracy;
  const std::size_t parts =
      2 + static_cast<std::size_t>(
              rng() % (std::min<std::uint64_t>(6, sum) - 1));
  workload::RandomRatioGenerator gen(sum, parts, rng());
  c.ratioParts = gen.next().parts();
  constexpr mixgraph::Algorithm kAlgos[] = {
      mixgraph::Algorithm::MM, mixgraph::Algorithm::RMA,
      mixgraph::Algorithm::MTCS, mixgraph::Algorithm::RSM};
  c.algorithm = kAlgos[rng() % 4];
  constexpr engine::Scheme kSchemes[] = {
      engine::Scheme::kSRS, engine::Scheme::kSRS, engine::Scheme::kSRS,
      engine::Scheme::kMMS, engine::Scheme::kOMS};
  c.scheme = kSchemes[rng() % 5];
  c.demand = 1 + rng() % 48;
  if (rng() % 4 == 0) {
    // Snap onto the paper's zero-waste alignment D = p * 2^d.
    c.demand = (1 + rng() % 3) * sum;
  }
  c.mixers = 1 + static_cast<unsigned>(rng() % 5);
  c.storageCap =
      rng() % 3 == 0 ? 0 : 1 + static_cast<unsigned>(rng() % 8);
  if (rng() % 2 == 0) {
    c.faultSpec.clear();
  } else {
    const char* kSpecs[] = {
        "split=0.05", "loss=0.03", "dispense=0.02",
        "split=0.04,loss=0.02,eps=0.2",
        "split=0.02,loss=0.01,dispense=0.01,electrode=0.002"};
    c.faultSpec = kSpecs[rng() % 5];
  }
  c.faultSeed = 1 + rng() % 1000;
  return c;
}

namespace {

// One-field tweak of a corpus case (coverage-guided exploration around
// shapes that were new).
FuzzCase mutate(FuzzCase c, std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0: {
      // Signed nudge in [-3, +3]: the obvious `demand + rng() % 7 - 3`
      // wraps to ~2^64 on a small draw (the exact bug class the fuzzer
      // hunts — it found this very line on its first long sweep).
      const auto nudge = static_cast<std::int64_t>(rng() % 7) - 3;
      const auto demand = static_cast<std::int64_t>(std::min<std::uint64_t>(
          c.demand, std::uint64_t{1} << 20));
      c.demand = static_cast<std::uint64_t>(
          std::max<std::int64_t>(1, demand + nudge));
      break;
    }
    case 1: c.demand = std::min<std::uint64_t>(c.demand * 2, 4096); break;
    case 2: c.mixers = 1 + static_cast<unsigned>((c.mixers + rng()) % 6);
            break;
    case 3: c.storageCap = static_cast<unsigned>((c.storageCap + rng()) % 9);
            break;
    case 4: {
      constexpr mixgraph::Algorithm kAlgos[] = {
          mixgraph::Algorithm::MM, mixgraph::Algorithm::RMA,
          mixgraph::Algorithm::MTCS, mixgraph::Algorithm::RSM};
      c.algorithm = kAlgos[rng() % 4];
      break;
    }
    default: c.faultSeed = 1 + rng() % 1000; break;
  }
  return c;
}

// Coverage proxy: a hash of the structural shape the case exercises. Built
// from a fresh (cheap) forest so two parameterizations reaching the same
// forest count once.
std::uint64_t shapeSignature(const FuzzCase& c) {
  std::uint64_t h = 1469598103934665603ull;
  const auto fold = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  try {
    const Ratio ratio(std::vector<std::uint64_t>(c.ratioParts));
    const mixgraph::MixingGraph graph =
        mixgraph::buildGraph(ratio, c.algorithm);
    const forest::TaskForest forest(graph, c.demand);
    fold(static_cast<std::uint64_t>(c.algorithm));
    fold(forest.taskCount());
    fold(forest.depth());
    fold(forest.stats().waste);
    fold(forest.stats().componentTrees);
    fold(c.mixers);
    fold(c.storageCap == 0 ? 0 : 1 + c.storageCap);
    fold(c.faultSpec.empty() ? 0 : 1);
  } catch (const std::exception&) {
    fold(0xdead);
  }
  return h;
}

std::set<std::string> oracleNames(const std::vector<std::string>& failures) {
  std::set<std::string> names;
  for (const std::string& f : failures) {
    names.insert(f.substr(0, f.find(':')));
  }
  return names;
}

// --- crash-scope machinery --------------------------------------------------

/// Canonical byte image of a run's output: the plan dump plus every
/// per-pass recovery dump. Two runs agree iff these strings are equal.
std::string runBytes(const journal::StreamRunResult& result) {
  std::string out = engine::toJson(result.plan).dump();
  for (const engine::RecoveryReport& report : result.recovery) {
    out += '\n';
    out += engine::toJson(report).dump();
  }
  return out;
}

/// A per-case scratch journal directory; pid + counter keeps parallel fuzz
/// processes (ctest -j) from colliding. Removed by DirCleanup below.
std::string freshCrashDir() {
  static std::atomic<std::uint64_t> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("dmf_fuzz_crash_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1))))
      .string();
}

struct DirCleanup {
  std::string dir;
  ~DirCleanup() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

void writeRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Every legal way a resume can end. Anything outside this taxonomy —
/// a wrong answer, an untyped exception, a request-mismatch rejection of a
/// journal the fuzzer itself wrote — is a finding.
enum class ResumeOutcome {
  kIdentical,  // resumed output byte-identical to the uninterrupted run
  kDiverged,   // resumed but produced different bytes
  kCorrupt,    // typed CorruptJournalError (clean detection)
  kRejected,   // std::invalid_argument (fingerprint/usage rejection)
  kError,      // any other exception
};

ResumeOutcome attemptResume(const engine::MdstEngine& engine,
                            const journal::StreamRunRequest& request,
                            const std::string& dir,
                            const std::string& refBytes, std::string* detail) {
  try {
    engine::PassCache cache;
    journal::StreamRunOptions options;
    options.journalDir = dir;
    options.resume = true;
    const journal::StreamRunResult result =
        journal::runStream(engine, request, cache, options);
    if (runBytes(result) == refBytes) return ResumeOutcome::kIdentical;
    *detail = "resumed output differs from the uninterrupted run";
    return ResumeOutcome::kDiverged;
  } catch (const journal::CorruptJournalError& e) {
    *detail = e.what();
    return ResumeOutcome::kCorrupt;
  } catch (const std::invalid_argument& e) {
    *detail = e.what();
    return ResumeOutcome::kRejected;
  } catch (const std::exception& e) {
    *detail = e.what();
    return ResumeOutcome::kError;
  }
}

}  // namespace

CheckResult Fuzzer::runCase(const FuzzCase& c) const {
  CheckResult out;
  const std::string& scope = options_.scope;
  const auto inScope = [&scope](const char* stage) {
    return scope == "all" || scope == stage;
  };
  try {
    const Ratio ratio(std::vector<std::uint64_t>(c.ratioParts));
    const engine::MdstEngine engine(ratio);
    const mixgraph::MixingGraph& graph = engine.baseGraph(c.algorithm);
    const forest::TaskForest forest(graph, c.demand);
    ++out.checksRun;
    forest.validateOrThrow();  // production self-check, then the oracles
    checkForestConservation(forest, out);
    checkForestWiring(forest, out);
    checkMixtureCorrectness(forest, out);
    if (scope == "forest") return out;

    const unsigned mixers = std::max(1u, c.mixers);
    sched::Schedule srs;
    if (inScope("sched") || inScope("fault")) {
      srs = sched::scheduleSRS(forest, mixers);
    }

    if (inScope("sched")) {
      const sched::Schedule mms = sched::scheduleMMS(forest, mixers);
      const sched::Schedule oms = sched::scheduleOMS(forest, mixers);
      checkScheduledForest(forest, mms, 0, out);
      checkScheduledForest(forest, srs, 0, out);
      checkScheduledForest(forest, sched::scheduleSRSGreedy(forest, mixers),
                           0, out);
      checkScheduledForest(forest, oms, 0, out);
      checkSrsContract(forest, srs, mms, out);
      // Differential: a unit MixerBank must reduce exactly to the paper's
      // unit-cycle model, so the heterogeneous scheduler and OMS (both
      // longest-chain list schedulers) must complete at the same cycle.
      const sched::MixerBank bank = sched::uniformBank(mixers);
      const sched::Schedule het = sched::scheduleHeterogeneous(forest, bank);
      ++out.checksRun;
      try {
        sched::validateHeterogeneous(forest, het, bank);
      } catch (const std::logic_error& e) {
        out.fail("het-oms", std::string("invalid unit-bank schedule: ") +
                                e.what());
      }
      ++out.checksRun;
      if (het.completionTime != oms.completionTime) {
        out.fail("het-oms",
                 "unit MixerBank completes at " +
                     std::to_string(het.completionTime) + ", OMS at " +
                     std::to_string(oms.completionTime));
      }
      if (c.storageCap > 0) {
        try {
          const sched::Schedule capped =
              sched::scheduleStorageCapped(forest, mixers, c.storageCap);
          checkScheduledForest(forest, capped, c.storageCap, out);
        } catch (const InfeasibleError&) {
          // A too-tight cap is a legal answer, not a finding.
        }
      }
      if (forest.taskCount() <= 64) {
        sched::GaOptions ga;
        ga.seed = c.faultSeed;
        ga.population = 8;
        ga.generations = 6;
        ga.elites = 1;
        checkScheduledForest(forest, sched::scheduleGA(forest, mixers, ga), 0,
                             out);
      }
    }

    if (inScope("stream")) {
      // Differential: batched ladder evaluation must be element-wise
      // identical to the scalar path it replaces — same forest, same
      // schedule, same storage count for every demand, regardless of which
      // entries were cache hits.
      const std::uint64_t top = std::min<std::uint64_t>(c.demand, 24);
      std::vector<std::uint64_t> ladder;
      for (std::uint64_t d = 1; d <= top; ++d) ladder.push_back(d);
      if (c.demand > top) ladder.push_back(c.demand);
      engine::PassCache fresh;
      const std::vector<engine::StreamingPass> batched =
          fresh.evaluateLadder(engine, c.algorithm, c.scheme, mixers, ladder);
      ++out.checksRun;
      for (std::size_t i = 0; i < ladder.size(); ++i) {
        const engine::StreamingPass scalar = engine::evaluatePass(
            engine, c.algorithm, c.scheme, mixers, ladder[i]);
        if (batched[i].demand != scalar.demand ||
            batched[i].cycles != scalar.cycles ||
            batched[i].storageUnits != scalar.storageUnits ||
            batched[i].waste != scalar.waste ||
            batched[i].inputDroplets != scalar.inputDroplets ||
            batched[i].mixSplits != scalar.mixSplits) {
          out.fail("ladder-scalar",
                   "evaluateLadder diverges from evaluatePass at demand " +
                       std::to_string(ladder[i]) + " (batched " +
                       std::to_string(batched[i].cycles) + " cycles/" +
                       std::to_string(batched[i].storageUnits) +
                       " storage, scalar " + std::to_string(scalar.cycles) +
                       " cycles/" + std::to_string(scalar.storageUnits) +
                       " storage)");
          break;
        }
      }
    }

    if (inScope("stream") && c.storageCap > 0) {
      engine::StreamingRequest request;
      request.algorithm = c.algorithm;
      request.scheme = c.scheme;
      request.demand = c.demand;
      request.storageCap = c.storageCap;
      request.mixers = mixers;
      request.jobs = 1;
      try {
        const engine::StreamingPlan serial =
            engine::planStreaming(engine, request);
        engine::StreamingRequest parallelRequest = request;
        parallelRequest.jobs = 4;
        const engine::StreamingPlan threaded =
            engine::planStreaming(engine, parallelRequest);
        ++out.checksRun;
        if (engine::toJson(serial).dump() != engine::toJson(threaded).dump()) {
          out.fail("jobs-identical",
                   "planStreaming JSON differs between --jobs 1 and 4");
        }
        checkStreamingPlan(engine, request, serial, out);
        // Round-trip: toJson -> dump -> parse -> fromJson -> toJson must
        // reproduce the original bytes (journal resume depends on it).
        ++out.checksRun;
        const std::string dumped = engine::toJson(serial).dump();
        if (engine::toJson(
                engine::streamingPlanFromJson(report::Json::parse(dumped)))
                .dump() != dumped) {
          out.fail("serialize-roundtrip",
                   "StreamingPlan JSON round-trip is not lossless");
        }
        const engine::StreamingPlan optimized =
            engine::planStreamingOptimized(engine, request);
        checkStreamingPlan(engine, request, optimized, out);
        ++out.checksRun;
        if (optimized.totalCycles > serial.totalCycles) {
          out.fail("stream-optimized",
                   "optimized plan takes " +
                       std::to_string(optimized.totalCycles) +
                       " cycles, plain planStreaming " +
                       std::to_string(serial.totalCycles));
        }
      } catch (const InfeasibleError&) {
        // Cap below any feasible pass: a legal outcome.
      }
    }

    if (inScope("server") && c.storageCap > 0) {
      // Differential: the serving layer must be a transparent cache over
      // the library — cold response == warm (cached) response == the
      // direct planStreaming dump, byte for byte, with the cache keyed by
      // the reduced ratio.
      server::PlanService service{server::ServiceOptions{}};
      report::Json line = report::Json::object();
      line.set("op", std::string("plan"))
          .set("ratio", ratio.toString())
          .set("demand", c.demand)
          .set("storage", std::uint64_t{c.storageCap})
          .set("mixers", std::uint64_t{mixers})
          .set("algo", std::string(mixgraph::algorithmName(c.algorithm)))
          .set("scheme", std::string(engine::schemeName(c.scheme)));
      const std::string request = line.dump();
      const report::Json cold = report::Json::parse(service.handle(request));
      const report::Json warm = report::Json::parse(service.handle(request));
      ++out.checksRun;
      if (cold.at("ok").asBool() != warm.at("ok").asBool()) {
        out.fail("server-cache",
                 "cold and warm responses disagree on feasibility");
      } else if (cold.at("ok").asBool()) {
        if (cold.at("source").asString() != "planned" ||
            warm.at("source").asString() != "cache") {
          out.fail("server-cache",
                   "expected planned-then-cache, got " +
                       cold.at("source").asString() + " then " +
                       warm.at("source").asString());
        }
        ++out.checksRun;
        if (cold.at("plan").dump() != warm.at("plan").dump()) {
          out.fail("server-cache",
                   "cache hit is not byte-identical to the cold plan");
        }
        const engine::MdstEngine reducedEngine(ratio.reduced());
        engine::StreamingRequest direct;
        direct.algorithm = c.algorithm;
        direct.scheme = c.scheme;
        direct.demand = c.demand;
        direct.storageCap = c.storageCap;
        direct.mixers = mixers;
        direct.jobs = 1;
        ++out.checksRun;
        if (cold.at("plan").dump() !=
            engine::toJson(engine::planStreaming(reducedEngine, direct))
                .dump()) {
          out.fail("server-engine",
                   "served plan differs from the direct planStreaming dump");
        }
      }
      // Infeasible either way is legal — the cap can be below any pass.
    }

    if (inScope("crash") && c.storageCap > 0) {
      // Differential: a journaled run killed at a pass boundary and resumed
      // must be byte-identical to its uninterrupted twin; a journal the
      // filesystem tore (truncation) silently repairs to the same bytes;
      // a journal something *damaged* (bit flip inside a committed frame)
      // is detected as a typed CorruptJournalError — never a wrong answer.
      journal::StreamRunRequest run;
      run.streaming.algorithm = c.algorithm;
      run.streaming.scheme = c.scheme;
      run.streaming.demand = c.demand;
      run.streaming.storageCap = c.storageCap;
      run.streaming.mixers = mixers;
      run.streaming.jobs = 1;
      run.inject = !c.faultSpec.empty();
      if (run.inject) run.faults = fault::FaultSpec::parse(c.faultSpec);
      run.faultSeed = c.faultSeed;
      try {
        engine::PassCache refCache;
        const journal::StreamRunResult ref =
            journal::runStream(engine, run, refCache);
        const std::string refBytes = runBytes(ref);
        const std::uint64_t passCount = ref.plan.passes.size();
        if (passCount > 0) {
          const std::string dir = freshCrashDir();
          const DirCleanup cleanup{dir};
          journal::StreamRunOptions crashOptions;
          crashOptions.journalDir = dir;
          crashOptions.snapshotEvery = 1 + static_cast<unsigned>(c.faultSeed % 3);
          crashOptions.stopAfterPass = 1 + c.faultSeed % passCount;
          engine::PassCache cache;
          const journal::StreamRunResult crashed =
              journal::runStream(engine, run, cache, crashOptions);
          ++out.checksRun;
          if (!crashed.partial) {
            out.fail("crash-resume", "stopAfterPass " +
                                         std::to_string(crashOptions.stopAfterPass) +
                                         " did not cut the run short");
          }
          // Freeze the crashed on-disk image so every sweep below starts
          // from the same wreckage.
          const std::string snapPath = dir + "/snapshot.json";
          const std::string logPath = dir + "/journal.log";
          const std::string snapBytes =
              journal::readFileIfExists(snapPath).value_or(std::string());
          const std::string logBytes =
              journal::readFileIfExists(logPath).value_or(std::string());
          std::string detail;

          ++out.checksRun;
          if (attemptResume(engine, run, dir, refBytes, &detail) !=
              ResumeOutcome::kIdentical) {
            out.fail("crash-resume",
                     "resume after crash at pass " +
                         std::to_string(crashOptions.stopAfterPass) + "/" +
                         std::to_string(passCount) + ": " + detail);
          }

          // Torn tails: any truncation of the log must silently repair and
          // still reproduce the reference bytes (a truncated *snapshot*
          // can only mean damage — publication is atomic — so that case
          // lands in the corruption sweep below).
          std::set<std::size_t> cuts;
          if (!logBytes.empty()) {
            cuts.insert(logBytes.size() - 1);
            cuts.insert(logBytes.size() / 2);
            cuts.insert(0);
          }
          for (const std::size_t cut : cuts) {
            writeRaw(snapPath, snapBytes);
            writeRaw(logPath, logBytes.substr(0, cut));
            ++out.checksRun;
            if (attemptResume(engine, run, dir, refBytes, &detail) !=
                ResumeOutcome::kIdentical) {
              out.fail("crash-truncate",
                       "resume after log truncated to " + std::to_string(cut) +
                           " of " + std::to_string(logBytes.size()) +
                           " bytes: " + detail);
            }
          }

          // Snapshot truncation = torn atomic publish = corruption.
          for (const std::size_t cut :
               {snapBytes.size() / 2, snapBytes.size() - 1}) {
            writeRaw(snapPath, snapBytes.substr(0, cut));
            writeRaw(logPath, logBytes);
            ++out.checksRun;
            if (attemptResume(engine, run, dir, refBytes, &detail) !=
                ResumeOutcome::kCorrupt) {
              out.fail("crash-corrupt-detect",
                       "snapshot truncated to " + std::to_string(cut) +
                           " bytes was not detected as corruption: " + detail);
            }
          }

          // Bit flip inside the (single-frame) snapshot: the CRC must trip.
          {
            const std::size_t pos =
                (c.faultSeed * 2654435761ull) % snapBytes.size();
            std::string damaged = snapBytes;
            damaged[pos] = static_cast<char>(
                static_cast<unsigned char>(damaged[pos]) ^
                (1u << (c.faultSeed % 8)));
            writeRaw(snapPath, damaged);
            writeRaw(logPath, logBytes);
            ++out.checksRun;
            if (attemptResume(engine, run, dir, refBytes, &detail) !=
                ResumeOutcome::kCorrupt) {
              out.fail("crash-corrupt-detect",
                       "snapshot bit flip at byte " + std::to_string(pos) +
                           " was not detected as corruption: " + detail);
            }
          }

          // Bit flip in the log: either the CRC trips (corrupt) or the flip
          // turned the final frame's length field into a longer promise —
          // a torn tail, repaired away, passes redone, bytes identical.
          if (!logBytes.empty()) {
            const std::size_t pos =
                (c.faultSeed * 2654435761ull + 7919) % logBytes.size();
            std::string damaged = logBytes;
            damaged[pos] = static_cast<char>(
                static_cast<unsigned char>(damaged[pos]) ^
                (1u << ((c.faultSeed + 3) % 8)));
            writeRaw(snapPath, snapBytes);
            writeRaw(logPath, damaged);
            ++out.checksRun;
            const ResumeOutcome outcome =
                attemptResume(engine, run, dir, refBytes, &detail);
            if (outcome != ResumeOutcome::kCorrupt &&
                outcome != ResumeOutcome::kIdentical) {
              out.fail("crash-corrupt-detect",
                       "log bit flip at byte " + std::to_string(pos) +
                           " was neither detected nor repaired: " + detail);
            }
          }
        }
      } catch (const InfeasibleError&) {
        // Cap below any feasible pass: a legal outcome.
      }
    }

    if (inScope("fleet") && c.storageCap > 0) {
      // Fleet oracles: placement is deterministic under --jobs, every
      // admitted pass executes exactly once, chip busy time partitions into
      // user service, and a mid-run chip kill never changes the plans —
      // only the placement log.
      fleet::UserStream primary;
      primary.ratio = ratio;
      primary.request.algorithm = c.algorithm;
      primary.request.scheme = c.scheme;
      primary.request.demand = std::min<std::uint64_t>(c.demand, 12);
      primary.request.storageCap = c.storageCap;
      primary.request.mixers = mixers;
      primary.weight = 2.0;
      fleet::UserStream light = primary;
      light.ratio = Ratio(std::vector<std::uint64_t>{1, 3});
      light.request.demand = 1 + c.demand % 8;
      light.weight = 1.0;
      fleet::UserStream tail = light;
      tail.request.demand = 1 + c.faultSeed % 6;
      const std::vector<fleet::UserStream> users{primary, light, tail};

      fleet::DispatcherOptions options;
      // Every chip can host every user (effective mixers >= the request's,
      // storage >= the cap that bounds any plan), so a single kill degrades
      // nothing — migration is the only legal response.
      options.chips = {{mixers, c.storageCap, 0},
                       {mixers + 1, c.storageCap + 2, 1},
                       {mixers + 2, c.storageCap + 1, 0}};
      static const char* kPolicies[] = {"fifo", "rr", "wfq"};
      options.policy = kPolicies[c.demand % 3];
      options.weights = {2.0, 1.0, 1.0};
      options.quantum = (c.faultSeed % 2 == 0) ? 0.0 : 16.0;
      options.jobs = 1;
      try {
        const fleet::FleetResult serial = fleet::dispatchFleet(users, options);
        fleet::DispatcherOptions threadedOptions = options;
        threadedOptions.jobs = 2;
        const fleet::FleetResult threaded =
            fleet::dispatchFleet(users, threadedOptions);
        ++out.checksRun;
        if (serial.toJson(true).dump() != threaded.toJson(true).dump()) {
          out.fail("fleet-jobs-identical",
                   "fleet dispatch JSON differs between --jobs 1 and 2");
        }
        // Exactly-once: each (user, passIndex) completes once, and the
        // completed count matches the plans' pass counts.
        std::set<std::pair<unsigned, std::uint64_t>> completed;
        std::uint64_t expectedPasses = 0;
        for (const fleet::UserReport& user : serial.users) {
          expectedPasses += user.plan.passes.size();
        }
        ++out.checksRun;
        bool duplicated = false;
        for (const fleet::PassRecord& record : serial.log) {
          if (!record.completed) continue;
          if (!completed.insert({record.user, record.passIndex}).second) {
            out.fail("fleet-exactly-once",
                     "pass (" + std::to_string(record.user) + ", " +
                         std::to_string(record.passIndex) +
                         ") completed more than once");
            duplicated = true;
            break;
          }
        }
        if (!duplicated && completed.size() != expectedPasses) {
          out.fail("fleet-exactly-once",
                   std::to_string(completed.size()) + " of " +
                       std::to_string(expectedPasses) +
                       " admitted passes completed");
        }
        // Conservation: completed chip time is exactly delivered service.
        std::uint64_t busy = 0;
        std::uint64_t service = 0;
        for (const fleet::ChipReport& chip : serial.chips) {
          busy += chip.busyCycles;
        }
        for (const fleet::UserReport& user : serial.users) {
          service += user.serviceCycles;
        }
        ++out.checksRun;
        if (busy != service) {
          out.fail("fleet-conservation",
                   "chip busy cycles (" + std::to_string(busy) +
                       ") != user service cycles (" +
                       std::to_string(service) + ")");
        }
        // Kill-invariance: fail one chip mid-run; the migrated run must be
        // clean (no degradation, at least one migration when the kill cuts
        // a busy chip) and its plans byte-identical to the no-kill run.
        if (serial.makespan >= 2) {
          fleet::DispatcherOptions killOptions = options;
          killOptions.kill.active = true;
          killOptions.kill.chip = static_cast<unsigned>(c.faultSeed % 3);
          killOptions.kill.cycle = serial.makespan / 2;
          const fleet::FleetResult killed =
              fleet::dispatchFleet(users, killOptions);
          ++out.checksRun;
          if (killed.degraded) {
            out.fail("fleet-migrate",
                     "kill of one chip in a fully-capable fleet degraded "
                     "the run: " +
                         killed.degradationReason);
          }
          ++out.checksRun;
          if (serial.plansJson().dump() != killed.plansJson().dump()) {
            out.fail("fleet-kill-invariant",
                     "per-user plans changed under a mid-run chip kill");
          }
        }
      } catch (const InfeasibleError&) {
        // Cap below any feasible pass: a legal outcome.
      }
    }

    if (inScope("fault")) {
      engine::RecoveryOptions options;
      options.seed = c.faultSeed;
      options.storageCap = c.storageCap;
      if (!c.faultSpec.empty()) {
        options.faults = fault::FaultSpec::parse(c.faultSpec);
      }
      const engine::RecoveryEngine recovery(options);
      const engine::RecoveryReport first = recovery.run(forest, srs);
      ++out.checksRun;
      if (first.delivered > first.demand ||
          first.shortfall != first.demand - first.delivered) {
        out.fail("recovery", "delivered/shortfall do not partition demand");
      }
      ++out.checksRun;
      if (first.roundsUsed != first.rounds.size() ||
          first.roundsUsed > first.retryBudget) {
        out.fail("recovery", "round accounting inconsistent");
      }
      // Round-trip: the recovery report must survive serialization exactly
      // (the journal stores per-pass reports as JSON records).
      ++out.checksRun;
      const std::string dumpedReport = engine::toJson(first).dump();
      if (engine::toJson(
              engine::recoveryReportFromJson(report::Json::parse(dumpedReport)))
              .dump() != dumpedReport) {
        out.fail("serialize-roundtrip",
                 "RecoveryReport JSON round-trip is not lossless");
      }
      if (c.faultSpec.empty()) {
        // Differential: a fault-free replay must reproduce the schedule
        // exactly — full delivery, no repairs, same completion cycle.
        ++out.checksRun;
        if (first.delivered != forest.demand() || !first.rounds.empty() ||
            !first.faults.empty() ||
            first.completionCycle != srs.completionTime) {
          out.fail("replay",
                   "fault-free recovery replay diverges from the schedule "
                   "(delivered " +
                       std::to_string(first.delivered) + "/" +
                       std::to_string(forest.demand()) + ", completion " +
                       std::to_string(first.completionCycle) + " vs " +
                       std::to_string(srs.completionTime) + ", " +
                       std::to_string(first.rounds.size()) + " rounds)");
        }
      } else {
        // Differential: one seed, two runs, byte-identical reports.
        const engine::RecoveryReport second = recovery.run(forest, srs);
        ++out.checksRun;
        if (engine::toJson(first).dump() != engine::toJson(second).dump()) {
          out.fail("recovery-determinism",
                   "two runs with one seed produced different reports");
        }
      }
    }
  } catch (const InfeasibleError& e) {
    ++out.checksRun;
    out.fail("exception", std::string("unguarded InfeasibleError: ") +
                              e.what());
  } catch (const std::exception& e) {
    ++out.checksRun;
    out.fail("exception", e.what());
  }
  return out;
}

FuzzCase Fuzzer::shrink(
    const FuzzCase& c, const std::function<bool(const FuzzCase&)>& stillFails,
    unsigned* stepsOut) {
  FuzzCase best = c;
  unsigned steps = 0;
  bool improved = true;
  while (improved && steps < 200) {
    improved = false;
    std::vector<FuzzCase> candidates;
    const auto propose = [&](FuzzCase v) {
      if (v.cost() < best.cost()) candidates.push_back(std::move(v));
    };
    for (std::uint64_t d :
         {std::uint64_t{1}, std::uint64_t{2}, best.demand / 2,
          best.demand - 1}) {
      if (d >= 1 && d < best.demand) {
        FuzzCase v = best;
        v.demand = d;
        propose(std::move(v));
      }
    }
    const std::uint64_t sum = std::accumulate(
        best.ratioParts.begin(), best.ratioParts.end(), std::uint64_t{0});
    if (best.ratioParts.size() > 2) {
      for (std::size_t i = 0; i + 1 < best.ratioParts.size(); ++i) {
        FuzzCase v = best;  // merge part i into its neighbour (sum preserved)
        v.ratioParts[i + 1] += v.ratioParts[i];
        v.ratioParts.erase(v.ratioParts.begin() +
                           static_cast<std::ptrdiff_t>(i));
        propose(std::move(v));
      }
    }
    if (!(best.ratioParts.size() == 2 && best.ratioParts[0] == 1)) {
      FuzzCase v = best;
      v.ratioParts = {1, sum - 1};
      propose(std::move(v));
    }
    if (sum >= 8) {
      FuzzCase v = best;  // drop one accuracy level
      v.ratioParts = {1, sum / 2 - 1};
      propose(std::move(v));
    }
    for (unsigned m : {1u, best.mixers / 2, best.mixers - 1}) {
      if (m >= 1 && m < best.mixers) {
        FuzzCase v = best;
        v.mixers = m;
        propose(std::move(v));
      }
    }
    for (unsigned cap : {0u, best.storageCap / 2}) {
      if (cap < best.storageCap) {
        FuzzCase v = best;
        v.storageCap = cap;
        propose(std::move(v));
      }
    }
    if (!best.faultSpec.empty()) {
      FuzzCase v = best;
      v.faultSpec.clear();
      propose(std::move(v));
    }
    if (best.algorithm != mixgraph::Algorithm::MM) {
      FuzzCase v = best;
      v.algorithm = mixgraph::Algorithm::MM;
      propose(std::move(v));
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const FuzzCase& a, const FuzzCase& b) {
                return a.cost() < b.cost();
              });
    for (FuzzCase& candidate : candidates) {
      ++steps;
      if (steps >= 200) break;
      if (stillFails(candidate)) {
        best = std::move(candidate);
        improved = true;
        break;
      }
    }
  }
  if (stepsOut != nullptr) *stepsOut = steps;
  return best;
}

FuzzReport Fuzzer::run() const {
  static const std::set<std::string> kScopes = {
      "all", "forest", "sched", "stream", "fault", "server", "crash",
      "fleet"};
  if (kScopes.find(options_.scope) == kScopes.end()) {
    throw std::invalid_argument(
        "Fuzzer: unknown scope \"" + options_.scope +
        "\" (all|forest|sched|stream|fault|server|crash|fleet)");
  }
  FuzzReport report;
  std::mt19937_64 rng(options_.seed);
  const auto start = std::chrono::steady_clock::now();
  std::set<std::uint64_t> shapes;
  std::vector<FuzzCase> corpus;
  for (std::uint64_t i = 0; i < options_.iterations; ++i) {
    if (options_.timeBudgetSeconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= options_.timeBudgetSeconds) {
        report.timedOut = true;
        break;
      }
    }
    FuzzCase c = (!corpus.empty() && rng() % 4 == 0)
                     ? mutate(corpus[rng() % corpus.size()], rng)
                     : generate(rng);
    const auto caseStart = std::chrono::steady_clock::now();
    const CheckResult result = runCase(c);
    const auto caseNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - caseStart)
            .count());
    obs::count("check.fuzz.cases");
    obs::count("check.fuzz.oracle_checks", result.checksRun);
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->histogram("check.fuzz.case_nanos",
                   {100'000, 1'000'000, 10'000'000, 100'000'000})
          .observe(caseNanos);
    }
    ++report.casesRun;
    report.checksRun += result.checksRun;
    if (shapes.insert(shapeSignature(c)).second && corpus.size() < 64) {
      corpus.push_back(c);
    }
    if (!result.ok()) {
      obs::count("check.fuzz.failures");
      FuzzFinding finding;
      finding.original = c;
      finding.iteration = i;
      const std::set<std::string> names = oracleNames(result.failures);
      const auto stillFails = [this, &names](const FuzzCase& candidate) {
        const CheckResult r = runCase(candidate);
        const std::set<std::string> got = oracleNames(r.failures);
        return std::any_of(names.begin(), names.end(),
                           [&got](const std::string& n) {
                             return got.find(n) != got.end();
                           });
      };
      finding.reproducer = shrink(c, stillFails, &finding.shrinkSteps);
      finding.failures = runCase(finding.reproducer).failures;
      {
        std::string oracles;
        for (const std::string& n : oracleNames(finding.failures)) {
          if (!oracles.empty()) oracles += ",";
          oracles += n;
        }
        obs::LogLine(obs::LogLevel::kError, "check.fuzz.finding")
            .num("iteration", finding.iteration)
            .num("shrink_steps", finding.shrinkSteps)
            .str("oracles", oracles);
      }
      report.findings.push_back(std::move(finding));
    }
  }
  report.distinctShapes = shapes.size();
  return report;
}

std::string renderReport(const FuzzReport& report) {
  std::string out = "fuzz: " + std::to_string(report.casesRun) + " cases, " +
                    std::to_string(report.checksRun) + " oracle checks, " +
                    std::to_string(report.distinctShapes) +
                    " distinct forest shapes" +
                    (report.timedOut ? " (time budget hit)" : "") + "\n";
  if (report.ok()) {
    out += "fuzz: all invariants held\n";
    return out;
  }
  out += "fuzz: " + std::to_string(report.findings.size()) + " finding(s)\n";
  for (const FuzzFinding& f : report.findings) {
    out += "--- finding at iteration " + std::to_string(f.iteration) +
           " (shrunk in " + std::to_string(f.shrinkSteps) + " steps)\n";
    for (const std::string& failure : f.failures) {
      out += "    " + failure + "\n";
    }
    out += "  reproduce: " + f.reproducer.toCli() + "\n";
    out += "  seed json: " + f.reproducer.toJson().dump() + "\n";
  }
  return out;
}

}  // namespace dmf::check
