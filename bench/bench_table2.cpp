// Reproduces Table 2: Tc, q and I for the five published target ratios
// (L = 256, D = 32) under nine scheme combinations:
//   A: RMM          B: MM+MMS     C: MM+SRS
//   D: RRMA         E: RMA+MMS    F: RMA+SRS
//   G: RMTCS        H: MTCS+MMS   I: MTCS+SRS
// All schemes run with Mlb mixers of the corresponding MM tree, as in the
// paper. Paper reference rows are printed below each measured row.
#include <iostream>

#include "engine/baseline.h"
#include "engine/mdst.h"
#include "protocols/protocols.h"
#include "report/table.h"

#include "bench_obs.h"

namespace {

struct PaperRow {
  // Tc for columns A..I, then q for A..I, then I for A, B/C, D, E/F, G, H/I.
  const char* tc;
  const char* q;
  const char* inputs;
};

// Values transcribed from Table 2 of the paper.
const PaperRow kPaper[5] = {
    {"128 15 16 128 12 12 128 15 16", "1 13 8 0 12 8 2 13 8",
     "272 41 304 43 240 39"},
    {"128 34 34 128 34 34 128 34 34", "0 15 4 0 15 4 0 15 4",
     "144 35 144 35 144 35"},
    {"128 12 13 128 12 14 128 11 13", "1 9 9 0 10 9 2 10 11",
     "432 45 464 47 288 39"},
    {"128 20 20 128 15 15 128 20 20", "1 13 6 0 12 8 1 13 8",
     "208 37 256 40 160 37"},
    {"128 17 17 128 17 19 128 24 24", "2 13 9 1 12 13 1 13 14",
     "304 40 320 41 208 36"},
};

}  // namespace

int main() {
  const dmf::bench::BenchSession benchObs("table2");
  using namespace dmf;
  using mixgraph::Algorithm;

  std::cout << "# Table 2 — Tc / q / I for Ex.1..Ex.5 at D = 32 (L = 256)\n"
            << "# columns: A=RMM B=MM+MMS C=MM+SRS D=RRMA E=RMA+MMS "
               "F=RMA+SRS G=RMTCS H=MTCS+MMS I=MTCS+SRS\n\n";

  const auto& protocols = protocols::publishedProtocols();

  for (const char* metric : {"Tc", "q", "I"}) {
    report::Table table({"ratio", "A", "B", "C", "D", "E", "F", "G", "H", "I",
                         "paper row"});
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      engine::MdstEngine engine(protocols[p].ratio);
      std::vector<std::string> row{protocols[p].id};
      for (Algorithm algo :
           {Algorithm::MM, Algorithm::RMA, Algorithm::MTCS}) {
        const engine::BaselineResult rep =
            engine::runRepeatedBaseline(engine, algo, 32);
        std::uint64_t repeatedValue =
            std::string(metric) == "Tc"  ? rep.completionTime
            : std::string(metric) == "q" ? rep.storageUnits
                                         : rep.inputDroplets;
        row.push_back(std::to_string(repeatedValue));
        for (engine::Scheme scheme :
             {engine::Scheme::kMMS, engine::Scheme::kSRS}) {
          engine::MdstRequest request;
          request.algorithm = algo;
          request.scheme = scheme;
          request.demand = 32;
          const engine::MdstResult r = engine.run(request);
          const std::uint64_t value =
              std::string(metric) == "Tc"  ? r.completionTime
              : std::string(metric) == "q" ? r.storageUnits
                                           : r.inputDroplets;
          row.push_back(std::to_string(value));
        }
      }
      const PaperRow& ref = kPaper[p];
      row.push_back(std::string(metric) == "Tc"  ? ref.tc
                    : std::string(metric) == "q" ? ref.q
                                                 : ref.inputs);
      table.addRow(std::move(row));
    }
    std::cout << "## " << metric << "\n" << table.render() << "\n";
  }
  std::cout << "(paper I row lists A, B/C, D, E/F, G, H/I — MMS and SRS share "
               "the forest, so I is scheme-independent)\n";
  return 0;
}
