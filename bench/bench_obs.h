// Shared observability harness for the bench_* binaries: installs a
// process-wide obs session for the lifetime of main() and writes the
// collected metrics snapshot to BENCH_<name>.json in the working directory
// (override with --metrics FILE) when the benchmark exits. The blob carries
// the same instruments the CLI's --metrics flag exposes — pass-cache
// hit/miss, per-stage nanos, scheduler utilization, storage high water —
// so bench runs are diffable across commits.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "obs/scope.h"

namespace dmf::bench {

class BenchSession {
 public:
  explicit BenchSession(const std::string& name, int argc = 0,
                        char** argv = nullptr)
      : path_("BENCH_" + name + ".json"), scope_(session_) {
    // Metrics-only: this harness never writes the trace, so recording span
    // events during a benchmark would only burn time and memory.
    session_.traceEnabled = false;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--metrics") path_ = argv[i + 1];
    }
  }

  ~BenchSession() {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << session_.metrics.snapshot().dump(2) << "\n";
    if (out) {
      std::cerr << "metrics written to " << path_ << "\n";
    } else {
      std::cerr << "warning: could not write metrics to " << path_ << "\n";
    }
  }

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

 private:
  obs::Session session_;
  std::string path_;
  obs::Scope scope_;
};

}  // namespace dmf::bench
