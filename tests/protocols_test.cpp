#include "protocols/protocols.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dmf::protocols {
namespace {

TEST(Protocols, FivePublishedRatios) {
  const auto& protocols = publishedProtocols();
  ASSERT_EQ(protocols.size(), 5u);
  for (const Protocol& p : protocols) {
    EXPECT_EQ(p.ratio.sum(), 256u) << p.id;
    EXPECT_EQ(p.ratio.accuracy(), 8u) << p.id;
    EXPECT_FALSE(p.description.empty()) << p.id;
  }
  EXPECT_EQ(protocols[0].ratio, Ratio({26, 21, 2, 2, 3, 3, 199}));
  EXPECT_EQ(protocols[1].ratio, Ratio({128, 123, 5}));
  EXPECT_EQ(protocols[2].ratio, Ratio({25, 5, 5, 5, 5, 13, 13, 25, 1, 159}));
  EXPECT_EQ(protocols[3].ratio, Ratio({9, 17, 26, 9, 195}));
  EXPECT_EQ(protocols[4].ratio, Ratio({57, 28, 6, 6, 6, 3, 150}));
}

TEST(Protocols, PcrPercentagesSumTo100) {
  double sum = 0;
  for (double p : pcrMasterMixPercentages()) sum += p;
  EXPECT_NEAR(sum, 100.0, 1e-9);
  EXPECT_EQ(pcrMasterMixPercentages().size(), 7u);
}

TEST(Approximate, ReproducesPaperPcrRatioAtAccuracy4) {
  // Paper section 4.1: {10:8:0.8:0.8:1:1:78.4}% ~ {2:1:1:1:1:1:9} at scale 16.
  const Ratio r = approximatePercentages(pcrMasterMixPercentages(), 4);
  EXPECT_EQ(r, pcrMasterMixRatio());
}

TEST(Approximate, HigherAccuracyRefinesTheRatio) {
  const Ratio r5 = approximatePercentages(pcrMasterMixPercentages(), 5);
  EXPECT_EQ(r5.sum(), 32u);
  EXPECT_EQ(r5.fluidCount(), 7u);
  const Ratio r6 = approximatePercentages(pcrMasterMixPercentages(), 6);
  EXPECT_EQ(r6.sum(), 64u);
  // The buffer share converges toward 78.4% as accuracy grows.
  EXPECT_NEAR(r6.concentration(6), 0.784, 0.08);
}

TEST(Approximate, EveryFluidKeepsAtLeastOneUnit) {
  const Ratio r = approximatePercentages(pcrMasterMixPercentages(), 4);
  for (std::size_t i = 0; i < r.fluidCount(); ++i) {
    EXPECT_GE(r.part(i), 1u);
  }
}

TEST(Approximate, RejectsBadInput) {
  EXPECT_THROW(approximatePercentages({50.0}, 4), std::invalid_argument);
  EXPECT_THROW(approximatePercentages({50.0, 30.0}, 4),
               std::invalid_argument);  // does not sum to 100
  EXPECT_THROW(approximatePercentages({-10.0, 110.0}, 4),
               std::invalid_argument);
  EXPECT_THROW(approximatePercentages(pcrMasterMixPercentages(), 0),
               std::invalid_argument);
  // Scale 4 cannot grant one unit to each of 7 fluids.
  EXPECT_THROW(approximatePercentages(pcrMasterMixPercentages(), 2),
               std::invalid_argument);
}

TEST(Approximate, ExplicitBufferIndex) {
  const Ratio r = approximatePercentages({78.4, 10.0, 8.0, 0.8, 0.8, 1.0, 1.0},
                                         4, 0);
  EXPECT_EQ(r.part(0), 9u);
  EXPECT_EQ(r.part(1), 2u);
  EXPECT_THROW(approximatePercentages({50.0, 50.0}, 4, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmf::protocols
