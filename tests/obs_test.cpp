// Observability subsystem: registry snapshot determinism, histogram bucket
// edges, thread safety, trace-event JSON well-formedness (parsed back with
// the repo's own JSON reader), and the regression guarantee that installing
// an obs session never changes planner output.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/mdst.h"
#include "engine/serialize.h"
#include "engine/streaming.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "report/json.h"

namespace dmf::obs {
namespace {

TEST(ObsMetricsTest, CounterAccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(1);
  EXPECT_EQ(c.value(), 4u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, GaugeTracksLastAndMax) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7u);
  g.accumulateMax(3);
  EXPECT_EQ(g.value(), 7u);
  g.accumulateMax(11);
  EXPECT_EQ(g.value(), 11u);
}

TEST(ObsMetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Histogram h({10, 20});
  // Bucket i counts values <= bounds[i]; the last bucket is overflow.
  h.observe(0);    // bucket 0
  h.observe(10);   // bucket 0 (exact boundary)
  h.observe(11);   // bucket 1
  h.observe(20);   // bucket 1 (exact boundary)
  h.observe(21);   // overflow
  h.observe(1000); // overflow
  ASSERT_EQ(h.bounds().size(), 2u);
  EXPECT_EQ(h.bucketCount(0), 2u);
  EXPECT_EQ(h.bucketCount(1), 2u);
  EXPECT_EQ(h.bucketCount(2), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 20 + 21 + 1000);
}

TEST(ObsMetricsTest, HistogramRejectsMalformedBounds) {
  using Bounds = std::vector<std::uint64_t>;
  EXPECT_THROW(Histogram(Bounds{}), std::invalid_argument);
  EXPECT_THROW(Histogram(Bounds{5, 5}), std::invalid_argument);
  EXPECT_THROW(Histogram(Bounds{5, 3}), std::invalid_argument);
}

TEST(ObsMetricsTest, SnapshotIsDeterministicUnderInsertionOrder) {
  MetricsRegistry a;
  a.counter("zeta").add(1);
  a.counter("alpha").add(2);
  a.gauge("mid").set(3);
  a.histogram("h", {1, 2}).observe(1);

  MetricsRegistry b;
  b.histogram("h", {1, 2}).observe(1);
  b.gauge("mid").set(3);
  b.counter("alpha").add(2);
  b.counter("zeta").add(1);

  EXPECT_EQ(a.snapshot().dump(2), b.snapshot().dump(2));
}

TEST(ObsMetricsTest, SnapshotParsesBackWithRepoJsonReader) {
  MetricsRegistry registry;
  registry.counter("hits").add(42);
  registry.gauge("peak").accumulateMax(7);
  registry.histogram("lat", {10, 100}).observe(55);

  const report::Json parsed = report::Json::parse(registry.snapshot().dump(2));
  EXPECT_EQ(parsed.at("counters").at("hits").asUint(), 42u);
  EXPECT_EQ(parsed.at("gauges").at("peak").asUint(), 7u);
  const report::Json& lat = parsed.at("histograms").at("lat");
  EXPECT_EQ(lat.at("count").asUint(), 1u);
  EXPECT_EQ(lat.at("sum").asUint(), 55u);
  ASSERT_EQ(lat.at("bounds").size(), 2u);
  ASSERT_EQ(lat.at("counts").size(), 3u);
  EXPECT_EQ(lat.at("counts").at(1).asUint(), 1u);
}

TEST(ObsMetricsTest, ConcurrentCounterIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr unsigned kThreads = 4;
  constexpr unsigned kIncrements = 25000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (unsigned i = 0; i < kIncrements; ++i) {
        registry.counter("shared").add(1);
        registry.gauge("watermark").accumulateMax(i);
        registry.histogram("spread", {1000, 10000}).observe(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared").value(),
            std::uint64_t{kThreads} * kIncrements);
  EXPECT_EQ(registry.gauge("watermark").value(), kIncrements - 1);
  EXPECT_EQ(registry.histogram("spread", {1000, 10000}).count(),
            std::uint64_t{kThreads} * kIncrements);
}

// Quantile pins: the exact nearest-rank + linear-interpolation arithmetic
// the Prometheus exporter's derived p50/p95/p99 gauges depend on.
TEST(ObsMetricsTest, QuantileInterpolatesWithinOneBucket) {
  // Four observations, all inside the first bucket (0, 10].
  const std::vector<std::uint64_t> bounds{10, 20};
  const std::vector<std::uint64_t> counts{4, 0, 0};
  // p50 targets rank 2 of 4; 2/4 of the way through (0, 10].
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.99), 9.9);
  // q=0 clamps the rank to 1 (the minimum observation's bucket share).
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.0), 2.5);
}

TEST(ObsMetricsTest, QuantileCrossesBuckets) {
  const std::vector<std::uint64_t> bounds{100, 200, 300};
  const std::vector<std::uint64_t> counts{1, 1, 1, 0};
  // Rank 1.5 of 3 lands halfway through the second bucket (100, 200].
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.5), 150.0);
  // Rank 2.97 lands 97% through the third bucket (200, 300].
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.99), 297.0);
}

TEST(ObsMetricsTest, QuantileClampsOverflowToLastBound) {
  const std::vector<std::uint64_t> bounds{10};
  const std::vector<std::uint64_t> counts{0, 5};
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.99), 10.0);
}

TEST(ObsMetricsTest, QuantileEdgeCases) {
  const std::vector<std::uint64_t> bounds{10};
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, {0, 0}, 0.5), 0.0);  // empty
  EXPECT_THROW(histogramQuantile(bounds, {1, 2, 3}, 0.5),
               std::invalid_argument);  // counts/bounds size mismatch
  Histogram h({10, 20});
  for (const std::uint64_t v : {1, 2, 3, 4}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);  // member delegates to the free fn
}

// Regression: the free function also serves snapshot JSON, which can carry
// histogram shapes the Histogram constructor forbids. An empty bounds list
// (every sample in the sole overflow bucket) used to read bounds.back() of
// an empty vector — undefined behaviour — for any non-zero count.
TEST(ObsMetricsTest, QuantileSurvivesEmptyBounds) {
  const std::vector<std::uint64_t> none;
  EXPECT_DOUBLE_EQ(histogramQuantile(none, {0}, 0.5), 0.0);  // and empty
  EXPECT_DOUBLE_EQ(histogramQuantile(none, {7}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(none, {7}, 1.0), 0.0);
}

TEST(ObsMetricsTest, QuantileSingleSampleStaysWithinItsBucket) {
  const std::vector<std::uint64_t> bounds{10, 20};
  // One observation in (0, 10]: every quantile is that observation's
  // bucket, interpolated to its upper edge at most — never past it, and
  // never a division by the empty buckets around it.
  const std::vector<std::uint64_t> counts{1, 0, 0};
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 1.0), 10.0);
  // One observation in the overflow bucket clamps to the last bound.
  const std::vector<std::uint64_t> overflow{0, 0, 1};
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, overflow, 0.5), 20.0);
}

TEST(ObsMetricsTest, QuantileClampsOutOfRangeQ) {
  const std::vector<std::uint64_t> bounds{100};
  const std::vector<std::uint64_t> counts{4, 0};
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, -0.5),
                   histogramQuantile(bounds, counts, 0.0));
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 2.0),
                   histogramQuantile(bounds, counts, 1.0));
  // q = 1 interpolates to exactly the populated bucket's upper edge.
  EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 1.0), 100.0);
}

// Golden rendering: exposition-format text is an external contract (scrape
// configs and dashboards parse it), so pin the exact bytes.
TEST(ObsPrometheusTest, RendersSnapshotAsExpositionText) {
  MetricsRegistry registry;
  registry.counter("cache.hit").add(4);
  registry.gauge("queue.depth").set(7);
  Histogram& lat = registry.histogram("lat", {10, 20});
  lat.observe(5);
  lat.observe(15);
  lat.observe(25);

  EXPECT_EQ(prometheusText(registry),
            "# TYPE dmf_cache_hit_total counter\n"
            "dmf_cache_hit_total 4\n"
            "# TYPE dmf_queue_depth gauge\n"
            "dmf_queue_depth 7\n"
            "# TYPE dmf_lat histogram\n"
            "dmf_lat_bucket{le=\"10\"} 1\n"
            "dmf_lat_bucket{le=\"20\"} 2\n"
            "dmf_lat_bucket{le=\"+Inf\"} 3\n"
            "dmf_lat_sum 45\n"
            "dmf_lat_count 3\n"
            "# TYPE dmf_lat_p50 gauge\n"
            "dmf_lat_p50 15\n"
            "# TYPE dmf_lat_p95 gauge\n"
            "dmf_lat_p95 20\n"
            "# TYPE dmf_lat_p99 gauge\n"
            "dmf_lat_p99 20\n");
}

TEST(ObsPrometheusTest, RejectsNonSnapshotJson) {
  EXPECT_THROW(prometheusText(report::Json::parse("{\"x\": 1}")),
               std::invalid_argument);
  EXPECT_THROW(prometheusText(report::Json::parse("[1, 2]")),
               std::invalid_argument);
}

TEST(ObsTraceTest, TraceJsonIsWellFormedAndPerfettoShaped) {
  TraceRecorder recorder;
  const std::uint64_t start = recorder.nowNanos();
  recorder.completeEvent("outer", "test", start, 5000,
                         {{"detail", "a \"quoted\" value\n"}});
  recorder.instantEvent("marker", "test");
  recorder.modelEvent("pass 1", "plan", 0, 7, 1, {{"demand", "8"}});
  std::thread worker(
      [&recorder] { recorder.completeEvent("child", "test", 0, 100); });
  worker.join();
  EXPECT_EQ(recorder.eventCount(), 4u);

  const report::Json parsed = report::Json::parse(recorder.toJson().dump(2));
  ASSERT_TRUE(parsed.contains("traceEvents"));
  EXPECT_EQ(parsed.at("displayTimeUnit").asString(), "ms");
  const report::Json& events = parsed.at("traceEvents");
  std::size_t complete = 0;
  std::size_t instant = 0;
  std::size_t metadata = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const report::Json& e = events.at(i);
    const std::string phase = e.at("ph").asString();
    ASSERT_TRUE(e.contains("name"));
    ASSERT_TRUE(e.contains("pid"));
    if (phase == "X") {
      ++complete;
      EXPECT_TRUE(e.contains("dur"));
    } else if (phase == "i") {
      ++instant;
    } else if (phase == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 3u);
  EXPECT_EQ(instant, 1u);
  // Two process_name entries (wall clock + model time) and at least two
  // thread_name entries (main + worker).
  EXPECT_GE(metadata, 4u);
}

TEST(ObsScopeTest, HelpersAreInertWithoutASession) {
  EXPECT_FALSE(enabled());
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(tracer(), nullptr);
  count("ignored");
  gaugeMax("ignored", 1);
  gaugeSet("ignored", 1);
  { const Span span("ignored"); }
  EXPECT_FALSE(enabled());
}

TEST(ObsScopeTest, ScopeInstallsAndNestingThrows) {
  Session session;
  {
    const Scope scope(session);
    EXPECT_TRUE(enabled());
    count("seen", 2);
    EXPECT_THROW(Scope{session}, std::logic_error);
  }
  EXPECT_FALSE(enabled());
  EXPECT_EQ(session.metrics.counter("seen").value(), 2u);
}

TEST(ObsScopeTest, SpansLandInTheInstalledRecorder) {
  Session session;
  {
    const Scope scope(session);
    const Span span("scoped.work", "test");
  }
  EXPECT_EQ(session.trace.eventCount(), 1u);
}

// The regression the whole design hangs on: an installed session must never
// change planner output, for any job count (the CLI's `--jobs N --json`
// byte-identical guarantee with and without --trace/--metrics).
TEST(ObsScopeTest, StreamingPlanJsonIsIdenticalWithAndWithoutSession) {
  const engine::MdstEngine engine(Ratio({7, 3, 3, 3}));
  engine::StreamingRequest request;
  request.demand = 100;
  request.storageCap = 4;

  std::vector<std::string> dumps;
  for (const unsigned jobs : {1u, 4u}) {
    request.jobs = jobs;
    dumps.push_back(engine::toJson(planStreaming(engine, request)).dump(2));
    Session session;
    {
      const Scope scope(session);
      dumps.push_back(engine::toJson(planStreaming(engine, request)).dump(2));
    }
    EXPECT_GT(session.trace.eventCount(), 0u);
    EXPECT_GT(session.metrics.size(), 0u);
  }
  for (const std::string& dump : dumps) {
    EXPECT_EQ(dump, dumps.front());
  }
}

}  // namespace
}  // namespace dmf::obs
