// The paper's baseline approaches: repeated single-pass mixing (RMM, RRMA,
// RMTCS). One pass of the base mixing graph emits two target droplets; a
// demand D needs ceil(D/2) sequential passes, multiplying time, waste and
// reactant usage.
#pragma once

#include <cstdint>

#include "engine/mdst.h"

namespace dmf::engine {

class PassCache;

/// Metrics of a repeated-baseline run (the paper's Tr, qr, Wr, Ir).
struct BaselineResult {
  /// Passes executed: ceil(D/2).
  std::uint64_t passes = 0;
  /// Single-pass completion time tc (OMS schedule of the base graph).
  unsigned passCycles = 0;
  /// Total completion time Tr = passes * tc.
  std::uint64_t completionTime = 0;
  /// Storage units qr (passes run one after another, so the per-pass peak).
  unsigned storageUnits = 0;
  /// Total mix-splits across all passes.
  std::uint64_t mixSplits = 0;
  /// Total waste droplets Wr.
  std::uint64_t waste = 0;
  /// Total input droplets Ir.
  std::uint64_t inputDroplets = 0;
  /// Mixers used.
  unsigned mixers = 0;
};

/// Runs the repeated baseline for `algorithm` (RMM when MM, RRMA when RMA,
/// RMTCS when MTCS) at demand D. `mixers == 0` resolves to the engine's
/// default (Mlb of the MM base tree), the paper's convention.
[[nodiscard]] BaselineResult runRepeatedBaseline(const MdstEngine& engine,
                                                 mixgraph::Algorithm algorithm,
                                                 std::uint64_t demand,
                                                 unsigned mixers = 0);

/// Memoized overload: the baseline repeats one two-droplet pass, so its
/// forest build + OMS schedule are cached per (algorithm, mixers) — a demand
/// sweep re-schedules the pass once instead of once per demand point. The
/// cache must be dedicated to `engine` (see PassCache).
[[nodiscard]] BaselineResult runRepeatedBaseline(const MdstEngine& engine,
                                                 mixgraph::Algorithm algorithm,
                                                 std::uint64_t demand,
                                                 unsigned mixers,
                                                 PassCache& cache);

/// Percentage improvement of `ours` over `baseline` (positive = better,
/// i.e. smaller). Returns 0 when the baseline value is 0.
[[nodiscard]] double percentImprovement(double baseline, double ours);

}  // namespace dmf::engine
