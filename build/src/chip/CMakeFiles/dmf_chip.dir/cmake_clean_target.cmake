file(REMOVE_RECURSE
  "libdmf_chip.a"
)
