// Ready-made layouts: a parameterized synthesizer for arbitrary protocols
// and the PCR master-mix chip of the paper's Fig. 5 (seven reservoirs, three
// mixers, five storage cells, two waste ports).
#pragma once

#include "chip/layout.h"

namespace dmf::chip {

/// Synthesizes a legal layout for `fluidCount` reservoirs, `mixerCount` 2x2
/// mixers, `storageCount` single-cell storage modules, two waste ports and
/// one output port. Reservoirs line the top/bottom edges, mixers the middle
/// band, storage a dedicated row — the arrangement of the paper's Fig. 5.
/// Throws std::invalid_argument for zero mixers or fluids.
[[nodiscard]] Layout synthesizeLayout(std::size_t fluidCount,
                                      unsigned mixerCount,
                                      unsigned storageCount);

/// The PCR master-mix chip of Fig. 5: synthesizeLayout(7, 3, 5).
[[nodiscard]] Layout makePcrLayout();

}  // namespace dmf::chip
