#include "journal/stream_runner.h"

#include <memory>
#include <sstream>

#include "engine/mdst.h"
#include "engine/pass_cache.h"
#include "engine/serialize.h"
#include "journal/journal.h"
#include "obs/scope.h"
#include "report/json.h"

namespace dmf::journal {

namespace {

using report::Json;

constexpr const char* kLogFile = "journal.log";
constexpr const char* kSnapshotFile = "snapshot.json";

/// Mutable resume state reconstructed from (snapshot, log) and advanced by
/// the pass loop — the journal's "automaton" in changelog+snapshot terms.
struct RunState {
  engine::StreamingPlan plan;
  bool havePlan = false;
  std::vector<engine::RecoveryReport> recovery;
  std::uint64_t passesDone = 0;
  bool done = false;
};

std::string snapshotRecord(const std::string& fingerprint,
                           const RunState& state, bool inject) {
  Json snap = Json::object();
  snap.set("v", std::uint64_t{1})
      .set("fingerprint", fingerprint)
      .set("passesDone", state.passesDone)
      .set("done", Json::boolean(state.done));
  if (state.havePlan) snap.set("plan", engine::toJson(state.plan));
  if (inject) {
    Json reports = Json::array();
    for (const engine::RecoveryReport& r : state.recovery) {
      reports.push(engine::toJson(r));
    }
    snap.set("recovery", std::move(reports));
  }
  return snap.dump();
}

void publishSnapshot(const std::string& path, const std::string& fingerprint,
                     const RunState& state, bool inject, RecordLog& log) {
  // The snapshot is itself one framed record, so a bit flip anywhere in the
  // file fails the CRC — and since publication is atomic, a torn snapshot
  // can only mean damage, never an interrupted write.
  writeFileAtomic(path, frameRecord(snapshotRecord(fingerprint, state, inject)));
  // Records up to passesDone are now captured; an empty log keeps replay
  // O(snapshotEvery) instead of O(total passes).
  log.reset();
}

/// Parses one journal JSON document, converting parse/shape failures into
/// the corruption taxonomy (the framing CRC passed, so malformed JSON means
/// the writer and reader disagree — a damaged or foreign journal).
Json parseJournalJson(const std::string& text, const std::string& context) {
  try {
    return Json::parse(text);
  } catch (const std::exception& e) {
    throw CorruptJournalError(context + ": unparseable record: " + e.what());
  }
}

RunState loadSnapshot(const std::string& path, const std::string& fingerprint,
                      bool inject) {
  const auto bytes = readFileIfExists(path);
  if (!bytes.has_value()) {
    throw std::invalid_argument(
        "--resume: no snapshot at '" + path +
        "' (nothing to resume; run once with --journal first)");
  }
  const ReplayResult framed = replayRecords(*bytes, "snapshot '" + path + "'");
  if (framed.tornTail || framed.records.size() != 1) {
    throw CorruptJournalError(
        "snapshot '" + path +
        "': expected exactly one complete record (snapshots are published "
        "atomically, so a torn or multi-record snapshot is corruption)");
  }
  const Json snap = parseJournalJson(framed.records[0], "snapshot '" + path + "'");
  try {
    if (snap.at("v").asUint() != 1) {
      throw CorruptJournalError("snapshot '" + path +
                                "': unsupported version " +
                                std::to_string(snap.at("v").asUint()));
    }
    // A fingerprint mismatch is a *request* mismatch (usage error, exit 1),
    // not corruption — checked before any state is trusted.
    if (snap.at("fingerprint").asString() != fingerprint) {
      throw std::invalid_argument(
          "--resume: journal at '" + path +
          "' was written by a different request (fingerprint " +
          snap.at("fingerprint").asString() + " != " + fingerprint + ")");
    }
    RunState state;
    state.passesDone = snap.at("passesDone").asUint();
    state.done = snap.at("done").asBool();
    if (snap.contains("plan")) {
      state.plan = engine::streamingPlanFromJson(snap.at("plan"));
      state.havePlan = true;
    }
    if (inject && snap.contains("recovery")) {
      const Json& reports = snap.at("recovery");
      state.recovery.reserve(reports.size());
      for (std::size_t i = 0; i < reports.size(); ++i) {
        state.recovery.push_back(engine::recoveryReportFromJson(reports.at(i)));
      }
    }
    if (state.passesDone > 0 && !state.havePlan) {
      throw CorruptJournalError("snapshot '" + path +
                                "': records completed passes but no plan");
    }
    if (inject && state.recovery.size() != state.passesDone) {
      throw CorruptJournalError(
          "snapshot '" + path + "': " + std::to_string(state.recovery.size()) +
          " recovery reports for " + std::to_string(state.passesDone) +
          " completed passes");
    }
    return state;
  } catch (const CorruptJournalError&) {
    throw;
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception& e) {
    throw CorruptJournalError("snapshot '" + path + "': " + e.what());
  }
}

/// Applies the post-snapshot log records to `state`. Records the snapshot
/// already captured (an interrupted publishSnapshot leaves them behind) are
/// skipped; a gap or regression in pass indices is corruption.
void applyLog(RunState& state, const std::vector<std::string>& records,
              const std::string& context, bool inject) {
  for (const std::string& payload : records) {
    const Json record = parseJournalJson(payload, context);
    try {
      const std::string& type = record.at("type").asString();
      if (type == "plan") {
        if (state.havePlan) continue;  // stale pre-snapshot record
        state.plan = engine::streamingPlanFromJson(record.at("plan"));
        state.havePlan = true;
      } else if (type == "pass") {
        const std::uint64_t index = record.at("index").asUint();
        if (index < state.passesDone) continue;  // stale pre-snapshot record
        if (index > state.passesDone) {
          throw CorruptJournalError(
              context + ": pass record " + std::to_string(index) +
              " leaves a gap (next expected " +
              std::to_string(state.passesDone) + ")");
        }
        if (!state.havePlan) {
          throw CorruptJournalError(context +
                                    ": pass record precedes the plan record");
        }
        if (inject) {
          state.recovery.push_back(
              engine::recoveryReportFromJson(record.at("recovery")));
        }
        ++state.passesDone;
      } else {
        throw CorruptJournalError(context + ": unknown record type '" + type +
                                  "'");
      }
    } catch (const CorruptJournalError&) {
      throw;
    } catch (const std::exception& e) {
      throw CorruptJournalError(context + ": malformed record: " + e.what());
    }
  }
}

Json passRecord(std::uint64_t index, const engine::RecoveryReport* recovery) {
  Json record = Json::object();
  record.set("type", std::string("pass")).set("index", index);
  if (recovery != nullptr) record.set("recovery", engine::toJson(*recovery));
  return record;
}

engine::RecoveryReport replayPass(const engine::MdstEngine& engine,
                                  const StreamRunRequest& request,
                                  const engine::StreamingPlan& plan,
                                  std::uint64_t passIndex) {
  const forest::TaskForest forest = engine.buildForest(
      request.streaming.algorithm, plan.passes[passIndex].demand);
  const sched::Schedule schedule =
      engine::schedule(forest, request.streaming.scheme, plan.mixers);
  engine::RecoveryOptions options;
  options.faults = request.faults;
  // Pass p draws from seed (faultSeed + p): each pass is independently
  // seeded, which is exactly what lets a resumed run re-draw the same
  // faults an uninterrupted run would have drawn.
  options.seed = request.faultSeed + passIndex;
  options.retryBudget = request.retryBudget;
  options.checkpoint.everyLevels = request.checkpointEvery;
  options.checkpoint.detectionLatency = request.detectLatency;
  options.storageCap = request.streaming.storageCap;
  return engine::RecoveryEngine{options}.run(forest, schedule);
}

}  // namespace

std::string fingerprint(const Ratio& ratio, const StreamRunRequest& request) {
  std::ostringstream out;
  out << "v1|ratio=" << ratio.toString()
      << "|algo=" << mixgraph::algorithmName(request.streaming.algorithm)
      << "|scheme=" << engine::schemeName(request.streaming.scheme)
      << "|demand=" << request.streaming.demand
      << "|storage=" << request.streaming.storageCap
      << "|mixers=" << request.streaming.mixers
      << "|optimize=" << (request.optimize ? 1 : 0);
  if (request.inject) {
    out << "|inject=" << request.faults.toString()
        << "|seed=" << request.faultSeed
        << "|retry=" << request.retryBudget
        << "|ckpt=" << request.checkpointEvery
        << "|latency=" << request.detectLatency;
  }
  return out.str();
}

StreamRunResult runStream(const engine::MdstEngine& engine,
                          const StreamRunRequest& request,
                          engine::PassCache& cache,
                          const StreamRunOptions& options) {
  const bool journaled = !options.journalDir.empty();
  if (options.resume && !journaled) {
    throw std::invalid_argument("--resume requires --journal DIR");
  }
  if (options.stopAfterPass != 0 && !journaled) {
    throw std::invalid_argument("--crash-after-pass requires --journal DIR");
  }

  const std::string print = fingerprint(engine.ratio(), request);
  std::unique_ptr<RecordLog> log;
  std::string snapshotPath;
  RunState state;
  StreamRunResult result;

  if (journaled) {
    ensureJournalDir(options.journalDir);
    snapshotPath = options.journalDir + "/" + kSnapshotFile;
    log = std::make_unique<RecordLog>(options.journalDir + "/" + kLogFile);
    if (options.resume) {
      const obs::Span span("journal.resume", "journal");
      state = loadSnapshot(snapshotPath, print, request.inject);
      applyLog(state, log->replayAndRepair().records,
               "journal '" + log->path() + "'", request.inject);
      result.resumed = true;
      result.journaledPasses = state.passesDone;
      obs::count("journal.resume.count");
      obs::count("journal.resume.passes_restored", state.passesDone);
    } else {
      // A fresh --journal run owns the directory: any previous run's state
      // is superseded by an empty snapshot before the first record lands.
      log->reset();
      publishSnapshot(snapshotPath, print, state, request.inject, *log);
    }
  }

  if (!state.havePlan) {
    state.plan = request.optimize
                     ? planStreamingOptimized(engine, request.streaming, cache)
                     : planStreaming(engine, request.streaming, cache);
    state.havePlan = true;
    if (journaled) {
      Json record = Json::object();
      record.set("type", std::string("plan"))
          .set("plan", engine::toJson(state.plan));
      log->append(record.dump());
    }
  }
  if (state.passesDone > state.plan.passes.size()) {
    throw CorruptJournalError(
        "journal '" + options.journalDir + "': " +
        std::to_string(state.passesDone) + " completed passes exceed the " +
        std::to_string(state.plan.passes.size()) + "-pass plan");
  }

  // The pass loop runs when there is per-pass work to do: fault replay
  // (--inject) or progress journaling. A plain un-journaled plan skips it.
  if ((request.inject || journaled) && !state.done) {
    for (std::uint64_t p = state.passesDone; p < state.plan.passes.size();
         ++p) {
      const engine::RecoveryReport* report = nullptr;
      if (request.inject) {
        state.recovery.push_back(replayPass(engine, request, state.plan, p));
        report = &state.recovery.back();
      }
      state.passesDone = p + 1;
      if (journaled) {
        const obs::Span span("journal.pass", "journal");
        log->append(passRecord(p, report).dump());
        obs::count("journal.pass.journaled");
        if (options.snapshotEvery != 0 &&
            state.passesDone % options.snapshotEvery == 0) {
          publishSnapshot(snapshotPath, print, state, request.inject, *log);
        }
        if (options.stopAfterPass != 0 &&
            state.passesDone >= options.stopAfterPass) {
          // Crash hook: leave the journal exactly as a kill here would.
          result.partial = true;
          result.plan = std::move(state.plan);
          result.recovery = std::move(state.recovery);
          return result;
        }
      }
    }
  }

  if (journaled && !state.done) {
    state.done = true;
    publishSnapshot(snapshotPath, print, state, request.inject, *log);
  }
  state.done = true;

  result.plan = std::move(state.plan);
  result.recovery = std::move(state.recovery);
  return result;
}

}  // namespace dmf::journal
