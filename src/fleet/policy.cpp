#include "fleet/policy.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace dmf::fleet {

namespace {

/// Inserts keeping ascending admission order. Items arrive in admission
/// order except for migrated passes, which re-enter with their original
/// (smaller) admission number and must precede later same-user work.
void insertByAdmission(std::deque<WorkItem>& queue, const WorkItem& item) {
  auto it = std::lower_bound(
      queue.begin(), queue.end(), item,
      [](const WorkItem& a, const WorkItem& b) {
        return a.admission < b.admission;
      });
  queue.insert(it, item);
}

void checkUser(unsigned user, std::size_t users, const char* who) {
  if (user >= users) {
    throw std::invalid_argument(std::string(who) + ": user " +
                                std::to_string(user) + " out of range (" +
                                std::to_string(users) + " users)");
  }
}

}  // namespace

void ArbitrationPolicy::setWeights(const std::vector<double>& weights) {
  for (double w : weights) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("ArbitrationPolicy: weights must be > 0");
    }
  }
}

void ArbitrationPolicy::setQuantum(double quantum) {
  if (quantum < 0.0) {
    throw std::invalid_argument("ArbitrationPolicy: quantum must be >= 0");
  }
}

// --- FifoPolicy ------------------------------------------------------------

void FifoPolicy::setUsers(unsigned users) {
  users_ = users;
  queue_.clear();
}

void FifoPolicy::enqueue(const WorkItem& item) {
  checkUser(item.user, users_, "FifoPolicy::enqueue");
  insertByAdmission(queue_, item);
}

std::optional<unsigned> FifoPolicy::pickUser(double) {
  if (queue_.empty()) return std::nullopt;
  return queue_.front().user;
}

std::optional<WorkItem> FifoPolicy::pop(unsigned user) {
  checkUser(user, users_, "FifoPolicy::pop");
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const WorkItem& w) { return w.user == user; });
  if (it == queue_.end()) return std::nullopt;
  WorkItem item = *it;
  queue_.erase(it);
  return item;
}

// --- RoundRobinPolicy ------------------------------------------------------

void RoundRobinPolicy::setUsers(unsigned users) {
  queues_.assign(users, {});
  cursor_ = 0;
}

void RoundRobinPolicy::enqueue(const WorkItem& item) {
  checkUser(item.user, queues_.size(), "RoundRobinPolicy::enqueue");
  insertByAdmission(queues_[item.user], item);
}

std::optional<unsigned> RoundRobinPolicy::pickUser(double) {
  const auto n = static_cast<unsigned>(queues_.size());
  for (unsigned step = 0; step < n; ++step) {
    const unsigned user = (cursor_ + step) % n;
    if (!queues_[user].empty()) return user;
  }
  return std::nullopt;
}

std::optional<WorkItem> RoundRobinPolicy::pop(unsigned user) {
  checkUser(user, queues_.size(), "RoundRobinPolicy::pop");
  auto& queue = queues_[user];
  if (queue.empty()) return std::nullopt;
  WorkItem item = queue.front();
  queue.pop_front();
  cursor_ = (user + 1) % static_cast<unsigned>(queues_.size());
  return item;
}

bool RoundRobinPolicy::empty() const {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const auto& q) { return q.empty(); });
}

std::size_t RoundRobinPolicy::pending() const {
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

// --- WeightedFairPolicy ----------------------------------------------------

void WeightedFairPolicy::setUsers(unsigned users) {
  queues_.assign(users, {});
  weights_.assign(users, 1.0);
  lastFinish_.assign(users, 0.0);
  vtime_ = 0.0;
  quantumLeft_ = 0.0;
  current_.reset();
}

void WeightedFairPolicy::setWeights(const std::vector<double>& weights) {
  ArbitrationPolicy::setWeights(weights);
  if (weights.size() != weights_.size()) {
    throw std::invalid_argument(
        "WeightedFairPolicy::setWeights: expected " +
        std::to_string(weights_.size()) + " weights, got " +
        std::to_string(weights.size()));
  }
  weights_ = weights;
}

void WeightedFairPolicy::enqueue(const WorkItem& item) {
  checkUser(item.user, queues_.size(), "WeightedFairPolicy::enqueue");
  insertByAdmission(queues_[item.user], item);
}

double WeightedFairPolicy::startTag(unsigned user) const {
  return std::max(vtime_, lastFinish_[user]);
}

std::optional<unsigned> WeightedFairPolicy::pickUser(double) {
  // Quantum batching: keep serving the current user while it has backlog
  // and quantum budget, like a deficit round.
  if (current_.has_value() && quantumLeft_ > 0.0 &&
      !queues_[*current_].empty()) {
    return current_;
  }
  std::optional<unsigned> best;
  double bestTag = 0.0;
  for (unsigned user = 0; user < queues_.size(); ++user) {
    if (queues_[user].empty()) continue;
    const double tag = startTag(user);
    if (!best.has_value() || tag < bestTag) {
      best = user;
      bestTag = tag;
    }
  }
  if (best.has_value()) {
    current_ = best;
    quantumLeft_ = quantum_;
  }
  return best;
}

std::optional<WorkItem> WeightedFairPolicy::pop(unsigned user) {
  checkUser(user, queues_.size(), "WeightedFairPolicy::pop");
  auto& queue = queues_[user];
  if (queue.empty()) return std::nullopt;
  WorkItem item = queue.front();
  queue.pop_front();
  const double start = startTag(user);
  lastFinish_[user] =
      start + static_cast<double>(item.cost) / weights_[user];
  vtime_ = start;
  quantumLeft_ -= static_cast<double>(item.cost);
  return item;
}

bool WeightedFairPolicy::empty() const {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const auto& q) { return q.empty(); });
}

std::size_t WeightedFairPolicy::pending() const {
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

// --- factory / parsing -----------------------------------------------------

std::unique_ptr<ArbitrationPolicy> makePolicy(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "rr") return std::make_unique<RoundRobinPolicy>();
  if (name == "wfq") return std::make_unique<WeightedFairPolicy>();
  throw std::invalid_argument("unknown fleet policy '" + name +
                              "' (expected fifo, rr, or wfq)");
}

std::vector<double> parseWeights(const std::string& spec) {
  std::vector<double> weights;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      weights.push_back(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("parseWeights: bad weight '" + token + "'");
    }
    if (!(weights.back() > 0.0)) {
      throw std::invalid_argument("parseWeights: weights must be > 0, got '" +
                                  token + "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (weights.empty()) {
    throw std::invalid_argument("parseWeights: empty weight list");
  }
  return weights;
}

}  // namespace dmf::fleet
