#include "chip/pcr_layout.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dmf::chip {

Layout synthesizeLayout(std::size_t fluidCount, unsigned mixerCount,
                        unsigned storageCount) {
  if (fluidCount == 0 || mixerCount == 0) {
    throw std::invalid_argument(
        "synthesizeLayout: need at least one fluid and one mixer");
  }
  // Edge capacity requirements: reservoirs sit every 3 cells on the top and
  // bottom edges, mixers every 5 cells in the middle band, storage every 2
  // cells on its own row.
  const std::size_t perEdge = (fluidCount + 1) / 2;
  const int width = std::max<int>(
      {13, static_cast<int>(3 * perEdge + 2),
       static_cast<int>(5 * mixerCount + 2),
       static_cast<int>(2 * storageCount + 2)});
  const int height = 12;
  Layout layout(width, height);

  for (std::size_t f = 0; f < fluidCount; ++f) {
    const bool top = f < perEdge;
    const std::size_t slot = top ? f : f - perEdge;
    layout.add(Module{ModuleKind::kReservoir,
                      Cell{static_cast<int>(1 + 3 * slot), top ? 0 : height - 1},
                      1, 1, f, "R" + std::to_string(f + 1)});
  }
  for (unsigned m = 0; m < mixerCount; ++m) {
    layout.add(Module{ModuleKind::kMixer,
                      Cell{static_cast<int>(2 + 5 * m), 3}, 2, 2, 0,
                      "M" + std::to_string(m + 1)});
  }
  for (unsigned s = 0; s < storageCount; ++s) {
    layout.add(Module{ModuleKind::kStorage,
                      Cell{static_cast<int>(1 + 2 * s), 7}, 1, 1, 0,
                      "q" + std::to_string(s + 1)});
  }
  layout.add(Module{ModuleKind::kWaste, Cell{0, 5}, 1, 1, 0, "W1"});
  layout.add(Module{ModuleKind::kWaste, Cell{width - 1, 5}, 1, 1, 0, "W2"});
  layout.add(Module{ModuleKind::kOutput, Cell{width - 1, 9}, 1, 1, 0, "O"});
  return layout;
}

Layout makePcrLayout() { return synthesizeLayout(7, 3, 5); }

}  // namespace dmf::chip
