// The droplet-streaming engine (paper section 6, Table 4): satisfy a demand D
// under a hard cap on on-chip storage units by splitting it into passes, each
// pass running the largest mixing forest whose SRS schedule fits the cap.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/mdst.h"

namespace dmf::engine {

/// One pass of a streaming plan.
struct StreamingPass {
  std::uint64_t demand = 0;       ///< target droplets produced by this pass
  unsigned cycles = 0;            ///< pass completion time
  unsigned storageUnits = 0;      ///< pass peak storage (<= the cap)
  std::uint64_t waste = 0;        ///< pass waste droplets
  std::uint64_t inputDroplets = 0;///< pass reactant usage
};

/// A complete streaming plan.
struct StreamingPlan {
  /// Largest per-pass demand D' that fits the storage cap.
  std::uint64_t perPassDemand = 0;
  /// The individual passes, in execution order (all but possibly the last
  /// produce perPassDemand droplets).
  std::vector<StreamingPass> passes;
  /// Sum of pass cycle counts (passes run back to back).
  std::uint64_t totalCycles = 0;
  /// Sum of pass waste droplets.
  std::uint64_t totalWaste = 0;
  /// Sum of pass reactant usage.
  std::uint64_t totalInput = 0;
  /// Peak storage over all passes.
  unsigned storageUnits = 0;
  /// Mixers used.
  unsigned mixers = 0;
};

/// Request for a streaming plan.
struct StreamingRequest {
  mixgraph::Algorithm algorithm = mixgraph::Algorithm::MM;
  /// Scheduler used inside each pass; the paper streams with SRS.
  Scheme scheme = Scheme::kSRS;
  /// Total demand D.
  std::uint64_t demand = 2;
  /// Available on-chip storage units q'.
  unsigned storageCap = 0;
  /// Mixers; 0 = engine default (Mlb of the MM base tree).
  unsigned mixers = 0;
};

/// Computes the streaming plan with the paper's rule: the largest feasible
/// per-pass demand D' (bisection on "scheduled storage of the D'-forest <=
/// cap"; storage grows with demand) repeated ceil(D/D') times. Throws
/// std::runtime_error when even a two-droplet pass exceeds the cap;
/// std::invalid_argument on a zero demand.
[[nodiscard]] StreamingPlan planStreaming(const MdstEngine& engine,
                                          const StreamingRequest& request);

/// Exhaustive refinement of planStreaming: the largest feasible D' does not
/// always minimize the total cycle count (a slightly smaller forest can
/// schedule disproportionately faster under a tight cap), so this variant
/// evaluates every feasible per-pass demand and returns the plan with the
/// fewest total cycles (ties broken toward less waste, then fewer passes).
/// Same error behaviour as planStreaming.
[[nodiscard]] StreamingPlan planStreamingOptimized(
    const MdstEngine& engine, const StreamingRequest& request);

}  // namespace dmf::engine
