#include "mixgraph/builders.h"
#include "mixgraph/graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/ratio_corpus.h"

namespace dmf::mixgraph {
namespace {

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

TEST(MixingGraphBuilder, RejectsUseBeforeFinalize) {
  MixingGraph g(pcr());
  g.addLeaf(0);
  EXPECT_THROW((void)g.root(), std::logic_error);
  EXPECT_THROW((void)g.leafCount(), std::logic_error);
}

TEST(MixingGraphBuilder, AddMixValidatesIds) {
  MixingGraph g(pcr());
  NodeId a = g.addLeaf(0);
  EXPECT_THROW(g.addMix(a, 99), std::invalid_argument);
}

TEST(MixingGraphBuilder, FinalizeRejectsWrongRoot) {
  MixingGraph g(Ratio({1, 1}));
  NodeId a = g.addLeaf(0);
  // A pure droplet is not the 1:1 target.
  EXPECT_THROW(g.finalize(a), std::logic_error);
}

TEST(MixingGraphBuilder, SimpleTwoFluidGraph) {
  MixingGraph g(Ratio({1, 1}));
  NodeId a = g.addLeaf(0);
  NodeId b = g.addLeaf(1);
  NodeId m = g.addMix(a, b);
  g.finalize(m);
  EXPECT_EQ(g.leafCount(), 2u);
  EXPECT_EQ(g.internalCount(), 1u);
  EXPECT_EQ(g.depth(), 1u);
  EXPECT_TRUE(g.isTree());
}

TEST(MixingGraphBuilder, FinalizePrunesUnreachable) {
  MixingGraph g(Ratio({1, 1}));
  g.addLeaf(1);  // orphan
  NodeId a = g.addLeaf(0);
  NodeId b = g.addLeaf(1);
  NodeId m = g.addMix(a, b);
  g.finalize(m);
  EXPECT_EQ(g.nodeCount(), 3u);
}

TEST(BuildMM, PcrRunningExample) {
  // Fig. 1 base tree: 8 leaves (popcount sum), 7 mix-splits, depth 4.
  MixingGraph g = buildMM(pcr());
  EXPECT_EQ(g.leafCount(), 8u);
  EXPECT_EQ(g.internalCount(), 7u);
  EXPECT_EQ(g.depth(), 4u);
  EXPECT_TRUE(g.isTree());
}

TEST(BuildMM, LeafCountIsPopcountSum) {
  for (const Ratio& r : {Ratio({26, 21, 2, 2, 3, 3, 199}), Ratio({128, 123, 5}),
                         Ratio({9, 17, 26, 9, 195}), Ratio({3, 3, 2}),
                         Ratio({1, 1})}) {
    MixingGraph g = buildMM(r);
    EXPECT_EQ(g.leafCount(), r.popcountSum()) << r.toString();
    // A binary tree with L leaves has L-1 interior nodes.
    EXPECT_EQ(g.internalCount(), r.popcountSum() - 1) << r.toString();
  }
}

TEST(BuildMM, HandlesReducibleRatios) {
  // All parts even: the canonical value at the root still matches.
  MixingGraph g = buildMM(Ratio({2, 2}));
  EXPECT_EQ(g.depth(), 2u);
  EXPECT_EQ(g.leafCount(), 2u);
}

TEST(BuildRMA, ValidTreeWithAtLeastMmLeaves) {
  for (const Ratio& r :
       {pcr(), Ratio({26, 21, 2, 2, 3, 3, 199}), Ratio({128, 123, 5}),
        Ratio({25, 5, 5, 5, 5, 13, 13, 25, 1, 159}), Ratio({9, 17, 26, 9, 195}),
        Ratio({57, 28, 6, 6, 6, 3, 150})}) {
    MixingGraph g = buildRMA(r);
    EXPECT_TRUE(g.isTree()) << r.toString();
    // The balanced-partition reconstruction fragments shares, so it never
    // uses fewer input droplets than MM's minimal bit decomposition.
    EXPECT_GE(g.leafCount(), r.popcountSum()) << r.toString();
  }
}

TEST(BuildRMA, FragmentsDominantComponent) {
  // Ex.1 has a dominant 199/256 share; fragmentation must add leaves.
  MixingGraph g = buildRMA(Ratio({26, 21, 2, 2, 3, 3, 199}));
  EXPECT_GT(g.leafCount(), Ratio({26, 21, 2, 2, 3, 3, 199}).popcountSum());
}

TEST(BuildMTCS, SharesCommonSubMixtures) {
  // With repeated equal parts MTCS shares aggressively; the graph is a DAG
  // with no more mix nodes than MM's tree.
  for (const Ratio& r :
       {pcr(), Ratio({26, 21, 2, 2, 3, 3, 199}),
        Ratio({25, 5, 5, 5, 5, 13, 13, 25, 1, 159}), Ratio({3, 3, 2})}) {
    MixingGraph mm = buildMM(r);
    MixingGraph mtcs = buildMTCS(r);
    EXPECT_LE(mtcs.internalCount(), mm.internalCount()) << r.toString();
    EXPECT_LE(mtcs.leafCount(), r.fluidCount()) << r.toString();
  }
}

TEST(BuildRSM, ValidTree) {
  for (const Ratio& r : {pcr(), Ratio({26, 21, 2, 2, 3, 3, 199})}) {
    MixingGraph g = buildRSM(r);
    EXPECT_TRUE(g.isTree()) << r.toString();
    EXPECT_EQ(g.leafCount(), r.popcountSum()) << r.toString();
  }
}

TEST(BuildDilution, TwoFluidSpecialCase) {
  MixingGraph g = buildDilution(5, 4);  // 5/16 sample
  EXPECT_EQ(g.ratio(), Ratio({5, 11}));
  EXPECT_EQ(g.depth(), 4u);
}

TEST(BuildDilution, RejectsDegenerateConcentrations) {
  EXPECT_THROW(buildDilution(0, 4), std::invalid_argument);
  EXPECT_THROW(buildDilution(16, 4), std::invalid_argument);
  EXPECT_THROW(buildDilution(1, 0), std::invalid_argument);
}

TEST(Builders, DispatchMatchesDirectCalls) {
  const Ratio r = pcr();
  EXPECT_EQ(buildGraph(r, Algorithm::MM).leafCount(), buildMM(r).leafCount());
  EXPECT_EQ(buildGraph(r, Algorithm::RMA).leafCount(),
            buildRMA(r).leafCount());
  EXPECT_EQ(buildGraph(r, Algorithm::MTCS).nodeCount(),
            buildMTCS(r).nodeCount());
  EXPECT_EQ(buildGraph(r, Algorithm::RSM).leafCount(),
            buildRSM(r).leafCount());
}

TEST(Builders, AlgorithmNames) {
  EXPECT_EQ(algorithmName(Algorithm::MM), "MM");
  EXPECT_EQ(algorithmName(Algorithm::RMA), "RMA");
  EXPECT_EQ(algorithmName(Algorithm::MTCS), "MTCS");
  EXPECT_EQ(algorithmName(Algorithm::RSM), "RSM");
}

TEST(Builders, DotExportMentionsEveryNode) {
  MixingGraph g = buildMM(Ratio({1, 1}));
  const std::string dot = g.toDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// Property sweep: every builder produces a valid graph (finalize validates
// value correctness internally) on every corpus ratio.
class BuilderCorpusTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BuilderCorpusTest, AllCorpusRatiosBuildValidGraphs) {
  const auto& corpus = workload::evaluationCorpus();
  std::size_t checked = 0;
  // Stride through the corpus to keep runtime reasonable on one core.
  for (std::size_t i = 0; i < corpus.size(); i += 7) {
    const Ratio& r = corpus[i];
    MixingGraph g = buildGraph(r, GetParam());
    EXPECT_EQ(g.depth(), r.accuracy());
    EXPECT_GE(g.leafCount(), 1u);
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BuilderCorpusTest,
                         ::testing::Values(Algorithm::MM, Algorithm::RMA,
                                           Algorithm::MTCS, Algorithm::RSM),
                         [](const auto& paramInfo) {
                           return std::string(algorithmName(paramInfo.param));
                         });

}  // namespace
}  // namespace dmf::mixgraph
