file(REMOVE_RECURSE
  "libdmf_mixgraph.a"
)
