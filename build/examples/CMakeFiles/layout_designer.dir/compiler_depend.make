# Empty compiler generated dependencies file for layout_designer.
# This may be replaced when dependencies are built.
