# Empty compiler generated dependencies file for dmf_mixgraph.
# This may be replaced when dependencies are built.
