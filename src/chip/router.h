// Droplet routing on the electrode array: shortest obstacle-avoiding paths
// between module ports and the pairwise transport-cost matrix of Fig. 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chip/layout.h"

namespace dmf::chip {

/// One routed droplet path.
struct Route {
  /// Cells traversed, source port first, destination port last. Each cell is
  /// one actuated electrode.
  std::vector<Cell> cells;
  /// Electrodes actuated while transporting along this route — the paper's
  /// transportation cost (number of cells entered after the source).
  [[nodiscard]] unsigned cost() const {
    return cells.empty() ? 0u
                         : static_cast<unsigned>(cells.size() - 1);
  }
};

/// Shortest-path router. Droplets travel over free cells; cells inside
/// modules are obstacles except those of the route's own source and
/// destination modules (a droplet may cross its endpoints' footprints).
class Router {
 public:
  explicit Router(const Layout& layout);

  /// Routes between two modules' ports. Throws std::runtime_error when no
  /// path exists.
  [[nodiscard]] Route route(ModuleId from, ModuleId to) const;

  /// Transport cost between two modules (cached BFS).
  [[nodiscard]] unsigned cost(ModuleId from, ModuleId to) const;

  /// The full pairwise cost matrix, indexed [from][to] — the matrix printed
  /// in the paper's Fig. 5.
  [[nodiscard]] const std::vector<std::vector<unsigned>>& costMatrix() const;

  /// Renders the cost matrix with module labels.
  [[nodiscard]] std::string renderCostMatrix() const;

 private:
  Route bfs(ModuleId from, ModuleId to) const;

  const Layout* layout_;
  // Lazily filled cache of pairwise costs; kUnknown until computed.
  mutable std::vector<std::vector<unsigned>> costs_;
  mutable bool matrixComplete_ = false;

  static constexpr unsigned kUnknown = 0xFFFFFFFFu;
};

}  // namespace dmf::chip
