#include "engine/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "protocols/protocols.h"
#include "report/json.h"
#include "sched/schedulers.h"

namespace dmf {
namespace {

using report::Json;

TEST(Json, BuildsNestedStructures) {
  Json obj = Json::object();
  obj.set("name", Json::string("dmf"))
      .set("count", Json::number(std::uint64_t{42}))
      .set("ratio", Json::number(0.5))
      .set("ok", Json::boolean(true));
  Json arr = Json::array();
  arr.push(Json::number(std::uint64_t{1})).push(Json::string("two"));
  obj.set("items", std::move(arr));
  const std::string text = obj.dump();
  EXPECT_EQ(text,
            "{\"name\":\"dmf\",\"count\":42,\"ratio\":0.5,\"ok\":true,"
            "\"items\":[1,\"two\"]}");
}

TEST(Json, PrettyPrintsWithIndent) {
  Json obj = Json::object();
  obj.set("a", Json::number(std::uint64_t{1}));
  const std::string text = obj.dump(2);
  EXPECT_NE(text.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(report::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(Json::string("\t").dump(), "\"\\t\"");
  EXPECT_EQ(report::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, TypeMisuseThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("x", Json::boolean(false)), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(Json::boolean(false)), std::logic_error);
  EXPECT_THROW(Json::number(std::nan("")), std::invalid_argument);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\":"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,2"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"bad escape \\q\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"truncated \\u12\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"bad hex \\u12zz\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1e999999"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{} trailing"), std::invalid_argument);
}

TEST(Json, ParseRejectsTrailingGarbage) {
  // A daemon reading line-delimited JSON must treat "one value plus
  // anything else" as malformed, not silently take the prefix.
  EXPECT_THROW(Json::parse("{} x"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1 2"), std::invalid_argument);
  EXPECT_THROW(Json::parse("true false"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1] [2]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"a\"\"b\""), std::invalid_argument);
  // Trailing whitespace (including the \r of a CRLF line) is fine.
  EXPECT_NO_THROW(Json::parse("{} \t\r\n"));
}

TEST(Json, ParseRejectsMalformedUnicodeEscapes) {
  // Lone surrogate halves are not scalar values (RFC 8259 §8.2).
  EXPECT_THROW(Json::parse("\"\\uD800\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"\\uDC00\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"\\uD83Dx\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"\\uD83D\\n\""), std::invalid_argument);
  // A high surrogate followed by a non-low \u escape is equally broken.
  EXPECT_THROW(Json::parse("\"\\uD83D\\u0041\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"\\uD83D\\uD83D\""), std::invalid_argument);
}

TEST(Json, ParseDecodesSurrogatePairs) {
  // U+1F600 as a surrogate pair must decode to its 4-byte UTF-8 form.
  const Json emoji = Json::parse("\"\\uD83D\\uDE00\"");
  EXPECT_EQ(emoji.asString(), "\xF0\x9F\x98\x80");
  // BMP escapes keep working alongside.
  EXPECT_EQ(Json::parse("\"\\u00E9\"").asString(), "\xC3\xA9");
  EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
}

TEST(Json, ParseRejectsNonGrammarNumbers) {
  // RFC 8259 number grammar: no leading +, no leading zeros, no bare
  // dot/exponent. strtod accepts all of these, the grammar does not.
  EXPECT_THROW(Json::parse("+5"), std::invalid_argument);
  EXPECT_THROW(Json::parse("05"), std::invalid_argument);
  EXPECT_THROW(Json::parse("-05"), std::invalid_argument);
  EXPECT_THROW(Json::parse("5."), std::invalid_argument);
  EXPECT_THROW(Json::parse(".5"), std::invalid_argument);
  EXPECT_THROW(Json::parse("-"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1e"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1e+"), std::invalid_argument);
  EXPECT_THROW(Json::parse("0x10"), std::invalid_argument);
  EXPECT_THROW(Json::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[01]"), std::invalid_argument);
}

TEST(Json, ParseAcceptsGrammarNumbers) {
  EXPECT_EQ(Json::parse("0").asUint(), 0u);
  EXPECT_DOUBLE_EQ(Json::parse("-0").asDouble(), 0.0);
  EXPECT_EQ(Json::parse("42").asUint(), 42u);
  EXPECT_DOUBLE_EQ(Json::parse("0.25").asDouble(), 0.25);
  // The writer emits %.10g forms like 1e+06 — the parser must take its own
  // output back (round-trip), including exponents with an explicit sign.
  EXPECT_DOUBLE_EQ(Json::parse("1e+06").asDouble(), 1e6);
  EXPECT_DOUBLE_EQ(Json::parse("1E-2").asDouble(), 0.01);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e3").asDouble(), -2500.0);
}

TEST(Json, ParseRejectsExcessiveNesting) {
  // 256 levels are accepted; 257 must be rejected before the recursive
  // descent can exhaust the stack.
  std::string ok(256, '[');
  ok.append(256, ']');
  EXPECT_NO_THROW(Json::parse(ok));
  std::string deepArrays(257, '[');
  deepArrays.append(257, ']');
  EXPECT_THROW(Json::parse(deepArrays), std::invalid_argument);
  std::string deepObjects;
  for (int i = 0; i < 300; ++i) deepObjects += "{\"k\":";
  deepObjects += "0";
  for (int i = 0; i < 300; ++i) deepObjects += "}";
  EXPECT_THROW(Json::parse(deepObjects), std::invalid_argument);
  // A pathological input with no closers must fail, not recurse forever.
  EXPECT_THROW(Json::parse(std::string(100000, '[')), std::invalid_argument);
}

TEST(Serialize, MdstResultRoundsAllMetrics) {
  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  engine::MdstRequest request;
  request.demand = 20;
  request.scheme = engine::Scheme::kSRS;
  const std::string json = engine::toJson(engine.run(request)).dump();
  EXPECT_NE(json.find("\"mixSplits\":27"), std::string::npos);
  EXPECT_NE(json.find("\"waste\":5"), std::string::npos);
  EXPECT_NE(json.find("\"inputDroplets\":25"), std::string::npos);
  EXPECT_NE(json.find("\"inputPerFluid\":[3,2,2,2,2,2,12]"),
            std::string::npos);
}

TEST(Serialize, ScheduleListsEveryTaskOnce) {
  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const forest::TaskForest forest =
      engine.buildForest(mixgraph::Algorithm::MM, 20);
  const sched::Schedule schedule = sched::scheduleSRS(forest, 3);
  const std::string json = engine::toJson(forest, schedule).dump();
  std::size_t taskEntries = 0;
  for (std::size_t pos = json.find("\"cycle\":"); pos != std::string::npos;
       pos = json.find("\"cycle\":", pos + 1)) {
    ++taskEntries;
  }
  EXPECT_EQ(taskEntries, forest.taskCount());
  EXPECT_NE(json.find("\"fate\":\"target\""), std::string::npos);
  EXPECT_NE(json.find("\"fate\":\"waste\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\":\"SRS\""), std::string::npos);
}

TEST(Serialize, FaultFreePipelineOutputIsPinned) {
  // Regression pin: the serialized plan for the paper's PCR example must
  // stay byte-identical while fault injection is disabled. If an intentional
  // format change trips this, re-pin the hash (FNV-1a over dump()).
  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const forest::TaskForest forest =
      engine.buildForest(mixgraph::Algorithm::MM, 20);
  const sched::Schedule schedule = sched::scheduleSRS(forest, 3);
  const std::string json = engine::toJson(forest, schedule).dump();
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char ch : json) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001B3ull;
  }
  EXPECT_EQ(hash, 0x7CA1A16BD6C4DD56ull)
      << "serialized schedule changed; first bytes: "
                          << json.substr(0, 120);
}

TEST(Serialize, StreamingPlanRoundTrips) {
  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  engine::StreamingRequest request;
  request.demand = 32;
  request.storageCap = 3;
  request.mixers = 3;
  const engine::StreamingPlan plan = planStreaming(engine, request);
  const std::string json = engine::toJson(plan).dump(2);
  EXPECT_NE(json.find("\"passes\""), std::string::npos);
  EXPECT_NE(json.find("\"peakStorage\": 3"), std::string::npos);
}

// --------------------------------------------------------------------------
// Lossless fromJson round trips (the journal's resume path depends on
// toJson(fromJson(j)) dumping byte-identically to j).

TEST(Serialize, StreamingPlanGoldenRoundTripsPinned) {
  engine::StreamingPass pass;
  pass.demand = 4;
  pass.cycles = 7;
  pass.storageUnits = 3;
  pass.waste = 1;
  pass.inputDroplets = 6;
  pass.mixSplits = 7;
  engine::StreamingPlan plan;
  plan.perPassDemand = 4;
  plan.passes = {pass, pass};
  plan.totalCycles = 14;
  plan.totalWaste = 2;
  plan.totalInput = 12;
  plan.storageUnits = 3;
  plan.mixers = 2;
  const std::string kGolden =
      "{\"perPassDemand\":4,\"totalCycles\":14,\"totalWaste\":2,"
      "\"totalInput\":12,\"peakStorage\":3,\"mixers\":2,\"passes\":["
      "{\"demand\":4,\"cycles\":7,\"storage\":3,\"waste\":1,\"input\":6,"
      "\"mixSplits\":7},"
      "{\"demand\":4,\"cycles\":7,\"storage\":3,\"waste\":1,\"input\":6,"
      "\"mixSplits\":7}]}";
  EXPECT_EQ(engine::toJson(plan).dump(), kGolden);
  const engine::StreamingPlan rebuilt =
      engine::streamingPlanFromJson(Json::parse(kGolden));
  EXPECT_EQ(engine::toJson(rebuilt).dump(), kGolden);
  EXPECT_EQ(rebuilt.perPassDemand, 4u);
  ASSERT_EQ(rebuilt.passes.size(), 2u);
  EXPECT_EQ(rebuilt.passes[1].inputDroplets, 6u);
}

TEST(Serialize, StreamingPlanFromRealPlannerIsLossless) {
  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  engine::StreamingRequest request;
  request.demand = 32;
  request.storageCap = 3;
  request.mixers = 3;
  const engine::StreamingPlan plan = planStreaming(engine, request);
  const std::string dumped = engine::toJson(plan).dump();
  EXPECT_EQ(
      engine::toJson(engine::streamingPlanFromJson(Json::parse(dumped))).dump(),
      dumped);
}

TEST(Serialize, StreamingPlanFromJsonRejectsMalformedDocs) {
  EXPECT_THROW(engine::streamingPlanFromJson(Json::parse("[]")),
               std::invalid_argument);
  EXPECT_THROW(engine::streamingPlanFromJson(Json::parse("{}")),
               std::invalid_argument);
  EXPECT_THROW(engine::streamingPlanFromJson(Json::parse(
                   "{\"perPassDemand\":true}")),
               std::invalid_argument);
}

TEST(Serialize, RecoveryReportGoldenRoundTripsPinned) {
  engine::RecoveryReport report;
  report.demand = 8;
  report.delivered = 7;
  report.shortfall = 1;
  report.escapedErrors = 0;
  report.discarded = 2;
  fault::FaultEvent event;
  event.kind = fault::FaultKind::kSplitImbalance;
  event.cycle = 5;
  event.magnitude = 0.041;
  event.detail = "m3.2 split err 0.041";
  report.faults = {event};
  report.baseCompletion = 9;
  report.completionCycle = 12;
  report.retryBudget = 4;
  report.roundsUsed = 1;
  engine::RepairRound round;
  round.cycle = 6;
  round.span = 3;
  round.needs = {forest::NodeDemand{2, 1}};
  round.mixSplits = 3;
  round.inputDroplets = 2;
  round.actuations = 0;
  report.rounds = {round};
  report.extraMixSplits = 3;
  report.extraInputDroplets = 2;
  report.extraActuations = 0;
  report.mixersLost = 0;
  report.storageLost = 1;
  report.degraded = true;
  report.degradationReason = "storage exhausted";
  report.deadCells = {chip::Cell{4, 7}};
  const std::string kGolden =
      "{\"demand\":8,\"delivered\":7,\"shortfall\":1,\"escapedErrors\":0,"
      "\"discarded\":2,\"faultsInjected\":1,\"baseCompletion\":9,"
      "\"completionCycle\":12,\"retryBudget\":4,\"roundsUsed\":1,"
      "\"extraMixSplits\":3,\"extraInputDroplets\":2,\"extraActuations\":0,"
      "\"mixersLost\":0,\"storageLost\":1,\"degraded\":true,"
      "\"degradationReason\":\"storage exhausted\",\"faults\":["
      "{\"kind\":\"split\",\"cycle\":5,\"detail\":\"m3.2 split err 0.041\","
      "\"magnitude\":0.041}],\"rounds\":[{\"cycle\":6,\"span\":3,"
      "\"mixSplits\":3,\"inputDroplets\":2,\"actuations\":0,\"needs\":["
      "{\"node\":2,\"count\":1}]}],\"deadCells\":[[4,7]]}";
  EXPECT_EQ(engine::toJson(report).dump(), kGolden);
  const engine::RecoveryReport rebuilt =
      engine::recoveryReportFromJson(Json::parse(kGolden));
  EXPECT_EQ(engine::toJson(rebuilt).dump(), kGolden);
  ASSERT_EQ(rebuilt.faults.size(), 1u);
  EXPECT_EQ(rebuilt.faults[0].kind, fault::FaultKind::kSplitImbalance);
  EXPECT_DOUBLE_EQ(rebuilt.faults[0].magnitude, 0.041);
  ASSERT_EQ(rebuilt.deadCells.size(), 1u);
  EXPECT_EQ(rebuilt.deadCells[0].x, 4);
  EXPECT_EQ(rebuilt.deadCells[0].y, 7);
}

TEST(Serialize, RecoveryReportFromRealRunIsLossless) {
  engine::MdstEngine engine(protocols::pcrMasterMixRatio());
  const forest::TaskForest forest = engine.buildForest(
      mixgraph::Algorithm::MM, 16);
  const sched::Schedule schedule = sched::scheduleSRS(forest, 2);
  engine::RecoveryOptions options;
  options.seed = 11;
  options.faults = fault::FaultSpec::parse("split=0.05,loss=0.03");
  const engine::RecoveryReport report =
      engine::RecoveryEngine{options}.run(forest, schedule);
  const std::string dumped = engine::toJson(report).dump();
  EXPECT_EQ(engine::toJson(engine::recoveryReportFromJson(Json::parse(dumped)))
                .dump(),
            dumped);
}

TEST(Serialize, RecoveryReportFromJsonRejectsMalformedDocs) {
  EXPECT_THROW(engine::recoveryReportFromJson(Json::parse("7")),
               std::invalid_argument);
  EXPECT_THROW(engine::recoveryReportFromJson(Json::parse("{\"demand\":1}")),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmf
