// Collision-safe memo for chromosome fitness scores.
//
// The GA's fitness memo is addressed by a 64-bit FNV-1a hash of the
// chromosome's key bit patterns. A bare hash match must never be trusted:
// two distinct chromosomes that collide would silently share one score and
// the GA would breed on a fiction. Every lookup therefore compares the
// stored key vector before reusing a score, and a colliding insert chains a
// second entry under the same hash instead of overwriting the first.
//
// The hash function is a template parameter so tests can force collisions
// (a constant hash degrades the memo to a checked linear scan — scores must
// still come back exact).
#pragma once

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace dmf::sched {

/// FNV-1a over the chromosome's key bit patterns. A pure function of the
/// keys, so memo lookups are deterministic for every job count.
inline std::uint64_t hashChromosomeKeys(const std::vector<double>& keys) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const double key : keys) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(key));
    std::memcpy(&bits, &key, sizeof(bits));
    for (unsigned byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (byte * 8)) & 0xFFu;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

/// Hash-addressed map from chromosome keys to a fitness value, with the full
/// key vector stored alongside each value and compared on every hit.
template <typename Value>
class FitnessMemo {
 public:
  using HashFn = std::uint64_t (*)(const std::vector<double>&);

  explicit FitnessMemo(HashFn hash = &hashChromosomeKeys) : hash_(hash) {}

  /// The memoized value for exactly these keys, or nullptr. A hash match
  /// whose stored keys differ is counted as a collision and reported as a
  /// miss — the caller re-scores, never inherits the colliding score.
  [[nodiscard]] const Value* find(const std::vector<double>& keys) {
    const auto bucket = buckets_.find(hash_(keys));
    if (bucket == buckets_.end()) return nullptr;
    for (const Entry& entry : bucket->second) {
      if (entry.keys == keys) return &entry.value;
    }
    ++collisions_;
    return nullptr;
  }

  /// Records a score. A duplicate insert of the same keys keeps the first
  /// value (scores are pure functions of the keys, so they cannot differ).
  void insert(const std::vector<double>& keys, Value value) {
    auto& bucket = buckets_[hash_(keys)];
    for (const Entry& entry : bucket) {
      if (entry.keys == keys) return;
    }
    bucket.push_back(Entry{keys, std::move(value)});
  }

  /// Distinct chromosomes stored.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& [hash, bucket] : buckets_) total += bucket.size();
    return total;
  }

  /// Lookups whose hash matched but whose keys did not — each one is a
  /// wrong score the pre-fix memo would have returned.
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

 private:
  struct Entry {
    std::vector<double> keys;
    Value value;
  };

  HashFn hash_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  std::uint64_t collisions_ = 0;
};

}  // namespace dmf::sched
