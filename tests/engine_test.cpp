#include "engine/mdst.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/baseline.h"
#include "engine/streaming.h"

namespace dmf::engine {
namespace {

using mixgraph::Algorithm;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }
Ratio ex1() { return Ratio({26, 21, 2, 2, 3, 3, 199}); }

TEST(MdstEngine, DefaultMixersIsMlbOfMmTree) {
  MdstEngine engine(pcr());
  EXPECT_EQ(engine.defaultMixers(), 3u);
}

TEST(MdstEngine, RunProducesPaperStatsForFig2) {
  MdstEngine engine(pcr());
  MdstRequest req;
  req.algorithm = Algorithm::MM;
  req.scheme = Scheme::kSRS;
  req.mixers = 3;
  req.demand = 20;
  const MdstResult r = engine.run(req);
  EXPECT_EQ(r.mixSplits, 27u);
  EXPECT_EQ(r.waste, 5u);
  EXPECT_EQ(r.inputDroplets, 25u);
  EXPECT_EQ(r.componentTrees, 10u);
  EXPECT_EQ(r.mixers, 3u);
  EXPECT_GE(r.completionTime, 9u);
}

TEST(MdstEngine, RejectsZeroDemand) {
  MdstEngine engine(pcr());
  MdstRequest req;
  req.demand = 0;
  EXPECT_THROW(engine.run(req), std::invalid_argument);
}

TEST(MdstEngine, BaseGraphIsCachedPerAlgorithm) {
  MdstEngine engine(pcr());
  const auto& g1 = engine.baseGraph(Algorithm::MM);
  const auto& g2 = engine.baseGraph(Algorithm::MM);
  EXPECT_EQ(&g1, &g2);
  EXPECT_NE(&g1, &engine.baseGraph(Algorithm::RMA));
}

TEST(Baseline, RmmMatchesPaperTable2ColumnA) {
  // Table 2 column A (RMM) at D=32: Tc = 16 passes * 8 cycles = 128, and
  // Ir = 16 * popcount-sum. For Ex.1 that is 272 input droplets.
  MdstEngine engine(ex1());
  const BaselineResult r = runRepeatedBaseline(engine, Algorithm::MM, 32);
  EXPECT_EQ(r.passes, 16u);
  EXPECT_EQ(r.passCycles, 8u);
  EXPECT_EQ(r.completionTime, 128u);
  EXPECT_EQ(r.inputDroplets, 272u);
}

TEST(Baseline, AllFiveProtocolRatiosComplete128CyclesAtD32) {
  // Table 2 column A shows Tc = 128 for all five L=256 ratios.
  for (const Ratio& r :
       {ex1(), Ratio({128, 123, 5}), Ratio({25, 5, 5, 5, 5, 13, 13, 25, 1, 159}),
        Ratio({9, 17, 26, 9, 195}), Ratio({57, 28, 6, 6, 6, 3, 150})}) {
    MdstEngine engine(r);
    const BaselineResult b = runRepeatedBaseline(engine, Algorithm::MM, 32);
    EXPECT_EQ(b.completionTime, 128u) << r.toString();
  }
}

TEST(Baseline, OddDemandRoundsPassesUp) {
  MdstEngine engine(pcr());
  const BaselineResult r = runRepeatedBaseline(engine, Algorithm::MM, 5);
  EXPECT_EQ(r.passes, 3u);
  // Three passes emit 6 targets; the surplus one is waste.
  EXPECT_EQ(r.waste, 3u * 6u + 1u);
}

TEST(Baseline, ForestBeatsRepeatedBaseline) {
  // The headline claim: the engine is faster and cheaper than repetition.
  MdstEngine engine(pcr());
  MdstRequest req;
  req.scheme = Scheme::kMMS;
  req.demand = 32;
  const MdstResult ours = engine.run(req);
  const BaselineResult rep = runRepeatedBaseline(engine, Algorithm::MM, 32);
  EXPECT_LT(ours.completionTime, rep.completionTime);
  EXPECT_LT(ours.inputDroplets, rep.inputDroplets);
  EXPECT_LT(ours.waste, rep.waste);
}

TEST(Baseline, PercentImprovement) {
  EXPECT_DOUBLE_EQ(percentImprovement(100.0, 25.0), 75.0);
  EXPECT_DOUBLE_EQ(percentImprovement(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(percentImprovement(50.0, 60.0), -20.0);
}

TEST(Streaming, UnlimitedStorageUsesOnePass) {
  MdstEngine engine(pcr());
  StreamingRequest req;
  req.demand = 32;
  req.storageCap = 100;
  req.mixers = 3;
  const StreamingPlan plan = planStreaming(engine, req);
  EXPECT_EQ(plan.passes.size(), 1u);
  EXPECT_EQ(plan.perPassDemand, 32u);
  EXPECT_EQ(plan.totalWaste, 0u);
}

TEST(Streaming, TightStorageSplitsIntoPasses) {
  MdstEngine engine(pcr());
  StreamingRequest req;
  req.demand = 32;
  req.storageCap = 3;
  req.mixers = 3;
  const StreamingPlan plan = planStreaming(engine, req);
  EXPECT_GT(plan.passes.size(), 1u);
  EXPECT_LE(plan.storageUnits, 3u);
  std::uint64_t produced = 0;
  for (const auto& pass : plan.passes) produced += pass.demand;
  EXPECT_EQ(produced, 32u);
}

TEST(Streaming, MorePassesMeansMoreWasteAndCycles) {
  MdstEngine engine(pcr());
  StreamingRequest loose;
  loose.demand = 32;
  loose.storageCap = 20;
  loose.mixers = 3;
  StreamingRequest tight = loose;
  tight.storageCap = 3;
  const StreamingPlan a = planStreaming(engine, loose);
  const StreamingPlan b = planStreaming(engine, tight);
  EXPECT_LE(a.totalCycles, b.totalCycles);
  EXPECT_LE(a.totalWaste, b.totalWaste);
}

TEST(Streaming, RejectsZeroDemand) {
  MdstEngine engine(pcr());
  StreamingRequest req;
  req.demand = 0;
  EXPECT_THROW(planStreaming(engine, req), std::invalid_argument);
}

TEST(Streaming, MmsSchemeAlsoWorks) {
  MdstEngine engine(pcr());
  StreamingRequest req;
  req.scheme = Scheme::kMMS;
  req.demand = 16;
  req.storageCap = 10;
  req.mixers = 3;
  const StreamingPlan plan = planStreaming(engine, req);
  EXPECT_LE(plan.storageUnits, 10u);
}

TEST(SchemeNames, AreStable) {
  EXPECT_EQ(schemeName(Scheme::kMMS), "MMS");
  EXPECT_EQ(schemeName(Scheme::kSRS), "SRS");
  EXPECT_EQ(schemeName(Scheme::kOMS), "OMS");
}

}  // namespace
}  // namespace dmf::engine
