// Extension experiment: multi-target preparation (SDMT/MDMT, the Table 1
// axis the paper leaves open). A shared mixing forest prepares several
// related mixtures at once; this harness quantifies the savings over
// preparing each target separately, across corpus pairs and a case study
// where one target is an intermediate of another.
#include <iostream>

#include "engine/multi_target.h"
#include "report/table.h"
#include "workload/ratio_corpus.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("multi_target");
  using namespace dmf;
  using engine::runMultiTarget;
  using engine::TargetDemand;

  std::cout << "# Extension — multi-target preparation vs separate engines\n\n";

  std::cout << "## Case studies (D = 8 per target unless noted)\n\n";
  report::Table cases({"targets", "Tc shared", "Tc separate", "I shared",
                       "I separate", "W shared", "W separate"});
  struct Case {
    const char* name;
    std::vector<TargetDemand> targets;
  };
  const Case studies[] = {
      {"PCR mix + fluid-swapped variant",
       {{Ratio({2, 1, 1, 1, 1, 1, 9}), 8}, {Ratio({2, 1, 1, 1, 1, 9, 1}), 8}}},
      {"{3:1} + its own intermediate {2:2} (D = 6/7)",
       {{Ratio({3, 1}), 6}, {Ratio({2, 2}), 7}}},
      {"three gradient blends {1:3},{2:2},{3:1} (D = 6 each)",
       {{Ratio({1, 3}), 6}, {Ratio({2, 2}), 6}, {Ratio({3, 1}), 6}}},
      {"PCR mix at two water levels",
       {{Ratio({2, 1, 1, 1, 1, 1, 9}), 8}, {Ratio({2, 2, 1, 1, 1, 1, 8}), 8}}},
  };
  for (const Case& c : studies) {
    const engine::MultiTargetResult r = runMultiTarget(c.targets);
    cases.addRow({c.name, std::to_string(r.completionTime),
                  std::to_string(r.separateCompletionTime),
                  std::to_string(r.inputDroplets),
                  std::to_string(r.separateInputDroplets),
                  std::to_string(r.waste),
                  std::to_string(r.separateWaste)});
  }
  std::cout << cases.render() << "\n";

  std::cout << "## Corpus pairs (adjacent L=32 ratios of equal fluid count, "
               "D = 9 each)\n\n";
  const auto& corpus = workload::evaluationCorpus();
  double tcShared = 0;
  double tcSeparate = 0;
  double inShared = 0;
  double inSeparate = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i + 1 < corpus.size() && pairs < 120; i += 17) {
    if (corpus[i].fluidCount() != corpus[i + 1].fluidCount()) continue;
    const engine::MultiTargetResult r = runMultiTarget(
        {TargetDemand{corpus[i], 9}, TargetDemand{corpus[i + 1], 9}});
    tcShared += r.completionTime;
    tcSeparate += r.separateCompletionTime;
    inShared += static_cast<double>(r.inputDroplets);
    inSeparate += static_cast<double>(r.separateInputDroplets);
    ++pairs;
  }
  report::Table avg({"metric", "shared", "separate", "saving"});
  const auto n = static_cast<double>(pairs);
  avg.addRow({"avg Tc", report::fixed(tcShared / n, 1),
              report::fixed(tcSeparate / n, 1),
              report::fixed(100.0 * (1.0 - tcShared / tcSeparate), 1) + "%"});
  avg.addRow({"avg I", report::fixed(inShared / n, 1),
              report::fixed(inSeparate / n, 1),
              report::fixed(100.0 * (1.0 - inShared / inSeparate), 1) + "%"});
  std::cout << avg.render() << "(" << pairs << " corpus pairs)\n";
  return 0;
}
