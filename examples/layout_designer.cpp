// Layout design flow: synthesize a chip for the Splinkerette-PCR protocol,
// profile its droplet traffic, and let the annealer re-place the modules to
// cut transport cost (the routing-aware allocation idea of the paper's
// reference [21]).
#include <iostream>

#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/placer.h"
#include "chip/router.h"
#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "protocols/protocols.h"
#include "sched/schedulers.h"

int main() {
  using namespace dmf;

  // Splinkerette PCR: five fluids at scale 256 (paper Ex.4).
  const Ratio ratio = protocols::publishedProtocols()[3].ratio;
  std::cout << "=== Layout design for " << ratio.toString() << " ===\n\n";

  const mixgraph::MixingGraph graph = mixgraph::buildMM(ratio);
  const forest::TaskForest forest(graph, 16);
  const sched::Schedule schedule = sched::scheduleSRS(forest, 3);

  chip::Layout layout = chip::synthesizeLayout(ratio.fluidCount(), 3, 8);
  std::cout << "Initial layout:\n" << layout.render() << "\n";

  chip::Router router(layout);
  chip::ChipExecutor executor(layout, router);
  const chip::ExecutionTrace before = executor.run(forest, schedule);
  std::cout << "Initial transport cost: " << before.totalCost
            << " electrode actuations\n\n";

  const chip::FlowMatrix flow =
      chip::flowFromTrace(before, layout.moduleCount());
  chip::AnnealOptions options;
  options.iterations = 30000;
  const chip::Layout optimized = chip::annealPlacement(layout, flow, options);
  std::cout << "Annealed layout:\n" << optimized.render() << "\n";

  chip::Router optimizedRouter(optimized);
  chip::ChipExecutor optimizedExecutor(optimized, optimizedRouter);
  const chip::ExecutionTrace after = optimizedExecutor.run(forest, schedule);
  std::cout << "Annealed transport cost: " << after.totalCost
            << " electrode actuations ("
            << (before.totalCost > after.totalCost ? "saves " : "adds ")
            << (before.totalCost > after.totalCost
                    ? before.totalCost - after.totalCost
                    : after.totalCost - before.totalCost)
            << ")\n";
  return 0;
}
