// The plan service behind `dmfstream serve` (DESIGN.md §13): parses one
// line-delimited JSON request, canonicalizes it, and answers from a
// two-tier plan cache, coalescing concurrent identical requests onto one
// computation.
//
// Request pipeline per line:
//   parse -> canonicalize -> cache get (hit: respond in microseconds)
//         -> coalescing map (in-flight identical request: wait on its
//            future — second arrival never re-plans)
//         -> admission queue (leader enqueues; batches drain over the
//            shared runtime::ThreadPool; each plan computes serially so
//            cross-request parallelism never nests the pool)
//
// handle() never throws: malformed input, infeasible requests and internal
// errors all become {"ok":false,...} responses — nothing propagates across
// the socket loop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/policy.h"
#include "obs/scope.h"
#include "runtime/thread_pool.h"
#include "server/canonical.h"
#include "server/plan_cache.h"

namespace dmf::journal {
class ServerJournal;
}  // namespace dmf::journal

namespace dmf::server {

struct ServiceOptions {
  /// In-memory plan-cache entries.
  std::size_t cacheSize = 256;
  /// Persistent cache tier directory; empty = memory only.
  std::string cacheDir;
  /// Write-ahead-log directory: admitted plan requests are journaled before
  /// computation and acknowledged once cached, so a killed daemon replays
  /// the in-flight ones on restart. Empty = no WAL.
  std::string journalDir;
  /// Admission-queue fan-out: plan computations for distinct requests run
  /// concurrently over this many workers (0 = hardware concurrency). Each
  /// computation is serial inside, so responses are byte-identical for
  /// every value.
  unsigned jobs = 1;
  /// Test-only: stretch every cold computation by this many nanoseconds to
  /// make coalescing windows deterministic. 0 in production.
  std::uint64_t computeDelayNanosForTest = 0;
  /// Fleet arbitration (DESIGN.md §17): when > 0, admission batches drain
  /// in fleet::ArbitrationPolicy order over this many virtual lanes, with
  /// per-connection user identity feeding fairness accounting. 0 keeps the
  /// plain admission-order drain.
  unsigned fleet = 0;
  /// "fifo" | "rr" | "wfq" (makePolicy names).
  std::string fleetPolicy = "fifo";
  /// Weights for the user slots; its size bounds the number of slots a
  /// connection id folds into (empty = 16 equal-weight slots).
  std::vector<double> fleetWeights;
  /// wfq service quantum (in demand units); 0 disables batching.
  double fleetQuantum = 0.0;
};

/// Fleet-arbitration configuration of the admission queue (off by default).
struct FleetArbitration {
  /// Virtual lanes batches place over (0 = arbitration off).
  unsigned lanes = 0;
  std::string policy = "fifo";
  /// User-slot weights; size bounds the slots connection ids fold into
  /// (empty = 16 equal-weight slots).
  std::vector<double> weights;
  double quantum = 0.0;
};

/// Per-user-slot service accounting of a fleet-arbitrated queue.
struct FleetQueueStats {
  unsigned lanes = 0;
  std::string policy;
  /// Dispatched service cost (demand units) per user slot.
  std::vector<std::uint64_t> userService;
  /// Accumulated cost placed on each virtual lane.
  std::vector<std::uint64_t> laneBusy;
  /// Jain's fairness index over weight-normalized user service, in
  /// permille (1000 = perfectly weight-proportional).
  std::uint64_t jainPermille = 1000;
};

/// Batches submitted jobs and drains each batch over the shared pool. The
/// dispatcher thread is the only pool caller, so jobs themselves may not
/// touch the pool (nested same-pool use is rejected by ThreadPool anyway).
///
/// With fleet arbitration enabled each batch is reordered by the
/// arbitration policy before it fans out: the policy state (e.g. wfq
/// virtual time) persists across batches, so a heavy user's backlog cannot
/// starve light users within any drain.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(runtime::ThreadPool& pool,
                          FleetArbitration fleet = {});
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueues a job; it runs on a pool worker in admission order (policy
  /// order under fleet arbitration). Jobs must not throw (they fulfill
  /// promises instead). `user` is the submitting user's identity (folded
  /// into a user slot); `cost` is the service-cost proxy the policy
  /// arbitrates on (e.g. the request demand; clamped to >= 1).
  void submit(unsigned user, std::uint64_t cost, std::function<void()> job);
  void submit(std::function<void()> job) { submit(0, 1, std::move(job)); }

  /// Snapshot of the fleet accounting (zero-lane stats when arbitration is
  /// off). Thread-safe.
  [[nodiscard]] FleetQueueStats fleetStats() const;

 private:
  struct PendingJob {
    unsigned user = 0;
    std::uint64_t cost = 1;
    std::function<void()> job;
  };

  void drainLoop();
  /// Policy-orders one batch and updates the fleet accounting.
  [[nodiscard]] std::vector<PendingJob> arbitrate(
      std::vector<PendingJob> batch);

  runtime::ThreadPool& pool_;
  FleetArbitration fleet_;
  /// Touched only by the dispatcher thread.
  std::unique_ptr<fleet::ArbitrationPolicy> policy_;
  std::uint64_t admission_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<PendingJob> pending_;
  /// Fleet accounting (guarded by mutex_ — stats() reads cross-thread).
  std::vector<std::uint64_t> userService_;
  std::vector<std::uint64_t> laneBusy_;
  bool stopping_ = false;
  std::thread dispatcher_;
};

class PlanService {
 public:
  /// Throws std::invalid_argument on unusable options (e.g. a cache dir
  /// whose parent does not exist).
  explicit PlanService(const ServiceOptions& options);
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Handles one request line and returns one response line (no trailing
  /// newline). Never throws. Sets *shutdown when the request was a
  /// {"op":"shutdown"} — the caller owns what that means. `user` is the
  /// caller's identity for fleet arbitration (the socket server passes the
  /// connection index; an optional "user" field in the request overrides
  /// it). The user NEVER enters the canonical cache key — identical plans
  /// from different users share one entry.
  [[nodiscard]] std::string handle(const std::string& line,
                                   bool* shutdown = nullptr,
                                   unsigned user = 0);

  /// The admission queue's fleet accounting (zero-lane when off).
  [[nodiscard]] FleetQueueStats fleetStats() const {
    return queue_.fleetStats();
  }

  /// Replays write-ahead-logged requests left unacknowledged by a previous
  /// daemon run (no-op without a journal). Each replayed line goes back
  /// through handle(), so it re-journals itself and — because every
  /// completed plan reached the disk cache tier before its ack — mostly
  /// resolves as a cache hit. Returns the number of requests replayed.
  /// Throws journal::CorruptJournalError on a damaged WAL.
  std::size_t replayJournal();

  /// Emits the structured `server.shutdown` summary (request/cache/uptime
  /// counters). Called on the shutdown op and by graceful signal handling.
  void logShutdown() const;

  [[nodiscard]] const PlanCache& cache() const { return cache_; }
  /// Requests handled (every line, including errors and control ops).
  [[nodiscard]] std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Cold plan computations actually executed (cache misses that led).
  [[nodiscard]] std::uint64_t planned() const {
    return planned_.load(std::memory_order_relaxed);
  }
  /// Requests that waited on an identical in-flight computation.
  [[nodiscard]] std::uint64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  /// Sum of totalCycles over every cold-computed plan (the model work this
  /// service has actually performed, as opposed to served from cache).
  [[nodiscard]] std::uint64_t modelCycles() const {
    return modelCycles_.load(std::memory_order_relaxed);
  }

 private:
  /// What one computation resolves to — either plan bytes or an error.
  struct Outcome {
    bool ok = false;
    std::string plan;   ///< dumped plan JSON when ok
    std::string kind;   ///< error taxonomy: request|infeasible|internal
    std::string error;  ///< human-readable message when !ok
  };

  /// One in-flight computation: the future everyone waits on plus the
  /// leader request's span context, so a coalesced follower can name the
  /// trace it piggybacked on.
  struct Inflight {
    std::shared_future<Outcome> future;
    obs::SpanContext leader;
  };

  [[nodiscard]] std::string dispatch(const std::string& line, bool* shutdown,
                                     obs::Span& span, unsigned user);
  [[nodiscard]] std::string handlePlan(const report::Json& request,
                                       const std::string& line,
                                       obs::Span& span, unsigned user);
  [[nodiscard]] Outcome compute(const CanonicalRequest& request);
  [[nodiscard]] static std::string planResponse(const char* source,
                                                const std::string& key,
                                                const std::string& plan);
  [[nodiscard]] static std::string errorResponse(const std::string& kind,
                                                 const std::string& error);
  [[nodiscard]] static std::string outcomeResponse(const char* source,
                                                   const std::string& key,
                                                   const Outcome& outcome);

  ServiceOptions options_;
  PlanCache cache_;
  /// Null without options.journalDir; owned here so WAL appends can come
  /// from any connection or pool thread for the service's whole lifetime.
  std::unique_ptr<journal::ServerJournal> journal_;
  runtime::ThreadPool pool_;
  AdmissionQueue queue_;  // after pool_: drains onto it, destroyed first

  std::mutex inflightMutex_;
  std::unordered_map<std::string, Inflight> inflight_;

  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> planned_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> modelCycles_{0};
};

}  // namespace dmf::server
