// Deterministic execution journal (DESIGN.md §16): an append-only,
// CRC32-framed, length-prefixed record log plus atomically-published
// snapshots, modeled on the changelog+snapshot pattern of replicated state
// machines. The whole pipeline is seeded-deterministic and byte-identical
// across --jobs, so replaying "state at last snapshot + records since" and
// re-executing the rest reproduces an uninterrupted run byte for byte.
//
// Framing: every record is [u32 payload length][u32 CRC32(payload)][payload]
// with little-endian headers. Two failure classes are kept strictly apart:
//
//  * a TORN TAIL — the file ends before the final record's promised bytes —
//    is the expected artifact of a crash mid-append. Replay stops at the
//    last complete record and truncates the file there; nothing is lost
//    because everything after the truncation point re-executes
//    deterministically.
//  * CORRUPTION — a complete frame whose payload fails its CRC, or an
//    unreadable snapshot — is never silently repaired. It throws
//    CorruptJournalError, which the CLI maps to its own exit code (5):
//    detected, attributable, never undefined behaviour or a wrong answer.
//
// Snapshots are written to a temporary file, flushed, fsync'd, renamed over
// the target, and the directory fsync'd — a crash can leave the old
// snapshot or the new one, never a half-written or empty-but-renamed file.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace dmf::journal {

/// A journal file whose *committed* region is damaged: a complete record
/// frame failing its CRC, an unparseable snapshot, or replay state that
/// contradicts itself. Distinct from a torn tail (silently truncated) and
/// from a journal/request mismatch (std::invalid_argument). The CLI maps
/// this to exit code 5.
class CorruptJournalError : public std::runtime_error {
 public:
  explicit CorruptJournalError(const std::string& what)
      : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte string —
/// the per-record checksum of the framing format.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);
[[nodiscard]] inline std::uint32_t crc32(const std::string& text) {
  return crc32(text.data(), text.size());
}

/// Outcome of replaying one record log.
struct ReplayResult {
  /// The payloads of every complete, CRC-valid record, in append order.
  std::vector<std::string> records;
  /// Byte length of the valid prefix (the truncation point when torn).
  std::uint64_t validBytes = 0;
  /// True when a torn tail was dropped (expected after a crash).
  bool tornTail = false;
};

/// Frames one payload as [u32 length][u32 crc][payload] (little-endian).
[[nodiscard]] std::string frameRecord(const std::string& payload);

/// Replays framed records from an in-memory image (exposed for tests and
/// the fuzzer's corruption sweeps). A torn final frame truncates; a
/// complete frame with a CRC mismatch throws CorruptJournalError.
[[nodiscard]] ReplayResult replayRecords(const std::string& bytes,
                                         const std::string& context);

/// Append-only record log. Every append writes one framed record and
/// flushes + fsyncs it before returning, so an acknowledged append survives
/// a crash of this process (power loss is the disk's problem).
class RecordLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  /// Throws std::runtime_error when the file cannot be opened.
  explicit RecordLog(std::string path);
  ~RecordLog();

  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Appends one framed record, durably. Throws std::runtime_error on I/O
  /// failure (a journaled run must not silently lose its journal).
  void append(const std::string& payload);

  /// Replays the log from disk: returns every valid record and physically
  /// truncates a torn tail so subsequent appends extend the valid prefix.
  /// Throws CorruptJournalError on mid-log corruption.
  [[nodiscard]] ReplayResult replayAndRepair();

  /// Truncates the log to empty (after a snapshot has captured its state).
  void reset();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void open();

  std::string path_;
  int fd_ = -1;
};

/// Writes `bytes` to `path` atomically: tmp file + flush + fsync + rename +
/// directory fsync. A crash leaves either the previous file or the new one.
/// Throws std::runtime_error on I/O failure.
void writeFileAtomic(const std::string& path, const std::string& bytes);

/// The file's contents, or nullopt when it does not exist.
[[nodiscard]] std::optional<std::string> readFileIfExists(
    const std::string& path);

/// Creates `dir` if needed (the parent must already exist, mirroring
/// PlanCache's rule). Throws std::invalid_argument otherwise.
void ensureJournalDir(const std::string& dir);

}  // namespace dmf::journal
