// The synthetic target-ratio corpus of the paper's evaluation: target ratios
// of N different fluids (2 <= N <= 12) with ratio-sum L = 32. We enumerate
// integer partitions exhaustively (deterministic, order-free), reporting the
// corpus size alongside every averaged result.
#pragma once

#include <cstdint>
#include <vector>

#include "dmf/ratio.h"

namespace dmf::workload {

/// Enumerates every integer partition of `sum` into between `minParts` and
/// `maxParts` parts (each >= 1), as ratios with parts in non-increasing
/// order. `sum` must be a power of two >= 2 so the results are valid target
/// ratios. Throws std::invalid_argument on bad bounds.
[[nodiscard]] std::vector<Ratio> partitionCorpus(std::uint64_t sum,
                                                 std::size_t minParts,
                                                 std::size_t maxParts);

/// The corpus used throughout the evaluation benches: L = 32, 2 <= N <= 12.
[[nodiscard]] const std::vector<Ratio>& evaluationCorpus();

/// Number of partitions of `sum` into exactly `parts` parts (for tests).
[[nodiscard]] std::uint64_t countPartitions(std::uint64_t sum,
                                            std::size_t parts);

}  // namespace dmf::workload
