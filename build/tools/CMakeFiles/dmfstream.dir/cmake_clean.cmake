file(REMOVE_RECURSE
  "CMakeFiles/dmfstream.dir/dmfstream_cli.cpp.o"
  "CMakeFiles/dmfstream.dir/dmfstream_cli.cpp.o.d"
  "dmfstream"
  "dmfstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmfstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
