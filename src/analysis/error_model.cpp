#include "analysis/error_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmf::analysis {

using mixgraph::MixingGraph;
using mixgraph::NodeId;

std::vector<NodeError> analyzeErrors(const MixingGraph& graph,
                                     const ErrorOptions& options) {
  if (!graph.finalized()) {
    throw std::invalid_argument("analyzeErrors: graph must be finalized");
  }
  if (options.splitImbalance < 0.0 || options.dispenseError < 0.0) {
    throw std::invalid_argument("analyzeErrors: error fractions must be >= 0");
  }
  const std::size_t fluids = graph.ratio().fluidCount();
  std::vector<NodeError> errors(graph.nodeCount());

  // Children precede parents in creation order (MixingGraph invariant), so a
  // single forward sweep suffices.
  for (NodeId id = 0; id < graph.nodeCount(); ++id) {
    const auto& node = graph.node(id);
    NodeError& e = errors[id];
    e.concentration.assign(fluids, 0.0);
    if (node.isLeaf()) {
      e.volume = options.dispenseError;
      continue;
    }
    const NodeError& left = errors[node.left];
    const NodeError& right = errors[node.right];
    const double operandVolume = (left.volume + right.volume) / 2.0;
    e.volume = operandVolume + options.splitImbalance;
    const auto& cfLeft = graph.node(node.left).value;
    const auto& cfRight = graph.node(node.right).value;
    for (std::size_t f = 0; f < fluids; ++f) {
      const double gap = std::abs(cfLeft.concentration(f).toDouble() -
                                  cfRight.concentration(f).toDouble());
      e.concentration[f] =
          (left.concentration[f] + right.concentration[f]) / 2.0 +
          gap / 2.0 * operandVolume;
      e.worstConcentration =
          std::max(e.worstConcentration, e.concentration[f]);
    }
  }
  return errors;
}

NodeError targetError(const MixingGraph& graph, const ErrorOptions& options) {
  return analyzeErrors(graph, options)[graph.root()];
}

double quantizationError(const MixingGraph& graph) {
  return 1.0 / std::ldexp(1.0, static_cast<int>(graph.ratio().accuracy() + 1));
}

}  // namespace dmf::analysis
