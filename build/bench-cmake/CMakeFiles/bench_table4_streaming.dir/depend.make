# Empty dependencies file for bench_table4_streaming.
# This may be replaced when dependencies are built.
