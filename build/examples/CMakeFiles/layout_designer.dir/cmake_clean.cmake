file(REMOVE_RECURSE
  "CMakeFiles/layout_designer.dir/layout_designer.cpp.o"
  "CMakeFiles/layout_designer.dir/layout_designer.cpp.o.d"
  "layout_designer"
  "layout_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
