// perf_gate — the enforced perf-regression gate (DESIGN.md §14).
//
//   perf_gate --bench BENCH_x.json --baseline bench/baselines/x.json
//             [--inflate PCT] [--refresh]
//
// The baseline file pins expectations for gauges a bench binary emitted
// through bench_obs.h:
//
//   {"bench": "bench_micro",
//    "entries": [{"gauge": "bench.obs.hit_overhead_pct_x1000",
//                 "baseline": 600, "tolerance_pct": 100,
//                 "direction": "below"}, ...]}
//
// direction "below" (latencies, overheads): measured must stay under
// baseline * (1 + tolerance_pct/100). direction "above" (throughputs):
// measured must stay over baseline * (1 - tolerance_pct/100).
// tolerance_pct defaults to 15.
//
// --inflate PCT degrades every measured value by PCT percent (raises
// "below" gauges, lowers "above" gauges) before comparing — the self-test
// hook proving the gate actually trips on a synthetic regression.
// --refresh rewrites the baseline file's values from the measured gauges
// (tolerances and directions are kept; gauges missing from the bench output
// keep their old values) — the documented workflow after an intentional perf
// change; commit the diff. Refreshed files are canonical: entries sorted by
// gauge name, every field explicit, so two refreshes diff minimally.
// --lint (baseline only, no --bench) asserts the file is already in that
// canonical refreshed form; ctest runs it on every committed baseline.
//
// Exit codes follow the repo taxonomy: 0 within tolerance, 1 usage /
// unreadable input, 4 regression / lint findings.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "report/json.h"

namespace {

using dmf::report::Json;

struct Options {
  std::string benchPath;
  std::string baselinePath;
  double inflatePct = 0.0;
  bool refresh = false;
  bool lint = false;
};

int usage() {
  std::cerr << "usage: perf_gate --bench BENCH.json --baseline BASELINE.json"
               " [--inflate PCT] [--refresh]\n"
               "       perf_gate --lint --baseline BASELINE.json\n";
  return 1;
}

Json loadJson(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::parse(buffer.str());
}

/// A gauge (or counter — the sections share a namespace) from a bench
/// metrics snapshot.
std::optional<std::uint64_t> lookup(const Json& snapshot,
                                    const std::string& name) {
  for (const char* section : {"gauges", "counters"}) {
    if (snapshot.contains(section) && snapshot.at(section).contains(name)) {
      return snapshot.at(section).at(name).asUint();
    }
  }
  return std::nullopt;
}

std::string formatRow(const std::string& gauge, double baseline,
                      double measured, double limit, const char* verdict) {
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s baseline %14.0f  measured %14.0f"
                "  limit %14.0f  %s",
                gauge.c_str(), baseline, measured, limit, verdict);
  return line;
}

/// Canonical-form check: entries sorted by gauge name (strictly — duplicates
/// are findings too) with every field explicit, exactly what --refresh
/// writes. Returns the number of violations, printing each.
unsigned lintBaseline(const Json& entries, const std::string& path) {
  unsigned findings = 0;
  std::string previous;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Json& entry = entries.at(i);
    const std::string gauge =
        entry.contains("gauge") ? entry.at("gauge").asString() : "";
    for (const char* field : {"gauge", "baseline", "tolerance_pct",
                              "direction"}) {
      if (!entry.contains(field)) {
        std::cout << path << ": entry " << i << " (" << gauge
                  << "): missing field \"" << field << "\"\n";
        ++findings;
      }
    }
    if (i > 0 && !(previous < gauge)) {
      std::cout << path << ": entry \"" << gauge << "\" breaks sorted order"
                << " (after \"" << previous << "\"); re-run --refresh\n";
      ++findings;
    }
    previous = gauge;
  }
  return findings;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + ": missing value");
      return argv[++i];
    };
    try {
      if (arg == "--bench") {
        options.benchPath = value();
      } else if (arg == "--baseline") {
        options.baselinePath = value();
      } else if (arg == "--inflate") {
        options.inflatePct = std::stod(value());
      } else if (arg == "--refresh") {
        options.refresh = true;
      } else if (arg == "--lint") {
        options.lint = true;
      } else {
        std::cerr << "error: unknown argument '" << arg << "'\n";
        return usage();
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return usage();
    }
  }
  if (options.baselinePath.empty() ||
      (options.benchPath.empty() && !options.lint)) {
    return usage();
  }

  try {
    Json baseline = loadJson(options.baselinePath);
    if (!baseline.isObject() || !baseline.contains("entries") ||
        !baseline.at("entries").isArray()) {
      throw std::invalid_argument("baseline '" + options.baselinePath +
                                  "': expected {\"entries\": [...]}");
    }
    const Json& entries = baseline.at("entries");

    if (options.lint) {
      const unsigned findings = lintBaseline(entries, options.baselinePath);
      if (findings > 0) {
        std::cerr << findings << " lint finding(s); canonicalize with "
                     "perf_gate --refresh\n";
        return 4;
      }
      std::cout << "perf gate: " << options.baselinePath << " is canonical ("
                << entries.size() << " entries, sorted)\n";
      return 0;
    }

    const Json bench = loadJson(options.benchPath);
    unsigned failures = 0;
    // Refreshed entries carry a sort key so the emitted file is canonical
    // (sorted by gauge) regardless of the input order.
    std::vector<std::pair<std::string, Json>> refreshed;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Json& entry = entries.at(i);
      const std::string gauge = entry.at("gauge").asString();
      const double base = entry.at("baseline").asDouble();
      const double tolerance = entry.contains("tolerance_pct")
                                   ? entry.at("tolerance_pct").asDouble()
                                   : 15.0;
      const std::string direction = entry.contains("direction")
                                        ? entry.at("direction").asString()
                                        : "below";
      if (direction != "below" && direction != "above") {
        throw std::invalid_argument("baseline entry '" + gauge +
                                    "': direction must be below|above");
      }

      const auto found = lookup(bench, gauge);
      if (!found.has_value() && !options.refresh) {
        std::cout << gauge << ": MISSING from " << options.benchPath << "\n";
        ++failures;
        continue;
      }
      // In refresh mode a missing gauge keeps its old pin instead of being
      // dropped from the file.
      double measured = found.has_value() ? static_cast<double>(*found) : base;
      // The self-test hook: degrade in whichever direction is "worse".
      measured *= direction == "below" ? 1.0 + options.inflatePct / 100.0
                                       : 1.0 - options.inflatePct / 100.0;

      if (options.refresh) {
        Json updated = Json::object();
        updated.set("gauge", gauge)
            .set("baseline", static_cast<std::uint64_t>(measured))
            .set("tolerance_pct", tolerance)
            .set("direction", direction);
        refreshed.emplace_back(gauge, std::move(updated));
        continue;
      }

      const bool below = direction == "below";
      const double limit = below ? base * (1.0 + tolerance / 100.0)
                                 : base * (1.0 - tolerance / 100.0);
      const bool ok = below ? measured <= limit : measured >= limit;
      std::cout << formatRow(gauge, base, measured, limit,
                             ok ? "ok" : "REGRESSION")
                << "\n";
      if (!ok) ++failures;
    }

    if (options.refresh) {
      std::stable_sort(refreshed.begin(), refreshed.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      Json sorted = Json::array();
      for (auto& pair : refreshed) {
        sorted.push(std::move(pair.second));
      }
      Json out = Json::object();
      if (baseline.contains("bench")) {
        out.set("bench", baseline.at("bench").asString());
      }
      out.set("entries", std::move(sorted));
      std::ofstream file(options.baselinePath,
                         std::ios::binary | std::ios::trunc);
      file << out.dump(2) << "\n";
      if (!file) {
        throw std::invalid_argument("cannot write '" + options.baselinePath +
                                    "'");
      }
      std::cout << "baselines refreshed from " << options.benchPath
                << " -> " << options.baselinePath
                << " (sorted; commit the diff)\n";
      return 0;
    }

    if (failures > 0) {
      std::cerr << failures << " gauge(s) regressed beyond tolerance; if "
                   "intentional, refresh with:\n  perf_gate --bench "
                << options.benchPath << " --baseline " << options.baselinePath
                << " --refresh\n";
      return 4;
    }
    std::cout << "perf gate: " << entries.size()
              << " gauge(s) within tolerance\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
