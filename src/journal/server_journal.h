// Write-ahead log for the plan daemon (DESIGN.md §16): every admitted plan
// request is journaled before its computation is queued and acknowledged
// once the result reaches the plan cache. On restart, recoverPending()
// returns the logged-but-unacknowledged request lines so the daemon can
// replay them — and because every computed plan lands in the disk cache
// tier before its ack, replay is mostly cache hits, not recomputation.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "journal/journal.h"

namespace dmf::journal {

/// Thread-safe request WAL over one RecordLog (requests arrive on the
/// socket server's connection threads concurrently).
class ServerJournal {
 public:
  /// Opens (creating if needed) DIR/wal.log. Throws std::invalid_argument
  /// when the directory cannot be created (parent must exist).
  explicit ServerJournal(const std::string& dir);

  /// Journals one admitted request line, durably, and returns the token to
  /// acknowledge it with. Throws std::runtime_error on I/O failure.
  [[nodiscard]] std::uint64_t logRequest(const std::string& requestLine);

  /// Marks a logged request as completed (its plan is cached).
  void ack(std::uint64_t id);

  /// Replays the WAL: returns every logged-but-unacknowledged request line
  /// in admission order and truncates the log (replayed requests re-journal
  /// themselves through the normal admission path). A torn final record is
  /// silently dropped; mid-log corruption throws CorruptJournalError.
  [[nodiscard]] std::vector<std::string> recoverPending();

  [[nodiscard]] const std::string& path() const { return log_.path(); }

 private:
  std::mutex mutex_;
  RecordLog log_;
  std::uint64_t nextId_ = 1;
};

}  // namespace dmf::journal
