// Seeded random target-ratio generation for stress and property tests.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "dmf/ratio.h"

namespace dmf::workload {

/// Deterministic (seeded) generator of uniformly random compositions: ratios
/// of exactly N parts summing to L, every part >= 1, drawn uniformly from
/// all such ordered compositions (stars-and-bars with the cut set sampled
/// without replacement — partial Fisher-Yates — so a draw costs O(N) even
/// when N approaches L; N == L is exact and instant).
class RandomRatioGenerator {
 public:
  /// Throws std::invalid_argument unless L is a power of two >= 2 and
  /// 2 <= parts <= L.
  RandomRatioGenerator(std::uint64_t sum, std::size_t parts,
                       std::uint64_t seed);

  /// Draws the next ratio.
  [[nodiscard]] Ratio next();

 private:
  std::uint64_t sum_;
  std::size_t parts_;
  std::mt19937_64 rng_;
};

}  // namespace dmf::workload
