// Minimal ASCII line charts for the figure-reproduction benches (Fig 6/7).
#pragma once

#include <string>
#include <vector>

namespace dmf::report {

/// One plotted series.
struct Series {
  std::string name;
  /// (x, y) points; x values should match across series for the shared axis.
  std::vector<std::pair<double, double>> points;
};

/// Renders series as an ASCII chart of the given plot size, one glyph per
/// series ('A', 'B', ...), with a y-axis scale and an x range footer.
/// Returns an empty string when there is nothing to plot.
[[nodiscard]] std::string renderChart(const std::vector<Series>& series,
                                      unsigned width = 64,
                                      unsigned height = 16);

}  // namespace dmf::report
