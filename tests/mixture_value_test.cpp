#include "dmf/mixture_value.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dmf {
namespace {

TEST(MixtureValue, PureDroplet) {
  MixtureValue v = MixtureValue::pure(2, 5);
  EXPECT_TRUE(v.isPure());
  EXPECT_EQ(v.pureFluid(), 2u);
  EXPECT_EQ(v.exponent(), 0u);
  EXPECT_EQ(v.toString(), "pure(x3)");
}

TEST(MixtureValue, PureRejectsBadIndex) {
  EXPECT_THROW(MixtureValue::pure(5, 5), std::invalid_argument);
  EXPECT_THROW(MixtureValue::pure(0, 0), std::invalid_argument);
}

TEST(MixtureValue, TargetOfRatio) {
  Ratio r({2, 1, 1, 1, 1, 1, 9});
  MixtureValue t = MixtureValue::target(r);
  EXPECT_EQ(t.exponent(), 4u);
  EXPECT_EQ(t.numerators(), (std::vector<std::uint64_t>{2, 1, 1, 1, 1, 1, 9}));
}

TEST(MixtureValue, MixAverages) {
  MixtureValue a = MixtureValue::pure(0, 2);
  MixtureValue b = MixtureValue::pure(1, 2);
  MixtureValue m = MixtureValue::mix(a, b);
  EXPECT_EQ(m.exponent(), 1u);
  EXPECT_EQ(m.numerators(), (std::vector<std::uint64_t>{1, 1}));
}

TEST(MixtureValue, MixCanonicalizes) {
  // (3/4, 1/4) mixed with (1/4, 3/4) = (1/2, 1/2) at exponent 1, not 3.
  MixtureValue a({3, 1}, 2);
  MixtureValue b({1, 3}, 2);
  MixtureValue m = MixtureValue::mix(a, b);
  EXPECT_EQ(m, MixtureValue({1, 1}, 1));
}

TEST(MixtureValue, MixRejectsIdenticalOperands) {
  MixtureValue a({1, 1}, 1);
  MixtureValue b({2, 2}, 2);  // canonicalizes to the same composition
  EXPECT_EQ(a, b);
  EXPECT_THROW(MixtureValue::mix(a, b), std::invalid_argument);
}

TEST(MixtureValue, MixRejectsDifferentFluidSpaces) {
  EXPECT_THROW(
      MixtureValue::mix(MixtureValue::pure(0, 2), MixtureValue::pure(0, 3)),
      std::invalid_argument);
}

TEST(MixtureValue, RejectsBadSum) {
  EXPECT_THROW(MixtureValue({1, 1}, 2), std::invalid_argument);
  EXPECT_THROW(MixtureValue({3, 2}, 2), std::invalid_argument);
}

TEST(MixtureValue, RejectsEmpty) {
  EXPECT_THROW(MixtureValue({}, 0), std::invalid_argument);
}

TEST(MixtureValue, ConcentrationAccessor) {
  MixtureValue v({2, 1, 1, 1, 1, 1, 9}, 4);
  EXPECT_EQ(v.concentration(0), DyadicFraction(2, 4));
  EXPECT_EQ(v.concentration(6), DyadicFraction(9, 4));
  EXPECT_THROW((void)v.concentration(7), std::invalid_argument);
}

TEST(MixtureValue, HashAgreesWithEquality) {
  MixtureValue a({1, 1}, 1);
  MixtureValue b({2, 2}, 2);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(MixtureValue, PureFluidThrowsOnMixtures) {
  EXPECT_THROW((void)MixtureValue({1, 1}, 1).pureFluid(), std::logic_error);
}

TEST(MixtureValue, MixMatchesPaperRunningExample) {
  // Root of the PCR d=4 tree: mix of {2:1:1:1:1:1:1}/8 with pure water (x7)
  // must give {2:1:1:1:1:1:9}/16.
  MixtureValue chain({2, 1, 1, 1, 1, 1, 1}, 3);
  MixtureValue water = MixtureValue::pure(6, 7);
  EXPECT_EQ(MixtureValue::mix(chain, water),
            MixtureValue({2, 1, 1, 1, 1, 1, 9}, 4));
}

}  // namespace
}  // namespace dmf
