#include "runtime/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "obs/scope.h"

namespace dmf::runtime {

namespace {

// The pool whose forEach the current thread is executing a task of, if any.
// Guards against nested forEach on the same pool, which would deadlock (the
// draining participant would wait on a batch nobody else can finish).
thread_local const ThreadPool* tActivePool = nullptr;

struct ActivePoolGuard {
  explicit ActivePoolGuard(const ThreadPool* pool) : prev(tActivePool) {
    tActivePool = pool;
  }
  ~ActivePoolGuard() { tActivePool = prev; }
  ActivePoolGuard(const ActivePoolGuard&) = delete;
  ActivePoolGuard& operator=(const ActivePoolGuard&) = delete;
  const ThreadPool* prev;
};

}  // namespace

// One forEach invocation: participants pull indices from `next` until the
// range is exhausted. All Batch accesses happen inside drain(); a participant
// only counts itself out (State::active) after drain() returns, which is what
// makes destroying the stack-allocated Batch safe once active reaches zero.
struct ThreadPool::Batch {
  std::uint64_t count = 0;
  const std::function<void(std::uint64_t, unsigned)>* fn = nullptr;
  // The submitting thread's span context: workers adopt it so their spans
  // splice into the originating request's trace (zero ids when tracing is
  // off or the caller has no open span).
  obs::SpanContext context;
  std::atomic<std::uint64_t> next{0};
  // First (lowest-index) exception seen, for deterministic error behaviour.
  std::mutex errorMutex;
  std::exception_ptr error;
  std::uint64_t errorIndex = std::numeric_limits<std::uint64_t>::max();

  void drain(unsigned worker) {
    while (true) {
      const std::uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      try {
        (*fn)(index, worker);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (index < errorIndex) {
          errorIndex = index;
          error = std::current_exception();
        }
      }
    }
  }
};

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable work;  // new batch published, or shutdown
  std::condition_variable done;  // a participant finished draining
  Batch* batch = nullptr;
  std::uint64_t generation = 0;  // bumped once per published batch
  unsigned active = 0;           // participants still inside drain()
  bool stop = false;
};

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(resolveJobs(jobs)), state_(std::make_unique<State>()) {
  workers_.reserve(jobs_ - 1);
  for (unsigned w = 1; w < jobs_; ++w) {
    workers_.emplace_back([this, w] { workerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->work.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

unsigned ThreadPool::resolveJobs(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::workerLoop(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->work.wait(lock, [this, seen] {
        return state_->stop ||
               (state_->batch != nullptr && state_->generation != seen);
      });
      if (state_->stop) return;
      seen = state_->generation;
      batch = state_->batch;
    }
    {
      // One span per worker per batch: the "--jobs N" tasks in the trace,
      // parented onto the submitting thread's span via the batch context.
      const obs::ContextGuard context(batch->context);
      const obs::Span span("pool.worker", "pool");
      const ActivePoolGuard guard(this);
      batch->drain(worker);
    }
    {
      const std::lock_guard<std::mutex> lock(state_->mutex);
      if (--state_->active == 0) state_->done.notify_all();
    }
  }
}

void ThreadPool::forEachWorker(
    std::uint64_t count,
    const std::function<void(std::uint64_t, unsigned)>& fn) {
  if (count == 0) return;
  if (tActivePool == this) {
    throw std::logic_error(
        "ThreadPool: nested forEach on the same pool would deadlock");
  }
  if (jobs_ <= 1 || count == 1) {
    const ActivePoolGuard guard(this);
    for (std::uint64_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.fn = &fn;
  batch.context = obs::currentContext();
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->batch = &batch;
    ++state_->generation;
    state_->active = jobs_;  // jobs_ - 1 workers plus this thread
  }
  state_->work.notify_all();
  obs::count("runtime.pool.batches");
  obs::count("runtime.pool.tasks", count);

  {
    const obs::Span span("pool.worker", "pool");
    const ActivePoolGuard guard(this);
    batch.drain(0);  // the calling thread works too
  }

  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    --state_->active;
    if (state_->active == 0) state_->done.notify_all();
    state_->done.wait(lock, [this] { return state_->active == 0; });
    state_->batch = nullptr;
  }

  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

void ThreadPool::forEach(std::uint64_t count,
                         const std::function<void(std::uint64_t)>& fn) {
  forEachWorker(count,
                [&fn](std::uint64_t index, unsigned /*worker*/) { fn(index); });
}

}  // namespace dmf::runtime
