file(REMOVE_RECURSE
  "libdmf_sched.a"
)
