
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_fig2_forest.cpp" "bench-cmake/CMakeFiles/bench_fig1_fig2_forest.dir/bench_fig1_fig2_forest.cpp.o" "gcc" "bench-cmake/CMakeFiles/bench_fig1_fig2_forest.dir/bench_fig1_fig2_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/dmf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/dmf_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dmf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/dmf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/dmf_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dmf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dmf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/dmf_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/mixgraph/CMakeFiles/dmf_mixgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/dmf/CMakeFiles/dmf_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
