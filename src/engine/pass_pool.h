// A small fixed-size thread pool for fanning independent pass evaluations
// out across cores. Deterministic by construction: forEach hands out indices
// through an atomic counter and every index writes only its own result slot,
// so callers that reduce in index order get bit-identical output for any job
// count (including 1, which runs inline without spawning threads).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace dmf::engine {

/// Fixed-size worker pool. `jobs` counts the calling thread: a pool with
/// jobs == N spawns N-1 workers and the caller participates in forEach, so
/// jobs <= 1 is pure serial execution with no threads at all.
class PassPool {
 public:
  /// `jobs == 0` resolves to the hardware concurrency (at least 1).
  explicit PassPool(unsigned jobs = 1);
  ~PassPool();

  PassPool(const PassPool&) = delete;
  PassPool& operator=(const PassPool&) = delete;

  /// Total workers, calling thread included.
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Runs fn(i) for every i in [0, count), spread over the workers; blocks
  /// until all indices finish. Exceptions thrown by fn are captured and the
  /// one raised at the lowest index is rethrown after completion, so error
  /// behaviour is deterministic too.
  void forEach(std::uint64_t count,
               const std::function<void(std::uint64_t)>& fn);

  /// Resolves a user-facing jobs request: 0 means hardware concurrency.
  [[nodiscard]] static unsigned resolveJobs(unsigned requested) noexcept;

 private:
  struct Batch;
  struct State;

  void workerLoop();

  unsigned jobs_;
  std::vector<std::thread> workers_;
  std::unique_ptr<State> state_;
};

}  // namespace dmf::engine
