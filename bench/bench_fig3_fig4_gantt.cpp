// Reproduces Fig. 3 / Fig. 4: the D = 20 PCR mixing forest scheduled by SRS
// on three mixers, with the Gantt chart, storage profile and droplet
// emission sequence.
//
// Paper values: Tc = 11 time-cycles, q = 5 storage units, W = 5, I = 25.
// (Our SRS lands on the same q = 5 one cycle later, Tc = 12.)
#include <iostream>

#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "protocols/protocols.h"
#include "report/table.h"
#include "sched/gantt.h"
#include "sched/schedulers.h"

#include "bench_obs.h"

int main() {
  const dmf::bench::BenchSession benchObs("fig3_fig4_gantt");
  using namespace dmf;

  const Ratio ratio = protocols::pcrMasterMixRatio();
  const mixgraph::MixingGraph graph = mixgraph::buildMM(ratio);
  const forest::TaskForest forest(graph, 20);

  std::cout << "# Fig. 3 / Fig. 4 — SRS schedule of the D=20 forest, Mc=3\n\n";

  report::Table table({"scheduler", "Tc", "q", "paper Tc", "paper q"});
  const sched::Schedule srs = sched::scheduleSRS(forest, 3);
  sched::validateOrThrow(forest, srs);
  table.addRow({"SRS", std::to_string(srs.completionTime),
                std::to_string(sched::countStorage(forest, srs)), "11", "5"});
  const sched::Schedule mms = sched::scheduleMMS(forest, 3);
  sched::validateOrThrow(forest, mms);
  table.addRow({"MMS", std::to_string(mms.completionTime),
                std::to_string(sched::countStorage(forest, mms)), "-", "-"});
  const sched::Schedule greedy = sched::scheduleSRSGreedy(forest, 3);
  table.addRow({"SRS-greedy (verbatim Alg.2)",
                std::to_string(greedy.completionTime),
                std::to_string(sched::countStorage(forest, greedy)), "-",
                "-"});
  std::cout << table.render() << "\n";

  std::cout << "Gantt chart (SRS), storage profile and emission sequence:\n"
            << sched::renderGantt(forest, srs) << "\n";

  std::cout << "Droplet emission cycles: ";
  for (unsigned c : sched::emissionCycles(forest, srs)) {
    std::cout << c << ' ';
  }
  std::cout << "\n";
  return 0;
}
