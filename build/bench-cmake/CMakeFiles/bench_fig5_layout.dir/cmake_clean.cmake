file(REMOVE_RECURSE
  "../bench/bench_fig5_layout"
  "../bench/bench_fig5_layout.pdb"
  "CMakeFiles/bench_fig5_layout.dir/bench_fig5_layout.cpp.o"
  "CMakeFiles/bench_fig5_layout.dir/bench_fig5_layout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
