// Volumetric split-error propagation.
//
// The paper's mix model is ideal: every split yields two exactly-unit
// droplets. Real electrowetting splits are imbalanced by up to a fraction
// eps of the droplet volume, and unequal operand volumes skew the
// concentration of every downstream mixture. This module propagates
// first-order worst-case bounds through a mixing graph:
//
//   volume error   w(leaf) = dispenseError
//                  w(v)    = (w(left) + w(right)) / 2 + eps
//   CF error       e_i(leaf) = 0
//                  e_i(v) = (e_i(left) + e_i(right)) / 2
//                           + |cf_i(left) - cf_i(right)| / 2
//                             * (w(left) + w(right)) / 2
//
// The CF term is exact to first order in the volume errors: mixing volumes
// (1+a) and (1+b) of concentrations cL, cR gives cf = (cL(1+a) + cR(1+b)) /
// (2+a+b) = (cL+cR)/2 + (cL-cR)(a-b)/4 + O(err^2), and |a-b| <= |a| + |b|.
#pragma once

#include <cstddef>
#include <vector>

#include "mixgraph/graph.h"

namespace dmf::analysis {

/// Error model parameters (fractions of a unit droplet volume).
struct ErrorOptions {
  /// Worst-case volume imbalance per (1:1) split.
  double splitImbalance = 0.05;
  /// Worst-case volume error of a reservoir dispense.
  double dispenseError = 0.0;
};

/// Worst-case bounds for one node's droplets.
struct NodeError {
  /// Volume deviation as a fraction of the unit volume.
  double volume = 0.0;
  /// Per-fluid concentration-factor deviation.
  std::vector<double> concentration;
  /// max over fluids of `concentration`.
  double worstConcentration = 0.0;
};

/// Propagates the bounds over a finalized graph; result indexed by NodeId.
/// Throws std::invalid_argument for negative error parameters or an
/// unfinalized graph.
[[nodiscard]] std::vector<NodeError> analyzeErrors(
    const mixgraph::MixingGraph& graph, const ErrorOptions& options = {});

/// Bounds at the target (root) droplet.
[[nodiscard]] NodeError targetError(const mixgraph::MixingGraph& graph,
                                    const ErrorOptions& options = {});

/// The accuracy the ratio itself guarantees: CFs are quantized to 1/2^d, so
/// deviations below half a quantum are indistinguishable from rounding.
/// Returns 1 / 2^(d+1).
[[nodiscard]] double quantizationError(const mixgraph::MixingGraph& graph);

}  // namespace dmf::analysis
