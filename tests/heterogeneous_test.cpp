#include "sched/heterogeneous.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mixgraph/builders.h"
#include "sched/schedulers.h"

namespace dmf::sched {
namespace {

using forest::TaskForest;
using mixgraph::buildMM;
using mixgraph::MixingGraph;

Ratio pcr() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

TEST(Heterogeneous, UnitBankMatchesOms) {
  // With an all-ones bank the heterogeneous scheduler degenerates to Hu
  // list scheduling — same completion time as scheduleOMS.
  MixingGraph g = buildMM(pcr());
  for (std::uint64_t demand : {2u, 16u, 20u}) {
    TaskForest f(g, demand);
    const Schedule het = scheduleHeterogeneous(f, uniformBank(3));
    validateHeterogeneous(f, het, uniformBank(3));
    EXPECT_EQ(het.completionTime, scheduleOMS(f, 3).completionTime)
        << "D=" << demand;
  }
}

TEST(Heterogeneous, SlowerMixersStretchTheSchedule) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const Schedule fast = scheduleHeterogeneous(f, uniformBank(3, 1));
  const Schedule slow = scheduleHeterogeneous(f, uniformBank(3, 3));
  validateHeterogeneous(f, slow, uniformBank(3, 3));
  EXPECT_GT(slow.completionTime, fast.completionTime);
  // Uniformly tripled durations cannot stretch beyond 3x (list scheduling).
  EXPECT_LE(slow.completionTime, 3 * fast.completionTime);
}

TEST(Heterogeneous, MixedBankBeatsItsSlowestUniform) {
  // One fast mixer added to two slow ones must help.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 20);
  const MixerBank mixed{{1, 3, 3}};
  const MixerBank slow{{3, 3, 3}};
  const Schedule a = scheduleHeterogeneous(f, mixed);
  const Schedule b = scheduleHeterogeneous(f, slow);
  validateHeterogeneous(f, a, mixed);
  EXPECT_LT(a.completionTime, b.completionTime);
}

TEST(Heterogeneous, FastestMixerClaimedFirst) {
  // A single chain of mixes should always run on the fastest mixer.
  MixingGraph g = buildMM(Ratio({1, 3}));  // chain tree
  TaskForest f(g, 2);
  const MixerBank bank{{5, 1}};
  const Schedule s = scheduleHeterogeneous(f, bank);
  validateHeterogeneous(f, s, bank);
  for (forest::TaskId id = 0; id < f.taskCount(); ++id) {
    EXPECT_EQ(s.mixers[id], 1u);
  }
}

TEST(Heterogeneous, StorageAccountsForDurations) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 16);
  const MixerBank bank = uniformBank(3, 2);
  const Schedule s = scheduleHeterogeneous(f, bank);
  validateHeterogeneous(f, s, bank);
  const unsigned q = countStorageHeterogeneous(f, s, bank);
  // Unit-equivalent sanity: storage stays in the same regime as the unit
  // model on this forest.
  EXPECT_LE(q, 12u);
}

TEST(Heterogeneous, FinishCycleUsesAssignedMixerDuration) {
  MixingGraph g = buildMM(Ratio({1, 1}));
  TaskForest f(g, 2);
  const MixerBank bank{{4}};
  const Schedule s = scheduleHeterogeneous(f, bank);
  EXPECT_EQ(s.cycles[0], 1u);
  EXPECT_EQ(finishCycle(s, bank, 0), 4u);
  EXPECT_EQ(s.completionTime, 4u);
}

TEST(Heterogeneous, ValidatorCatchesOverlaps) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 2);
  const MixerBank bank = uniformBank(3, 2);
  Schedule s = scheduleHeterogeneous(f, bank);
  // Squeeze two mixes onto the same mixer in overlapping cycles.
  s.cycles[1] = s.cycles[0];
  s.mixers[1] = s.mixers[0];
  EXPECT_THROW(validateHeterogeneous(f, s, bank), std::logic_error);
}

TEST(Heterogeneous, MixedBankReadinessUsesLatestOperand) {
  // Regression: on a mixed bank an operand scheduled later can finish
  // earlier; consumers must wait for the slower operand. The {1,4,4} bank
  // at D=32 used to produce a precedence violation.
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 32);
  for (const MixerBank& bank :
       {MixerBank{{1, 4, 4}}, MixerBank{{1, 1, 4}}, MixerBank{{2, 3, 5}},
        MixerBank{{1, 4, 4, 4, 4}}}) {
    const Schedule s = scheduleHeterogeneous(f, bank);
    validateHeterogeneous(f, s, bank);
  }
}

TEST(Heterogeneous, RejectsBadBanks) {
  MixingGraph g = buildMM(pcr());
  TaskForest f(g, 2);
  EXPECT_THROW((void)scheduleHeterogeneous(f, MixerBank{}),
               std::invalid_argument);
  EXPECT_THROW((void)scheduleHeterogeneous(f, MixerBank{{1, 0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmf::sched
