// MTCS builder (reconstruction): MM bit-decomposition with common
// sub-mixture sharing. Two ingredients maximize sharing:
//  - canonical pairing: the nodes alive at each level pair in sorted
//    composition order, so recurring patterns line up and produce recurring
//    intermediate compositions;
//  - value keying: a mix whose composition was already prepared anywhere in
//    the graph reuses the existing node, so both of its output droplets are
//    consumed. A pairing of two droplet slots with identical composition is
//    an identity and is skipped outright.
// The result is a DAG that never needs more mix-splits or input droplets
// than MM's tree.
#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "mixgraph/builders.h"

namespace dmf::mixgraph {

namespace {

// Total order on compositions: by denominator exponent, then numerators
// lexicographically. Any deterministic order works; this one groups equal
// compositions adjacently, which is all canonical pairing needs.
bool valueLess(const MixtureValue& a, const MixtureValue& b) {
  if (a.exponent() != b.exponent()) return a.exponent() < b.exponent();
  return a.numerators() < b.numerators();
}

}  // namespace

MixingGraph buildMTCS(const Ratio& ratio) {
  MixingGraph graph(ratio);
  const unsigned d = ratio.accuracy();
  const std::size_t fluids = ratio.fluidCount();

  std::unordered_map<MixtureValue, NodeId, MixtureValueHash> known;
  // Leaves are shared per fluid: one dispense node serves every consumer.
  std::vector<NodeId> leafOf(fluids, kNoNode);
  auto leaf = [&](std::size_t fluid) {
    if (leafOf[fluid] == kNoNode) leafOf[fluid] = graph.addLeaf(fluid);
    return leafOf[fluid];
  };

  std::vector<NodeId> carry;
  for (unsigned j = 0; j < d; ++j) {
    for (std::size_t fluid = 0; fluid < fluids; ++fluid) {
      if ((ratio.part(fluid) >> j) & 1u) {
        carry.push_back(leaf(fluid));
      }
    }
    if (carry.size() % 2 != 0) {
      throw std::logic_error("buildMTCS: odd node count at level " +
                             std::to_string(j));
    }
    std::stable_sort(carry.begin(), carry.end(), [&](NodeId a, NodeId b) {
      return valueLess(graph.node(a).value, graph.node(b).value);
    });
    std::vector<NodeId> next;
    next.reserve(carry.size() / 2);
    for (std::size_t i = 0; i + 1 < carry.size(); i += 2) {
      if (graph.node(carry[i]).value == graph.node(carry[i + 1]).value) {
        // Two droplet slots of identical composition: their (1:1) mix is an
        // identity, so the existing node serves the combined slot directly.
        next.push_back(carry[i]);
        continue;
      }
      const MixtureValue value = MixtureValue::mix(
          graph.node(carry[i]).value, graph.node(carry[i + 1]).value);
      auto [it, inserted] = known.try_emplace(value, kNoNode);
      if (inserted) {
        it->second = graph.addMix(carry[i], carry[i + 1]);
      }
      next.push_back(it->second);
    }
    carry = std::move(next);
  }
  if (carry.size() != 1) {
    throw std::logic_error("buildMTCS: did not converge to a single root");
  }
  graph.finalize(carry.front());
  return graph;
}

}  // namespace dmf::mixgraph
