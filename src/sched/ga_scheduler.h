// Genetic-algorithm scheduling (after Su & Chakrabarty's GA synthesis, the
// paper's reference [22]) — an alternative to the deterministic MMS/SRS/OMS
// engines, used by the scheduler-ablation bench.
//
// Chromosomes are random-key priority vectors; decoding is list scheduling
// with the keys as priorities, so every individual is a feasible schedule by
// construction. Fitness minimizes completion time first and storage units
// second.
#pragma once

#include <cstdint>

#include "forest/task_forest.h"
#include "sched/schedule.h"

namespace dmf::sched {

/// GA tuning knobs. Defaults converge on forest sizes up to a few hundred
/// tasks in well under a second.
struct GaOptions {
  std::uint64_t seed = 1;
  unsigned population = 32;
  unsigned generations = 60;
  /// Tournament size for parent selection.
  unsigned tournament = 3;
  /// Individuals copied unchanged into the next generation.
  unsigned elites = 2;
  /// Per-gene probability of mutation (key resampled).
  double mutationRate = 0.05;
};

/// Runs the GA and returns the best schedule found (never worse than the
/// plain critical-path seed individual). Deterministic for a fixed seed.
/// Throws std::invalid_argument if mixers == 0 or options are degenerate
/// (empty population, elites >= population).
[[nodiscard]] Schedule scheduleGA(const forest::TaskForest& forest,
                                  unsigned mixers,
                                  const GaOptions& options = {});

}  // namespace dmf::sched
