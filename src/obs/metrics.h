// Unified metrics layer: named counters, gauges and fixed-bucket histograms
// with lock-free (atomic) updates and a deterministic JSON snapshot.
//
// Instruments are usable two ways:
//  * standalone members (e.g. PassCache owns obs::Counter fields directly —
//    zero lookup cost, the instrument IS the storage);
//  * registered by name in a MetricsRegistry, which owns the instrument and
//    hands out stable references; `snapshot()` renders every instrument,
//    name-sorted, as a report::Json tree.
//
// Updates are std::memory_order_relaxed: instruments count events, they do
// not synchronize them. Snapshots taken while writers are active see some
// valid interleaving (never torn values).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "report/json.h"

namespace dmf::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value / high-water gauge. `set` overwrites; `accumulateMax` keeps the
/// maximum ever observed (storage high-water, peak occupancy).
class Gauge {
 public:
  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void accumulateMax(std::uint64_t value) noexcept {
    std::uint64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < value && !value_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i] (first
/// matching bucket); values above the last bound land in the overflow bucket.
/// Bounds are fixed at construction (strictly ascending, non-empty).
class Histogram {
 public:
  /// Throws std::invalid_argument on empty or non-ascending bounds.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0,1]) — see histogramQuantile below.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Thread-safe registry of named instruments. Creation takes a mutex; the
/// returned references are stable for the registry's lifetime, so hot paths
/// can look an instrument up once and update it lock-free thereafter.
class MetricsRegistry {
 public:
  /// Gets or creates the named instrument.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// For an existing name the original bounds win (the `bounds` argument is
  /// ignored); histograms with one name must mean one thing.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<std::uint64_t> bounds);

  /// Instruments registered so far (all three kinds).
  [[nodiscard]] std::size_t size() const;

  /// Deterministic snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"bounds":[...],"counts":[...],"count":n,"sum":n}}}
  /// with every section name-sorted — two snapshots of equal instrument
  /// states dump to identical bytes regardless of registration order.
  [[nodiscard]] report::Json snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Estimated q-quantile of a fixed-bucket histogram, by linear interpolation
/// within the bucket holding the target rank. Bucket i spans
/// (bounds[i-1], bounds[i]] (the first bucket starts at 0) and observations
/// are assumed uniform within it; the overflow bucket has no upper edge, so
/// any rank landing there clamps to the last bound. `counts` must have
/// bounds.size() + 1 entries (the snapshot layout). Returns 0 for an empty
/// histogram; q is clamped to [0, 1].
[[nodiscard]] double histogramQuantile(const std::vector<std::uint64_t>& bounds,
                                       const std::vector<std::uint64_t>& counts,
                                       double q);

}  // namespace dmf::obs
