// dmfstream — command-line front end for the droplet-streaming engine.
//
//   dmfstream plan   --ratio 2:1:1:1:1:1:9 --demand 20 [--mixers N]
//                    [--algo MM|RMA|MTCS|RSM] [--scheme MMS|SRS|OMS|GA]
//                    [--ga-pop N] [--ga-gens N] [--ga-seed S] [--jobs N]
//                    [--gantt] [--csv]
//   dmfstream stream --ratio R --demand D --storage Q [--mixers N] [--algo A]
//                    [--inject SPEC --fault-seed N --retry-budget K]
//                    [--journal DIR [--resume]]
//   dmfstream dilute --sample a/2^d --demand D [--mixers N]
//   dmfstream chip   --ratio R --demand D [--mixers N] [--simulate] [--pins]
//                    [--wear] [--anneal]
//   dmfstream corpus [--sum L] [--min-fluids N] [--max-fluids N]
//   dmfstream fuzz   [--iters N] [--seed S] [--time-budget SECONDS]
//                    [--scope all|forest|sched|stream|fault|server|crash|fleet]
//                    [--replay JSON]
//   dmfstream fleet  --users "ratio=R,demand=D,storage=Q[,weight=W];..."
//                    [--fleet N | --chips "mixers=M,storage=Q[,dead=D];..."]
//                    [--policy fifo|rr|wfq] [--weights W1,W2,...]
//                    [--quantum Q] [--jobs N] [--kill chip=C,cycle=X]
//                    [--journal DIR] [--json [--placement] | --plans-only]
//   dmfstream serve  [--port P] [--cache-size N] [--cache-dir DIR]
//                    [--journal DIR] [--jobs N] [--drive FILE]
//                    [--fleet N --policy P --weights W1,... --quantum Q]
//   dmfstream stats  (--from FILE | --port P) [--format prometheus|json]
//
// Any command also accepts --trace FILE (Chrome trace-event JSON, loadable
// in Perfetto / chrome://tracing), --metrics FILE (metrics snapshot), and
// --log-level debug|info|warn|error|off / --log-file FILE (structured
// JSON-lines logging; serve defaults to info on stderr, everything else
// to off).
//
// Exit codes: 0 success, 1 usage error, 2 infeasible request
// (dmf::InfeasibleError — e.g. a storage cap too tight for any pass),
// 3 internal error (an invariant the library itself broke), 4 fuzz findings,
// 5 corrupt journal (a --journal/--resume or serve --journal directory whose
// committed records fail their CRC — detected, never silently repaired).
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/error_model.h"
#include "check/fuzzer.h"
#include "dmf/errors.h"
#include "chip/contamination.h"
#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/pin_mapper.h"
#include "chip/placer.h"
#include "chip/reliability.h"
#include "chip/router.h"
#include "chip/simulation.h"
#include "engine/baseline.h"
#include "engine/mdst.h"
#include "engine/multi_target.h"
#include "engine/pass_cache.h"
#include "engine/recovery.h"
#include "engine/serialize.h"
#include "engine/streaming.h"
#include "fleet/dispatcher.h"
#include "fleet/policy.h"
#include "journal/journal.h"
#include "journal/stream_runner.h"
#include "mixgraph/builders.h"
#include "obs/log.h"
#include "obs/prometheus.h"
#include "obs/scope.h"
#include "report/table.h"
#include "sched/ga_scheduler.h"
#include "sched/gantt.h"
#include "sched/schedulers.h"
#include "server/service.h"
#include "server/socket_server.h"
#include "workload/ratio_corpus.h"

namespace {

using namespace dmf;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;

  [[nodiscard]] bool has(const std::string& flag) const {
    for (const std::string& f : flags) {
      if (f == flag) return true;
    }
    return false;
  }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    auto it = options.find(key);
    if (it == options.end()) {
      // A value-taking option passed bare ("--demand" at the end of the
      // line) must not silently fall back to a default.
      if (has(key)) {
        throw std::invalid_argument("--" + key + ": missing value");
      }
      return std::nullopt;
    }
    return it->second;
  }
  [[nodiscard]] std::uint64_t getU64(const std::string& key,
                                     std::uint64_t fallback) const {
    const auto text = get(key);
    if (!text.has_value()) return fallback;
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text->data(), text->data() + text->size(), value);
    if (ec != std::errc{} || ptr != text->data() + text->size()) {
      throw std::invalid_argument("--" + key + ": expected a number, got '" +
                                  *text + "'");
    }
    return value;
  }
  [[nodiscard]] double getDouble(const std::string& key,
                                 double fallback) const {
    const auto text = get(key);
    if (!text.has_value()) return fallback;
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text->data(), text->data() + text->size(), value);
    if (ec != std::errc{} || ptr != text->data() + text->size()) {
      throw std::invalid_argument("--" + key + ": expected a number, got '" +
                                  *text + "'");
    }
    return value;
  }
};

int usage() {
  std::cerr <<
      R"(usage: dmfstream <command> [options]

commands:
  plan    schedule a droplet demand        --ratio a1:..:aN --demand D
          options: --mixers N (default: Mlb) --algo MM|RMA|MTCS|RSM
                   --scheme MMS|SRS|OMS|GA  --gantt  --csv  --json
                   --split-error EPS (worst-case CF error analysis)
                   GA tuning: --ga-pop N (population, default 32)
                   --ga-gens N (generations, default 60) --ga-seed S
                   --jobs N (parallel fitness evaluation; 0 = all cores;
                   the schedule is identical for every N)
  stream  multi-pass plan under a storage cap
          --ratio R --demand D --storage Q [--mixers N] [--algo A]
          [--optimize]  (search all pass sizes for minimum total cycles)
          [--jobs N]    (parallel candidate evaluation; 0 = all cores)
          [--json]      (machine-readable plan, identical for every --jobs)
          [--stats]     (pass-cache hit/miss and per-stage timings)
          fault injection + demand-driven recovery:
          [--inject split=P,eps=E,loss=P,dispense=P,electrode=P]
          [--fault-seed N (default 1; pass p uses seed N+p)]
          [--retry-budget K (repair rounds per pass, default 4)]
          [--checkpoint-every L] [--detect-latency L]
          crash-restart journal (DESIGN.md §16):
          [--journal DIR]  (journal plan + completed passes to DIR)
          [--resume]       (continue from DIR's journal; the finished
          output is byte-identical to an uninterrupted run)
          [--snapshot-every N (snapshot cadence in passes, default 8)]
          [--crash-after-pass N (test hook: hard-exit 86 after pass N
          is journaled, leaving the journal as a kill would)]
  multi   shared multi-target preparation
          --targets R1;R2;... --demands D1,D2,... [--mixers N] [--jobs N]
          [--json]      (machine-readable shared-vs-separate comparison)
          [--stats]     (planning wall time, shared vs separate split)
  dilute  two-fluid dilution stream        --sample a/2^d --demand D
  chip    execute on a synthesized biochip --ratio R --demand D
          options: --simulate (timed routing) --pins --wear --anneal
                   --contamination (residue/wash analysis)
  corpus  describe the evaluation ratio corpus [--sum L]
          [--min-fluids N] [--max-fluids N]
  fuzz    differential-oracle fuzzing of the whole pipeline
          [--iters N (default 200)] [--seed S (default 1; deterministic)]
          [--time-budget SECONDS (0 = run all iterations)]
          [--scope all|forest|sched|stream|fault|server|crash|fleet]
          [--replay JSON]  (re-run one shrunken reproducer seed)
          exit 0 when every invariant held, 4 with findings (each printed
          as a ready-to-paste --replay invocation plus its JSON seed)
  fleet   multi-tenant dispatch of several users' streams over a fleet of
          simulated chips (DESIGN.md §17)
          --users "ratio=R,demand=D,storage=Q[,weight=W][,mixers=N]
                   [,algo=A][,scheme=S][,optimize];..."  (one entry per user)
          [--fleet N (default 4: deterministic heterogeneous chips)]
          [--chips "mixers=M,storage=Q[,dead=D];..." (explicit fleet)]
          [--policy fifo|rr|wfq (default fifo)]
          [--weights W1,W2,... (override per-user weights)]
          [--quantum Q (wfq service quantum in cycles)]
          [--jobs N (planning fan-out; output identical for every N)]
          [--kill chip=C,cycle=X (fail chip C mid-run; aborted passes
          migrate via journal-checkpoint replay)]
          [--journal DIR (durable per-user pass journals)]
          [--json (full result) --placement (include the placement log)]
          [--plans-only (just the per-user plans — byte-identical with
          and without --kill)]
  serve   plan-as-a-service daemon: line-delimited JSON over a local
          TCP socket (127.0.0.1), with a canonical plan cache
          [--port P (default 0 = ephemeral; bound port goes to stderr)]
          [--cache-size N (in-memory plans kept, default 256)]
          [--cache-dir DIR (persistent cache tier; survives restarts)]
          [--journal DIR (write-ahead log of admitted plan requests;
          unacknowledged ones replay on restart — pair with --cache-dir
          so replays resolve from the disk tier)]
          [--jobs N (concurrent plan computations; 0 = all cores;
          responses are byte-identical for every N)]
          [--drive FILE (send FILE's request lines, print responses to
          stdout, then exit — for tests and scripting)]
          [--fleet N (policy-ordered admission over N virtual lanes with
          per-connection user identity) --policy fifo|rr|wfq
          --weights W1,... (user-slot weights) --quantum Q]
          requests: {"op":"plan","ratio":"2:1:1:1:1:1:9","demand":20,
          "storage":4} plus optional algo/scheme/mixers/optimize; other
          ops: ping, stats, shutdown
  stats   render a metrics snapshot in Prometheus text exposition format
          (counters as _total, histograms as cumulative _bucket series
          plus derived p50/p95/p99 gauges)
          --from FILE  (a --metrics snapshot written by any command)
          --port P     (scrape a live `dmfstream serve` daemon's stats op)
          [--format prometheus|json (default prometheus)]

global options (any command):
  --trace FILE    write a Chrome trace-event JSON (open in Perfetto or
                  chrome://tracing); spans cover forest build, scheduling,
                  storage counting, streaming passes, worker tasks, and
                  chip-executor batches; every span carries trace/span/
                  parent ids, so one server request reads as one tree
  --metrics FILE  write a JSON snapshot of all counters, gauges, and
                  histograms collected during the run
  --log-level L   structured JSON-lines logging threshold:
                  debug|info|warn|error|off (serve defaults to info,
                  every other command to off)
  --log-file F    log sink (default stderr); one JSON object per line
)";
  return 1;
}

Args parse(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected argument '" + token + "'");
    }
    token = token.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[token] = argv[++i];
    } else {
      args.flags.push_back(token);
    }
  }
  return args;
}

Ratio requireRatio(const Args& args) {
  const auto text = args.get("ratio");
  if (!text.has_value()) {
    throw std::invalid_argument("--ratio is required (e.g. 2:1:1:1:1:1:9)");
  }
  auto ratio = Ratio::parse(*text);
  if (!ratio.has_value()) {
    throw std::invalid_argument("--ratio: malformed '" + *text + "'");
  }
  return *ratio;
}

mixgraph::Algorithm parseAlgo(const Args& args) {
  const std::string name = args.get("algo").value_or("MM");
  if (name == "MM") return mixgraph::Algorithm::MM;
  if (name == "RMA") return mixgraph::Algorithm::RMA;
  if (name == "MTCS") return mixgraph::Algorithm::MTCS;
  if (name == "RSM") return mixgraph::Algorithm::RSM;
  throw std::invalid_argument("--algo: unknown algorithm '" + name + "'");
}

sched::Schedule makeSchedule(const forest::TaskForest& forest,
                             const std::string& scheme, unsigned mixers,
                             const Args& args) {
  if (scheme == "MMS") return sched::scheduleMMS(forest, mixers);
  if (scheme == "SRS") return sched::scheduleSRS(forest, mixers);
  if (scheme == "OMS") return sched::scheduleOMS(forest, mixers);
  if (scheme == "GA") {
    sched::GaOptions options;
    options.population =
        static_cast<unsigned>(args.getU64("ga-pop", options.population));
    options.generations =
        static_cast<unsigned>(args.getU64("ga-gens", options.generations));
    options.seed = args.getU64("ga-seed", options.seed);
    // The global --jobs knob fans fitness evaluation out over the shared
    // runtime pool; the schedule is byte-identical for every value.
    options.jobs = static_cast<unsigned>(args.getU64("jobs", 1));
    return sched::scheduleGA(forest, mixers, options);
  }
  throw std::invalid_argument("--scheme: unknown scheme '" + scheme + "'");
}

int cmdPlan(const Args& args, const Ratio& ratio) {
  engine::MdstEngine engine(ratio);
  const std::uint64_t demand = args.getU64("demand", 2);
  const auto mixers =
      static_cast<unsigned>(args.getU64("mixers", engine.defaultMixers()));
  const std::string scheme = args.get("scheme").value_or("SRS");

  const forest::TaskForest forest = engine.buildForest(parseAlgo(args), demand);
  const sched::Schedule schedule = makeSchedule(forest, scheme, mixers, args);
  sched::validateOrThrow(forest, schedule);
  const unsigned storage = sched::countStorage(forest, schedule);

  report::Table table({"metric", "value"});
  table.addRow({"ratio", ratio.toString()});
  table.addRow({"accuracy d", std::to_string(ratio.accuracy())});
  table.addRow({"demand D", std::to_string(demand)});
  table.addRow({"scheme", scheme});
  table.addRow({"mixers Mc", std::to_string(mixers)});
  table.addRow({"component trees |F|",
                std::to_string(forest.stats().componentTrees)});
  table.addRow({"mix-splits Tms", std::to_string(forest.stats().mixSplits)});
  table.addRow({"completion Tc", std::to_string(schedule.completionTime)});
  table.addRow({"storage units q", std::to_string(storage)});
  table.addRow({"input droplets I", std::to_string(forest.stats().inputTotal)});
  table.addRow({"waste droplets W", std::to_string(forest.stats().waste)});
  if (args.has("json")) {
    std::cout << engine::toJson(forest, schedule).dump(2);
    return 0;
  }
  if (args.get("split-error").has_value()) {
    const double eps = args.getDouble("split-error", 0.0);
    const analysis::NodeError err = analysis::targetError(
        engine.baseGraph(parseAlgo(args)), analysis::ErrorOptions{eps, 0.0});
    table.addRow({"worst CF error @eps=" + *args.get("split-error"),
                  report::fixed(err.worstConcentration, 5)});
    table.addRow({"quantization error",
                  report::fixed(analysis::quantizationError(
                                    engine.baseGraph(parseAlgo(args))),
                                5)});
  }
  std::cout << (args.has("csv") ? table.toCsv() : table.render());
  if (args.has("gantt")) {
    std::cout << "\n" << sched::renderGantt(forest, schedule);
  }
  return 0;
}

int cmdStream(const Args& args, const Ratio& ratio) {
  engine::MdstEngine engine(ratio);
  journal::StreamRunRequest run;
  run.streaming.algorithm = parseAlgo(args);
  run.streaming.demand = args.getU64("demand", 2);
  run.streaming.storageCap = static_cast<unsigned>(args.getU64("storage", 5));
  run.streaming.mixers = static_cast<unsigned>(args.getU64("mixers", 0));
  run.streaming.jobs = static_cast<unsigned>(args.getU64("jobs", 1));
  run.optimize = args.has("optimize");

  // --inject replays every pass against the seeded fault model with
  // demand-driven repair. Pass p uses seed (--fault-seed + p); the whole
  // replay is serial, so the output is identical for every --jobs value —
  // and, because every pass is independently seeded, identical whether the
  // run was interrupted and resumed or ran straight through.
  if (args.get("inject").has_value()) {
    run.inject = true;
    run.faults = fault::FaultSpec::parse(*args.get("inject"));
    run.faultSeed = args.getU64("fault-seed", 1);
    run.retryBudget =
        static_cast<unsigned>(args.getU64("retry-budget", run.retryBudget));
    run.checkpointEvery =
        static_cast<unsigned>(args.getU64("checkpoint-every", 1));
    run.detectLatency =
        static_cast<unsigned>(args.getU64("detect-latency", 0));
  }

  journal::StreamRunOptions journalOptions;
  journalOptions.journalDir = args.get("journal").value_or("");
  journalOptions.resume = args.has("resume");
  journalOptions.snapshotEvery = static_cast<unsigned>(
      args.getU64("snapshot-every", journalOptions.snapshotEvery));
  journalOptions.stopAfterPass = args.getU64("crash-after-pass", 0);

  engine::PassCache cache;
  const journal::StreamRunResult result =
      journal::runStream(engine, run, cache, journalOptions);
  if (result.partial) {
    // The crash hook simulates a hard kill: no flushes, no destructors —
    // only what the journal already fsync'd survives, which is the point.
    std::cerr << "crash hook: exiting after " << journalOptions.stopAfterPass
              << " journaled pass(es)\n";
    std::_Exit(86);
  }
  const engine::StreamingPlan& plan = result.plan;
  const std::vector<engine::RecoveryReport>& recovery = result.recovery;

  if (args.has("json")) {
    report::Json out = engine::toJson(plan);
    if (!recovery.empty()) {
      report::Json runs = report::Json::array();
      for (const engine::RecoveryReport& r : recovery) {
        runs.push(engine::toJson(r));
      }
      out.set("recovery", std::move(runs));
    }
    if (args.has("stats")) {
      // Stats are nondeterministic (wall times; parallel prefetch shifts the
      // hit/miss split), so they only join the JSON on explicit request —
      // the default plan JSON is byte-identical for every --jobs.
      out.set("passCache", engine::toJson(cache.stats()));
    }
    std::cout << out.dump(2);
    return 0;
  }

  report::Table table({"pass", "demand", "cycles", "storage", "waste",
                       "input"});
  for (std::size_t p = 0; p < plan.passes.size(); ++p) {
    const engine::StreamingPass& pass = plan.passes[p];
    table.addRow({std::to_string(p + 1), std::to_string(pass.demand),
                  std::to_string(pass.cycles),
                  std::to_string(pass.storageUnits),
                  std::to_string(pass.waste),
                  std::to_string(pass.inputDroplets)});
  }
  std::cout << table.render() << "total: " << plan.passes.size()
            << " passes, " << plan.totalCycles << " cycles, "
            << plan.totalWaste << " waste, " << plan.totalInput
            << " input droplets (storage cap " << run.streaming.storageCap
            << ", peak " << plan.storageUnits << ")\n";
  if (!recovery.empty()) {
    report::Table faultTable({"pass", "delivered", "shortfall", "faults",
                              "repairs", "extra mix-splits", "cycles"});
    std::uint64_t delivered = 0;
    std::uint64_t shortfall = 0;
    std::uint64_t faults = 0;
    std::uint64_t extraMixSplits = 0;
    bool degraded = false;
    for (std::size_t p = 0; p < recovery.size(); ++p) {
      const engine::RecoveryReport& r = recovery[p];
      faultTable.addRow(
          {std::to_string(p + 1),
           std::to_string(r.delivered) + "/" + std::to_string(r.demand),
           std::to_string(r.shortfall), std::to_string(r.faults.size()),
           std::to_string(r.roundsUsed), std::to_string(r.extraMixSplits),
           std::to_string(r.completionCycle)});
      delivered += r.delivered;
      shortfall += r.shortfall;
      faults += r.faults.size();
      extraMixSplits += r.extraMixSplits;
      degraded = degraded || r.degraded;
    }
    std::cout << "\nfault injection (--inject "
              << *args.get("inject") << ", seed "
              << args.getU64("fault-seed", 1) << "):\n"
              << faultTable.render() << "recovered " << delivered << "/"
              << (delivered + shortfall) << " targets, " << faults
              << " faults, " << extraMixSplits << " extra mix-splits";
    if (degraded) {
      std::cout << " — DEGRADED";
      for (const engine::RecoveryReport& r : recovery) {
        if (r.degraded) {
          std::cout << " (" << r.degradationReason << ")";
          break;
        }
      }
    }
    std::cout << "\n";
  }
  if (args.has("stats")) {
    const engine::PassCacheStats stats = cache.stats();
    std::cout << "pass cache: " << stats.hits << " hits, " << stats.misses
              << " misses; stage times (ms): forest "
              << report::fixed(static_cast<double>(stats.buildNanos) / 1e6, 2)
              << ", schedule "
              << report::fixed(
                     static_cast<double>(stats.scheduleNanos) / 1e6, 2)
              << ", storage count "
              << report::fixed(
                     static_cast<double>(stats.storageNanos) / 1e6, 2)
              << "\n";
  }
  return 0;
}

int cmdDilute(const Args& args) {
  const auto text = args.get("sample");
  if (!text.has_value()) {
    throw std::invalid_argument("--sample is required (e.g. 5/2^4)");
  }
  const auto slash = text->find("/2^");
  std::uint64_t numerator = 0;
  unsigned accuracy = 0;
  bool ok = slash != std::string::npos;
  if (ok) {
    const std::string num = text->substr(0, slash);
    const std::string exp = text->substr(slash + 3);
    ok = std::from_chars(num.data(), num.data() + num.size(), numerator)
                 .ec == std::errc{} &&
         std::from_chars(exp.data(), exp.data() + exp.size(), accuracy).ec ==
             std::errc{};
  }
  if (!ok) {
    throw std::invalid_argument("--sample: expected a/2^d, got '" + *text +
                                "'");
  }
  const mixgraph::MixingGraph graph =
      mixgraph::buildDilution(numerator, accuracy);
  Args planArgs = args;
  planArgs.options["ratio"] = graph.ratio().toString();
  return cmdPlan(planArgs, graph.ratio());
}

int cmdChip(const Args& args, const Ratio& ratio) {
  engine::MdstEngine engine(ratio);
  const std::uint64_t demand = args.getU64("demand", 2);
  const auto mixers =
      static_cast<unsigned>(args.getU64("mixers", engine.defaultMixers()));
  const forest::TaskForest forest =
      engine.buildForest(parseAlgo(args), demand);
  const sched::Schedule schedule = sched::scheduleSRS(forest, mixers);
  const unsigned storage = sched::countStorage(forest, schedule);

  chip::Layout layout = chip::synthesizeLayout(
      ratio.fluidCount(), mixers, std::max(storage, 1u));
  chip::Router router(layout);
  chip::ChipExecutor executor(layout, router);
  chip::ExecutionTrace trace = executor.run(forest, schedule);

  if (args.has("anneal")) {
    const chip::FlowMatrix flow =
        chip::flowFromTrace(trace, layout.moduleCount());
    layout = chip::annealPlacement(layout, flow);
    chip::Router annealedRouter(layout);
    chip::ChipExecutor annealedExecutor(layout, annealedRouter);
    trace = annealedExecutor.run(forest, schedule);
  }

  std::cout << "layout (" << layout.width() << "x" << layout.height()
            << "):\n"
            << layout.render() << "\nBFS-priced transport cost: "
            << trace.totalCost << " electrode actuations\n";

  if (args.has("simulate") || args.has("pins") || args.has("contamination")) {
    const chip::SimulationResult sim = chip::simulateTrace(layout, trace);
    std::cout << "timed simulation: " << sim.totalActuations
              << " actuations over " << sim.totalSteps
              << " routing steps (longest phase " << sim.maxPhaseMakespan
              << ")\n";
    if (args.has("contamination")) {
      const chip::ContaminationReport report =
          chip::analyzeContamination(layout, sim);
      std::cout << "contamination: " << report.sharedCells
                << " shared cells, " << report.contaminatedReuses
                << " dirty reuses, ~" << report.washDroplets
                << " wash droplets needed\n"
                << chip::renderContamination(layout, sim);
    }
    if (args.has("pins")) {
      const chip::ActuationMatrix matrix(layout, sim);
      const chip::PinAssignment pins = chip::assignPins(matrix);
      std::cout << "broadcast addressing: " << pins.pinCount()
                << " control pins for "
                << matrix.electrodeCount() - pins.idleElectrodes
                << " constrained electrodes (plus " << pins.idleElectrodes
                << " idle)\n";
    }
  }
  if (args.has("wear")) {
    const chip::WearReport wear = chip::analyzeWear(trace);
    std::cout << "wear: peak " << wear.peak << " actuations, imbalance "
              << report::fixed(wear.imbalance, 2) << ", ~"
              << wear.workloadsToBudget
              << " workloads to the dielectric budget\n"
              << chip::renderHeatMap(trace);
  }
  return 0;
}

int cmdMulti(const Args& args) {
  const auto targetsText = args.get("targets");
  const auto demandsText = args.get("demands");
  if (!targetsText.has_value() || !demandsText.has_value()) {
    throw std::invalid_argument(
        "multi needs --targets R1;R2;... and --demands D1,D2,...");
  }
  auto splitOn = [](const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
      const std::size_t end = text.find(sep, start);
      parts.push_back(text.substr(
          start, end == std::string::npos ? std::string::npos : end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
    return parts;
  };
  std::vector<engine::TargetDemand> targets;
  const auto ratios = splitOn(*targetsText, ';');
  const auto demands = splitOn(*demandsText, ',');
  if (ratios.size() != demands.size() || ratios.empty()) {
    throw std::invalid_argument(
        "multi: --targets and --demands must list the same number of items");
  }
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    const auto ratio = Ratio::parse(ratios[i]);
    if (!ratio.has_value()) {
      throw std::invalid_argument("multi: malformed ratio '" + ratios[i] +
                                  "'");
    }
    std::uint64_t demand = 0;
    const auto [ptr, ec] = std::from_chars(
        demands[i].data(), demands[i].data() + demands[i].size(), demand);
    if (ec != std::errc{} || ptr != demands[i].data() + demands[i].size()) {
      throw std::invalid_argument("multi: malformed demand '" + demands[i] +
                                  "'");
    }
    targets.push_back({*ratio, demand});
  }
  const auto planStart = std::chrono::steady_clock::now();
  const engine::MultiTargetResult r = engine::runMultiTarget(
      targets, engine::Scheme::kSRS,
      static_cast<unsigned>(args.getU64("mixers", 0)),
      static_cast<unsigned>(args.getU64("jobs", 1)));
  const auto planNanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - planStart)
          .count());
  if (args.has("json")) {
    report::Json out = engine::toJson(r);
    if (args.has("stats")) {
      // Wall time is run-to-run nondeterministic, so it only joins the JSON
      // on explicit request — the default output is byte-stable.
      out.set("planNanos", report::Json::number(planNanos));
    }
    std::cout << out.dump(2);
    return 0;
  }
  report::Table table({"metric", "shared forest", "separate engines"});
  table.addRow({"completion Tc", std::to_string(r.completionTime),
                std::to_string(r.separateCompletionTime)});
  table.addRow({"storage q", std::to_string(r.storageUnits),
                std::to_string(r.separateStorageUnits)});
  table.addRow({"input droplets I", std::to_string(r.inputDroplets),
                std::to_string(r.separateInputDroplets)});
  table.addRow({"waste W", std::to_string(r.waste),
                std::to_string(r.separateWaste)});
  std::cout << table.render() << "(" << targets.size()
            << " targets on " << r.mixers << " mixers)\n";
  if (args.has("stats")) {
    std::cout << "planned in "
              << report::fixed(static_cast<double>(planNanos) / 1e6, 2)
              << " ms";
    if (obs::MetricsRegistry* m = obs::metrics()) {
      std::cout
          << " (shared forest "
          << report::fixed(static_cast<double>(
                               m->counter("engine.multi_target.shared_nanos")
                                   .value()) /
                               1e6,
                           2)
          << " ms, separate baseline "
          << report::fixed(static_cast<double>(
                               m->counter("engine.multi_target.separate_nanos")
                                   .value()) /
                               1e6,
                           2)
          << " ms)";
    }
    std::cout << "\n";
  }
  return 0;
}

int cmdFuzz(const Args& args) {
  check::FuzzOptions options;
  options.seed = args.getU64("seed", 1);
  options.iterations = args.getU64("iters", 200);
  options.timeBudgetSeconds = args.getDouble("time-budget", 0.0);
  options.scope = args.get("scope").value_or("all");
  const check::Fuzzer fuzzer(options);

  if (const auto seedJson = args.get("replay"); seedJson.has_value()) {
    const check::FuzzCase c =
        check::FuzzCase::fromJson(report::Json::parse(*seedJson));
    const check::CheckResult result = fuzzer.runCase(c);
    std::cout << "replay: " << c.toJson().dump() << "\n"
              << "replay: " << result.checksRun << " oracle checks\n";
    if (result.ok()) {
      std::cout << "replay: all invariants held\n";
      return 0;
    }
    std::cout << result.summary();
    return 4;
  }

  const check::FuzzReport report = fuzzer.run();
  std::cout << check::renderReport(report);
  return report.ok() ? 0 : 4;
}

// Multi-tenant fleet dispatch (DESIGN.md §17): plan every user's stream,
// then shard the passes across N simulated chips under an arbitration
// policy. Output is byte-identical for every --jobs value; the per-user
// plans (--plans-only) are additionally byte-identical across a --kill.
int cmdFleet(const Args& args) {
  const auto usersSpec = args.get("users");
  if (!usersSpec.has_value()) {
    throw std::invalid_argument(
        "fleet needs --users \"ratio=...,demand=...,storage=...;...\"");
  }
  std::vector<fleet::UserStream> users = fleet::parseUsers(*usersSpec);

  fleet::DispatcherOptions options;
  if (const auto chips = args.get("chips"); chips.has_value()) {
    options.chips = fleet::parseChips(*chips);
  } else {
    options.chips =
        fleet::defaultFleet(static_cast<unsigned>(args.getU64("fleet", 4)));
  }
  options.policy = args.get("policy").value_or("fifo");
  if (const auto weights = args.get("weights"); weights.has_value()) {
    options.weights = fleet::parseWeights(*weights);
  }
  options.quantum = args.getDouble("quantum", 0.0);
  options.jobs = static_cast<unsigned>(args.getU64("jobs", 1));
  options.journalDir = args.get("journal").value_or("");
  if (const auto kill = args.get("kill"); kill.has_value()) {
    options.kill = fleet::parseKill(*kill);
  }

  const fleet::FleetResult result = fleet::dispatchFleet(users, options);

  if (args.has("plans-only")) {
    std::cout << result.plansJson().dump(2) << "\n";
    return 0;
  }
  if (args.has("json")) {
    std::cout << result.toJson(args.has("placement")).dump(2) << "\n";
    return 0;
  }

  report::Table userTable(
      {"user", "weight", "passes", "service cycles", "migrated", "unplaced"});
  for (std::size_t u = 0; u < result.users.size(); ++u) {
    const fleet::UserReport& user = result.users[u];
    std::ostringstream weight;
    weight << user.weight;
    userTable.addRow({std::to_string(u), weight.str(),
                      std::to_string(user.passesExecuted),
                      std::to_string(user.serviceCycles),
                      std::to_string(user.migratedPasses),
                      std::to_string(user.unplacedPasses)});
  }
  report::Table chipTable(
      {"chip", "mixers", "storage", "busy cycles", "passes", "state"});
  for (std::size_t c = 0; c < result.chips.size(); ++c) {
    const fleet::ChipReport& chip = result.chips[c];
    chipTable.addRow(
        {std::to_string(c), std::to_string(chip.spec.effectiveMixers()),
         std::to_string(chip.spec.storageCap),
         std::to_string(chip.busyCycles), std::to_string(chip.passesCompleted),
         chip.failed ? "failed@" + std::to_string(chip.failedAtCycle) : "ok"});
  }
  std::cout << userTable.render() << "\n"
            << chipTable.render() << "\npolicy " << result.policy
            << ", makespan " << result.makespan << " cycles, migrations "
            << result.migrations << ", Jain index "
            << std::llround(result.jainIndex() * 1000.0) << "/1000\n";
  if (result.degraded) {
    std::cout << "degraded: " << result.degradationReason << "\n";
  }
  return 0;
}

// Self-pipe for SIGINT/SIGTERM: the handler only writes the signal number
// to a pipe; a watcher thread does the actual (non-async-signal-safe)
// graceful shutdown. File-scope because signal handlers take no closure.
int g_signalPipe[2] = {-1, -1};

extern "C" void onServeSignal(int signo) {
  const char byte = static_cast<char>(signo);
  // A full pipe or closed read end just drops the wakeup; the first byte
  // through is what triggers the drain.
  (void)!::write(g_signalPipe[1], &byte, 1);
}

int cmdServe(const Args& args) {
  const std::uint64_t port = args.getU64("port", 0);
  if (port > 65535) {
    throw std::invalid_argument("--port: must be 0..65535, got " +
                                std::to_string(port));
  }
  // The daemon always keeps a live metrics registry so `dmfstream stats
  // --port P` can scrape it. Without --trace/--metrics (no session from
  // main()) the session is metrics-only: counters are bounded, whereas
  // trace events would accumulate for the daemon's whole lifetime.
  std::unique_ptr<obs::Session> session;
  std::unique_ptr<obs::Scope> scope;
  if (!obs::enabled()) {
    session = std::make_unique<obs::Session>();
    session->traceEnabled = false;
    scope = std::make_unique<obs::Scope>(*session);
  }
  server::ServiceOptions options;
  options.cacheSize = static_cast<std::size_t>(args.getU64("cache-size", 256));
  options.cacheDir = args.get("cache-dir").value_or("");
  options.journalDir = args.get("journal").value_or("");
  options.jobs = static_cast<unsigned>(args.getU64("jobs", 1));
  // Fleet arbitration: --fleet N turns on policy-ordered admission over N
  // virtual lanes, with per-connection user identity (DESIGN.md §17).
  options.fleet = static_cast<unsigned>(args.getU64("fleet", 0));
  options.fleetPolicy = args.get("policy").value_or("fifo");
  if (const auto weights = args.get("weights"); weights.has_value()) {
    options.fleetWeights = fleet::parseWeights(*weights);
  }
  options.fleetQuantum = args.getDouble("quantum", 0.0);
  server::PlanService service(options);
  // Requests a previous daemon admitted but never finished replay before
  // the socket opens, so their plans are cached before any client retries.
  (void)service.replayJournal();
  server::SocketServer socket(
      service, server::SocketServerOptions{static_cast<unsigned short>(port)});
  // The bound port goes to stderr: ephemeral ports differ run to run, and
  // stdout must stay byte-deterministic (the serve smoke test diffs it).
  std::cerr << "listening on 127.0.0.1:" << socket.port() << "\n";

  if (const auto drivePath = args.get("drive"); drivePath.has_value()) {
    std::ifstream in(*drivePath);
    if (!in) {
      throw std::invalid_argument("--drive: cannot read '" + *drivePath + "'");
    }
    std::thread serverThread([&socket] { socket.run(); });
    const bool ok = server::driveLines(socket.port(), in, std::cout);
    socket.stop();
    serverThread.join();
    if (!ok) {
      throw std::runtime_error("serve --drive: connection to 127.0.0.1:" +
                               std::to_string(socket.port()) + " failed");
    }
    return 0;
  }
  // Graceful SIGINT/SIGTERM: stop accepting, drain in-flight connections
  // (SocketServer::run joins them), then emit the shutdown summary. The
  // handler itself only pokes the self-pipe; the watcher thread runs the
  // shutdown, keeping the handler async-signal-safe.
  if (::pipe(g_signalPipe) != 0) {
    throw std::runtime_error("serve: cannot create signal pipe");
  }
  struct sigaction action {};
  action.sa_handler = onServeSignal;
  sigemptyset(&action.sa_mask);
  struct sigaction oldInt {}, oldTerm {};
  sigaction(SIGINT, &action, &oldInt);
  sigaction(SIGTERM, &action, &oldTerm);

  std::atomic<int> caughtSignal{0};
  std::thread watcher([&socket, &caughtSignal] {
    char byte = 0;
    while (::read(g_signalPipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    if (byte != 0) {  // 0 is the internal wakeup after a clean shutdown op
      caughtSignal.store(byte, std::memory_order_relaxed);
      socket.stop();
    }
  });

  socket.run();  // blocks until stop(), a {"op":"shutdown"} request, or a signal

  const char wake = 0;
  (void)!::write(g_signalPipe[1], &wake, 1);
  watcher.join();
  sigaction(SIGINT, &oldInt, nullptr);
  sigaction(SIGTERM, &oldTerm, nullptr);
  ::close(g_signalPipe[0]);
  ::close(g_signalPipe[1]);

  if (const int signo = caughtSignal.load(std::memory_order_relaxed)) {
    // The shutdown *op* logs its own summary in the service; the signal
    // path owns it here, after the drain, so the counters are final.
    obs::LogLine(obs::LogLevel::kInfo, "server.signal")
        .str("signal", signo == SIGTERM ? "SIGTERM" : "SIGINT");
    service.logShutdown();
  }
  return 0;
}

int cmdStats(const Args& args) {
  const std::string format = args.get("format").value_or("prometheus");
  if (format != "prometheus" && format != "json") {
    throw std::invalid_argument("--format: expected prometheus|json, got '" +
                                format + "'");
  }
  report::Json snapshot = report::Json::object();
  if (const auto from = args.get("from"); from.has_value()) {
    std::ifstream in(*from, std::ios::binary);
    if (!in) {
      throw std::invalid_argument("--from: cannot read '" + *from + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    snapshot = report::Json::parse(buffer.str());
  } else if (args.get("port").has_value()) {
    const std::uint64_t port = args.getU64("port", 0);
    if (port == 0 || port > 65535) {
      throw std::invalid_argument("--port: must be 1..65535, got " +
                                  std::to_string(port));
    }
    std::istringstream request("{\"op\":\"stats\"}\n");
    std::ostringstream response;
    if (!server::driveLines(static_cast<unsigned short>(port), request,
                            response)) {
      throw std::runtime_error("stats: connection to 127.0.0.1:" +
                               std::to_string(port) + " failed");
    }
    std::string line = response.str();
    if (const auto newline = line.find('\n'); newline != std::string::npos) {
      line.resize(newline);
    }
    const report::Json reply = report::Json::parse(line);
    if (!reply.contains("ok") || !reply.at("ok").asBool()) {
      throw std::runtime_error("stats: daemon replied with an error: " + line);
    }
    if (!reply.contains("metrics")) {
      throw std::runtime_error(
          "stats: the daemon reported no metrics section");
    }
    snapshot = reply.at("metrics");
  } else {
    throw std::invalid_argument(
        "stats needs --from FILE (a --metrics snapshot) or --port P (a live "
        "serve daemon)");
  }
  if (format == "json") {
    std::cout << snapshot.dump(2) << "\n";
    return 0;
  }
  std::cout << obs::prometheusText(snapshot);
  return 0;
}

int cmdCorpus(const Args& args) {
  const std::uint64_t sum = args.getU64("sum", 32);
  const std::size_t minN =
      static_cast<std::size_t>(args.getU64("min-fluids", 2));
  const std::size_t maxN =
      static_cast<std::size_t>(args.getU64("max-fluids", 12));
  const auto corpus = workload::partitionCorpus(sum, minN, maxN);
  report::Table table({"fluids N", "ratios"});
  std::map<std::size_t, std::size_t> byN;
  for (const Ratio& r : corpus) ++byN[r.fluidCount()];
  for (const auto& [n, count] : byN) {
    table.addRow({std::to_string(n), std::to_string(count)});
  }
  std::cout << table.render() << "total: " << corpus.size()
            << " target ratios with sum " << sum << "\n";
  return 0;
}

// Rejects output paths whose parent directory does not exist, before the
// command runs — a typo'd --trace path must not cost a full planning run.
void requireWritableParent(const std::string& key, const std::string& path) {
  namespace fs = std::filesystem;
  if (path.empty()) {
    throw std::invalid_argument("--" + key + ": empty path");
  }
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty() && !fs::is_directory(parent)) {
    throw std::invalid_argument("--" + key + ": directory '" +
                                parent.string() + "' does not exist");
  }
}

void writeTextFile(const std::string& key, const std::string& path,
                   const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content << "\n";
  if (!out) {
    throw std::invalid_argument("--" + key + ": cannot write '" + path + "'");
  }
}

int dispatch(const Args& args) {
  if (args.command == "plan") return cmdPlan(args, requireRatio(args));
  if (args.command == "stream") return cmdStream(args, requireRatio(args));
  if (args.command == "multi") return cmdMulti(args);
  if (args.command == "dilute") return cmdDilute(args);
  if (args.command == "chip") return cmdChip(args, requireRatio(args));
  if (args.command == "corpus") return cmdCorpus(args);
  if (args.command == "fuzz") return cmdFuzz(args);
  if (args.command == "fleet") return cmdFleet(args);
  if (args.command == "serve") return cmdServe(args);
  if (args.command == "stats") return cmdStats(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    const std::optional<std::string> tracePath = args.get("trace");
    const std::optional<std::string> metricsPath = args.get("metrics");
    if (tracePath.has_value()) requireWritableParent("trace", *tracePath);
    if (metricsPath.has_value()) requireWritableParent("metrics", *metricsPath);

    // Structured logging: serve defaults to info (its shutdown summary and
    // repair splices matter operationally); every other command defaults to
    // off, keeping the disabled path near-free and stdout untouched (logs
    // go to stderr or --log-file).
    const std::string defaultLevel =
        args.command == "serve" ? "info" : "off";
    obs::LogLevel logLevel;
    try {
      logLevel = obs::parseLogLevel(args.get("log-level").value_or(defaultLevel));
    } catch (const std::exception& e) {
      throw std::invalid_argument(std::string("--log-level: ") + e.what());
    }
    const std::optional<std::string> logPath = args.get("log-file");
    if (logPath.has_value()) requireWritableParent("log-file", *logPath);
    std::unique_ptr<obs::Logger> logger;
    std::unique_ptr<obs::LogScope> logScope;
    if (logLevel != obs::LogLevel::kOff) {
      obs::Logger::Options logOptions;
      logOptions.level = logLevel;
      logOptions.path = logPath.value_or("");
      logger = std::make_unique<obs::Logger>(logOptions);
      logScope = std::make_unique<obs::LogScope>(*logger);
    }

    // Observability is off (and near-free) unless one of the sinks was
    // requested; the planner's output is byte-identical either way.
    std::unique_ptr<obs::Session> session;
    std::unique_ptr<obs::Scope> scope;
    if (tracePath.has_value() || metricsPath.has_value()) {
      session = std::make_unique<obs::Session>();
      scope = std::make_unique<obs::Scope>(*session);
    }

    const int rc = dispatch(args);

    if (rc == 0 && session != nullptr) {
      if (tracePath.has_value()) {
        writeTextFile("trace", *tracePath, session->trace.toJson().dump(2));
      }
      if (metricsPath.has_value()) {
        writeTextFile("metrics", *metricsPath,
                      session->metrics.snapshot().dump(2));
      }
    }
    return rc;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const dmf::InfeasibleError& e) {
    // A well-formed request the hardware budget cannot satisfy — the one
    // documented "try different parameters" outcome (exit 2).
    std::cerr << "infeasible: " << e.what() << "\n";
    return 2;
  } catch (const dmf::journal::CorruptJournalError& e) {
    // A journal whose *committed* records are damaged (CRC mismatch, bad
    // snapshot). Distinct from a torn tail, which is repaired silently —
    // this one needs a human (or a fresh --journal run without --resume).
    std::cerr << "corrupt journal: " << e.what() << "\n";
    return 5;
  } catch (const std::exception& e) {
    // Anything else (logic_error and friends) is a bug in the library, not
    // in the request; keep it distinguishable for scripts and CI.
    std::cerr << "internal error: " << e.what() << "\n";
    return 3;
  }
}
