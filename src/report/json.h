// Minimal JSON writer for machine-readable plan exports (no external
// dependencies; emits UTF-8 with escaped strings).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dmf::report {

/// A JSON value (object/array/string/number/bool). Build with the static
/// factories, then render with dump().
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  static Json string(std::string value);
  static Json number(double value);
  static Json number(std::uint64_t value);
  static Json boolean(bool value);

  /// Object field insertion (fields render in insertion order).
  /// Throws std::logic_error when called on a non-object.
  Json& set(const std::string& key, Json value);
  /// Scalar conveniences: set("n", 3) instead of set("n", Json::number(3)).
  Json& set(const std::string& key, std::uint64_t value);
  Json& set(const std::string& key, double value);
  Json& set(const std::string& key, std::string value);
  /// Array append. Throws std::logic_error when called on a non-array.
  Json& push(Json value);

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(unsigned indent = 0) const;

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kUnsigned, kBool };
  explicit Json(Kind kind) : kind_(kind) {}

  void dumpTo(std::string& out, unsigned indent, unsigned depth) const;

  Kind kind_;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> items_;
  std::string text_;
  double num_ = 0.0;
  std::uint64_t unsigned_ = 0;
  bool bool_ = false;
};

/// Escapes a string for JSON embedding.
[[nodiscard]] std::string jsonEscape(const std::string& text);

}  // namespace dmf::report
