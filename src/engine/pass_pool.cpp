#include "engine/pass_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>

#include "obs/scope.h"

namespace dmf::engine {

// One forEach invocation: participants pull indices from `next` until the
// range is exhausted. All Batch accesses happen inside drain(); a participant
// only counts itself out (State::active) after drain() returns, which is what
// makes destroying the stack-allocated Batch safe once active reaches zero.
struct PassPool::Batch {
  std::uint64_t count = 0;
  const std::function<void(std::uint64_t)>* fn = nullptr;
  std::atomic<std::uint64_t> next{0};
  // First (lowest-index) exception seen, for deterministic error behaviour.
  std::mutex errorMutex;
  std::exception_ptr error;
  std::uint64_t errorIndex = std::numeric_limits<std::uint64_t>::max();

  void drain() {
    while (true) {
      const std::uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      try {
        (*fn)(index);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (index < errorIndex) {
          errorIndex = index;
          error = std::current_exception();
        }
      }
    }
  }
};

struct PassPool::State {
  std::mutex mutex;
  std::condition_variable work;  // new batch published, or shutdown
  std::condition_variable done;  // a participant finished draining
  Batch* batch = nullptr;
  std::uint64_t generation = 0;  // bumped once per published batch
  unsigned active = 0;           // participants still inside drain()
  bool stop = false;
};

PassPool::PassPool(unsigned jobs)
    : jobs_(resolveJobs(jobs)), state_(std::make_unique<State>()) {
  workers_.reserve(jobs_ - 1);
  for (unsigned w = 1; w < jobs_; ++w) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

PassPool::~PassPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->work.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

unsigned PassPool::resolveJobs(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void PassPool::workerLoop() {
  std::uint64_t seen = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->work.wait(lock, [this, seen] {
        return state_->stop ||
               (state_->batch != nullptr && state_->generation != seen);
      });
      if (state_->stop) return;
      seen = state_->generation;
      batch = state_->batch;
    }
    {
      // One span per worker per batch: the "--jobs N" tasks in the trace.
      const obs::Span span("pool.worker", "pool");
      batch->drain();
    }
    {
      const std::lock_guard<std::mutex> lock(state_->mutex);
      if (--state_->active == 0) state_->done.notify_all();
    }
  }
}

void PassPool::forEach(std::uint64_t count,
                       const std::function<void(std::uint64_t)>& fn) {
  if (count == 0) return;
  if (jobs_ <= 1 || count == 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.fn = &fn;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->batch = &batch;
    ++state_->generation;
    state_->active = jobs_;  // jobs_ - 1 workers plus this thread
  }
  state_->work.notify_all();
  obs::count("engine.pool.batches");
  obs::count("engine.pool.tasks", count);

  {
    const obs::Span span("pool.worker", "pool");
    batch.drain();  // the calling thread works too
  }

  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    --state_->active;
    if (state_->active == 0) state_->done.notify_all();
    state_->done.wait(lock, [this] { return state_->active == 0; });
    state_->batch = nullptr;
  }

  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

}  // namespace dmf::engine
