file(REMOVE_RECURSE
  "CMakeFiles/dilution_streaming.dir/dilution_streaming.cpp.o"
  "CMakeFiles/dilution_streaming.dir/dilution_streaming.cpp.o.d"
  "dilution_streaming"
  "dilution_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilution_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
