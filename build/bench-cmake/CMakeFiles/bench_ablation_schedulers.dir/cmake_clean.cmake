file(REMOVE_RECURSE
  "../bench/bench_ablation_schedulers"
  "../bench/bench_ablation_schedulers.pdb"
  "CMakeFiles/bench_ablation_schedulers.dir/bench_ablation_schedulers.cpp.o"
  "CMakeFiles/bench_ablation_schedulers.dir/bench_ablation_schedulers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
