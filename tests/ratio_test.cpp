#include "dmf/ratio.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dmf {
namespace {

TEST(Ratio, PcrMasterMixProperties) {
  Ratio r({2, 1, 1, 1, 1, 1, 9});
  EXPECT_EQ(r.fluidCount(), 7u);
  EXPECT_EQ(r.sum(), 16u);
  EXPECT_EQ(r.accuracy(), 4u);
  EXPECT_EQ(r.toString(), "2:1:1:1:1:1:9");
}

TEST(Ratio, PopcountSumIsMmLeafCount) {
  // Paper Table 2, Ex.1: MM needs 17 input droplets per pass.
  Ratio ex1({26, 21, 2, 2, 3, 3, 199});
  EXPECT_EQ(ex1.popcountSum(), 17u);
  // The running example needs 8.
  EXPECT_EQ(Ratio({2, 1, 1, 1, 1, 1, 9}).popcountSum(), 8u);
}

TEST(Ratio, RejectsFewerThanTwoFluids) {
  EXPECT_THROW(Ratio({16}), std::invalid_argument);
  EXPECT_THROW(Ratio(std::vector<std::uint64_t>{}), std::invalid_argument);
}

TEST(Ratio, RejectsZeroPart) {
  EXPECT_THROW(Ratio({4, 0, 4}), std::invalid_argument);
}

TEST(Ratio, RejectsNonPowerOfTwoSum) {
  EXPECT_THROW(Ratio({3, 4}), std::invalid_argument);
  EXPECT_THROW(Ratio({5, 5, 5}), std::invalid_argument);
}

TEST(Ratio, RejectsSumBelowTwo) {
  EXPECT_THROW(Ratio({1, 0}), std::invalid_argument);
}

TEST(Ratio, ConcentrationIsExactShare)
{
  Ratio r({2, 1, 1, 1, 1, 1, 9});
  EXPECT_DOUBLE_EQ(r.concentration(0), 2.0 / 16.0);
  EXPECT_DOUBLE_EQ(r.concentration(6), 9.0 / 16.0);
}

TEST(Ratio, ParseRoundTrips) {
  auto parsed = Ratio::parse("2:1:1:1:1:1:9");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Ratio({2, 1, 1, 1, 1, 1, 9}));
}

TEST(Ratio, ParseRejectsMalformedText) {
  EXPECT_FALSE(Ratio::parse("").has_value());
  EXPECT_FALSE(Ratio::parse("2:").has_value());
  EXPECT_FALSE(Ratio::parse("a:b").has_value());
  EXPECT_FALSE(Ratio::parse("1,2").has_value());
}

TEST(Ratio, ParseValidatesInvariants) {
  EXPECT_THROW(Ratio::parse("3:4"), std::invalid_argument);
  EXPECT_THROW(Ratio::parse("16"), std::invalid_argument);
}

TEST(Ratio, EqualityIsStructural) {
  EXPECT_EQ(Ratio({1, 1}), Ratio({1, 1}));
  EXPECT_NE(Ratio({1, 1}), Ratio({2, 2}));  // same value, different scale
  EXPECT_NE(Ratio({1, 3}), Ratio({3, 1}));  // order matters (fluid identity)
}

TEST(Ratio, ReducedDropsCommonPowerOfTwo) {
  // The canonical cache key depends on this: 2:4:2 and 1:2:1 describe the
  // same mixture and must reduce to the same normal form.
  EXPECT_EQ(Ratio({2, 4, 2}).reduced(), Ratio({1, 2, 1}));
  EXPECT_EQ(Ratio({8, 16, 8}).reduced(), Ratio({1, 2, 1}));
  EXPECT_EQ(Ratio({4, 4}).reduced(), Ratio({1, 1}));
  EXPECT_EQ(Ratio({6, 2}).reduced(), Ratio({3, 1}));
  EXPECT_EQ(Ratio({4, 8, 4, 16}).reduced(), Ratio({1, 2, 1, 4}));
}

TEST(Ratio, ReducedIsIdentityOnNormalForms) {
  // An odd part pins the scale: nothing to cancel.
  EXPECT_EQ(Ratio({2, 1, 1, 1, 1, 1, 9}).reduced(),
            Ratio({2, 1, 1, 1, 1, 1, 9}));
  EXPECT_EQ(Ratio({1, 1}).reduced(), Ratio({1, 1}));
  EXPECT_EQ(Ratio({3, 1}).reduced(), Ratio({3, 1}));
}

TEST(Ratio, ReducedIsIdempotent) {
  const Ratio r({12, 4, 16});
  EXPECT_EQ(r.reduced(), Ratio({3, 1, 4}));
  EXPECT_EQ(r.reduced().reduced(), r.reduced());
}

TEST(Ratio, IsReducedMatchesReduced) {
  EXPECT_FALSE(Ratio({2, 4, 2}).isReduced());
  EXPECT_FALSE(Ratio({4, 4}).isReduced());
  EXPECT_TRUE(Ratio({1, 2, 1}).isReduced());
  EXPECT_TRUE(Ratio({1, 1}).isReduced());
  EXPECT_TRUE(Ratio({2, 1, 1, 1, 1, 1, 9}).isReduced());
}

}  // namespace
}  // namespace dmf
