// The MDST mixture-preparation engine: the paper's end-to-end pipeline
// ratio -> base mixing graph -> mixing forest -> schedule -> metrics.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "dmf/ratio.h"
#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "sched/schedule.h"
#include "sched/schedulers.h"

namespace dmf::engine {

/// Scheduling scheme selector.
enum class Scheme {
  kMMS,  ///< Algorithm 1 (M_Mixers_Schedule)
  kSRS,  ///< Algorithm 2 (Storage_Reduced_Scheduling)
  kOMS,  ///< critical-path baseline (used for repeated single-pass mixing)
};

/// Human-readable scheme name.
[[nodiscard]] std::string_view schemeName(Scheme scheme);

/// Runs the selected scheduler on a forest.
[[nodiscard]] sched::Schedule schedule(const forest::TaskForest& forest,
                                       Scheme scheme, unsigned mixers);

/// Everything the paper reports about one MDST run.
struct MdstResult {
  /// Time of completion Tc in time-cycles.
  unsigned completionTime = 0;
  /// On-chip storage units q (Algorithm 3).
  unsigned storageUnits = 0;
  /// Mix-split count Tms.
  std::uint64_t mixSplits = 0;
  /// Waste droplets W.
  std::uint64_t waste = 0;
  /// Total input droplets I.
  std::uint64_t inputDroplets = 0;
  /// Per-fluid input droplets I[].
  std::vector<std::uint64_t> inputPerFluid;
  /// Number of component mixing trees |F|.
  std::uint64_t componentTrees = 0;
  /// Mixers used (Mc).
  unsigned mixers = 0;
};

/// Configuration of one engine run.
struct MdstRequest {
  mixgraph::Algorithm algorithm = mixgraph::Algorithm::MM;
  Scheme scheme = Scheme::kMMS;
  /// Number of on-chip mixers; 0 means "use Mlb of the MM base tree", the
  /// paper's convention for all evaluation tables.
  unsigned mixers = 0;
  /// Required number of target droplets (demand D).
  std::uint64_t demand = 2;
};

/// The demand-driven mixture-preparation engine.
///
/// Holds the target ratio and lazily reusable base graphs; each `run`
/// instantiates the mixing forest for the requested demand, schedules it and
/// collects the paper's metrics. A default-mixer request resolves Mc to the
/// Mlb of the MM base tree (minimum mixers for fastest single-pass
/// completion), exactly as the paper's evaluation does.
///
/// Const member functions are safe to call concurrently: the lazy base-graph
/// and default-mixer caches are guarded by an internal mutex, so a PassPool
/// can fan pass evaluations over one shared engine.
class MdstEngine {
 public:
  explicit MdstEngine(Ratio ratio);

  [[nodiscard]] const Ratio& ratio() const { return ratio_; }

  /// Mlb of the MM base tree for this ratio.
  [[nodiscard]] unsigned defaultMixers() const;

  /// Runs the full pipeline and returns the metrics. Throws on invalid
  /// requests (demand == 0).
  [[nodiscard]] MdstResult run(const MdstRequest& request) const;

  /// Builds the forest for a request (exposed so callers can also inspect
  /// schedules, Gantt charts, or drive the chip executor).
  [[nodiscard]] forest::TaskForest buildForest(mixgraph::Algorithm algorithm,
                                               std::uint64_t demand) const;

  /// The base mixing graph for an algorithm (built once, cached).
  [[nodiscard]] const mixgraph::MixingGraph& baseGraph(
      mixgraph::Algorithm algorithm) const;

 private:
  Ratio ratio_;
  // Guards the lazy caches below (never held while a caller-visible
  // reference is used: graphs_ has fixed size, so engaged slots are stable).
  mutable std::mutex lazyMutex_;
  // Lazily built per-algorithm base graphs (index by enum value).
  mutable std::vector<std::optional<mixgraph::MixingGraph>> graphs_;
  mutable std::optional<unsigned> defaultMixers_;
};

}  // namespace dmf::engine
