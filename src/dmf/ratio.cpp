#include "dmf/ratio.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <limits>
#include <stdexcept>

#include "dmf/fraction.h"

namespace dmf {

Ratio::Ratio(std::vector<std::uint64_t> parts) : parts_(std::move(parts)) {
  if (parts_.size() < 2) {
    throw std::invalid_argument("Ratio: need at least 2 fluids, got " +
                                std::to_string(parts_.size()));
  }
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (parts_[i] == 0) {
      throw std::invalid_argument("Ratio: part " + std::to_string(i + 1) +
                                  " is zero; every fluid must participate");
    }
    if (parts_[i] > std::numeric_limits<std::uint64_t>::max() - sum_) {
      throw std::invalid_argument("Ratio: ratio-sum overflows 64 bits");
    }
    sum_ += parts_[i];
  }
  if (!std::has_single_bit(sum_)) {
    throw std::invalid_argument("Ratio: ratio-sum " + std::to_string(sum_) +
                                " is not a power of two");
  }
  accuracy_ = static_cast<unsigned>(std::countr_zero(sum_));
  if (accuracy_ == 0) {
    throw std::invalid_argument("Ratio: ratio-sum must be at least 2");
  }
}

Ratio::Ratio(std::initializer_list<std::uint64_t> parts)
    : Ratio(std::vector<std::uint64_t>(parts)) {}

std::size_t Ratio::popcountSum() const {
  std::size_t total = 0;
  for (std::uint64_t p : parts_) {
    total += static_cast<std::size_t>(std::popcount(p));
  }
  return total;
}

double Ratio::concentration(std::size_t i) const {
  return static_cast<double>(parts_[i]) / static_cast<double>(sum_);
}

Ratio Ratio::reduced() const {
  // Each fluid's concentration a_i / 2^d in canonical dyadic form; the
  // largest canonical exponent is the reduced ratio's accuracy level, and
  // re-scaling every fraction to it recovers the smallest integer parts.
  std::vector<DyadicFraction> concentrations;
  concentrations.reserve(parts_.size());
  unsigned depth = 0;
  for (std::uint64_t part : parts_) {
    concentrations.emplace_back(part, accuracy_);
    depth = std::max(depth, concentrations.back().exponent());
  }
  // All-integral concentrations only happen for the two-fluid 1:1 ratio
  // family (x:x reduces to 1:1, sum 2, depth 1); depth 0 would make an
  // invalid ratio-sum of 1.
  depth = std::max(depth, 1u);
  std::vector<std::uint64_t> reducedParts;
  reducedParts.reserve(parts_.size());
  for (const DyadicFraction& c : concentrations) {
    reducedParts.push_back(c.numeratorAtScale(depth));
  }
  return Ratio(std::move(reducedParts));
}

bool Ratio::isReduced() const { return reduced().parts_ == parts_; }

std::string Ratio::toString() const {
  std::string out;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i != 0) out += ':';
    out += std::to_string(parts_[i]);
  }
  return out;
}

std::optional<Ratio> Ratio::parse(const std::string& text) {
  std::vector<std::uint64_t> parts;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    std::uint64_t value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || next == p) return std::nullopt;
    parts.push_back(value);
    p = next;
    if (p < end) {
      if (*p != ':') return std::nullopt;
      ++p;
      if (p == end) return std::nullopt;  // trailing ':'
    }
  }
  if (parts.empty()) return std::nullopt;
  return Ratio(std::move(parts));
}

}  // namespace dmf
