file(REMOVE_RECURSE
  "CMakeFiles/pcr_master_mix.dir/pcr_master_mix.cpp.o"
  "CMakeFiles/pcr_master_mix.dir/pcr_master_mix.cpp.o.d"
  "pcr_master_mix"
  "pcr_master_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcr_master_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
