// Compatibility alias: the pass-evaluation pool grew into the shared
// runtime::ThreadPool (src/runtime/thread_pool.h), which the GA scheduler
// and streaming planner now share. Existing engine code and callers keep
// the PassPool name.
#pragma once

#include "runtime/thread_pool.h"

namespace dmf::engine {

using PassPool = runtime::ThreadPool;

}  // namespace dmf::engine
