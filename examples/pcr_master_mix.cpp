// The paper's section 5 case study, end to end: build the PCR master-mix
// engine, schedule the D=20 forest with SRS on three mixers, print the Gantt
// chart (Fig. 4), the chip layout and its transport-cost matrix (Fig. 5),
// and compare electrode actuations against repeated single-pass mixing.
#include <iostream>

#include "chip/executor.h"
#include "chip/pcr_layout.h"
#include "chip/router.h"
#include "engine/mdst.h"
#include "forest/task_forest.h"
#include "mixgraph/builders.h"
#include "protocols/protocols.h"
#include "sched/gantt.h"
#include "sched/schedulers.h"

int main() {
  using namespace dmf;

  const Ratio ratio = protocols::pcrMasterMixRatio();
  std::cout << "=== PCR master-mix engine (ratio " << ratio.toString()
            << ", D = 20, Mc = 3) ===\n\n";

  const mixgraph::MixingGraph graph = mixgraph::buildMM(ratio);
  std::cout << "Base MM tree: " << graph.leafCount() << " input droplets, "
            << graph.internalCount() << " mix-splits, depth " << graph.depth()
            << "\n";

  const forest::TaskForest forest(graph, 20);
  const auto& stats = forest.stats();
  std::cout << "Mixing forest: |F| = " << stats.componentTrees
            << ", Tms = " << stats.mixSplits << ", W = " << stats.waste
            << ", I = " << stats.inputTotal << "\n\n";

  const sched::Schedule schedule = sched::scheduleSRS(forest, 3);
  std::cout << "SRS schedule (Tc = " << schedule.completionTime
            << ", q = " << sched::countStorage(forest, schedule) << "):\n"
            << sched::renderGantt(forest, schedule) << "\n";

  const chip::Layout layout = chip::makePcrLayout();
  std::cout << "Chip layout (" << layout.width() << "x" << layout.height()
            << "):\n"
            << layout.render() << "\n";

  chip::Router router(layout);
  std::cout << "Droplet-transportation costs (electrodes):\n"
            << router.renderCostMatrix() << "\n";

  chip::ChipExecutor executor(layout, router);
  const chip::ExecutionTrace ours = executor.run(forest, schedule);

  const forest::TaskForest pass(graph, 2);
  const chip::ExecutionTrace perPass =
      executor.run(pass, sched::scheduleOMS(pass, 3));

  std::cout << "Electrode actuations, streaming engine : " << ours.totalCost
            << "\n"
            << "Electrode actuations, repeated MM x10  : "
            << perPass.totalCost * 10 << "\n"
            << "(The paper reports 386 vs 980 on its hand-crafted layout; the"
               " shape —\n forest needs a fraction of the actuations — is the"
               " reproduced claim.)\n"
            << "Peak per-electrode actuations (wear)   : "
            << ours.peakActuations << "\n";
  return 0;
}
