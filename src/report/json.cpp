#include "report/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dmf::report {

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

Json Json::string(std::string value) {
  Json j(Kind::kString);
  j.text_ = std::move(value);
  return j;
}

Json Json::number(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("Json::number: non-finite value");
  }
  Json j(Kind::kNumber);
  j.num_ = value;
  return j;
}

Json Json::number(std::uint64_t value) {
  Json j(Kind::kUnsigned);
  j.unsigned_ = value;
  return j;
}

Json Json::boolean(bool value) {
  Json j(Kind::kBool);
  j.bool_ = value;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::set: not an object");
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::set(const std::string& key, std::uint64_t value) {
  return set(key, Json::number(value));
}

Json& Json::set(const std::string& key, double value) {
  return set(key, Json::number(value));
}

Json& Json::set(const std::string& key, std::string value) {
  return set(key, Json::string(std::move(value)));
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::push: not an array");
  }
  items_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kObject) return fields_.size();
  if (kind_ == Kind::kArray) return items_.size();
  return 0;
}

bool Json::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [name, value] : fields_) {
    if (name == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::at(key): not an object");
  }
  for (const auto& [name, value] : fields_) {
    if (name == key) return value;
  }
  throw std::out_of_range("Json::at: no key '" + key + "'");
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::at(index): not an array");
  }
  if (index >= items_.size()) {
    throw std::out_of_range("Json::at: index " + std::to_string(index) +
                            " out of range");
  }
  return items_[index];
}

std::vector<std::string> Json::keys() const {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::keys: not an object");
  }
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const auto& [name, value] : fields_) out.push_back(name);
  return out;
}

const std::string& Json::asString() const {
  if (kind_ != Kind::kString) {
    throw std::logic_error("Json::asString: not a string");
  }
  return text_;
}

double Json::asDouble() const {
  if (kind_ == Kind::kNumber) return num_;
  if (kind_ == Kind::kUnsigned) return static_cast<double>(unsigned_);
  throw std::logic_error("Json::asDouble: not a number");
}

std::uint64_t Json::asUint() const {
  if (kind_ == Kind::kUnsigned) return unsigned_;
  if (kind_ == Kind::kNumber) {
    if (num_ < 0.0 || num_ != std::floor(num_) ||
        num_ >= 18446744073709551616.0) {
      throw std::logic_error("Json::asUint: number is not a uint64");
    }
    return static_cast<std::uint64_t>(num_);
  }
  throw std::logic_error("Json::asUint: not a number");
}

bool Json::asBool() const {
  if (kind_ != Kind::kBool) {
    throw std::logic_error("Json::asBool: not a boolean");
  }
  return bool_;
}

namespace {

/// Recursive-descent reader over the serialized text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  /// Containers deeper than this are rejected rather than risking a stack
  /// overflow in the recursive descent (each level costs two stack frames).
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) parser_.fail("nesting too deep");
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser_;
  };

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("Json::parse: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parseValue() {
    skipSpace();
    switch (peek()) {
      case '{': {
        const DepthGuard guard(*this);
        return parseObject();
      }
      case '[': {
        const DepthGuard guard(*this);
        return parseArray();
      }
      case '"':
        return Json::string(parseString());
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return Json::null();
      default:
        return parseNumber();
    }
  }

  Json parseObject() {
    expect('{');
    Json object = Json::object();
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skipSpace();
      std::string key = parseString();
      skipSpace();
      expect(':');
      object.set(key, parseValue());
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  Json parseArray() {
    expect('[');
    Json array = Json::array();
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push(parseValue());
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  unsigned parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char hex = text_[pos_++];
      code <<= 4;
      if (hex >= '0' && hex <= '9') {
        code |= static_cast<unsigned>(hex - '0');
      } else if (hex >= 'a' && hex <= 'f') {
        code |= static_cast<unsigned>(hex - 'a' + 10);
      } else if (hex >= 'A' && hex <= 'F') {
        code |= static_cast<unsigned>(hex - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return code;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          unsigned code = parseHex4();
          // Surrogate halves are not code points. A high surrogate must be
          // followed by a \u low surrogate (the pair decodes to one
          // supplementary-plane character); anything else — a lone high,
          // a lone low, a high followed by a non-surrogate — is malformed
          // input, not something to smuggle through as CESU-8. The daemon
          // parses untrusted request bodies with this function.
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            pos_ += 2;
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate not followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  /// RFC 8259 number grammar: -? (0 | [1-9][0-9]*) frac? exp?. std::stod
  /// would happily take "+5", ".5", "1." and "0x1p3" — the daemon parses
  /// untrusted request bodies, so anything the grammar does not produce is
  /// rejected here instead of leniently coerced.
  [[nodiscard]] static bool matchesNumberGrammar(const std::string& token) {
    std::size_t i = 0;
    const auto digits = [&token, &i]() {
      const std::size_t first = i;
      while (i < token.size() &&
             std::isdigit(static_cast<unsigned char>(token[i])) != 0) {
        ++i;
      }
      return i > first;
    };
    if (i < token.size() && token[i] == '-') ++i;
    if (i >= token.size()) return false;
    if (token[i] == '0') {
      ++i;  // no leading zeros: "0" may only be followed by '.' or exponent
    } else if (!digits()) {
      return false;
    }
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (!digits()) return false;
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
      if (!digits()) return false;
    }
    return i == token.size();
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    if (!matchesNumberGrammar(token)) fail("malformed number");
    const bool integral =
        token.find_first_of(".eE") == std::string::npos && token[0] != '-';
    if (integral) {
      std::uint64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json::number(value);
      }
    }
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) fail("malformed number");
      return Json::number(value);
    } catch (const std::invalid_argument&) {
      fail("malformed number");
    } catch (const std::out_of_range&) {
      fail("number out of range");
    }
  }

  const std::string& text_;
  int depth_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

std::string Json::dump(unsigned indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void Json::dumpTo(std::string& out, unsigned indent, unsigned depth) const {
  const std::string pad =
      indent == 0 ? "" : "\n" + std::string((depth + 1) * indent, ' ');
  const std::string padClose =
      indent == 0 ? "" : "\n" + std::string(depth * indent, ' ');
  switch (kind_) {
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i != 0) out += ',';
        out += pad + '"' + jsonEscape(fields_[i].first) + "\":";
        if (indent > 0) out += ' ';
        fields_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (!fields_.empty()) out += padClose;
      out += '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        out += pad;
        items_[i].dumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) out += padClose;
      out += ']';
      break;
    }
    case Kind::kString:
      out += '"' + jsonEscape(text_) + '"';
      break;
    case Kind::kNumber: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.10g", num_);
      out += buffer;
      break;
    }
    case Kind::kUnsigned:
      out += std::to_string(unsigned_);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNull:
      out += "null";
      break;
  }
}

}  // namespace dmf::report
