#include "protocols/protocols.h"

#include <cmath>
#include <stdexcept>

namespace dmf::protocols {

const std::vector<Protocol>& publishedProtocols() {
  static const std::vector<Protocol> kProtocols = {
      {"Ex.1",
       "PCR master-mix for DNA amplification (Bio-Protocol'13; "
       "mutationdiscovery.com)",
       Ratio({26, 21, 2, 2, 3, 3, 199})},
      {"Ex.2",
       "Phenol : chloroform : isoamylalcohol, One-Step Miniprep "
       "(Chowdhury, Nucleic Acids Res. 19(10), 1991)",
       Ratio({128, 123, 5})},
      {"Ex.3",
       "Ten-fluid mixture, Molecular Barcodes method (Lopez & Erickson, "
       "DNA Barcodes, 2012)",
       Ratio({25, 5, 5, 5, 5, 13, 13, 25, 1, 159})},
      {"Ex.4",
       "Five-fluid mixture, Splinkerette PCR (Uren et al., Nature "
       "Protocols 4(5), 2009)",
       Ratio({9, 17, 26, 9, 195})},
      {"Ex.5",
       "Miniprep alkaline-lysis mixture (Cold Spring Harb. Protocols, 2006)",
       Ratio({57, 28, 6, 6, 6, 3, 150})},
  };
  return kProtocols;
}

const std::vector<double>& pcrMasterMixPercentages() {
  static const std::vector<double> kPercent = {10.0, 8.0, 0.8, 0.8,
                                               1.0,  1.0, 78.4};
  return kPercent;
}

Ratio pcrMasterMixRatio() { return Ratio({2, 1, 1, 1, 1, 1, 9}); }

Ratio approximatePercentages(const std::vector<double>& percentages,
                             unsigned accuracy, std::size_t bufferIndex) {
  if (percentages.size() < 2) {
    throw std::invalid_argument(
        "approximatePercentages: need at least two components");
  }
  if (bufferIndex >= percentages.size()) {
    throw std::invalid_argument("approximatePercentages: bad buffer index");
  }
  if (accuracy == 0 || accuracy > 62) {
    throw std::invalid_argument("approximatePercentages: bad accuracy");
  }
  double sum = 0.0;
  for (double p : percentages) {
    if (!(p > 0.0)) {
      throw std::invalid_argument(
          "approximatePercentages: percentages must be positive");
    }
    sum += p;
  }
  if (std::abs(sum - 100.0) > 0.5) {
    throw std::invalid_argument(
        "approximatePercentages: percentages must sum to 100, got " +
        std::to_string(sum));
  }

  const std::uint64_t scale = std::uint64_t{1} << accuracy;
  if (scale < percentages.size()) {
    throw std::invalid_argument(
        "approximatePercentages: scale 2^" + std::to_string(accuracy) +
        " cannot grant one unit per fluid");
  }

  std::vector<std::uint64_t> parts(percentages.size(), 0);
  std::uint64_t allotted = 0;
  for (std::size_t i = 0; i < percentages.size(); ++i) {
    if (i == bufferIndex) continue;
    const double exact =
        percentages[i] / 100.0 * static_cast<double>(scale);
    parts[i] =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       std::llround(exact)));
    allotted += parts[i];
  }
  if (allotted + 1 > scale) {
    throw std::invalid_argument(
        "approximatePercentages: buffer share would vanish at this accuracy");
  }
  parts[bufferIndex] = scale - allotted;
  return Ratio(std::move(parts));
}

Ratio approximatePercentages(const std::vector<double>& percentages,
                             unsigned accuracy) {
  if (percentages.empty()) {
    throw std::invalid_argument("approximatePercentages: empty recipe");
  }
  return approximatePercentages(percentages, accuracy,
                                percentages.size() - 1);
}

}  // namespace dmf::protocols
