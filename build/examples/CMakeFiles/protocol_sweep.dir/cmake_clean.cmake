file(REMOVE_RECURSE
  "CMakeFiles/protocol_sweep.dir/protocol_sweep.cpp.o"
  "CMakeFiles/protocol_sweep.dir/protocol_sweep.cpp.o.d"
  "protocol_sweep"
  "protocol_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
