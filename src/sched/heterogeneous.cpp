#include "sched/heterogeneous.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>

namespace dmf::sched {

using forest::kNoTask;
using forest::TaskForest;
using forest::TaskId;

MixerBank uniformBank(unsigned mixers, unsigned cycles) {
  return MixerBank{std::vector<unsigned>(mixers, cycles)};
}

Schedule scheduleHeterogeneous(const TaskForest& forest,
                               const MixerBank& bank) {
  if (bank.size() == 0) {
    throw std::invalid_argument("scheduleHeterogeneous: empty mixer bank");
  }
  for (unsigned cycles : bank.cyclesPerMix) {
    if (cycles == 0) {
      throw std::invalid_argument(
          "scheduleHeterogeneous: zero-cycle mixer duration");
    }
  }
  Schedule s;
  s.mixerCount = static_cast<unsigned>(bank.size());
  s.scheme = "HET";
  const std::size_t n = forest.taskCount();
  s.reset(n);
  if (n == 0) return s;

  const std::vector<TaskId>& consumers = forest.outConsumers();

  // Longest remaining dependency chain first (Hu priority).
  std::vector<unsigned> colevel(n, 1);
  for (TaskId id = static_cast<TaskId>(n); id-- > 0;) {
    for (unsigned slot = 0; slot < 2; ++slot) {
      const TaskId consumer = consumers[2 * id + slot];
      if (consumer != kNoTask) {
        colevel[id] = std::max(colevel[id], colevel[consumer] + 1);
      }
    }
  }

  const std::vector<std::uint8_t>& initialPending = forest.initialPending();
  std::vector<unsigned> pending(initialPending.begin(), initialPending.end());
  std::map<unsigned, std::vector<TaskId>> arrivals;
  // Earliest cycle a task may start: one past the latest operand finish
  // (operands can finish out of scheduling order on a mixed bank).
  std::vector<unsigned> readyAt(n, 1);
  for (TaskId id = 0; id < n; ++id) {
    if (pending[id] == 0) arrivals[1].push_back(id);
  }

  // Mixers ordered fastest-first; freeAt[m] = first idle cycle.
  std::vector<unsigned> order(bank.size());
  for (unsigned m = 0; m < bank.size(); ++m) order[m] = m;
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return bank.cyclesPerMix[a] < bank.cyclesPerMix[b];
  });
  std::vector<unsigned> freeAt(bank.size(), 1);

  // Min-heap over packed (colevel desc, id asc) keys; unique keys make the
  // pop order identical to the std::set this replaces.
  std::vector<std::uint64_t> ready;
  const auto heapGreater = std::greater<std::uint64_t>{};
  std::size_t remaining = n;
  for (unsigned t = 1; remaining > 0; ++t) {
    const auto it = arrivals.find(t);
    if (it != arrivals.end()) {
      for (TaskId id : it->second) {
        ready.push_back(((0xFFFFFFFFull - colevel[id]) << 32) | id);
        std::push_heap(ready.begin(), ready.end(), heapGreater);
      }
      arrivals.erase(it);
    }
    for (unsigned m : order) {
      if (ready.empty()) break;
      if (freeAt[m] > t) continue;
      std::pop_heap(ready.begin(), ready.end(), heapGreater);
      const auto id = static_cast<TaskId>(ready.back() & 0xFFFFFFFFull);
      ready.pop_back();
      s.place(id, t, m);
      const unsigned finish = t + bank.cyclesPerMix[m] - 1;
      freeAt[m] = finish + 1;
      s.completionTime = std::max(s.completionTime, finish);
      --remaining;
      for (unsigned slot = 0; slot < 2; ++slot) {
        const TaskId consumer = consumers[2 * id + slot];
        if (consumer == kNoTask) continue;
        readyAt[consumer] = std::max(readyAt[consumer], finish + 1);
        if (--pending[consumer] == 0) {
          arrivals[readyAt[consumer]].push_back(consumer);
        }
      }
    }
    if (ready.empty() && remaining > 0 && arrivals.empty()) {
      throw std::logic_error("scheduleHeterogeneous: stalled");
    }
  }
  return s;
}

unsigned finishCycle(const Schedule& s, const MixerBank& bank, TaskId id) {
  return s.cycles[id] + bank.cyclesPerMix[s.mixers[id]] - 1;
}

void validateHeterogeneous(const TaskForest& forest, const Schedule& s,
                           const MixerBank& bank) {
  if (s.size() != forest.taskCount()) {
    throw std::logic_error("validateHeterogeneous: assignment count mismatch");
  }
  // Per-mixer occupancy intervals must be disjoint.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> busy(bank.size());
  const std::vector<TaskId>& depLeft = forest.depLefts();
  const std::vector<TaskId>& depRight = forest.depRights();
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const unsigned cycle = s.cycles[id];
    const unsigned mixer = s.mixers[id];
    if (cycle == 0) {
      throw std::logic_error("validateHeterogeneous: unscheduled task");
    }
    if (mixer >= bank.size()) {
      throw std::logic_error("validateHeterogeneous: mixer out of range");
    }
    busy[mixer].push_back({cycle, finishCycle(s, bank, id)});
    for (TaskId dep : {depLeft[id], depRight[id]}) {
      if (dep != kNoTask && finishCycle(s, bank, dep) >= cycle) {
        throw std::logic_error(
            "validateHeterogeneous: operand not ready at task " +
            std::to_string(id));
      }
    }
  }
  for (auto& intervals : busy) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first <= intervals[i - 1].second) {
        throw std::logic_error(
            "validateHeterogeneous: overlapping mixes on one mixer");
      }
    }
  }
}

unsigned countStorageHeterogeneous(const TaskForest& forest,
                                   const Schedule& s, const MixerBank& bank) {
  // Difference array over cycles (+1 the cycle after the producing mix
  // finishes, -1 at consumption), prefix-summed for the peak — identical to
  // the old per-gap increment loop in O(n + T).
  std::vector<std::int32_t> delta(s.completionTime + 2, 0);
  const std::vector<TaskId>& consumers = forest.outConsumers();
  for (TaskId id = 0; id < forest.taskCount(); ++id) {
    const unsigned produced = finishCycle(s, bank, id);
    for (unsigned slot = 0; slot < 2; ++slot) {
      const TaskId consumer = consumers[2 * id + slot];
      if (consumer == kNoTask) continue;
      const unsigned consumed = s.cycles[consumer];
      if (consumed > produced + 1) {
        ++delta[produced + 1];
        --delta[consumed];
      }
    }
  }
  std::int32_t occupancy = 0;
  std::int32_t peak = 0;
  for (std::size_t t = 0; t < delta.size(); ++t) {
    occupancy += delta[t];
    peak = std::max(peak, occupancy);
  }
  return static_cast<unsigned>(peak);
}

}  // namespace dmf::sched
