// Published bioprotocol mixture ratios used in the paper's evaluation
// (section 6), plus the percentage -> dyadic-ratio approximation that turns a
// lab recipe into a biochip target ratio.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dmf/ratio.h"

namespace dmf::protocols {

/// One published bioprotocol mixture.
struct Protocol {
  /// Paper identifier ("Ex.1" .. "Ex.5").
  std::string id;
  /// Human-readable description and literature source.
  std::string description;
  /// The target ratio at the paper's evaluation scale (L = 256).
  Ratio ratio;
};

/// The five real-life target ratios of Table 2 (all at scale 256, d = 8).
[[nodiscard]] const std::vector<Protocol>& publishedProtocols();

/// The PCR master-mix volumetric percentages for DNA amplification:
/// reactant buffer, dNTPs, forward primer, reverse primer, DNA template,
/// optimase, water (sums to 100).
[[nodiscard]] const std::vector<double>& pcrMasterMixPercentages();

/// The PCR master-mix ratio at accuracy d = 4 used throughout the paper's
/// running example: {2:1:1:1:1:1:9}.
[[nodiscard]] Ratio pcrMasterMixRatio();

/// Approximates a percentage recipe on the 2^accuracy scale the way the
/// paper does for the PCR master-mix: every non-buffer component gets
/// max(1, round(percent/100 * 2^accuracy)) and the buffer (largest, last by
/// convention) absorbs the remainder. With the PCR percentages and
/// accuracy 4 this reproduces {2:1:1:1:1:1:9} exactly.
///
/// `bufferIndex` selects the absorbing component. Throws
/// std::invalid_argument when percentages are not positive, do not sum to
/// ~100, the scale cannot fit one unit per fluid, or the buffer share would
/// drop below one unit.
[[nodiscard]] Ratio approximatePercentages(
    const std::vector<double>& percentages, unsigned accuracy,
    std::size_t bufferIndex);

/// Overload defaulting the buffer to the last component.
[[nodiscard]] Ratio approximatePercentages(
    const std::vector<double>& percentages, unsigned accuracy);

}  // namespace dmf::protocols
