// Regression tests for the streaming-planner storage-cap fixes and the
// pass-evaluation layer (PassCache + PassPool).
//
// The two planner bugs covered here shipped in the original bisection
// planner: (1) the remainder pass was never checked against the storage cap,
// so a feasible per-pass demand with an infeasible tail silently emitted a
// cap-violating plan; (2) the bisection assumed scheduled storage is
// monotone in demand, but the SRS storage curve dips when the forest
// recomposes, making the bisection stop short of the true largest feasible
// per-pass demand.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/mdst.h"
#include "engine/pass_cache.h"
#include "engine/pass_pool.h"
#include "engine/streaming.h"

namespace dmf::engine {
namespace {

using mixgraph::Algorithm;

StreamingRequest request(std::uint64_t demand, unsigned cap, unsigned mixers,
                         unsigned jobs = 1) {
  StreamingRequest r;
  r.demand = demand;
  r.storageCap = cap;
  r.mixers = mixers;
  r.jobs = jobs;
  return r;
}

MdstEngine engineFor(const std::string& ratioText) {
  const auto ratio = Ratio::parse(ratioText);
  EXPECT_TRUE(ratio.has_value()) << ratioText;
  return MdstEngine(*ratio);
}

void expectAllPassesFit(const StreamingPlan& plan, unsigned cap,
                        std::uint64_t demand, const std::string& label) {
  std::uint64_t produced = 0;
  for (const StreamingPass& pass : plan.passes) {
    EXPECT_LE(pass.storageUnits, cap) << label << " pass D'=" << pass.demand;
    produced += pass.demand;
  }
  EXPECT_LE(plan.storageUnits, cap) << label;
  EXPECT_EQ(produced, demand) << label;
}

// Bug 1: ratio 7:3:3:3 on two mixers under cap 3 — the largest bisection
// answer for D=13 is D'=8, whose remainder pass of 5 droplets needs 4
// storage units. The original planner returned that cap-violating plan.
TEST(StreamingPlanFix, RemainderPassRespectsStorageCap) {
  MdstEngine engine = engineFor("7:3:3:3");
  for (const std::uint64_t demand : {13u, 21u}) {
    const StreamingPlan plan = planStreaming(engine, request(demand, 3, 2));
    expectAllPassesFit(plan, 3, demand, "7:3:3:3 D=" + std::to_string(demand));
  }
}

// Bug 1, swept: no (cap, demand) combination may emit a pass above the cap.
TEST(StreamingPlanFix, NoPassEverExceedsCapAcrossSweep) {
  MdstEngine engine = engineFor("7:5:4");
  PassCache cache;
  for (unsigned cap : {2u, 3u, 5u}) {
    for (std::uint64_t demand = 7; demand <= 40; ++demand) {
      StreamingPlan plan;
      try {
        plan = planStreaming(engine, request(demand, cap, 2), cache);
      } catch (const std::runtime_error&) {
        continue;  // genuinely infeasible cap is fine; emitting a bad plan is not
      }
      expectAllPassesFit(plan, cap, demand,
                         "7:5:4 cap=" + std::to_string(cap) +
                             " D=" + std::to_string(demand));
    }
  }
}

// Bug 2: ratio 14:2 on two mixers has a non-monotone SRS storage curve —
// demands 9..12 need 2 units but 13..16 drop back to 1. Under cap 1 with
// D=16 the bisection stopped at D'=8 (two passes); the whole demand fits in
// one pass, and the verified search must find it.
TEST(StreamingPlanFix, NonMonotoneStorageStillFindsLargestFeasible) {
  MdstEngine engine = engineFor("14:2");
  PassCache cache;

  // Pin the non-monotone dip itself so this regression keeps meaning.
  const unsigned storageAt12 =
      cache.evaluate(engine, Algorithm::MM, Scheme::kSRS, 2, 12).storageUnits;
  const unsigned storageAt16 =
      cache.evaluate(engine, Algorithm::MM, Scheme::kSRS, 2, 16).storageUnits;
  ASSERT_GT(storageAt12, storageAt16) << "storage curve no longer dips; "
                                         "pick a new non-monotone instance";

  const StreamingPlan plan =
      planStreaming(engine, request(16, storageAt16, 2), cache);
  expectAllPassesFit(plan, storageAt16, 16, "14:2 cap=1 D=16");
  EXPECT_EQ(plan.perPassDemand, 16u)
      << "verified search should discover the single-pass plan above the dip";
  EXPECT_EQ(plan.passes.size(), 1u);
}

TEST(StreamingPlanFix, OptimizedRejectsOverflowingDemand) {
  MdstEngine engine = engineFor("7:3:3:3");
  EXPECT_THROW(
      (void)planStreamingOptimized(
          engine,
          request(std::numeric_limits<std::uint64_t>::max(), 5, 2)),
      std::invalid_argument);
}

TEST(StreamingPlanFix, OptimizedStillNeverSlowerAndCapped) {
  MdstEngine engine = engineFor("7:3:3:3");
  PassCache cache;
  for (unsigned cap : {3u, 4u, 6u}) {
    for (const std::uint64_t demand : {13u, 21u, 29u}) {
      const StreamingPlan paper =
          planStreaming(engine, request(demand, cap, 2), cache);
      const StreamingPlan opt =
          planStreamingOptimized(engine, request(demand, cap, 2), cache);
      EXPECT_LE(opt.totalCycles, paper.totalCycles)
          << "cap=" << cap << " D=" << demand;
      expectAllPassesFit(opt, cap, demand,
                         "optimized cap=" + std::to_string(cap));
    }
  }
}

TEST(PassCacheAccounting, CountsHitsAndMisses) {
  MdstEngine engine = engineFor("2:1:1:1:1:1:9");
  PassCache cache;

  const StreamingPass first =
      cache.evaluate(engine, Algorithm::MM, Scheme::kSRS, 3, 8);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 1u);

  const StreamingPass second =
      cache.evaluate(engine, Algorithm::MM, Scheme::kSRS, 3, 8);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(second.cycles, first.cycles);
  EXPECT_EQ(second.storageUnits, first.storageUnits);

  // A different demand is a different key.
  (void)cache.evaluate(engine, Algorithm::MM, Scheme::kSRS, 3, 12);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);

  // Stage timings only accumulate on misses.
  EXPECT_GT(cache.stats().totalNanos(), 0u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evaluations(), 0u);
}

TEST(PassCacheAccounting, SecondPlanIsAllHits) {
  MdstEngine engine = engineFor("2:1:1:1:1:1:9");
  PassCache cache;
  const StreamingPlan first = planStreaming(engine, request(32, 3, 3), cache);
  const std::uint64_t missesAfterFirst = cache.stats().misses;
  EXPECT_GT(missesAfterFirst, 0u);

  const StreamingPlan second = planStreaming(engine, request(32, 3, 3), cache);
  EXPECT_EQ(cache.stats().misses, missesAfterFirst)
      << "a repeated plan must be served entirely from the cache";
  EXPECT_EQ(second.totalCycles, first.totalCycles);
  EXPECT_EQ(second.perPassDemand, first.perPassDemand);
}

TEST(PassCacheAccounting, LookupDoesNotCompute) {
  MdstEngine engine = engineFor("3:1");
  PassCache cache;
  const PassKey key{Algorithm::MM, Scheme::kSRS, 2, 8};
  EXPECT_FALSE(cache.lookup(key).has_value());
  (void)cache.evaluate(engine, Algorithm::MM, Scheme::kSRS, 2, 8);
  EXPECT_TRUE(cache.lookup(key).has_value());
}

void expectPlansIdentical(const StreamingPlan& a, const StreamingPlan& b,
                          const std::string& label) {
  EXPECT_EQ(a.perPassDemand, b.perPassDemand) << label;
  EXPECT_EQ(a.totalCycles, b.totalCycles) << label;
  EXPECT_EQ(a.totalWaste, b.totalWaste) << label;
  EXPECT_EQ(a.totalInput, b.totalInput) << label;
  EXPECT_EQ(a.storageUnits, b.storageUnits) << label;
  EXPECT_EQ(a.mixers, b.mixers) << label;
  ASSERT_EQ(a.passes.size(), b.passes.size()) << label;
  for (std::size_t i = 0; i < a.passes.size(); ++i) {
    EXPECT_EQ(a.passes[i].demand, b.passes[i].demand) << label << " pass " << i;
    EXPECT_EQ(a.passes[i].cycles, b.passes[i].cycles) << label << " pass " << i;
    EXPECT_EQ(a.passes[i].storageUnits, b.passes[i].storageUnits)
        << label << " pass " << i;
    EXPECT_EQ(a.passes[i].waste, b.passes[i].waste) << label << " pass " << i;
    EXPECT_EQ(a.passes[i].inputDroplets, b.passes[i].inputDroplets)
        << label << " pass " << i;
    EXPECT_EQ(a.passes[i].mixSplits, b.passes[i].mixSplits)
        << label << " pass " << i;
  }
}

// Four workers and one worker must produce field-identical plans: the pool
// only warms the cache, every decision re-reads memoized values.
TEST(StreamingPlanParallel, FourThreadsMatchOneThreadFieldByField) {
  for (const std::string& ratioText : {"2:1:1:1:1:1:9", "7:5:4", "14:2"}) {
    MdstEngine serialEngine = engineFor(ratioText);
    MdstEngine parallelEngine = engineFor(ratioText);
    for (unsigned cap : {1u, 3u, 5u}) {
      for (const std::uint64_t demand : {16u, 23u, 37u}) {
        StreamingPlan serial, parallel;
        bool serialThrew = false;
        bool parallelThrew = false;
        try {
          serial = planStreaming(serialEngine, request(demand, cap, 2, 1));
        } catch (const std::runtime_error&) {
          serialThrew = true;
        }
        try {
          parallel =
              planStreaming(parallelEngine, request(demand, cap, 2, 4));
        } catch (const std::runtime_error&) {
          parallelThrew = true;
        }
        const std::string label = ratioText + " cap=" + std::to_string(cap) +
                                  " D=" + std::to_string(demand);
        EXPECT_EQ(serialThrew, parallelThrew) << label;
        if (!serialThrew && !parallelThrew) {
          expectPlansIdentical(serial, parallel, label);
        }
      }
    }
  }
}

TEST(StreamingPlanParallel, OptimizedFourThreadsMatchOneThread) {
  MdstEngine serialEngine = engineFor("2:1:1:1:1:1:9");
  MdstEngine parallelEngine = engineFor("2:1:1:1:1:1:9");
  for (unsigned cap : {3u, 5u}) {
    for (const std::uint64_t demand : {20u, 37u}) {
      const StreamingPlan serial = planStreamingOptimized(
          serialEngine, request(demand, cap, 3, 1));
      const StreamingPlan parallel = planStreamingOptimized(
          parallelEngine, request(demand, cap, 3, 4));
      expectPlansIdentical(serial, parallel,
                           "optimized cap=" + std::to_string(cap) +
                               " D=" + std::to_string(demand));
    }
  }
}

// Concurrent evaluation of overlapping keys through one shared cache: what
// the TSan-labelled ctest run guards.
TEST(PassCacheAccounting, ConcurrentEvaluationIsConsistent) {
  MdstEngine engine = engineFor("2:1:1:1:1:1:9");
  PassCache cache;
  PassPool pool(4);
  std::vector<unsigned> storage(64);
  pool.forEach(storage.size(), [&](std::uint64_t i) {
    // Demands overlap heavily (i % 8), forcing hit and miss paths to race.
    storage[i] = cache
                     .evaluate(engine, Algorithm::MM, Scheme::kSRS, 3,
                               2 + (i % 8))
                     .storageUnits;
  });
  for (std::size_t i = 0; i < storage.size(); ++i) {
    const unsigned serial =
        evaluatePass(engine, Algorithm::MM, Scheme::kSRS, 3, 2 + (i % 8))
            .storageUnits;
    EXPECT_EQ(storage[i], serial) << "demand " << 2 + (i % 8);
  }
  EXPECT_EQ(cache.stats().evaluations(), storage.size());
}

TEST(PassPoolExecution, ForEachCoversEveryIndexExactlyOnce) {
  PassPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  pool.forEach(touched.size(), [&](std::uint64_t i) {
    touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(PassPoolExecution, ReusableAcrossBatches) {
  PassPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint64_t> out(97, 0);
    pool.forEach(out.size(), [&](std::uint64_t i) { out[i] = i * i; });
    for (std::uint64_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * i);
    }
  }
}

TEST(PassPoolExecution, LowestIndexExceptionWins) {
  PassPool pool(4);
  try {
    pool.forEach(1000, [](std::uint64_t i) {
      if (i >= 500) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "expected the batch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "500");
  }
}

TEST(PassPoolExecution, SerialPoolSpawnsNoThreadsAndStillWorks) {
  PassPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  std::uint64_t sum = 0;
  pool.forEach(100, [&](std::uint64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(PassPoolExecution, ZeroResolvesToHardwareConcurrency) {
  EXPECT_GE(PassPool::resolveJobs(0), 1u);
  EXPECT_EQ(PassPool::resolveJobs(7), 7u);
}

}  // namespace
}  // namespace dmf::engine
