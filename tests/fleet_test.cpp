// Unit and acceptance tests for the fleet dispatcher (DESIGN.md §17):
// arbitration policies, placement determinism, exactly-once execution,
// chip-failure migration, journal round-trips, and the WFQ fairness
// convergence bound from the issue (shares within 5% of configured
// weights under one heavy vs many light users).
#include "fleet/dispatcher.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dmf/errors.h"
#include "fleet/policy.h"

namespace dmf::fleet {
namespace {

namespace fs = std::filesystem;

WorkItem item(unsigned user, std::uint64_t admission, std::uint64_t cost) {
  WorkItem w;
  w.user = user;
  w.admission = admission;
  w.passIndex = admission;
  w.cost = cost;
  return w;
}

/// Drains the policy to completion, returning the user service order.
std::vector<unsigned> drainUsers(ArbitrationPolicy& policy) {
  std::vector<unsigned> order;
  while (!policy.empty()) {
    const std::optional<unsigned> user = policy.pickUser(0.0);
    EXPECT_TRUE(user.has_value()) << "backlogged policy picked nobody";
    if (!user.has_value()) break;
    const std::optional<WorkItem> work = policy.pop(*user);
    EXPECT_TRUE(work.has_value()) << "picked user had no backlog";
    if (!work.has_value()) break;
    order.push_back(*user);
  }
  return order;
}

// --------------------------------------------------------------------------
// Arbitration policies.

TEST(FleetPolicy, FifoServesGlobalAdmissionOrder) {
  FifoPolicy policy;
  policy.setUsers(3);
  policy.enqueue(item(2, 0, 5));
  policy.enqueue(item(0, 1, 5));
  policy.enqueue(item(2, 2, 5));
  policy.enqueue(item(1, 3, 5));
  std::vector<unsigned> order;
  drainUsers(policy).swap(order);
  EXPECT_EQ(order, (std::vector<unsigned>{2, 0, 2, 1}));
  EXPECT_TRUE(policy.empty());
  EXPECT_EQ(policy.pending(), 0u);
}

TEST(FleetPolicy, RoundRobinRotatesOverBackloggedUsers) {
  RoundRobinPolicy policy;
  policy.setUsers(3);
  // User 1 has no work; rotation must skip it without stalling.
  policy.enqueue(item(0, 0, 1));
  policy.enqueue(item(0, 1, 1));
  policy.enqueue(item(2, 2, 1));
  policy.enqueue(item(2, 3, 1));
  std::vector<unsigned> order;
  drainUsers(policy).swap(order);
  EXPECT_EQ(order, (std::vector<unsigned>{0, 2, 0, 2}));
}

TEST(FleetPolicy, PopReturnsItemsInAdmissionOrderPerUser) {
  RoundRobinPolicy policy;
  policy.setUsers(1);
  policy.enqueue(item(0, 3, 1));
  policy.enqueue(item(0, 1, 1));  // migrated item re-enters out of order
  const std::optional<WorkItem> first = policy.pop(0);
  const std::optional<WorkItem> second = policy.pop(0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->admission, 1u);
  EXPECT_EQ(second->admission, 3u);
  EXPECT_FALSE(policy.pop(0).has_value());
}

TEST(FleetPolicy, WfqInterleavesProportionallyToWeights) {
  WeightedFairPolicy policy;
  policy.setUsers(2);
  policy.setWeights({2.0, 1.0});
  for (std::uint64_t i = 0; i < 9; ++i) {
    policy.enqueue(item(static_cast<unsigned>(i % 2), i, 10));
  }
  // 5 items for user 0 (weight 2), 4 for user 1 (weight 1): user 0 must get
  // roughly two picks for each of user 1's, never a long starvation run.
  const std::vector<unsigned> order = drainUsers(policy);
  ASSERT_EQ(order.size(), 9u);
  unsigned firstOfUser1 = 0;
  for (unsigned i = 0; i < order.size(); ++i) {
    if (order[i] == 1) {
      firstOfUser1 = i;
      break;
    }
  }
  EXPECT_LE(firstOfUser1, 2u) << "weight-1 user starved at the start";
  // Prefix service proportionality: after any prefix, the heavy user's
  // served count is at least the light user's.
  unsigned heavy = 0;
  unsigned light = 0;
  for (const unsigned user : order) {
    if (user == 0) {
      ++heavy;
    } else {
      ++light;
    }
    EXPECT_GE(heavy + 1, light);
  }
}

TEST(FleetPolicy, WfqQuantumBatchesSameUserService) {
  WeightedFairPolicy policy;
  policy.setUsers(2);
  policy.setWeights({1.0, 1.0});
  policy.setQuantum(30.0);
  for (std::uint64_t i = 0; i < 6; ++i) {
    policy.enqueue(item(static_cast<unsigned>(i % 2), i, 10));
  }
  // A 30-cycle quantum over 10-cycle items means 3 consecutive picks per
  // user before the turn passes.
  const std::vector<unsigned> order = drainUsers(policy);
  ASSERT_EQ(order.size(), 6u);
  const unsigned first = order[0];
  EXPECT_EQ(order[1], first);
  EXPECT_EQ(order[2], first);
  EXPECT_NE(order[3], first);
}

TEST(FleetPolicy, WfqVirtualTimeAdvancesWithService) {
  WeightedFairPolicy policy;
  policy.setUsers(1);
  policy.setWeights({2.0});
  policy.enqueue(item(0, 0, 10));
  policy.enqueue(item(0, 1, 10));
  EXPECT_DOUBLE_EQ(policy.virtualTime(), 0.0);
  (void)policy.pop(0);
  (void)policy.pickUser(0.0);
  (void)policy.pop(0);
  // Second pick starts at the first item's finish tag: 0 + 10/2 = 5.
  EXPECT_DOUBLE_EQ(policy.virtualTime(), 5.0);
}

TEST(FleetPolicy, SetWeightsValidates) {
  WeightedFairPolicy policy;
  policy.setUsers(2);
  EXPECT_THROW(policy.setWeights({1.0}), std::invalid_argument);
  EXPECT_THROW(policy.setWeights({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(policy.setWeights({1.0, -2.0}), std::invalid_argument);
  EXPECT_NO_THROW(policy.setWeights({1.0, 8.0}));
}

TEST(FleetPolicy, MakePolicyResolvesNamesAndRejectsUnknown) {
  EXPECT_STREQ(makePolicy("fifo")->name(), "fifo");
  EXPECT_STREQ(makePolicy("rr")->name(), "rr");
  EXPECT_STREQ(makePolicy("wfq")->name(), "wfq");
  EXPECT_THROW((void)makePolicy("drr"), std::invalid_argument);
  EXPECT_THROW((void)makePolicy(""), std::invalid_argument);
}

TEST(FleetPolicy, EnqueueRejectsUnknownUser) {
  FifoPolicy policy;
  policy.setUsers(2);
  EXPECT_THROW(policy.enqueue(item(2, 0, 1)), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Spec parsers.

TEST(FleetParse, WeightsParsesAndValidates) {
  EXPECT_EQ(parseWeights("8,1,1"), (std::vector<double>{8.0, 1.0, 1.0}));
  EXPECT_EQ(parseWeights("2.5"), (std::vector<double>{2.5}));
  EXPECT_THROW((void)parseWeights(""), std::invalid_argument);
  EXPECT_THROW((void)parseWeights("1,,2"), std::invalid_argument);
  EXPECT_THROW((void)parseWeights("1,zero"), std::invalid_argument);
  EXPECT_THROW((void)parseWeights("1,-3"), std::invalid_argument);
  EXPECT_THROW((void)parseWeights("0"), std::invalid_argument);
}

TEST(FleetParse, ChipsParsesFieldsAndDefaults) {
  const std::vector<ChipSpec> chips =
      parseChips("mixers=4,storage=8;mixers=6,storage=4,dead=2");
  ASSERT_EQ(chips.size(), 2u);
  EXPECT_EQ(chips[0].mixers, 4u);
  EXPECT_EQ(chips[0].storageCap, 8u);
  EXPECT_EQ(chips[0].deadMixers, 0u);
  EXPECT_EQ(chips[1].effectiveMixers(), 4u);
  EXPECT_THROW((void)parseChips(""), std::invalid_argument);
  EXPECT_THROW((void)parseChips("mixers=abc"), std::invalid_argument);
  EXPECT_THROW((void)parseChips("mixers=-1"), std::invalid_argument);
  EXPECT_THROW((void)parseChips("bogus=1"), std::invalid_argument);
}

TEST(FleetParse, DefaultFleetIsDeterministicAndHeterogeneous) {
  const std::vector<ChipSpec> a = defaultFleet(4);
  const std::vector<ChipSpec> b = defaultFleet(4);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mixers, b[i].mixers);
    EXPECT_EQ(a[i].storageCap, b[i].storageCap);
    EXPECT_EQ(a[i].deadMixers, b[i].deadMixers);
    EXPECT_GE(a[i].effectiveMixers(), 1u);
  }
  // Heterogeneous: not all chips identical.
  bool differs = false;
  for (std::size_t i = 1; i < a.size(); ++i) {
    differs = differs || a[i].mixers != a[0].mixers ||
              a[i].storageCap != a[0].storageCap;
  }
  EXPECT_TRUE(differs);
  EXPECT_THROW((void)defaultFleet(0), std::invalid_argument);
}

TEST(FleetParse, UsersParsesDefaultsAndOptions) {
  const std::vector<UserStream> users = parseUsers(
      "ratio=1:3,demand=32,storage=3;"
      "ratio=2:1:1,demand=8,storage=2,mixers=2,weight=8,algo=rma,scheme=mms,"
      "optimize");
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].request.demand, 32u);
  EXPECT_EQ(users[0].request.storageCap, 3u);
  EXPECT_DOUBLE_EQ(users[0].weight, 1.0);
  EXPECT_FALSE(users[0].optimize);
  EXPECT_EQ(users[1].request.mixers, 2u);
  EXPECT_DOUBLE_EQ(users[1].weight, 8.0);
  EXPECT_TRUE(users[1].optimize);
  EXPECT_THROW((void)parseUsers(""), std::invalid_argument);
  EXPECT_THROW((void)parseUsers("demand=4"), std::invalid_argument);  // no ratio
  EXPECT_THROW((void)parseUsers("ratio=1:3,weight=0"), std::invalid_argument);
}

TEST(FleetParse, KillParsesAndValidates) {
  const KillSpec kill = parseKill("chip=1,cycle=120");
  EXPECT_TRUE(kill.active);
  EXPECT_EQ(kill.chip, 1u);
  EXPECT_EQ(kill.cycle, 120u);
  EXPECT_THROW((void)parseKill(""), std::invalid_argument);
  EXPECT_THROW((void)parseKill("chip=0"), std::invalid_argument);
  EXPECT_THROW((void)parseKill("cycle=5"), std::invalid_argument);
  EXPECT_THROW((void)parseKill("chip=a,cycle=5"), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Dispatch: determinism, exactly-once, capability, migration.

std::vector<UserStream> smallUsers() {
  std::vector<UserStream> users(3);
  users[0].ratio = Ratio({2, 1, 1, 1, 1, 1, 9});
  users[0].request.demand = 24;
  users[0].request.storageCap = 3;
  users[0].request.mixers = 3;
  users[0].weight = 8.0;
  users[1].ratio = Ratio({1, 3});
  users[1].request.demand = 16;
  users[1].request.storageCap = 2;
  users[1].request.mixers = 3;
  users[2].ratio = Ratio({1, 7});
  users[2].request.demand = 12;
  users[2].request.storageCap = 2;
  users[2].request.mixers = 3;
  return users;
}

DispatcherOptions smallFleet(const std::string& policy) {
  DispatcherOptions options;
  options.chips = {{4, 4, 0}, {4, 4, 1}, {5, 3, 0}};
  options.policy = policy;
  return options;
}

/// Every pass of every plan completes exactly once in the placement log.
void checkExactlyOnce(const FleetResult& result) {
  std::set<std::pair<unsigned, std::uint64_t>> completed;
  std::uint64_t expected = 0;
  for (const UserReport& user : result.users) {
    expected += user.plan.passes.size();
  }
  for (const PassRecord& record : result.log) {
    if (!record.completed) continue;
    EXPECT_TRUE(completed.insert({record.user, record.passIndex}).second)
        << "pass (" << record.user << ", " << record.passIndex
        << ") completed twice";
  }
  EXPECT_EQ(completed.size(), expected);
}

TEST(FleetDispatcher, ExecutesEveryPassExactlyOnce) {
  for (const char* policy : {"fifo", "rr", "wfq"}) {
    const FleetResult result = dispatchFleet(smallUsers(), smallFleet(policy));
    EXPECT_FALSE(result.degraded) << policy;
    checkExactlyOnce(result);
    // Conservation: completed chip time == delivered user service.
    std::uint64_t busy = 0;
    std::uint64_t service = 0;
    for (const ChipReport& chip : result.chips) busy += chip.busyCycles;
    for (const UserReport& user : result.users) service += user.serviceCycles;
    EXPECT_EQ(busy, service) << policy;
    EXPECT_GT(result.makespan, 0u) << policy;
  }
}

TEST(FleetDispatcher, ByteIdenticalAcrossJobs) {
  for (const char* policy : {"fifo", "rr", "wfq"}) {
    DispatcherOptions serial = smallFleet(policy);
    serial.jobs = 1;
    DispatcherOptions threaded = smallFleet(policy);
    threaded.jobs = 4;
    const FleetResult a = dispatchFleet(smallUsers(), serial);
    const FleetResult b = dispatchFleet(smallUsers(), threaded);
    EXPECT_EQ(a.toJson(true).dump(), b.toJson(true).dump()) << policy;
  }
}

TEST(FleetDispatcher, RespectsChipCapability) {
  std::vector<UserStream> users = smallUsers();
  users[0].request.mixers = 5;  // only chip 2 (5 effective mixers) fits
  DispatcherOptions options = smallFleet("fifo");
  const FleetResult result = dispatchFleet(users, options);
  EXPECT_FALSE(result.degraded);
  for (const PassRecord& record : result.log) {
    if (record.user == 0) {
      EXPECT_EQ(record.chip, 2u)
          << "a 5-mixer pass placed on an incapable chip";
    }
  }
  checkExactlyOnce(result);
}

TEST(FleetDispatcher, ThrowsWhenNoChipCanHostAUser) {
  std::vector<UserStream> users = smallUsers();
  users[1].request.mixers = 16;  // beyond every chip in the fleet
  EXPECT_THROW((void)dispatchFleet(users, smallFleet("fifo")),
               InfeasibleError);
}

TEST(FleetDispatcher, ValidatesOptions) {
  EXPECT_THROW((void)dispatchFleet({}, smallFleet("fifo")),
               std::invalid_argument);
  DispatcherOptions noChips;
  EXPECT_THROW((void)dispatchFleet(smallUsers(), noChips),
               std::invalid_argument);
  DispatcherOptions badWeights = smallFleet("wfq");
  badWeights.weights = {1.0, 2.0};  // 3 users
  EXPECT_THROW((void)dispatchFleet(smallUsers(), badWeights),
               std::invalid_argument);
}

TEST(FleetDispatcher, KillMigratesWithByteIdenticalPlans) {
  const FleetResult clean = dispatchFleet(smallUsers(), smallFleet("rr"));
  ASSERT_GE(clean.makespan, 2u);
  DispatcherOptions killOptions = smallFleet("rr");
  killOptions.kill.active = true;
  killOptions.kill.chip = 0;
  killOptions.kill.cycle = clean.makespan / 2;
  const FleetResult killed = dispatchFleet(smallUsers(), killOptions);
  EXPECT_FALSE(killed.degraded);
  EXPECT_TRUE(killed.chips[0].failed);
  checkExactlyOnce(killed);
  // The kill-invariant subset: per-user plans are byte-identical.
  EXPECT_EQ(clean.plansJson().dump(), killed.plansJson().dump());
  // A chip that was busy at the kill cycle forces at least one migration.
  bool chipBusyAtKill = false;
  for (const PassRecord& record : clean.log) {
    if (record.chip == 0 && record.startCycle < killOptions.kill.cycle &&
        record.endCycle > killOptions.kill.cycle) {
      chipBusyAtKill = true;
    }
  }
  if (chipBusyAtKill) {
    EXPECT_GE(killed.migrations, 1u);
    EXPECT_GT(killed.chips[0].abortedCycles, 0u);
  }
  // Nothing lands on the dead chip after the kill cycle.
  for (const PassRecord& record : killed.log) {
    if (record.chip == 0) {
      EXPECT_LE(record.startCycle, killOptions.kill.cycle);
    }
  }
}

TEST(FleetDispatcher, KillRunIsDeterministicAcrossJobs) {
  DispatcherOptions a = smallFleet("wfq");
  a.kill = {true, 1, 40};
  a.jobs = 1;
  DispatcherOptions b = a;
  b.jobs = 4;
  EXPECT_EQ(dispatchFleet(smallUsers(), a).toJson(true).dump(),
            dispatchFleet(smallUsers(), b).toJson(true).dump());
}

TEST(FleetDispatcher, JournalDirPersistsPerUserCheckpoints) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("dmf_fleet_test_" +
        std::to_string(static_cast<unsigned long>(::getpid()))))
          .string();
  fs::remove_all(dir);
  DispatcherOptions options = smallFleet("fifo");
  options.journalDir = dir;
  options.kill = {true, 0, 30};
  const FleetResult result = dispatchFleet(smallUsers(), options);
  checkExactlyOnce(result);
  // One journal per user, each replaying to its executed pass count.
  for (unsigned user = 0; user < result.users.size(); ++user) {
    const fs::path path =
        fs::path(dir) / ("user" + std::to_string(user) + ".log");
    EXPECT_TRUE(fs::exists(path)) << path;
  }
  // A journaled run must match the in-memory run byte for byte.
  DispatcherOptions memoryOptions = options;
  memoryOptions.journalDir.clear();
  const FleetResult memory = dispatchFleet(smallUsers(), memoryOptions);
  EXPECT_EQ(result.toJson(true).dump(), memory.toJson(true).dump());
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// --------------------------------------------------------------------------
// Fairness metrics and the WFQ convergence acceptance bound.

TEST(FleetResult, JainIndexIsOneForProportionalService) {
  FleetResult result;
  result.users.resize(2);
  result.users[0].weight = 2.0;
  result.users[0].serviceCycles = 200;
  result.users[1].weight = 1.0;
  result.users[1].serviceCycles = 100;
  EXPECT_NEAR(result.jainIndex(), 1.0, 1e-9);
  // Fully skewed: index collapses toward 1/n.
  result.users[1].serviceCycles = 0;
  EXPECT_NEAR(result.jainIndex(), 0.5, 1e-9);
  // No service at all: defined as 1.0 (vacuously fair).
  result.users[0].serviceCycles = 0;
  EXPECT_DOUBLE_EQ(result.jainIndex(), 1.0);
}

TEST(FleetDispatcher, WfqSharesConvergeToConfiguredWeights) {
  // The issue's acceptance scenario: one heavy user (weight 8) against 8
  // light users (weight 1) on 4 chips. While everyone is backlogged the
  // measured service shares must sit within 5% (relative) of the
  // configured weight shares: heavy 8/16 = 0.5, each light 1/16 = 0.0625.
  std::vector<UserStream> users(9);
  for (unsigned u = 0; u < users.size(); ++u) {
    users[u].ratio = Ratio({1, 7});
    // Large enough that many WFQ service rounds fit before the heavy user
    // drains — the share estimate converges as 1/rounds (the policy serves
    // the heavy user in bursts of ~weight picks per virtual round, so a
    // horizon landing mid-round clips up to one burst).
    users[u].request.demand = 8192;
    users[u].request.storageCap = 2;
    users[u].request.mixers = 3;
    users[u].weight = (u == 0) ? 8.0 : 1.0;
  }
  DispatcherOptions options;
  options.chips = {{4, 4, 0}, {4, 4, 0}, {4, 4, 0}, {4, 4, 0}};
  options.policy = "wfq";
  const FleetResult result = dispatchFleet(users, options);
  ASSERT_FALSE(result.degraded);
  checkExactlyOnce(result);

  // Measure at 60% of the heavy user's drain point — late enough for the
  // shares to converge, early enough that every user still has backlog.
  std::uint64_t heavyEnd = 0;
  for (const PassRecord& record : result.log) {
    if (record.user == 0) heavyEnd = std::max(heavyEnd, record.endCycle);
  }
  const std::uint64_t horizon = heavyEnd * 6 / 10;
  ASSERT_GT(horizon, 0u);
  for (unsigned u = 0; u < users.size(); ++u) {
    std::uint64_t lastEnd = 0;
    for (const PassRecord& record : result.log) {
      if (record.user == u) lastEnd = std::max(lastEnd, record.endCycle);
    }
    ASSERT_GT(lastEnd, horizon) << "user " << u << " drained before the "
                                << "measurement horizon — shares meaningless";
  }

  const std::vector<double> shares = result.serviceShares(horizon);
  ASSERT_EQ(shares.size(), users.size());
  double totalWeight = 0.0;
  for (const UserStream& user : users) totalWeight += user.weight;
  for (unsigned u = 0; u < users.size(); ++u) {
    const double expected = users[u].weight / totalWeight;
    const double relativeError = std::fabs(shares[u] - expected) / expected;
    EXPECT_LE(relativeError, 0.05)
        << "user " << u << " share " << shares[u] << ", expected "
        << expected;
  }
}

}  // namespace
}  // namespace dmf::fleet
