// Reproduces Table 4: streaming the PCR master-mix with three on-chip mixers
// under fixed storage budgets. For each accuracy level d (the percentages
// re-approximated on scale 2^d), storage cap q' and demand D, report the
// number of passes and the total (time-cycles, waste droplets).
//
// Paper anchors (d=4): D=2 -> One (4,6) for every q'; D=16, q'>=5 -> One
// (7,0); larger demands under tight storage need Two/Three passes.
//
// One persistent engine + PassCache per accuracy level: the 12 cells of a
// level share every candidate-pass evaluation (the same D' forests recur
// across caps and demands), and `--jobs N` fans candidate evaluation out
// inside each planning call. Output is identical for every job count.
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "engine/pass_cache.h"
#include "engine/pass_pool.h"
#include "engine/streaming.h"
#include "protocols/protocols.h"
#include "report/table.h"

#include "bench_obs.h"

int main(int argc, char** argv) {
  const dmf::bench::BenchSession benchObs("table4_streaming", argc, argv);
  using namespace dmf;

  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::stoul(argv[++i]));
    }
  }

  std::cout << "# Table 4 — PCR master-mix streaming, 3 mixers, capped "
               "storage\n# cell format: passes (total cycles, total waste)\n\n";

  const std::vector<double>& percentages =
      protocols::pcrMasterMixPercentages();

  std::vector<std::string> headers{"D"};
  for (unsigned d : {4u, 5u, 6u}) {
    for (unsigned q : {3u, 5u, 7u}) {
      headers.push_back("d=" + std::to_string(d) +
                        ",q'=" + std::to_string(q));
    }
  }
  report::Table table(headers);

  // Engines and caches persist across the demand rows.
  struct Level {
    std::unique_ptr<engine::MdstEngine> engine;
    engine::PassCache cache;
  };
  std::map<unsigned, Level> levels;
  for (unsigned d : {4u, 5u, 6u}) {
    levels[d].engine = std::make_unique<engine::MdstEngine>(
        protocols::approximatePercentages(percentages, d));
  }
  engine::PassPool pool(engine::PassPool::resolveJobs(jobs));

  for (std::uint64_t demand : {2u, 16u, 20u, 32u}) {
    std::vector<std::string> row{std::to_string(demand)};
    for (unsigned d : {4u, 5u, 6u}) {
      Level& level = levels[d];
      for (unsigned cap : {3u, 5u, 7u}) {
        engine::StreamingRequest request;
        request.algorithm = mixgraph::Algorithm::MM;
        request.scheme = engine::Scheme::kSRS;
        request.demand = demand;
        request.storageCap = cap;
        request.mixers = 3;
        try {
          const engine::StreamingPlan plan =
              planStreaming(*level.engine, request, level.cache, pool);
          row.push_back(std::to_string(plan.passes.size()) + " (" +
                        std::to_string(plan.totalCycles) + "," +
                        std::to_string(plan.totalWaste) + ")");
        } catch (const std::exception&) {
          row.push_back("infeasible");
        }
      }
    }
    table.addRow(std::move(row));
  }
  std::cout << table.render();

  // Cache accounting goes to stderr: parallel prefetching changes the
  // hit/miss split, and stdout must stay byte-identical for every --jobs.
  for (unsigned d : {4u, 5u, 6u}) {
    const engine::PassCacheStats stats = levels[d].cache.stats();
    std::cerr << "d=" << d << " pass cache: " << stats.hits << " hits, "
              << stats.misses << " misses over " << stats.evaluations()
              << " evaluations\n";
  }

  std::cout << "\nApproximated ratios per accuracy level:\n";
  for (unsigned d : {4u, 5u, 6u}) {
    std::cout << "  d=" << d << " : "
              << protocols::approximatePercentages(percentages, d).toString()
              << "\n";
  }
  std::cout << "\nPaper (d=4): D=2 -> One(4,6); D=16 -> Two(10,7) at q'=3, "
               "One(7,0) at q'>=5;\nD=20 -> Two(11,5)/One(11,5); D=32 -> "
               "Three(17,7)/Two(14,0).\n";
  return 0;
}
