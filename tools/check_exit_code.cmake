# ctest helper: assert the documented exit-code taxonomy exactly (ctest's
# WILL_FAIL only distinguishes zero from nonzero). Run as
#   cmake -DDMFSTREAM=<binary> -DEXPECT=<code> "-DARGS=<arg;list>"
#         -P check_exit_code.cmake
if(NOT DEFINED DMFSTREAM OR NOT DEFINED EXPECT OR NOT DEFINED ARGS)
  message(FATAL_ERROR "pass -DDMFSTREAM=, -DEXPECT= and -DARGS=")
endif()

execute_process(
  COMMAND ${DMFSTREAM} ${ARGS}
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr
  RESULT_VARIABLE status)
if(NOT status EQUAL ${EXPECT})
  message(FATAL_ERROR
    "dmfstream ${ARGS} exited with ${status}, expected ${EXPECT}\n"
    "stdout: ${stdout}\nstderr: ${stderr}")
endif()
if(DEFINED PATTERN AND NOT "${stdout}${stderr}" MATCHES "${PATTERN}")
  message(FATAL_ERROR
    "dmfstream ${ARGS}: output does not match '${PATTERN}'\n"
    "stdout: ${stdout}\nstderr: ${stderr}")
endif()
message(STATUS "dmfstream ${ARGS} -> exit ${status} (as documented)")
