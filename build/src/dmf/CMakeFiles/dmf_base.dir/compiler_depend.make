# Empty compiler generated dependencies file for dmf_base.
# This may be replaced when dependencies are built.
