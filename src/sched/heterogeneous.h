// Scheduling on heterogeneous mixer banks.
//
// The paper assumes every (1:1) mix-split takes one time-cycle in any mixer.
// Real module libraries (Su & Chakrabarty) offer mixers of different
// footprints and speeds: a 2x3 mixer finishes a mix in fewer cycles than a
// 2x2. This module generalizes the forest schedulers to per-mixer mix
// durations; with an all-ones bank it reduces exactly to the unit model.
#pragma once

#include <vector>

#include "forest/task_forest.h"
#include "sched/schedule.h"

namespace dmf::sched {

/// A bank of on-chip mixers; entry m is the number of cycles one mix-split
/// occupies mixer m.
struct MixerBank {
  std::vector<unsigned> cyclesPerMix;

  [[nodiscard]] std::size_t size() const { return cyclesPerMix.size(); }
};

/// A bank of `mixers` unit-speed mixers (the paper's model).
[[nodiscard]] MixerBank uniformBank(unsigned mixers, unsigned cycles = 1);

/// List-schedules the forest on the bank: ready tasks (longest remaining
/// chain first) grab the fastest free mixer. A task starting at cycle t on
/// mixer m occupies it for bank.cyclesPerMix[m] cycles; its droplets are
/// available the cycle after it finishes. Throws std::invalid_argument on an
/// empty bank or zero durations.
[[nodiscard]] Schedule scheduleHeterogeneous(const forest::TaskForest& forest,
                                             const MixerBank& bank);

/// Finish cycle of a task under the bank (start cycle + duration - 1).
[[nodiscard]] unsigned finishCycle(const Schedule& s, const MixerBank& bank,
                                   forest::TaskId id);

/// Validates a heterogeneous schedule: per-mixer occupancy intervals must
/// not overlap and every operand must finish strictly before its consumer
/// starts. Throws std::logic_error naming the violation.
void validateHeterogeneous(const forest::TaskForest& forest,
                           const Schedule& s, const MixerBank& bank);

/// Algorithm 3 generalized: droplets occupy storage from the cycle after
/// their producer finishes until the cycle before their consumer starts.
[[nodiscard]] unsigned countStorageHeterogeneous(
    const forest::TaskForest& forest, const Schedule& s,
    const MixerBank& bank);

}  // namespace dmf::sched
