// Dilution (N = 2) special case: sample against buffer at a dyadic
// concentration factor. Min-Mix restricted to two fluids is the classic
// bit-sequence dilution algorithm.
#include <stdexcept>

#include "mixgraph/builders.h"

namespace dmf::mixgraph {

MixingGraph buildDilution(std::uint64_t sampleNumerator, unsigned accuracy) {
  if (accuracy == 0 || accuracy > DyadicFraction::kMaxExponent) {
    throw std::invalid_argument("buildDilution: bad accuracy level");
  }
  const std::uint64_t scale = std::uint64_t{1} << accuracy;
  if (sampleNumerator == 0 || sampleNumerator >= scale) {
    throw std::invalid_argument(
        "buildDilution: sample concentration must be strictly between 0 and 1");
  }
  return buildMM(Ratio({sampleNumerator, scale - sampleNumerator}));
}

}  // namespace dmf::mixgraph
