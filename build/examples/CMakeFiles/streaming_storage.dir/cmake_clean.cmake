file(REMOVE_RECURSE
  "CMakeFiles/streaming_storage.dir/streaming_storage.cpp.o"
  "CMakeFiles/streaming_storage.dir/streaming_storage.cpp.o.d"
  "streaming_storage"
  "streaming_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
