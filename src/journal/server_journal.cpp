#include "journal/server_journal.h"

#include <map>

#include "obs/scope.h"
#include "report/json.h"

namespace dmf::journal {

namespace {

std::string makeLogPath(const std::string& dir) {
  ensureJournalDir(dir);
  return dir + "/wal.log";
}

}  // namespace

ServerJournal::ServerJournal(const std::string& dir) : log_(makeLogPath(dir)) {}

std::uint64_t ServerJournal::logRequest(const std::string& requestLine) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = nextId_++;
  report::Json record = report::Json::object();
  record.set("type", std::string("req"))
      .set("id", id)
      .set("line", requestLine);
  log_.append(record.dump());
  obs::count("journal.wal.logged");
  return id;
}

void ServerJournal::ack(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  report::Json record = report::Json::object();
  record.set("type", std::string("ack")).set("id", id);
  log_.append(record.dump());
  obs::count("journal.wal.acked");
}

std::vector<std::string> ServerJournal::recoverPending() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const obs::Span span("journal.wal.recover", "journal");
  const ReplayResult replay = log_.replayAndRepair();
  // Admission order must survive the req/ack interleaving, so pending
  // requests are keyed by their monotonically increasing ids.
  std::map<std::uint64_t, std::string> pending;
  const std::string context = "wal '" + log_.path() + "'";
  for (const std::string& payload : replay.records) {
    report::Json record = report::Json::object();
    try {
      record = report::Json::parse(payload);
    } catch (const std::exception& e) {
      throw CorruptJournalError(context + ": unparseable record: " + e.what());
    }
    try {
      const std::string& type = record.at("type").asString();
      const std::uint64_t id = record.at("id").asUint();
      if (type == "req") {
        pending[id] = record.at("line").asString();
        if (id >= nextId_) nextId_ = id + 1;
      } else if (type == "ack") {
        pending.erase(id);
      } else {
        throw CorruptJournalError(context + ": unknown record type '" + type +
                                  "'");
      }
    } catch (const CorruptJournalError&) {
      throw;
    } catch (const std::exception& e) {
      throw CorruptJournalError(context + ": malformed record: " + e.what());
    }
  }
  // Replayed requests go back through the normal admission path and
  // re-journal themselves, so the recovered log starts empty.
  log_.reset();
  std::vector<std::string> lines;
  lines.reserve(pending.size());
  for (auto& [id, line] : pending) lines.push_back(std::move(line));
  obs::count("journal.wal.replayed", lines.size());
  return lines;
}

}  // namespace dmf::journal
