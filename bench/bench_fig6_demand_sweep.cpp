// Reproduces Fig. 6: average completion time Tc and average input-droplet
// count I as the demand D grows, over the synthetic ratio corpus (L = 32,
// 2 <= N <= 12), comparing repeated baselines (RMM, RMTCS) against the
// forest engine (MM+MMS, MTCS+MMS).
//
// Paper shape: the repeated baselines grow linearly in D; the forest engine
// grows far slower — at D = 32 it uses roughly a quarter of the inputs.
//
// Evaluation runs through the pass-evaluation layer: one persistent engine
// and PassCache per ratio (base graphs, Mlb and the repeated two-droplet
// baseline pass are computed once instead of once per demand point), fanned
// out over `--jobs N` workers. Per-ratio results land in indexed slots and
// the averages are reduced in ratio order, so the output is byte-identical
// for every job count.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "engine/baseline.h"
#include "engine/mdst.h"
#include "engine/pass_cache.h"
#include "engine/pass_pool.h"
#include "report/chart.h"
#include "report/table.h"
#include "workload/ratio_corpus.h"

#include "bench_obs.h"

int main(int argc, char** argv) {
  const dmf::bench::BenchSession benchObs("fig6_demand_sweep", argc, argv);
  using namespace dmf;
  using mixgraph::Algorithm;

  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::stoul(argv[++i]));
    }
  }

  const auto& corpus = workload::evaluationCorpus();
  std::cout << "# Fig. 6 — average Tc and I vs demand D over "
            << corpus.size() << " ratios (L = 32)\n\n";

  std::vector<std::uint64_t> demands;
  for (std::uint64_t d = 2; d <= 32; d += 2) demands.push_back(d);

  // cells[ratio][demand][series]: series 0/1 = repeated RMM/RMTCS, 2/3 =
  // MM+MMS/MTCS+MMS; each holds {Tc, I}.
  struct Cell {
    double tc = 0;
    double in = 0;
  };
  std::vector<std::vector<std::vector<Cell>>> cells(
      corpus.size(), std::vector<std::vector<Cell>>(
                         demands.size(), std::vector<Cell>(4)));

  engine::PassPool pool(engine::PassPool::resolveJobs(jobs));
  pool.forEach(corpus.size(), [&](std::uint64_t ri) {
    engine::MdstEngine engine(corpus[ri]);
    engine::PassCache cache;
    const unsigned mixers = engine.defaultMixers();
    const Algorithm algos[2] = {Algorithm::MM, Algorithm::MTCS};
    for (std::size_t di = 0; di < demands.size(); ++di) {
      const std::uint64_t demand = demands[di];
      for (int a = 0; a < 2; ++a) {
        const engine::BaselineResult rep = engine::runRepeatedBaseline(
            engine, algos[a], demand, mixers, cache);
        cells[ri][di][static_cast<std::size_t>(a)] = {
            static_cast<double>(rep.completionTime),
            static_cast<double>(rep.inputDroplets)};

        const engine::StreamingPass pass = cache.evaluate(
            engine, algos[a], engine::Scheme::kMMS, mixers, demand);
        cells[ri][di][static_cast<std::size_t>(2 + a)] = {
            static_cast<double>(pass.cycles),
            static_cast<double>(pass.inputDroplets)};
      }
    }
  });

  report::Series tcSeries[4] = {{"RMM", {}},
                                {"RMTCS", {}},
                                {"MM+MMS", {}},
                                {"MTCS+MMS", {}}};
  report::Series inSeries[4] = {{"RMM", {}},
                                {"RMTCS", {}},
                                {"MM+MMS", {}},
                                {"MTCS+MMS", {}}};

  report::Table table({"D", "Tc RMM", "Tc RMTCS", "Tc MM+MMS", "Tc MTCS+MMS",
                       "I RMM", "I RMTCS", "I MM+MMS", "I MTCS+MMS"});

  for (std::size_t di = 0; di < demands.size(); ++di) {
    double tc[4] = {0, 0, 0, 0};
    double in[4] = {0, 0, 0, 0};
    for (std::size_t ri = 0; ri < corpus.size(); ++ri) {
      for (std::size_t s = 0; s < 4; ++s) {
        tc[s] += cells[ri][di][s].tc;
        in[s] += cells[ri][di][s].in;
      }
    }
    std::vector<std::string> row{std::to_string(demands[di])};
    for (int s = 0; s < 4; ++s) {
      tc[s] /= static_cast<double>(corpus.size());
      tcSeries[s].points.push_back(
          {static_cast<double>(demands[di]), tc[s]});
    }
    for (int s = 0; s < 4; ++s) {
      in[s] /= static_cast<double>(corpus.size());
      inSeries[s].points.push_back(
          {static_cast<double>(demands[di]), in[s]});
    }
    for (int s = 0; s < 4; ++s) row.push_back(report::fixed(tc[s], 1));
    for (int s = 0; s < 4; ++s) row.push_back(report::fixed(in[s], 1));
    table.addRow(std::move(row));
  }

  std::cout << table.render() << "\n";
  std::cout << "(a) average time of completion Tc vs demand D:\n"
            << report::renderChart({tcSeries[0], tcSeries[1], tcSeries[2],
                                    tcSeries[3]})
            << "\n(b) average input reactant droplets I vs demand D:\n"
            << report::renderChart({inSeries[0], inSeries[1], inSeries[2],
                                    inSeries[3]});
  return 0;
}
